"""Tests for per-transaction trace analysis."""

import math

import pytest

from repro.common.types import TxStatus, ValidationCode
from repro.workload.trace import (
    export_csv,
    latency_percentiles,
    queue_depth_estimate,
    summarize_run,
    throughput_timeline,
    trace_rows,
)


def status(tx_id, submit, commit, code=ValidationCode.VALID):
    return TxStatus(tx_id, code, submit_time=submit, commit_time=commit)


@pytest.fixture
def statuses():
    return [
        status("a", 0.0, 1.0),
        status("b", 0.5, 2.5),
        status("c", 1.0, 2.0, code=ValidationCode.MVCC_READ_CONFLICT),
        status("d", 1.5, 4.5),
    ]


class TestTraceRows:
    def test_rows_sorted_by_submit_time(self, statuses):
        rows = trace_rows(reversed(statuses))
        assert [row["tx_id"] for row in rows] == ["a", "b", "c", "d"]

    def test_row_fields(self, statuses):
        row = trace_rows(statuses)[0]
        assert row["code"] == "VALID"
        assert row["latency"] == pytest.approx(1.0)


class TestPercentiles:
    def test_successful_only(self, statuses):
        result = latency_percentiles(statuses, quantiles=(50, 100))
        # Successful latencies: 1.0, 2.0, 3.0 -> median 2.0, max 3.0.
        assert result[50] == pytest.approx(2.0)
        assert result[100] == pytest.approx(3.0)

    def test_including_failures(self, statuses):
        result = latency_percentiles(statuses, quantiles=(100,), successful_only=False)
        assert result[100] == pytest.approx(3.0)

    def test_empty_is_nan(self):
        result = latency_percentiles([], quantiles=(50,))
        assert math.isnan(result[50])


class TestTimeline:
    def test_commit_rate_per_window(self, statuses):
        timeline = dict(throughput_timeline(statuses, window_s=1.0))
        assert timeline[1.0] == pytest.approx(1.0)  # "a" commits at 1.0
        assert timeline[2.0] == pytest.approx(1.0)  # "b" (c failed)
        assert timeline[4.0] == pytest.approx(1.0)  # "d"

    def test_invalid_window(self, statuses):
        with pytest.raises(ValueError):
            throughput_timeline(statuses, window_s=0)

    def test_empty(self):
        assert throughput_timeline([]) == []


class TestQueueDepth:
    def test_depth_grows_then_drains(self, statuses):
        samples = dict(queue_depth_estimate(statuses, window_s=1.0))
        # Samples measure depth just *before* each boundary.
        assert samples[0.0] == 0  # before anything submitted
        assert samples[1.0] == 2  # a and b in flight; a commits exactly at 1.0
        assert samples[2.0] == 3  # b, c, d in flight
        assert samples[5.0] == 0  # fully drained

    def test_empty(self):
        assert queue_depth_estimate([]) == []


class TestExportAndSummary:
    def test_csv_roundtrip(self, statuses, tmp_path):
        path = tmp_path / "trace.csv"
        count = export_csv(path, statuses)
        assert count == 4
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("tx_id,code,succeeded")
        assert len(lines) == 5

    def test_summarize_run(self, statuses):
        summary = summarize_run({s.tx_id: s for s in statuses})
        assert summary["total"] == 4
        assert summary["successful"] == 3
        assert summary["failure_codes"] == {"MVCC_READ_CONFLICT": 1}
        assert summary["first_commit_s"] == pytest.approx(1.0)
        assert summary["last_commit_s"] == pytest.approx(4.5)

    def test_summary_from_real_run(self):
        from repro.common.config import NetworkConfig, OrdererConfig, TopologyConfig
        from repro.sim import Environment
        from repro.workload.caliper import build_network, populate_ledger, _client_process
        from repro.workload.generator import generate_plan, keys_to_populate
        from repro.gateway import Gateway
        from repro.workload.iot import IOT_CHAINCODE_NAME, IoTChaincode
        from repro.workload.metrics import MetricsCollector
        from repro.workload.spec import WorkloadSpec

        spec = WorkloadSpec(total_transactions=60, rate_tps=300.0)
        config = NetworkConfig(
            topology=TopologyConfig(1, 1),
            orderer=OrdererConfig(max_message_count=25),
            crdt_enabled=True,
        )
        env = Environment()
        network = build_network(env, config)
        network.deploy(IoTChaincode())
        plan = generate_plan(spec)
        populate_ledger(network, keys_to_populate(spec, plan))
        gateway = Gateway.connect(network)
        collector = MetricsCollector(env, expected=len(plan))
        collector.observe(gateway.block_events())
        per_client = {}
        for tx in plan:
            per_client.setdefault(tx.client, []).append(tx)
        contract = gateway.get_contract(IOT_CHAINCODE_NAME)
        for client_index, txs in sorted(per_client.items()):
            env.process(_client_process(env, contract, client_index, txs, collector))
        env.run(until=collector.done)

        summary = summarize_run(collector.statuses)
        assert summary["successful"] == 60
        assert summary["latency_percentiles_s"][99] >= summary["latency_percentiles_s"][50]
