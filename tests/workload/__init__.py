"""Tests for workload."""
