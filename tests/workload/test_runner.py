"""Tests for the declarative benchmark runner (Benchmark / Round / reporters)."""

import json

import pytest

from repro.common.config import (
    CRDTConfig,
    NetworkConfig,
    OrdererConfig,
    TopologyConfig,
)
from repro.common.errors import WorkloadError
from repro.workload.clients import ClosedLoopClient
from repro.workload.rate import FixedRate, LinearRamp, MaxRate, PoissonArrival
from repro.workload.reporter import (
    JsonReporter,
    deterministic_fingerprint,
    golden_drift,
)
from repro.workload.runner import Benchmark, BenchmarkReport, Round
from repro.workload.spec import WorkloadSpec


def light_config(block_size=25, crdt_enabled=True, seed=0):
    return NetworkConfig(
        topology=TopologyConfig(num_orgs=1, peers_per_org=1),
        orderer=OrdererConfig(max_message_count=block_size),
        crdt=CRDTConfig(),
        crdt_enabled=crdt_enabled,
        seed=seed,
    )


SPEC = WorkloadSpec(total_transactions=120, rate_tps=300.0)


class TestRoundDefaults:
    def test_default_rate_is_spec_fixed_rate(self):
        round_ = Round(SPEC, light_config())
        rate = round_.resolved_rate()
        assert isinstance(rate, FixedRate)
        assert rate.tps == SPEC.rate_tps

    def test_default_client_matches_controller(self):
        from repro.workload.clients import OpenLoopClient

        assert isinstance(Round(SPEC, light_config()).resolved_client(), OpenLoopClient)
        closed = Round(SPEC, light_config(), rate=MaxRate(in_flight=10))
        assert isinstance(closed.resolved_client(), ClosedLoopClient)

    def test_default_label_names_system_and_block_size(self):
        assert Round(SPEC, light_config(25, True)).resolved_label() == "FabricCRDT-25txb"
        assert (
            Round(SPEC.with_crdt(False), light_config(400, False)).resolved_label()
            == "Fabric-400txb"
        )
        assert Round(SPEC, light_config(), label="mine").resolved_label() == "mine"


class TestBenchmarkRuns:
    def test_two_round_fabric_vs_fabriccrdt(self):
        report = Benchmark(
            [
                Round(SPEC, light_config(25, True), label="crdt"),
                Round(SPEC.with_crdt(False), light_config(50, False), label="fabric"),
            ]
        ).run()
        by_label = report.by_label()
        assert by_label["crdt"].successful == 120
        assert by_label["fabric"].successful < 120
        assert [row["label"] for row in report.rows()] == ["crdt", "fabric"]

    def test_empty_benchmark_rejected(self):
        with pytest.raises(ValueError):
            Benchmark([])

    def test_rounds_are_independent_experiments(self):
        """The same round twice yields identical metrics: fresh networks."""

        report = Benchmark(
            [Round(SPEC, light_config()), Round(SPEC, light_config())]
        ).run()
        first, second = report.results
        assert first.to_dict() == second.to_dict()

    def test_poisson_and_ramp_rounds_complete(self):
        report = Benchmark(
            [
                Round(SPEC, light_config(), rate=PoissonArrival(300.0, seed=2)),
                Round(SPEC, light_config(), rate=LinearRamp(100.0, 400.0, 120)),
            ]
        ).run()
        assert all(result.successful == 120 for result in report.results)

    def test_duration_stop_condition(self):
        spec = WorkloadSpec(duration_seconds=0.2, rate_tps=300.0)
        result = Benchmark([Round(spec, light_config())]).run().results[0]
        # 300 tx/s for 0.2 s → 61 submissions (instants 0.0 .. 0.2 inclusive).
        assert result.total_submitted == 61
        assert result.successful == 61


class TestClosedLoopRound:
    def test_maxrate_round_completes_via_event_streams(self):
        client = ClosedLoopClient()
        result = (
            Benchmark(
                [
                    Round(
                        SPEC,
                        light_config(),
                        rate=MaxRate(in_flight=30, batch_size=10),
                        client=client,
                    )
                ]
            )
            .run()
            .results[0]
        )
        assert result.successful == 120
        assert result.failed == 0
        assert 0 < client.max_in_flight_observed <= 30

    def test_closed_loop_batches_share_blocks(self):
        """Coalesced bursts land together: block fill tracks the batch size,
        not the one-tx-per-flow trickle of the open-loop client."""

        result = (
            Benchmark(
                [Round(SPEC, light_config(25), rate=MaxRate(in_flight=25, batch_size=25))]
            )
            .run()
            .results[0]
        )
        assert result.successful == 120
        assert result.avg_block_fill > 10

    def test_closed_loop_needs_transaction_count(self):
        spec = WorkloadSpec(duration_seconds=1.0, rate_tps=300.0)
        with pytest.raises(WorkloadError, match="closed-loop"):
            Benchmark([Round(spec, light_config(), rate=MaxRate())]).run()

    def test_closed_loop_determinism(self):
        def run():
            return (
                Benchmark(
                    [Round(SPEC, light_config(seed=4), rate=MaxRate(in_flight=20))]
                )
                .run()
                .results[0]
            )

        assert run().to_dict() == run().to_dict()


class TestClosedLoopOnInlineTransport:
    def test_inline_commits_do_not_leak_window_slots(self):
        """On SyncTransport, blocks cut (and deliver events) *inside*
        submit_batch; transactions that resolve during the call must not be
        tracked as in-flight ghosts that pin window slots forever."""

        import json
        from types import SimpleNamespace

        from repro import Gateway, crdt_network, fabriccrdt_config
        from repro.workload.clients import RoundContext
        from repro.workload.generator import generate_plan
        from repro.workload.iot import IOT_CHAINCODE_NAME, IoTChaincode
        from repro.workload.rate import FixedRate

        network = crdt_network(fabriccrdt_config(max_message_count=5))
        network.deploy(IoTChaincode())
        gateway = Gateway.connect(network)
        contract = gateway.get_contract(IOT_CHAINCODE_NAME)
        contract.submit("populate", json.dumps({"keys": ["device-hot-0"]}))
        base_statuses = len(network.channel.statuses)

        spec = WorkloadSpec(total_transactions=40, rate_tps=300.0)
        plan = generate_plan(spec)
        client = ClosedLoopClient()
        collector = SimpleNamespace(on_endorsement_failure=lambda tx_id, now: None)
        client.start(
            RoundContext(
                env=None,
                gateway=gateway,
                contract=contract,
                plan=plan,
                collector=collector,
                rate=MaxRate(in_flight=8, batch_size=4),
            )
        )
        # Drain the tail: flush the orderer's partial batch until every
        # planned transaction has resolved (each flush frees slots, which
        # triggers further refills through the inline event stream).
        for _ in range(100):
            if len(network.channel.statuses) >= base_statuses + 40:
                break
            network.transport.flush()
        client.finish()
        assert len(network.channel.statuses) == base_statuses + 40
        assert 0 < client.max_in_flight_observed <= 8
        # Every transaction resolved, so no slot may still be held: a
        # transaction that committed *during* submit_batch must not linger
        # as an in-flight ghost.
        assert client.window.outstanding == set()


class TestMaxSimTime:
    def test_cap_aborts_unfinished_round(self):
        round_ = Round(SPEC, light_config())
        with pytest.raises(RuntimeError, match="transactions resolved"):
            Benchmark([round_], max_sim_time=1e-4).run()

    def test_cap_does_not_perturb_finished_round(self):
        bounded = Benchmark([Round(SPEC, light_config())], max_sim_time=1e7).run()
        generous = Benchmark([Round(SPEC, light_config())], max_sim_time=1e9).run()
        assert bounded.results[0].to_dict() == generous.results[0].to_dict()


class TestReporters:
    def test_json_reporter_writes_bench_shape(self, tmp_path):
        path = tmp_path / "BENCH_test.json"
        Benchmark(
            [Round(SPEC, light_config(), label="r0")],
            reporter=JsonReporter(str(path)),
        ).run()
        payload = json.loads(path.read_text())
        assert set(payload) == {"results", "rows"}
        assert payload["rows"][0]["label"] == "r0"
        assert payload["results"][0]["successful"] == 120

    def test_fingerprint_detects_drift(self):
        report = Benchmark([Round(SPEC, light_config())]).run()
        golden = [deterministic_fingerprint(report.results[0])]
        assert golden_drift(report.results, golden) is None
        tampered = [dict(golden[0], successful=golden[0]["successful"] + 1)]
        drift = golden_drift(report.results, tampered)
        assert drift is not None and "successful" in drift
        assert golden_drift(report.results, []) is not None

    def test_report_round_trip_through_json(self):
        report = Benchmark([Round(SPEC, light_config())]).run()
        assert json.loads(json.dumps(report.to_dict())) == report.to_dict()


class TestBenchmarkReportShape:
    def test_by_label_and_rows(self):
        report = BenchmarkReport()
        assert report.rows() == []
        assert report.by_label() == {}
