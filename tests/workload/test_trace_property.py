"""Property tests: trace analysis invariants over arbitrary runs.

Whatever mix of committed/failed/in-flight transactions a run produced:

* :func:`throughput_timeline` windows partition the committed events — the
  window totals sum exactly to the committed count;
* :func:`queue_depth_estimate` never reports a negative depth, and a run
  in which every submitted transaction committed drains back to zero;
* :func:`export_csv` / :func:`import_csv` round-trip the statuses exactly,
  including the derived ``succeeded``/``latency`` views.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.common.types import TxStatus, ValidationCode
from repro.workload.trace import (
    export_csv,
    import_csv,
    queue_depth_estimate,
    throughput_timeline,
    trace_rows,
)

times = st.floats(min_value=0.0, max_value=1000.0, allow_nan=False, width=32)
windows = st.floats(min_value=0.05, max_value=30.0, allow_nan=False)


@st.composite
def statuses(draw, committed=None) -> list:
    """A run's worth of TxStatus records.

    ``committed=True`` forces every transaction to have both timestamps
    (a fully-resolved run); ``None`` mixes committed, failed-at-commit,
    and never-resolved transactions.
    """

    count = draw(st.integers(min_value=0, max_value=40))
    result = []
    for index in range(count):
        submit = draw(times)
        resolved = True if committed else draw(st.booleans())
        commit = submit + draw(times) if resolved else None
        code = (
            ValidationCode.VALID
            if (committed or draw(st.booleans()))
            else ValidationCode.MVCC_READ_CONFLICT
        )
        result.append(
            TxStatus(
                tx_id=f"tx{index}",
                code=code,
                block_num=draw(st.one_of(st.none(), st.integers(0, 99))),
                tx_num=index,
                submit_time=submit,
                commit_time=commit,
            )
        )
    return result


class TestThroughputTimeline:
    @given(run=statuses(), window=windows)
    def test_window_totals_equal_committed_count(self, run, window):
        timeline = throughput_timeline(run, window_s=window, successful_only=False)
        committed = sum(1 for s in run if s.commit_time is not None)
        total = round(sum(rate * window for _start, rate in timeline))
        assert total == committed

    @given(run=statuses(), window=windows)
    def test_successful_only_counts_successes(self, run, window):
        timeline = throughput_timeline(run, window_s=window, successful_only=True)
        committed = sum(
            1 for s in run if s.commit_time is not None and s.succeeded
        )
        assert round(sum(rate * window for _start, rate in timeline)) == committed

    @given(run=statuses(), window=windows)
    def test_window_starts_strictly_increase(self, run, window):
        timeline = throughput_timeline(run, window_s=window, successful_only=False)
        starts = [start for start, _rate in timeline]
        assert starts == sorted(set(starts))


class TestQueueDepthEstimate:
    @given(run=statuses(), window=windows)
    def test_depth_never_negative(self, run, window):
        for _time, depth in queue_depth_estimate(run, window_s=window):
            assert depth >= 0

    @given(run=statuses(committed=True), window=windows)
    def test_fully_committed_run_ends_at_zero(self, run, window):
        samples = queue_depth_estimate(run, window_s=window)
        if samples:
            assert samples[-1][1] == 0

    @given(run=statuses(), window=windows)
    def test_sample_times_monotone(self, run, window):
        samples = queue_depth_estimate(run, window_s=window)
        assert all(a[0] <= b[0] for a, b in zip(samples, samples[1:]))


class TestCsvRoundTrip:
    @given(run=statuses())
    def test_export_import_round_trips(self, run, tmp_path_factory):
        path = tmp_path_factory.mktemp("trace") / "nested" / "dir" / "trace.csv"
        written = export_csv(path, run)
        assert written == len(run)
        loaded = import_csv(path)
        assert trace_rows(loaded) == trace_rows(run)
        by_id = {s.tx_id: s for s in run}
        for status in loaded:
            original = by_id[status.tx_id]
            assert status == original
            assert status.succeeded == original.succeeded
            assert status.latency == original.latency
