"""Tests for the figure-shaped text reports."""

from repro.workload.metrics import BenchmarkResult
from repro.workload.report import format_figure, format_result_details


def result(label, tps, latency, successful):
    return BenchmarkResult(
        label=label,
        total_submitted=successful,
        successful=successful,
        failed=0,
        duration_s=10.0,
        throughput_tps=tps,
        avg_latency_s=latency,
    )


class TestFormatFigure:
    def test_three_panels_rendered(self):
        crdt = {25: result("c", 267.0, 2.8, 10000)}
        fabric = {25: result("f", 0.6, 3.4, 20)}
        text = format_figure("Figure 3", "txs/block", [25], crdt, fabric)
        assert "Figure 3" in text
        assert text.count("FabricCRDT") == 3
        assert text.count("Fabric  ") >= 3
        assert "267" in text and "0.6" in text
        assert "10000" in text and "2.8" in text

    def test_missing_points_render_nan(self):
        text = format_figure("F", "x", [25, 50], {25: result("c", 1, 1, 1)}, {})
        assert "nan" in text

    def test_tuple_sweep_values(self):
        crdt = {(3, 3): result("c", 157.0, 20.0, 10000)}
        text = format_figure("Figure 4", "R-W", [(3, 3)], crdt, {})
        assert "(3, 3)" in text


class TestDetails:
    def test_details_include_counters(self):
        detailed = BenchmarkResult(
            label="x",
            total_submitted=100,
            successful=90,
            failed=10,
            duration_s=5.0,
            throughput_tps=18.0,
            avg_latency_s=1.0,
            failure_codes={"MVCC_READ_CONFLICT": 10},
            blocks_committed=4,
            avg_block_fill=25.0,
            merge_ops=123,
            merge_scan_steps=456,
            endorsement_failures=1,
        )
        text = format_result_details(detailed)
        assert "MVCC_READ_CONFLICT=10" in text
        assert "merge ops:            123" in text
        assert "endorsement failures: 1" in text
