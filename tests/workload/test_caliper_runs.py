"""Small end-to-end runs through the Caliper-equivalent driver.

These are the integration tests for the full measured pipeline: DES network,
workload generation, pre-population, open-loop clients, metric collection.
Scales are tiny; the full-scale runs live in benchmarks/.
"""

import pytest

from repro.common.config import (
    CRDTConfig,
    NetworkConfig,
    OrdererConfig,
    TopologyConfig,
)
from repro.fabric.costmodel import CostModel
from repro.workload.caliper import run_workload
from repro.workload.spec import WorkloadSpec


def light_config(block_size, crdt_enabled, seed=0):
    return NetworkConfig(
        topology=TopologyConfig(num_orgs=1, peers_per_org=1),
        orderer=OrdererConfig(max_message_count=block_size),
        crdt=CRDTConfig(),
        crdt_enabled=crdt_enabled,
        seed=seed,
    )


SPEC = WorkloadSpec(total_transactions=200, rate_tps=300.0)


class TestCRDTRun:
    def test_all_transactions_succeed(self):
        result = run_workload(SPEC, light_config(25, True))
        assert result.total_submitted == 200
        assert result.successful == 200
        assert result.failed == 0
        assert result.merge_ops > 0

    def test_throughput_and_latency_positive(self):
        result = run_workload(SPEC, light_config(25, True))
        assert result.throughput_tps > 0
        assert result.avg_latency_s > 0
        assert result.duration_s >= 200 / 300.0 * 0.9


class TestFabricRun:
    def test_conflicting_workload_mostly_fails(self):
        result = run_workload(SPEC.with_crdt(False), light_config(50, False))
        assert result.total_submitted == 200
        assert 1 <= result.successful < 50
        assert result.failure_codes.get("MVCC_READ_CONFLICT", 0) > 100

    def test_non_conflicting_workload_all_succeeds(self):
        spec = WorkloadSpec(total_transactions=150, rate_tps=300.0, conflict_pct=0.0,
                            use_crdt=False)
        result = run_workload(spec, light_config(50, False))
        assert result.successful == 150


class TestDeterminism:
    def test_same_seed_same_metrics(self):
        first = run_workload(SPEC, light_config(25, True, seed=3))
        second = run_workload(SPEC, light_config(25, True, seed=3))
        assert first.throughput_tps == pytest.approx(second.throughput_tps)
        assert first.avg_latency_s == pytest.approx(second.avg_latency_s)
        assert first.successful == second.successful
        assert first.blocks_committed == second.blocks_committed


class TestTopologies:
    def test_full_paper_topology_converges(self):
        spec = WorkloadSpec(total_transactions=60, rate_tps=300.0)
        config = NetworkConfig(
            topology=TopologyConfig(num_orgs=3, peers_per_org=2),
            orderer=OrdererConfig(max_message_count=25),
            crdt_enabled=True,
        )
        from repro.sim import Environment
        from repro.workload.caliper import build_network
        from repro.workload.generator import generate_plan, keys_to_populate
        from repro.gateway import Gateway
        from repro.workload.iot import IOT_CHAINCODE_NAME, IoTChaincode
        from repro.workload.metrics import MetricsCollector
        from repro.workload.caliper import populate_ledger, _client_process

        env = Environment()
        network = build_network(env, config)
        network.deploy(IoTChaincode())
        plan = generate_plan(spec)
        populate_ledger(network, keys_to_populate(spec, plan))
        gateway = Gateway.connect(network)
        collector = MetricsCollector(env, expected=len(plan))
        collector.observe(gateway.block_events())
        per_client = {}
        for tx in plan:
            per_client.setdefault(tx.client, []).append(tx)
        contract = gateway.get_contract(IOT_CHAINCODE_NAME)
        for client_index, transactions in sorted(per_client.items()):
            env.process(
                _client_process(env, contract, client_index, transactions, collector)
            )
        env.run(until=collector.done)
        # All six peers converge to identical world states.
        reference = network.peers()[0].ledger.state.snapshot_versions()
        for peer in network.peers()[1:]:
            # Peers may still be committing the last block when the anchor
            # finished; drain remaining events first.
            pass
        env.run()
        for peer in network.peers()[1:]:
            assert peer.ledger.state.snapshot_versions() == reference
