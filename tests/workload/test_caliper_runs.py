"""Small end-to-end runs through the declarative benchmark runner.

These are the integration tests for the full measured pipeline: DES network,
workload generation, pre-population, open-loop clients, metric collection —
declared as ``Benchmark``/``Round`` experiments.  The legacy ``run_workload``
shim is covered by an explicit byte-identical compatibility test.  Scales
are tiny; the full-scale runs live in benchmarks/.
"""

import pytest

from repro.common.config import (
    CRDTConfig,
    NetworkConfig,
    OrdererConfig,
    TopologyConfig,
)
from repro.common.deprecation import reset_deprecation_warnings
from repro.workload.runner import Benchmark, Round
from repro.workload.spec import WorkloadSpec


def light_config(block_size, crdt_enabled, seed=0):
    return NetworkConfig(
        topology=TopologyConfig(num_orgs=1, peers_per_org=1),
        orderer=OrdererConfig(max_message_count=block_size),
        crdt=CRDTConfig(),
        crdt_enabled=crdt_enabled,
        seed=seed,
    )


def one_round(spec, config, **round_kwargs):
    return Benchmark([Round(spec, config, **round_kwargs)]).run().results[0]


SPEC = WorkloadSpec(total_transactions=200, rate_tps=300.0)


class TestCRDTRun:
    def test_all_transactions_succeed(self):
        result = one_round(SPEC, light_config(25, True))
        assert result.total_submitted == 200
        assert result.successful == 200
        assert result.failed == 0
        assert result.merge_ops > 0

    def test_throughput_and_latency_positive(self):
        result = one_round(SPEC, light_config(25, True))
        assert result.throughput_tps > 0
        assert result.avg_latency_s > 0
        assert result.duration_s >= 200 / 300.0 * 0.9


class TestFabricRun:
    def test_conflicting_workload_mostly_fails(self):
        result = one_round(SPEC.with_crdt(False), light_config(50, False))
        assert result.total_submitted == 200
        assert 1 <= result.successful < 50
        assert result.failure_codes.get("MVCC_READ_CONFLICT", 0) > 100

    def test_non_conflicting_workload_all_succeeds(self):
        spec = WorkloadSpec(total_transactions=150, rate_tps=300.0, conflict_pct=0.0,
                            use_crdt=False)
        result = one_round(spec, light_config(50, False))
        assert result.successful == 150


class TestDeterminism:
    def test_same_seed_same_metrics(self):
        first = one_round(SPEC, light_config(25, True, seed=3))
        second = one_round(SPEC, light_config(25, True, seed=3))
        assert first.throughput_tps == pytest.approx(second.throughput_tps)
        assert first.avg_latency_s == pytest.approx(second.avg_latency_s)
        assert first.successful == second.successful
        assert first.blocks_committed == second.blocks_committed


class TestRunWorkloadCompat:
    """The legacy monolithic driver is a byte-identical shim over Round."""

    @pytest.mark.parametrize("seed", (0, 3))
    @pytest.mark.parametrize("crdt_enabled,block_size", ((True, 25), (False, 50)))
    def test_byte_identical_to_declared_round(self, seed, crdt_enabled, block_size):
        from repro.workload.caliper import run_workload

        spec = SPEC.with_crdt(crdt_enabled)
        config = light_config(block_size, crdt_enabled, seed=seed)
        with pytest.warns(DeprecationWarning, match="run_workload"):
            reset_deprecation_warnings()
            legacy = run_workload(spec, config)
        declared = one_round(spec, config)
        assert legacy.to_dict() == declared.to_dict()

    def test_warns_once_per_process(self):
        import warnings

        from repro.workload.caliper import run_workload

        reset_deprecation_warnings()
        with pytest.warns(DeprecationWarning):
            run_workload(SPEC, light_config(25, True))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            run_workload(SPEC, light_config(25, True))


class TestTopologies:
    def test_full_paper_topology_converges(self):
        spec = WorkloadSpec(total_transactions=60, rate_tps=300.0)
        config = NetworkConfig(
            topology=TopologyConfig(num_orgs=3, peers_per_org=2),
            orderer=OrdererConfig(max_message_count=25),
            crdt_enabled=True,
        )
        from repro.sim import Environment
        from repro.gateway import Gateway
        from repro.workload.clients import OpenLoopClient, RoundContext
        from repro.workload.generator import generate_plan, keys_to_populate
        from repro.workload.iot import IOT_CHAINCODE_NAME, IoTChaincode
        from repro.workload.metrics import MetricsCollector
        from repro.workload.rate import FixedRate
        from repro.workload.runner import build_network, populate_ledger

        env = Environment()
        network = build_network(env, config)
        network.deploy(IoTChaincode())
        plan = generate_plan(spec)
        populate_ledger(network, keys_to_populate(spec, plan))
        gateway = Gateway.connect(network)
        collector = MetricsCollector(env, expected=len(plan))
        collector.observe(gateway.block_events())
        contract = gateway.get_contract(IOT_CHAINCODE_NAME)
        OpenLoopClient().start(
            RoundContext(
                env=env,
                gateway=gateway,
                contract=contract,
                plan=plan,
                collector=collector,
                rate=FixedRate(spec.rate_tps),
            )
        )
        env.run(until=collector.done)
        # All six peers converge to identical world states.  Peers may still
        # be committing the last block when the anchor finished; drain
        # remaining events first.
        env.run()
        reference = network.peers()[0].ledger.state.snapshot_versions()
        for peer in network.peers()[1:]:
            assert peer.ledger.state.snapshot_versions() == reference
