"""Warm-up/cool-down trimming: trimmed metrics == hand-filtered recomputation."""

import pytest

from repro.common.config import fabriccrdt_config
from repro.common.types import ValidationCode
from repro.fabric.costmodel import zero_latency_model
from repro.sim import Environment
from repro.workload.metrics import MetricsCollector, Trim
from repro.workload.runner import Round, run_round
from repro.workload.spec import table1_spec

from .test_metrics import committed, make_tx


def collector_with_spread_commits():
    """Ten transactions committing one per second from t=1 to t=10."""

    env = Environment()
    collector = MetricsCollector(env, expected=10)
    for index in range(10):
        tx = make_tx(index, submit_time=float(index) * 0.5)
        code = (
            ValidationCode.VALID if index % 3 != 2 else ValidationCode.MVCC_READ_CONFLICT
        )
        collector.on_block(committed(index, [tx], [code], float(index + 1)), "peer")
    return collector


class TestTrimValidation:
    def test_negative_windows_rejected(self):
        with pytest.raises(ValueError):
            Trim(warmup_seconds=-1)
        with pytest.raises(ValueError):
            Trim(cooldown_seconds=-0.5)

    def test_empty_window_rejected(self):
        collector = collector_with_spread_commits()
        with pytest.raises(ValueError, match="no reporting window"):
            collector.result("label", trim=Trim(warmup_seconds=6, cooldown_seconds=6))

    def test_zero_trim_is_falsy_and_byte_identical(self):
        collector = collector_with_spread_commits()
        assert not Trim()
        assert collector.result("label") == collector.result("label", trim=Trim())


class TestTrimmedRecomputation:
    def test_matches_hand_filtered_statuses(self):
        collector = collector_with_spread_commits()
        trim = Trim(warmup_seconds=2.0, cooldown_seconds=3.0)
        result = collector.result("label", trim=trim)

        # Hand-filter: first submit at t=0, last commit at t=10, so the
        # reporting window is [2, 7]; a status counts when it resolved
        # (commit_time) inside the window.
        window_start, window_end = 0.0 + 2.0, 10.0 - 3.0
        in_window = [
            s
            for s in collector.statuses.values()
            if window_start <= s.commit_time <= window_end
        ]
        succeeded = [s for s in in_window if s.succeeded]
        latencies = [s.commit_time - s.submit_time for s in succeeded]

        assert result.total_submitted == len(in_window)
        assert result.successful == len(succeeded)
        assert result.failed == len(in_window) - len(succeeded)
        assert result.duration_s == pytest.approx(window_end - window_start)
        assert result.throughput_tps == pytest.approx(
            len(succeeded) / (window_end - window_start)
        )
        assert result.avg_latency_s == pytest.approx(sum(latencies) / len(latencies))
        assert result.max_latency_s == pytest.approx(max(latencies))
        assert result.trim_warmup_s == 2.0
        assert result.trim_cooldown_s == 3.0

    def test_untrimmed_keeps_historical_shape(self):
        collector = collector_with_spread_commits()
        result = collector.result("label")
        assert result.total_submitted == 10
        assert result.duration_s == pytest.approx(10.0)
        assert result.trim_warmup_s == 0.0
        assert result.trim_cooldown_s == 0.0


class TestTrimmedEndorsementFailures:
    def test_counter_windows_with_the_statuses(self):
        env = Environment()
        collector = MetricsCollector(env, expected=11)
        collector.on_endorsement_failure("failed-early", now=0.5)
        for index in range(10):
            tx = make_tx(index, submit_time=float(index) * 0.5)
            collector.on_block(
                committed(index, [tx], [ValidationCode.VALID], float(index + 1)), "peer"
            )
        untrimmed = collector.result("label")
        assert untrimmed.endorsement_failures == 1
        # The failure resolved at t=0.5, inside the 2s warm-up: the trimmed
        # result must not report it (failed=0 and endorsement_failures=0
        # stay consistent).
        trimmed = collector.result("label", trim=Trim(warmup_seconds=2.0))
        assert trimmed.failed == 0
        assert trimmed.endorsement_failures == 0
        assert trimmed.failure_codes == {}


class TestTrimmedRound:
    def test_round_trim_shrinks_reporting_window(self):
        spec = table1_spec(total_transactions=60, seed=7)
        config = fabriccrdt_config(25, seed=0)
        cost = zero_latency_model()
        full = run_round(Round(spec, config), cost=cost)
        trim = Trim(warmup_seconds=0.05, cooldown_seconds=0.05)
        trimmed = run_round(Round(spec, config, trim=trim), cost=cost)
        # Identical deterministic run, so the trimmed window is exactly the
        # full window minus the warm-up and cool-down edges.
        assert trimmed.duration_s == pytest.approx(full.duration_s - 0.1)
        # Same virtual experiment, smaller reporting window: the trimmed
        # result must be internally consistent and no larger than the full
        # run.
        assert trimmed.total_submitted <= full.total_submitted
        assert trimmed.successful <= full.successful
        assert trimmed.throughput_tps == pytest.approx(
            trimmed.successful / trimmed.duration_s
        )
        assert trimmed.trim_warmup_s == 0.05
