"""Tests for workload specifications (the paper's Tables 1–5)."""

import pytest

from repro.common.errors import WorkloadError
from repro.workload.spec import (
    WorkloadSpec,
    table1_spec,
    table2_spec,
    table3_spec,
    table4_spec,
    table5_spec,
)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"total_transactions": 0},
            {"rate_tps": 0},
            {"num_clients": 0},
            {"read_keys": -1},
            {"read_keys": 0, "write_keys": 0},
            {"conflict_pct": 120.0},
            {"json_keys": 0},
            {"nesting_depth": 0},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(WorkloadError):
            WorkloadSpec(**kwargs)

    def test_defaults_match_paper(self):
        spec = WorkloadSpec()
        assert spec.total_transactions == 10000
        assert spec.rate_tps == 300.0
        assert spec.num_clients == 4
        assert spec.duration_seconds is None


class TestStopConditions:
    def test_count_and_duration_mutually_exclusive(self):
        with pytest.raises(WorkloadError, match="mutually exclusive"):
            WorkloadSpec(total_transactions=100, duration_seconds=5.0)

    def test_duration_only_spec(self):
        spec = WorkloadSpec(duration_seconds=5.0)
        assert spec.total_transactions is None
        assert spec.duration_seconds == 5.0

    @pytest.mark.parametrize("duration", (0.0, -1.0))
    def test_non_positive_duration_rejected(self, duration):
        with pytest.raises(WorkloadError):
            WorkloadSpec(duration_seconds=duration)

    def test_for_duration_swaps_stop_condition(self):
        spec = WorkloadSpec(total_transactions=100).for_duration(2.5)
        assert spec.total_transactions is None
        assert spec.duration_seconds == 2.5

    def test_scaled_swaps_back_to_count(self):
        spec = WorkloadSpec(duration_seconds=5.0).scaled(100)
        assert spec.total_transactions == 100
        assert spec.duration_seconds is None

    def test_duration_plan_length_follows_rate(self):
        from repro.workload.generator import generate_plan

        plan = generate_plan(WorkloadSpec(duration_seconds=1.0, rate_tps=100.0))
        # Instants 0.00, 0.01, ..., 1.00 inclusive.
        assert len(plan) == 101
        assert plan[-1].submit_time <= 1.0

    def test_too_short_duration_rejected_at_plan_time(self):
        from repro.workload.generator import plan_times
        from repro.workload.rate import LinearRamp

        # First instant is 0.0 for every controller, so any positive
        # duration admits at least one transaction.
        assert plan_times(WorkloadSpec(duration_seconds=1e-9), None) == [0.0]
        assert len(plan_times(WorkloadSpec(duration_seconds=0.5),
                              LinearRamp(10.0, 20.0, 10))) >= 1


class TestKeyNaming:
    def test_hot_pool_sized_by_larger_count(self):
        spec = WorkloadSpec(read_keys=5, write_keys=3)
        assert len(spec.hot_keys()) == 5

    def test_hot_keys_shared_across_transactions(self):
        spec = WorkloadSpec(read_keys=2, write_keys=2)
        assert spec.hot_keys() == spec.hot_keys()

    def test_unique_keys_differ_per_tx(self):
        spec = WorkloadSpec()
        assert spec.unique_keys(1) != spec.unique_keys(2)


class TestTableFactories:
    def test_table1(self):
        spec = table1_spec()
        assert (spec.read_keys, spec.write_keys, spec.json_keys) == (1, 1, 2)
        assert spec.conflict_pct == 100.0

    def test_table2(self):
        spec = table2_spec(5, 3)
        assert (spec.read_keys, spec.write_keys) == (5, 3)

    def test_table3(self):
        spec = table3_spec(6, 6)
        assert (spec.json_keys, spec.nesting_depth) == (6, 6)

    def test_table4(self):
        assert table4_spec(500).rate_tps == 500.0

    def test_table5(self):
        assert table5_spec(40).conflict_pct == 40.0

    def test_scaled_and_with_crdt(self):
        spec = table1_spec().scaled(100).with_crdt(False)
        assert spec.total_transactions == 100
        assert not spec.use_crdt
        assert spec.rate_tps == 300.0
