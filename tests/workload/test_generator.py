"""Tests for deterministic workload generation."""

import json

from repro.workload.generator import (
    expected_conflicting,
    generate_plan,
    keys_to_populate,
)
from repro.workload.spec import WorkloadSpec


class TestDeterminism:
    def test_same_seed_same_plan(self):
        spec = WorkloadSpec(total_transactions=50, conflict_pct=40.0, seed=3)
        assert generate_plan(spec) == generate_plan(spec)

    def test_different_seed_different_payloads(self):
        a = generate_plan(WorkloadSpec(total_transactions=20, seed=1))
        b = generate_plan(WorkloadSpec(total_transactions=20, seed=2))
        assert [t.payload for t in a] != [t.payload for t in b]


class TestShape:
    def test_submit_times_follow_rate(self):
        spec = WorkloadSpec(total_transactions=10, rate_tps=100.0)
        plan = generate_plan(spec)
        assert plan[0].submit_time == 0.0
        assert plan[9].submit_time == 9 / 100.0

    def test_clients_round_robin(self):
        plan = generate_plan(WorkloadSpec(total_transactions=8, num_clients=4))
        assert [t.client for t in plan] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_all_conflicting_at_100_percent(self):
        plan = generate_plan(WorkloadSpec(total_transactions=30, conflict_pct=100.0))
        assert expected_conflicting(plan) == 30
        hot = plan[0].read_keys
        assert all(t.read_keys == hot for t in plan)

    def test_none_conflicting_at_0_percent(self):
        plan = generate_plan(WorkloadSpec(total_transactions=30, conflict_pct=0.0))
        assert expected_conflicting(plan) == 0
        assert len({t.read_keys for t in plan}) == 30

    def test_conflict_fraction_statistical(self):
        plan = generate_plan(
            WorkloadSpec(total_transactions=2000, conflict_pct=40.0, seed=5)
        )
        fraction = expected_conflicting(plan) / len(plan)
        assert 0.35 < fraction < 0.45

    def test_read_write_key_counts(self):
        plan = generate_plan(
            WorkloadSpec(total_transactions=5, read_keys=5, write_keys=3)
        )
        assert all(len(t.read_keys) == 5 and len(t.write_keys) == 3 for t in plan)

    def test_nested_payloads_selected_by_depth(self):
        plan = generate_plan(
            WorkloadSpec(total_transactions=2, json_keys=3, nesting_depth=3)
        )
        assert set(plan[0].payload) == {
            "temperatureRoom1", "temperatureRoom2", "temperatureRoom3",
        }

    def test_flat_payload_listing3_shape(self):
        plan = generate_plan(WorkloadSpec(total_transactions=1))
        assert set(plan[0].payload) == {"deviceID", "tempReadings"}

    def test_accumulate_switches_function(self):
        plan = generate_plan(WorkloadSpec(total_transactions=1, accumulate=True))
        assert plan[0].function == "record_accumulate"

    def test_payload_sequence_unique_per_tx(self):
        plan = generate_plan(WorkloadSpec(total_transactions=50))
        sequences = {t.payload["tempReadings"][0]["ts"] for t in plan}
        assert len(sequences) == 50


class TestPopulateKeys:
    def test_hot_workload_needs_only_hot_keys(self):
        spec = WorkloadSpec(total_transactions=100, conflict_pct=100.0)
        plan = generate_plan(spec)
        assert keys_to_populate(spec, plan) == spec.hot_keys()[:1]

    def test_unique_workload_needs_all_keys(self):
        spec = WorkloadSpec(total_transactions=20, conflict_pct=0.0)
        plan = generate_plan(spec)
        assert len(keys_to_populate(spec, plan)) == 20

    def test_call_argument_roundtrip(self):
        plan = generate_plan(WorkloadSpec(total_transactions=1))
        call = json.loads(plan[0].call_argument())
        assert call["read_keys"] == list(plan[0].read_keys)
        assert call["crdt"] is True
