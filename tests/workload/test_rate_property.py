"""Property tests: rate controllers and the closed-loop in-flight cap.

The determinism contract of :mod:`repro.workload.rate`: for fixed
constructor arguments every controller emits the same monotonically
non-decreasing, non-negative schedule on every call — and closed-loop
clients never exceed their declared in-flight cap, whatever the cap,
batch size, and transaction count.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import WorkloadError
from repro.workload.rate import FixedRate, LinearRamp, MaxRate, PoissonArrival

rates = st.floats(min_value=0.5, max_value=5000.0, allow_nan=False)
counts = st.integers(min_value=0, max_value=500)


def controllers() -> st.SearchStrategy:
    return st.one_of(
        st.builds(FixedRate, tps=rates),
        st.builds(PoissonArrival, tps=rates, seed=st.integers(0, 2**32)),
        st.builds(
            LinearRamp,
            start_tps=rates,
            end_tps=rates,
            ramp_transactions=st.integers(1, 400),
        ),
    )


class TestOpenLoopSchedules:
    @given(controller=controllers(), count=counts)
    def test_times_monotone_non_decreasing_and_non_negative(self, controller, count):
        times = controller.submit_times(count)
        assert len(times) == count
        assert all(t >= 0.0 for t in times)
        assert all(a <= b for a, b in zip(times, times[1:]))

    @given(controller=controllers(), count=counts)
    def test_seed_deterministic(self, controller, count):
        assert controller.submit_times(count) == controller.submit_times(count)

    @given(controller=controllers(), count=st.integers(1, 200))
    def test_prefixes_consistent(self, controller, count):
        """Drawing fewer transactions never changes the earlier instants."""

        longer = controller.submit_times(count)
        shorter = controller.submit_times(count // 2)
        assert longer[: len(shorter)] == shorter

    @given(
        controller=controllers(),
        duration=st.floats(min_value=0.01, max_value=2.0, allow_nan=False),
    )
    def test_times_until_bounded_and_prefix_consistent(self, controller, duration):
        times = controller.times_until(duration)
        assert all(0.0 <= t <= duration for t in times)
        assert times == controller.submit_times(len(times))

    def test_fixed_rate_matches_historical_schedule(self):
        """The seed driver's ``index / rate_tps``, byte for byte."""

        tps = 300.0
        assert FixedRate(tps).submit_times(100) == [i / tps for i in range(100)]

    def test_poisson_seeds_decouple(self):
        a = PoissonArrival(200.0, seed=1).submit_times(50)
        b = PoissonArrival(200.0, seed=2).submit_times(50)
        assert a != b

    def test_ramp_accelerates(self):
        ramp = LinearRamp(10.0, 1000.0, 100)
        times = ramp.submit_times(100)
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert gaps[0] > gaps[-1]

    @pytest.mark.parametrize("bad", (0.0, -1.0))
    def test_invalid_rates_rejected(self, bad):
        with pytest.raises(WorkloadError):
            FixedRate(bad)
        with pytest.raises(WorkloadError):
            PoissonArrival(bad)
        with pytest.raises(WorkloadError):
            LinearRamp(bad, 10.0, 5)


class TestMaxRateController:
    def test_has_no_schedule(self):
        with pytest.raises(WorkloadError, match="closed-loop"):
            MaxRate().submit_times(5)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            MaxRate(in_flight=0)
        with pytest.raises(WorkloadError):
            MaxRate(in_flight=4, batch_size=0)
        with pytest.raises(WorkloadError):
            MaxRate(in_flight=4, batch_size=8)


class TestClosedLoopCapProperty:
    @settings(max_examples=8, deadline=None)
    @given(
        in_flight=st.integers(min_value=1, max_value=24),
        batch_fraction=st.integers(min_value=1, max_value=24),
        transactions=st.integers(min_value=5, max_value=60),
    )
    def test_never_exceeds_in_flight_cap(self, in_flight, batch_fraction, transactions):
        from repro.common.config import fabriccrdt_config
        from repro.workload.clients import ClosedLoopClient
        from repro.workload.runner import Benchmark, Round
        from repro.workload.spec import WorkloadSpec

        batch_size = min(batch_fraction, in_flight)
        client = ClosedLoopClient()
        spec = WorkloadSpec(total_transactions=transactions, rate_tps=300.0)
        result = (
            Benchmark(
                [
                    Round(
                        spec,
                        fabriccrdt_config(8, seed=0),
                        rate=MaxRate(in_flight=in_flight, batch_size=batch_size),
                        client=client,
                    )
                ]
            )
            .run()
            .results[0]
        )
        assert result.successful == transactions
        assert client.max_in_flight_observed <= in_flight
