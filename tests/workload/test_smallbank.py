"""SmallBank mode semantics: the §6 trade-offs, made executable.

Three storage modes, three different guarantees under concurrency:

| mode       | all commit? | money conserved? | overdraft possible? |
|------------|-------------|------------------|---------------------|
| plain      | no          | yes              | no                  |
| naive-crdt | yes         | **no**           | (balances LWW)      |
| pn-counter | yes         | yes              | **yes**             |
"""

import pytest

from repro.common.types import ValidationCode
from repro.gateway import Gateway
from repro.workload.smallbank import SmallBankChaincode, total_money

from ..conftest import small_config
from repro.core.network import crdt_network, vanilla_network


def smallbank_contract(network):
    return Gateway.connect(network).get_contract("smallbank")


def bank_network(crdt_enabled=True):
    factory = crdt_network if crdt_enabled else vanilla_network
    network = factory(small_config(max_message_count=20, crdt_enabled=crdt_enabled))
    network.deploy(SmallBankChaincode())
    return network


def create_accounts(network, mode, accounts=("alice", "bob", "carol"), amount=100):
    for account in accounts:
        network.invoke(
            "smallbank", "create_account", [account, str(amount), str(amount), mode]
        )
    network.flush()
    return list(accounts)


class TestSequentialCorrectness:
    @pytest.mark.parametrize("mode", ["plain", "pn-counter"])
    def test_payment_moves_money(self, mode):
        network = bank_network()
        accounts = create_accounts(network, mode)
        network.invoke("smallbank", "send_payment", ["alice", "bob", "30", mode])
        network.flush()
        assert network.query("smallbank", "balance", ["alice"])["checking"] == 70
        assert network.query("smallbank", "balance", ["bob"])["checking"] == 130
        assert total_money(smallbank_contract(network), accounts) == 600

    @pytest.mark.parametrize("mode", ["plain", "pn-counter"])
    def test_amalgamate(self, mode):
        network = bank_network()
        create_accounts(network, mode, accounts=("alice", "bob"))
        network.invoke("smallbank", "amalgamate", ["alice", "bob", mode])
        network.flush()
        alice = network.query("smallbank", "balance", ["alice"])
        bob = network.query("smallbank", "balance", ["bob"])
        assert alice["total"] == 0
        assert bob["checking"] == 300 and bob["total"] == 400

    def test_plain_mode_rejects_overdraft_at_execution(self):
        network = bank_network()
        create_accounts(network, "plain", accounts=("alice", "bob"))
        outcome = network.invoke(
            "smallbank", "send_payment", ["alice", "bob", "1000", "plain"]
        )
        from repro.fabric.client import EndorsementRoundFailure

        assert isinstance(outcome, EndorsementRoundFailure)

    def test_unknown_mode_rejected(self):
        network = bank_network()
        from repro.fabric.client import EndorsementRoundFailure

        outcome = network.invoke(
            "smallbank", "create_account", ["zed", "1", "1", "bitcoin"]
        )
        assert isinstance(outcome, EndorsementRoundFailure)


def concurrent_payments(network, mode, payments):
    """Submit payments that all endorse against one snapshot (one block)."""

    tx_ids = [
        network.invoke("smallbank", "send_payment", [src, dst, str(amt), mode])
        for src, dst, amt in payments
    ]
    network.flush()
    return [network.status_of(tx) for tx in tx_ids]


class TestPlainModeUnderConcurrency:
    def test_conflicts_fail_but_money_is_safe(self):
        network = bank_network(crdt_enabled=True)  # FabricCRDT network, plain writes
        accounts = create_accounts(network, "plain")
        codes = concurrent_payments(
            network,
            "plain",
            [("alice", "bob", 10), ("alice", "carol", 20), ("bob", "carol", 5)],
        )
        assert ValidationCode.MVCC_READ_CONFLICT in codes  # some fail...
        assert total_money(smallbank_contract(network), accounts) == 600  # ...but money conserved


class TestNaiveCrdtModeUnderConcurrency:
    def test_all_commit_but_money_is_created_or_destroyed(self):
        network = bank_network()
        accounts = create_accounts(network, "naive-crdt")
        codes = concurrent_payments(
            network,
            "naive-crdt",
            [("alice", "bob", 10), ("alice", "carol", 20)],
        )
        assert all(code is ValidationCode.VALID for code in codes)
        # Both payments debited alice from the same 100 snapshot: one debit
        # is lost in the LWW merge while both credits stand (or vice versa).
        assert total_money(smallbank_contract(network), accounts) != 600

    def test_double_spend_succeeds(self):
        network = bank_network()
        create_accounts(network, "naive-crdt", accounts=("mallory", "a", "b"), amount=50)
        codes = concurrent_payments(
            network,
            "naive-crdt",
            [("mallory", "a", 50), ("mallory", "b", 50)],
        )
        assert all(code is ValidationCode.VALID for code in codes)
        a = network.query("smallbank", "balance", ["a"])["checking"]
        b = network.query("smallbank", "balance", ["b"])["checking"]
        assert a == 100 and b == 100  # both victims credited from 50 total


class TestPnCounterModeUnderConcurrency:
    def test_all_commit_and_money_conserved(self):
        network = bank_network()
        accounts = create_accounts(network, "pn-counter")
        codes = concurrent_payments(
            network,
            "pn-counter",
            [("alice", "bob", 10), ("alice", "carol", 20), ("bob", "carol", 5)],
        )
        assert all(code is ValidationCode.VALID for code in codes)
        assert total_money(smallbank_contract(network), accounts) == 600
        assert network.query("smallbank", "balance", ["alice"])["checking"] == 70
        assert network.query("smallbank", "balance", ["carol"])["checking"] == 125

    def test_overdraft_possible(self):
        """The price of commutativity: non-negativity cannot be enforced."""

        network = bank_network()
        create_accounts(network, "pn-counter", accounts=("alice", "b", "c"), amount=60)
        codes = concurrent_payments(
            network,
            "pn-counter",
            [("alice", "b", 50), ("alice", "c", 50)],
        )
        assert all(code is ValidationCode.VALID for code in codes)
        alice = network.query("smallbank", "balance", ["alice"])["checking"]
        assert alice == -40  # overdrawn, but globally consistent
        assert total_money(smallbank_contract(network), ["alice", "b", "c"]) == 360

    def test_peers_converge(self):
        network = bank_network()
        accounts = create_accounts(network, "pn-counter")
        concurrent_payments(
            network, "pn-counter", [("alice", "bob", 10), ("bob", "alice", 10)]
        )
        network.assert_states_converged()
        assert total_money(smallbank_contract(network), accounts) == 600
