"""Tests for the metrics collector and benchmark results."""

import pytest

from repro.common.types import ReadWriteSet, ValidationCode, WriteItem
from repro.fabric.block import GENESIS_PREVIOUS_HASH, Block, BlockMetadata, CommittedBlock
from repro.fabric.policy import EndorsementPolicy, or_policy
from repro.fabric.transaction import Proposal, TransactionEnvelope
from repro.sim import Environment
from repro.workload.metrics import MetricsCollector

POLICY = EndorsementPolicy(or_policy("Org1"))


def make_tx(nonce, submit_time=0.0):
    proposal = Proposal.create(
        "ch", "cc", "fn", (str(nonce),), "Org1.c", POLICY, nonce, submit_time=submit_time
    )
    return TransactionEnvelope(
        proposal=proposal,
        rwset=ReadWriteSet.build(writes=[WriteItem("k", b"v")]),
        endorsements=(),
    )


def committed(number, txs, codes, commit_time):
    block = Block.build(number, GENESIS_PREVIOUS_HASH, tuple(txs))
    metadata = BlockMetadata(number)
    for index, code in enumerate(codes):
        metadata.mark(index, code)
    return CommittedBlock(block, metadata, commit_time=commit_time)


class TestCollector:
    def test_done_fires_when_all_resolved(self):
        env = Environment()
        collector = MetricsCollector(env, expected=2)
        txs = [make_tx(1, 0.0), make_tx(2, 1.0)]
        collector.on_block(
            committed(0, txs, [ValidationCode.VALID, ValidationCode.MVCC_READ_CONFLICT], 5.0),
            "peer",
        )
        assert collector.done.triggered

    def test_result_metrics(self):
        env = Environment()
        collector = MetricsCollector(env, expected=2)
        txs = [make_tx(1, 0.0), make_tx(2, 1.0)]
        collector.on_block(
            committed(0, txs, [ValidationCode.VALID, ValidationCode.VALID], 5.0), "peer"
        )
        result = collector.result("label")
        assert result.successful == 2
        assert result.failed == 0
        assert result.duration_s == pytest.approx(5.0)
        assert result.throughput_tps == pytest.approx(2 / 5.0)
        assert result.avg_latency_s == pytest.approx((5.0 + 4.0) / 2)
        assert result.max_latency_s == pytest.approx(5.0)
        assert result.blocks_committed == 1
        assert result.avg_block_fill == pytest.approx(2.0)

    def test_failure_codes_histogram(self):
        env = Environment()
        collector = MetricsCollector(env, expected=2)
        txs = [make_tx(1), make_tx(2)]
        collector.on_block(
            committed(
                0,
                txs,
                [ValidationCode.MVCC_READ_CONFLICT, ValidationCode.MVCC_READ_CONFLICT],
                2.0,
            ),
            "peer",
        )
        result = collector.result("label")
        assert result.failure_codes == {"MVCC_READ_CONFLICT": 2}

    def test_duplicate_blocks_counted_once_per_tx(self):
        env = Environment()
        collector = MetricsCollector(env, expected=1)
        tx = make_tx(1)
        block = committed(0, [tx], [ValidationCode.VALID], 2.0)
        collector.on_block(block, "peer")
        collector.on_block(block, "peer-second-view")
        assert len(collector.statuses) == 1

    def test_endorsement_failure_counts_toward_done(self):
        env = Environment()
        collector = MetricsCollector(env, expected=2)
        collector.on_endorsement_failure("txA", now=1.0)
        collector.on_block(committed(0, [make_tx(1)], [ValidationCode.VALID], 2.0), "p")
        assert collector.done.triggered
        result = collector.result("label")
        assert result.endorsement_failures == 1
        assert result.failed == 1

    def test_expected_must_be_positive(self):
        with pytest.raises(ValueError):
            MetricsCollector(Environment(), expected=0)

    def test_row_shape(self):
        env = Environment()
        collector = MetricsCollector(env, expected=1)
        collector.on_block(committed(0, [make_tx(1)], [ValidationCode.VALID], 4.0), "p")
        row = collector.result("sys-25").row()
        assert set(row) == {"label", "throughput_tps", "avg_latency_s", "successful"}
