"""Tests for the IoT chaincode functions and payload builders."""

import json

import pytest

from repro.common.errors import ChaincodeError
from repro.common.serialization import to_bytes
from repro.common.types import Version
from repro.fabric.chaincode import ShimStub
from repro.fabric.statedb import StateDB
from repro.workload.iot import (
    IoTChaincode,
    encode_call,
    initial_device_state,
    nested_payload,
    reading_payload,
)


@pytest.fixture
def state():
    db = StateDB()
    db.apply_write("dev", to_bytes(initial_device_state("dev")), Version(0, 0))
    return db


def invoke(state, function, call):
    stub = ShimStub(state, "tx1")
    result = IoTChaincode().invoke(stub, function, (json.dumps(call),))
    return stub.build_rwset(), result


class TestRecord:
    def test_reads_and_writes_configured_keys(self, state):
        call = {
            "read_keys": ["dev"],
            "write_keys": ["dev"],
            "payload": reading_payload("dev", 20, 0),
            "crdt": True,
        }
        rwset, result = invoke(state, "record", call)
        assert rwset.read_keys == ("dev",)
        assert rwset.write_keys == ("dev",)
        assert rwset.writes[0].is_crdt
        assert result == {"written": ["dev"]}

    def test_device_id_rewritten_per_key(self, state):
        call = {
            "read_keys": [],
            "write_keys": ["a", "b"],
            "payload": reading_payload("template", 20, 0),
            "crdt": False,
        }
        rwset, _ = invoke(state, "record", call)
        from repro.common.serialization import from_bytes

        values = {w.key: from_bytes(w.value) for w in rwset.writes}
        assert values["a"]["deviceID"] == "a"
        assert values["b"]["deviceID"] == "b"

    def test_malformed_argument_rejected(self, state):
        stub = ShimStub(state, "tx1")
        with pytest.raises(ChaincodeError):
            IoTChaincode().invoke(stub, "record", ("{not json",))
        with pytest.raises(ChaincodeError):
            IoTChaincode().invoke(stub, "record", (json.dumps(["list"]),))


class TestRecordAccumulate:
    def test_appends_to_read_state(self, state):
        state.apply_write(
            "dev",
            to_bytes({"deviceID": "dev", "tempReadings": [{"temperature": "9", "ts": "x"}]}),
            Version(1, 0),
        )
        call = {
            "read_keys": ["dev"],
            "write_keys": ["dev"],
            "payload": reading_payload("dev", 20, 1),
            "crdt": True,
        }
        rwset, _ = invoke(state, "record_accumulate", call)
        from repro.common.serialization import from_bytes

        written = from_bytes(rwset.writes[0].value)
        assert [r["temperature"] for r in written["tempReadings"]] == ["9", "20"]

    def test_missing_key_starts_fresh(self, state):
        call = {
            "read_keys": ["ghost"],
            "write_keys": ["ghost"],
            "payload": reading_payload("ghost", 21, 0),
            "crdt": False,
        }
        rwset, _ = invoke(state, "record_accumulate", call)
        from repro.common.serialization import from_bytes

        written = from_bytes(rwset.writes[0].value)
        assert written["deviceID"] == "ghost"
        assert len(written["tempReadings"]) == 1


class TestPopulateAndRead:
    def test_populate_writes_initial_state(self, state):
        rwset, result = invoke(state, "populate", {"keys": ["x", "y"]})
        assert result == {"populated": 2}
        assert rwset.write_keys == ("x", "y")

    def test_read_device(self, state):
        _, result = invoke(state, "read_device", {"key": "dev"})
        assert result == initial_device_state("dev")


class TestPayloadBuilders:
    def test_reading_payload_shape(self):
        payload = reading_payload("d", 25, 7)
        assert payload == {
            "deviceID": "d",
            "tempReadings": [{"temperature": "25", "ts": "7"}],
        }

    def test_nested_payload_depth(self):
        payload = nested_payload(2, 4, 10, 0)
        node = payload["temperatureRoom1"]
        depth = 1
        while isinstance(node, list):
            node = list(node[0].values())[0]
            depth += 1
        assert depth == 4
        assert node == "10#0"

    def test_nested_payload_validation(self):
        with pytest.raises(ValueError):
            nested_payload(0, 3, 10, 0)
        with pytest.raises(ValueError):
            nested_payload(2, 0, 10, 0)

    def test_encode_call_sorted_deterministic(self):
        a = encode_call(["r"], ["w"], {"p": 1}, crdt=True)
        b = encode_call(["r"], ["w"], {"p": 1}, crdt=True)
        assert a == b
