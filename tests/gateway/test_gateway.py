"""Gateway API tests: one submit/evaluate surface over both transports.

Every scenario here runs the *same* contract code against the synchronous
``LocalNetwork`` and the discrete-event ``SimulatedNetwork`` — asserting the
transport-agnosticism the Gateway exists for.
"""

import json

import pytest

from repro.common.config import NetworkConfig, OrdererConfig, TopologyConfig
from repro.common.errors import EndorsementError
from repro.common.types import ValidationCode
from repro.core.network import crdt_network, crdt_peer_factory, vanilla_network
from repro.fabric.costmodel import zero_latency_model
from repro.fabric.network import SimulatedNetwork
from repro.gateway import (
    Contract,
    EndorseError,
    Gateway,
    GatewayError,
    MVCCConflictError,
    SubmittedTransaction,
)
from repro.sim import Environment
from repro.workload.iot import IoTChaincode, encode_call, reading_payload

from ..conftest import small_config


def record_call(key: str, temperature: int, sequence: int, crdt: bool = False) -> str:
    return encode_call(
        [key], [key], reading_payload(key, temperature, sequence), crdt=crdt
    )


def sync_contract(crdt: bool = False, max_message_count: int = 10) -> Contract:
    build = crdt_network if crdt else vanilla_network
    network = build(small_config(max_message_count=max_message_count, crdt_enabled=crdt))
    network.deploy(IoTChaincode())
    return Gateway.connect(network).get_contract("iot")


def des_contract(crdt: bool = False, max_message_count: int = 10) -> Contract:
    env = Environment()
    config = NetworkConfig(
        topology=TopologyConfig(num_orgs=3, peers_per_org=2),
        orderer=OrdererConfig(max_message_count=max_message_count, batch_timeout_s=1.0),
        crdt_enabled=crdt,
    )
    network = SimulatedNetwork(
        env,
        config,
        cost=zero_latency_model(),
        peer_factory=crdt_peer_factory(config.crdt) if crdt else None,
    )
    network.deploy(IoTChaincode())
    return Gateway.connect(network).get_contract("iot")


CONTRACT_BUILDERS = [sync_contract, des_contract]
BUILDER_IDS = ["sync", "des"]


class TestSubmitHappyPath:
    @pytest.mark.parametrize("build", CONTRACT_BUILDERS, ids=BUILDER_IDS)
    def test_submit_commits_and_returns_result(self, build):
        contract = build()
        result = contract.submit("populate", json.dumps({"keys": ["d1"]}))
        assert result == {"populated": 1}
        result = contract.submit("record", record_call("d1", 21, 0))
        assert result == {"written": ["d1"]}

    @pytest.mark.parametrize("build", CONTRACT_BUILDERS, ids=BUILDER_IDS)
    def test_submit_async_resolves_to_valid_status(self, build):
        contract = build()
        contract.submit("populate", json.dumps({"keys": ["d1"]}))
        tx = contract.submit_async("record", record_call("d1", 21, 0))
        assert isinstance(tx, SubmittedTransaction)
        status = tx.commit_status()
        assert status.code is ValidationCode.VALID
        assert status.tx_id == tx.tx_id
        assert status.block_num is not None
        assert tx.done

    @pytest.mark.parametrize("build", CONTRACT_BUILDERS, ids=BUILDER_IDS)
    def test_concurrent_submissions_share_a_block(self, build):
        contract = build(crdt=True)
        contract.submit("populate", json.dumps({"keys": ["hot"]}))
        txs = [
            contract.submit_async("record", record_call("hot", 20 + i, i, crdt=True))
            for i in range(4)
        ]
        statuses = [tx.commit_status() for tx in txs]
        assert all(s.code is ValidationCode.VALID for s in statuses)
        assert len({s.block_num for s in statuses}) == 1  # one shared block

    def test_commit_status_is_idempotent(self):
        contract = sync_contract()
        contract.submit("populate", json.dumps({"keys": ["d1"]}))
        tx = contract.submit_async("record", record_call("d1", 20, 0))
        first = tx.commit_status()
        second = tx.commit_status()
        assert first == second


class TestEvaluate:
    @pytest.mark.parametrize("build", CONTRACT_BUILDERS, ids=BUILDER_IDS)
    def test_evaluate_reads_committed_state(self, build):
        contract = build()
        contract.submit("populate", json.dumps({"keys": ["d1"]}))
        contract.submit("record", record_call("d1", 23, 0))
        state = contract.evaluate("read_device", json.dumps({"key": "d1"}))
        assert state["deviceID"] == "d1"
        assert [r["temperature"] for r in state["tempReadings"]] == ["23"]

    def test_evaluate_is_never_ordered(self):
        network = vanilla_network(small_config(max_message_count=10))
        network.deploy(IoTChaincode())
        contract = Gateway.connect(network).get_contract("iot")
        contract.submit("populate", json.dumps({"keys": ["d1"]}))
        height_before = network.ledger_of().height
        contract.evaluate("read_device", json.dumps({"key": "d1"}))
        network.flush()
        assert network.ledger_of().height == height_before

    def test_read_only_submit_is_not_ordered(self):
        # A submit whose rwset turns out read-only follows the paper's §3
        # semantics: endorsed, returned, never ordered.
        network = vanilla_network(small_config(max_message_count=10))
        network.deploy(IoTChaincode())
        contract = Gateway.connect(network).get_contract("iot")
        contract.submit("populate", json.dumps({"keys": ["d1"]}))
        height_before = network.ledger_of().height
        tx = contract.submit_async("read_device", json.dumps({"key": "d1"}))
        assert tx.ordered is False
        status = tx.commit_status()
        assert status.code is ValidationCode.VALID
        network.flush()
        assert network.ledger_of().height == height_before

    def test_read_only_submit_not_ordered_on_des_either(self):
        # Transport agnosticism: the DES flow also skips ordering for
        # read-only transactions, so ledger heights match the sync network.
        contract = des_contract()
        contract.submit("populate", json.dumps({"keys": ["d1"]}))
        network = contract.transport
        height_before = network.channel.ledger_of().height
        tx = contract.submit_async("read_device", json.dumps({"key": "d1"}))
        status = tx.commit_status()
        assert status.code is ValidationCode.VALID
        assert tx.ordered is False
        assert tx.result() == {"deviceID": "d1", "tempReadings": []}
        assert network.channel.ledger_of().height == height_before


class TestErrorPaths:
    @pytest.mark.parametrize("build", CONTRACT_BUILDERS, ids=BUILDER_IDS)
    def test_endorsement_failure_raises_endorse_error(self, build):
        contract = build()
        with pytest.raises(EndorseError) as excinfo:
            contract.submit("record", "this is not the json the chaincode wants")
        assert excinfo.value.tx_id
        assert excinfo.value.failure.reason
        # Compatibility: EndorseError is still an EndorsementError.
        assert isinstance(excinfo.value, EndorsementError)

    @pytest.mark.parametrize("build", CONTRACT_BUILDERS, ids=BUILDER_IDS)
    def test_endorsement_failure_surfaces_at_commit_status_not_submit(self, build):
        # Identical control flow on both transports: submit_async always
        # returns a handle; the failure is raised when it is resolved.
        contract = build()
        tx = contract.submit_async("record", "not json either")
        with pytest.raises(EndorseError):
            tx.commit_status()
        with pytest.raises(EndorseError):
            tx.result()
        assert tx.done

    @pytest.mark.parametrize("build", CONTRACT_BUILDERS, ids=BUILDER_IDS)
    def test_mvcc_conflict_raises_typed_commit_error(self, build):
        contract = build(max_message_count=2)
        contract.submit("populate", json.dumps({"keys": ["hot"]}))
        # Two conflicting read-modify-writes endorsed against the same
        # snapshot; they fill the 2-tx block, the first wins, the second
        # fails MVCC validation.
        first = contract.submit_async("record", record_call("hot", 20, 0))
        with pytest.raises(MVCCConflictError) as excinfo:
            contract.submit("record", record_call("hot", 30, 1))
        assert excinfo.value.code is ValidationCode.MVCC_READ_CONFLICT
        assert excinfo.value.status is not None
        assert first.commit_status().code is ValidationCode.VALID

    @pytest.mark.parametrize("build", CONTRACT_BUILDERS, ids=BUILDER_IDS)
    def test_commit_status_reports_conflict_without_raising(self, build):
        contract = build(max_message_count=2)
        contract.submit("populate", json.dumps({"keys": ["hot"]}))
        txs = [
            contract.submit_async("record", record_call("hot", 20 + i, i))
            for i in range(2)
        ]
        codes = [tx.commit_status().code for tx in txs]
        assert codes == [
            ValidationCode.VALID,
            ValidationCode.MVCC_READ_CONFLICT,
        ]

    def test_undeployed_chaincode_rejected(self):
        network = vanilla_network(small_config())
        gateway = Gateway.connect(network)
        from repro.common.errors import FabricError

        with pytest.raises(FabricError):
            gateway.get_contract("ghostcc").submit("fn")

    def test_connect_rejects_non_networks(self):
        with pytest.raises(GatewayError):
            Gateway.connect(object())


class TestFactoryEquivalence:
    """Vanilla and CRDT peers behave identically through the same Contract
    on a conflict-free workload — the paper's compatibility requirement."""

    @pytest.mark.parametrize("build", CONTRACT_BUILDERS, ids=BUILDER_IDS)
    def test_conflict_free_workload_identical(self, build):
        outcomes = {}
        for crdt in (False, True):
            contract = build(crdt=crdt)
            contract.submit("populate", json.dumps({"keys": ["a", "b", "c"]}))
            txs = [
                contract.submit_async(
                    "record", record_call(key, 20 + i, i, crdt=crdt)
                )
                for i, key in enumerate(["a", "b", "c"])
            ]
            statuses = [tx.commit_status() for tx in txs]
            reads = {
                key: contract.evaluate("read_device", json.dumps({"key": key}))
                for key in ["a", "b", "c"]
            }
            outcomes[crdt] = ([s.code for s in statuses], reads)
        vanilla_codes, vanilla_reads = outcomes[False]
        crdt_codes, crdt_reads = outcomes[True]
        assert vanilla_codes == crdt_codes == [ValidationCode.VALID] * 3
        assert vanilla_reads == crdt_reads

    def test_conflicting_workload_diverges_only_in_validation(self):
        # Same contract code; only the peer factory differs.  Vanilla fails
        # the conflicting transactions, CRDT merges them — the entire
        # difference between the systems is visible as commit statuses.
        results = {}
        for crdt in (False, True):
            contract = sync_contract(crdt=crdt)
            contract.submit("populate", json.dumps({"keys": ["hot"]}))
            txs = [
                contract.submit_async("record", record_call("hot", 20 + i, i, crdt=crdt))
                for i in range(3)
            ]
            results[crdt] = [tx.commit_status().succeeded for tx in txs]
        assert results[False] == [True, False, False]
        assert results[True] == [True, True, True]


class TestChannelRuntimeSharing:
    def test_front_ends_share_channel_wiring(self):
        """Both front-ends are shells over the same Channel runtime."""

        sync_net = vanilla_network(small_config())
        env = Environment()
        des_net = SimulatedNetwork(env, small_config(), cost=zero_latency_model())
        assert type(sync_net.channel) is type(des_net.channel)
        for channel in (sync_net.channel, des_net.channel):
            assert len(channel.peers) == 6  # 3 orgs x 2 peers
            assert len(channel.clients) == 4
            assert channel.name == channel.config.topology.channel

    def test_gateway_repr_names_transport(self):
        network = vanilla_network(small_config())
        gateway = Gateway.connect(network)
        assert "SyncTransport" in repr(gateway)
