"""Tests for Contract.submit_batch — coalesced submission on both transports."""

import json

import pytest

from repro import Gateway, crdt_network, fabriccrdt_config
from repro.common.config import NetworkConfig, OrdererConfig, TopologyConfig
from repro.core.network import crdt_peer_factory
from repro.fabric.network import SimulatedNetwork
from repro.gateway.errors import EndorseError
from repro.sim import Environment
from repro.workload.iot import IOT_CHAINCODE_NAME, IoTChaincode, encode_call, reading_payload


def _calls(count, key="device-1"):
    return [
        (encode_call([key], [key], reading_payload(key, 20 + i, i), crdt=True),)
        for i in range(count)
    ]


def _populate(contract, keys=("device-1",)):
    contract.submit("populate", json.dumps({"keys": list(keys)}))


def _des_network(block_size=25):
    config = NetworkConfig(
        topology=TopologyConfig(num_orgs=1, peers_per_org=1),
        orderer=OrdererConfig(max_message_count=block_size),
        crdt_enabled=True,
    )
    env = Environment()
    return SimulatedNetwork(
        env, config, peer_factory=crdt_peer_factory(config.crdt)
    )


class TestSyncTransportBatch:
    def test_batch_commits_every_transaction(self):
        network = crdt_network(fabriccrdt_config(max_message_count=25))
        network.deploy(IoTChaincode())
        contract = Gateway.connect(network).get_contract(IOT_CHAINCODE_NAME)
        _populate(contract)
        txs = contract.submit_batch("record", _calls(10))
        assert len(txs) == 10
        statuses = [tx.commit_status() for tx in txs]
        assert all(status.succeeded for status in statuses)

    def test_empty_batch(self):
        network = crdt_network(fabriccrdt_config())
        network.deploy(IoTChaincode())
        contract = Gateway.connect(network).get_contract(IOT_CHAINCODE_NAME)
        assert contract.submit_batch("record", []) == []


class TestDESTransportBatch:
    def test_batch_commits_and_returns_results(self):
        network = _des_network()
        network.deploy(IoTChaincode())
        contract = Gateway.connect(network).get_contract(IOT_CHAINCODE_NAME)
        network.bootstrap(
            IOT_CHAINCODE_NAME, "populate", [(json.dumps({"keys": ["device-1"]}),)]
        )
        txs = contract.submit_batch("record", _calls(10))
        assert len(txs) == 10
        statuses = [tx.commit_status() for tx in txs]
        assert all(status.succeeded for status in statuses)
        assert all(tx.result() is not None for tx in txs)

    def test_batch_coalesces_into_one_block(self):
        """The whole burst rides one envelope dispatch: with room in the
        block, every transaction of the batch lands in the same block."""

        network = _des_network(block_size=25)
        network.deploy(IoTChaincode())
        contract = Gateway.connect(network).get_contract(IOT_CHAINCODE_NAME)
        network.bootstrap(
            IOT_CHAINCODE_NAME, "populate", [(json.dumps({"keys": ["device-1"]}),)]
        )
        txs = contract.submit_batch("record", _calls(20))
        blocks = {tx.commit_status().block_num for tx in txs}
        assert blocks == {1}

    def test_batch_equals_plan_of_singletons_semantically(self):
        """Same writes commit whether submitted as a batch or one by one.

        Arrival order differs (singleton flows draw independent latencies;
        the batch rides one draw), so the merged reading *list* may be
        permuted — the committed *set* of readings must be identical.
        """

        def run(batched):
            network = _des_network()
            network.deploy(IoTChaincode())
            contract = Gateway.connect(network).get_contract(IOT_CHAINCODE_NAME)
            network.bootstrap(
                IOT_CHAINCODE_NAME, "populate", [(json.dumps({"keys": ["device-1"]}),)]
            )
            if batched:
                txs = contract.submit_batch("record", _calls(8))
            else:
                txs = [contract.submit_async("record", call) for (call,) in _calls(8)]
            assert all(tx.commit_status().succeeded for tx in txs)
            state = contract.evaluate("read_device", json.dumps({"key": "device-1"}))
            readings = sorted(
                (reading["ts"], reading["temperature"])
                for reading in state["tempReadings"]
            )
            return state["deviceID"], readings

        assert run(True) == run(False)

    def test_endorsement_failure_surfaces_per_transaction(self):
        network = _des_network()
        network.deploy(IoTChaincode())
        contract = Gateway.connect(network).get_contract(IOT_CHAINCODE_NAME)
        failures = []
        good_call = _calls(1)[0]
        bad_call = ("this is not json",)
        txs = contract.submit_batch(
            "record",
            [good_call, bad_call],
            on_endorsement_failure=lambda tx_id, now: failures.append(tx_id),
        )
        # Drive the simulation: the good transaction commits...
        assert txs[0].commit_status().succeeded
        # ...the bad one raises EndorseError, and the hook saw exactly it.
        with pytest.raises(EndorseError):
            txs[1].commit_status()
        assert failures == [txs[1].tx_id]

    def test_batch_members_report_function_metadata(self):
        network = _des_network()
        network.deploy(IoTChaincode())
        contract = Gateway.connect(network).get_contract(IOT_CHAINCODE_NAME)
        txs = contract.submit_batch("record", _calls(2))
        assert all(tx.chaincode == IOT_CHAINCODE_NAME for tx in txs)
        assert all(tx.function == "record" for tx in txs)
