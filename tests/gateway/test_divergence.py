"""The channel's fingerprint-based state-divergence check.

``world_states_converged`` used to materialize every peer's full
``snapshot_versions()`` dict per comparison (O(peers × keys) per call); it
now compares the stores' incremental content fingerprints.  These tests pin
the property that matters: an injected divergent write — value, version, or
extra/missing key — is still detected, on both backends.
"""

import json

import pytest

from repro.common.config import fabriccrdt_config
from repro.common.errors import FabricError
from repro.common.serialization import to_bytes
from repro.common.types import Version
from repro.core.network import crdt_network
from repro.gateway import Gateway
from repro.workload.iot import IOT_CHAINCODE_NAME, IoTChaincode


@pytest.fixture(params=["memory", "sqlite"])
def network(request):
    config = fabriccrdt_config(400, state_backend=request.param)
    built = crdt_network(config)
    built.deploy(IoTChaincode())
    contract = Gateway.connect(built).get_contract(IOT_CHAINCODE_NAME)
    contract.submit_async("populate", json.dumps({"keys": ["device-1", "device-2"]}))
    built.flush()
    return built


class TestDivergenceDetection:
    def test_converged_after_identical_commits(self, network):
        assert network.world_states_converged()
        network.assert_states_converged()

    def test_divergent_value_detected(self, network):
        straggler = network.peers[-1]
        version = straggler.ledger.state.get_version("device-1")
        straggler.ledger.state.apply_write("device-1", to_bytes({"evil": True}), version)
        assert not network.world_states_converged()
        with pytest.raises(FabricError):
            network.assert_states_converged()

    def test_divergent_version_detected(self, network):
        straggler = network.peers[-1]
        value = straggler.ledger.state.get_value("device-1")
        straggler.ledger.state.apply_write("device-1", value, Version(99, 0))
        assert not network.world_states_converged()

    def test_extra_key_detected(self, network):
        straggler = network.peers[-1]
        straggler.ledger.state.apply_write("ghost", to_bytes({}), Version(1, 0))
        assert not network.world_states_converged()

    def test_missing_key_detected(self, network):
        straggler = network.peers[-1]
        straggler.ledger.state.apply_write("device-2", b"", Version(1, 0), is_delete=True)
        assert not network.world_states_converged()

    def test_check_does_not_materialize_snapshots(self, network, monkeypatch):
        for peer in network.peers:

            def boom(*args, **kwargs):  # pragma: no cover - must never run
                raise AssertionError("divergence check materialized a snapshot")

            monkeypatch.setattr(peer.ledger.state, "snapshot_versions", boom)
        assert network.world_states_converged()
