"""Tests for the Gateway API."""
