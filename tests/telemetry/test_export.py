"""Exporters: JSONL round-trips and the Prometheus text renderer."""

import json

from repro.telemetry import MetricsRegistry, Span, merge_snapshots
from repro.telemetry.export import (
    read_metrics_jsonl,
    read_spans_jsonl,
    render_prometheus,
    render_prometheus_nodes,
    write_metrics_jsonl,
    write_spans_jsonl,
)


def sample_spans():
    return [
        Span("tx1", "submit", "tx1:submit", node="client", start=0.0, end=1.0),
        Span(
            "tx1",
            "endorse",
            "tx1:endorse:p0",
            parent_id="tx1:submit",
            node="p0",
            start=0.1,
            end=0.2,
            attrs={"ok": True},
        ),
    ]


def sample_registry():
    registry = MetricsRegistry()
    registry.counter("repro_txs_total", "transactions").inc(3, peer="p0")
    registry.gauge("repro_pending").set(2)
    registry.histogram("repro_latency_seconds", buckets=(0.1, 1.0)).observe(0.5)
    return registry


class TestJsonl:
    def test_spans_round_trip_through_nested_path(self, tmp_path):
        path = tmp_path / "out" / "deep" / "spans.jsonl"
        written = write_spans_jsonl(path, sample_spans())
        assert written == path and path.exists()
        assert read_spans_jsonl(path) == sample_spans()

    def test_span_lines_are_one_json_object_each(self, tmp_path):
        path = write_spans_jsonl(tmp_path / "spans.jsonl", sample_spans())
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["span_id"] == "tx1:submit"

    def test_metrics_round_trip_node_keyed(self, tmp_path):
        snapshots = {"p0": sample_registry().snapshot(), "orderer": {"metrics": []}}
        path = write_metrics_jsonl(tmp_path / "out" / "metrics.jsonl", snapshots)
        assert read_metrics_jsonl(path) == snapshots

    def test_metrics_lines_sorted_by_node(self, tmp_path):
        path = write_metrics_jsonl(
            tmp_path / "metrics.jsonl",
            {"zeta": {"metrics": []}, "alpha": {"metrics": []}},
        )
        nodes = [json.loads(line)["node"] for line in path.read_text().splitlines()]
        assert nodes == ["alpha", "zeta"]


class TestPrometheus:
    def test_counter_and_gauge_lines(self):
        page = render_prometheus(sample_registry().snapshot())
        assert "# TYPE repro_txs_total counter" in page
        assert 'repro_txs_total{peer="p0"} 3' in page
        assert "# TYPE repro_pending gauge" in page
        assert "repro_pending 2" in page

    def test_histogram_buckets_are_cumulative_with_inf(self):
        page = render_prometheus(sample_registry().snapshot())
        assert 'repro_latency_seconds_bucket{le="0.1"} 0' in page
        assert 'repro_latency_seconds_bucket{le="1"} 1' in page
        assert 'repro_latency_seconds_bucket{le="+Inf"} 1' in page
        assert "repro_latency_seconds_sum 0.5" in page
        assert "repro_latency_seconds_count 1" in page

    def test_help_line_rendered_when_present(self):
        page = render_prometheus(sample_registry().snapshot())
        assert "# HELP repro_txs_total transactions" in page

    def test_extra_labels_reach_every_sample(self):
        page = render_prometheus(
            sample_registry().snapshot(), extra_labels={"node": "p0"}
        )
        assert 'repro_txs_total{node="p0",peer="p0"} 3' in page
        assert 'repro_pending{node="p0"} 2' in page

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(reason='say "hi"\n')
        page = render_prometheus(registry.snapshot())
        assert 'c{reason="say \\"hi\\"\\n"} 1' in page

    def test_empty_snapshot_renders_empty_page(self):
        assert render_prometheus({"metrics": []}) == ""

    def test_nodes_page_is_node_labelled_and_sorted(self):
        page = render_prometheus_nodes(
            {"p1": sample_registry().snapshot(), "p0": sample_registry().snapshot()}
        )
        p0 = page.index('node="p0"')
        p1 = page.index('node="p1"')
        assert p0 < p1

    def test_merged_page_equals_per_event_registry(self):
        merged = merge_snapshots(
            [sample_registry().snapshot(), sample_registry().snapshot()]
        )
        page = render_prometheus(merged)
        assert 'repro_txs_total{peer="p0"} 6' in page
        assert "repro_latency_seconds_count 2" in page
