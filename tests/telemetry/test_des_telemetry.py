"""DES integration: lifecycle completeness and the non-perturbation proof.

A telemetry-enabled benchmark round must record every lifecycle phase of
every transaction on the *simulation* clock, populate the node metric
families, and — the load-bearing guarantee — leave the benchmark results
byte-identical to a telemetry-off run of the same seed.
"""

import json

import pytest

from repro.common.config import fabriccrdt_config
from repro.telemetry import PHASES, Span, complete_traces, phases_by_trace
from repro.workload.runner import Benchmark, Round
from repro.workload.spec import WorkloadSpec

TOTAL_TXS = 20


def run_benchmark(telemetry: bool):
    spec = WorkloadSpec(total_transactions=TOTAL_TXS, rate_tps=200.0, seed=7)
    rounds = [Round(spec, fabriccrdt_config(max_message_count=5))]
    return Benchmark(rounds=rounds, telemetry=telemetry).run()


@pytest.fixture(scope="module")
def telemetry_report():
    return run_benchmark(telemetry=True)


@pytest.fixture(scope="module")
def entry(telemetry_report):
    [entry] = telemetry_report.telemetry
    return entry


def test_report_carries_one_telemetry_entry_per_round(telemetry_report, entry):
    assert set(entry) == {"label", "metrics", "spans"}
    assert entry["label"] == telemetry_report.results[0].label


def test_every_transaction_has_all_six_phases(entry):
    spans = [Span.from_dict(data) for data in entry["spans"]]
    complete = complete_traces(spans)
    assert len(complete) == TOTAL_TXS
    for phases in phases_by_trace(spans).values():
        assert set(PHASES) <= set(phases)


def test_spans_ride_the_simulation_clock(entry, telemetry_report):
    spans = [Span.from_dict(data) for data in entry["spans"]]
    assert spans
    # Virtual time: non-negative, well-formed intervals, within the run.
    duration = telemetry_report.results[0].duration_s
    for span in spans:
        assert 0.0 <= span.start <= span.end <= duration + 1.0


def test_node_metric_families_populated(entry):
    names = {metric["name"] for metric in entry["metrics"]["metrics"]}
    assert "repro_peer_proposals_total" in names
    assert "repro_orderer_blocks_cut_total" in names
    assert "repro_store_batch_writes_total" in names


def test_telemetry_entry_is_json_safe(entry):
    json.dumps(entry)


def test_telemetry_does_not_perturb_the_benchmark(telemetry_report):
    bare = run_benchmark(telemetry=False)
    assert not bare.telemetry
    instrumented = dict(telemetry_report.to_dict())
    instrumented.pop("telemetry")
    assert json.dumps(instrumented, sort_keys=True) == json.dumps(
        bare.to_dict(), sort_keys=True
    )
