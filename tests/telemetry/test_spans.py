"""Spans, tracer, and the deterministic hash sampler."""

import pytest

from repro.telemetry import HashSampler, Span, Telemetry, Tracer


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


class TestSpan:
    def test_duration(self):
        span = Span("t1", "endorse", "t1:endorse:p0", start=1.0, end=1.5)
        assert span.duration == pytest.approx(0.5)

    def test_dict_round_trip(self):
        span = Span(
            trace_id="t1",
            name="order",
            span_id="t1:order",
            parent_id="t1:submit",
            node="orderer",
            start=2.0,
            end=3.0,
            attrs={"block": 4},
        )
        assert Span.from_dict(span.to_dict()) == span

    def test_from_dict_defaults_optional_fields(self):
        span = Span.from_dict({"trace_id": "t", "name": "submit", "span_id": "t:submit"})
        assert span.parent_id is None
        assert span.node == ""
        assert span.attrs == {}


class TestHashSampler:
    def test_rate_bounds_validated(self):
        with pytest.raises(ValueError):
            HashSampler(-0.1)
        with pytest.raises(ValueError):
            HashSampler(1.1)

    def test_rate_one_keeps_everything_rate_zero_nothing(self):
        ids = [f"tx{i}" for i in range(50)]
        assert all(HashSampler(1.0)(tx) for tx in ids)
        assert not any(HashSampler(0.0)(tx) for tx in ids)

    def test_deterministic_across_instances(self):
        # Every process hashing the same ID makes the same decision — the
        # property cross-process trace assembly relies on.
        a, b = HashSampler(0.5), HashSampler(0.5)
        ids = [f"tx{i}" for i in range(200)]
        assert [a(tx) for tx in ids] == [b(tx) for tx in ids]

    def test_rate_roughly_honoured(self):
        kept = sum(HashSampler(0.5)(f"tx{i}") for i in range(1000))
        assert 350 < kept < 650


class TestTracer:
    def test_span_context_manager_times_on_injected_clock(self):
        clock = FakeClock(10.0)
        tracer = Tracer(clock)
        with tracer.span("endorse", "tx1", node="p0", ok=True) as span:
            clock.now = 10.25
        assert len(tracer) == 1
        assert span.start == 10.0
        assert span.end == 10.25
        assert span.span_id == "tx1:endorse"
        assert span.attrs == {"ok": True}

    def test_unsampled_traces_are_not_recorded(self):
        tracer = Tracer(FakeClock(), sampler=lambda tx: False)
        with tracer.span("submit", "tx1"):
            pass
        assert len(tracer) == 0

    def test_max_spans_caps_retention_and_counts_drops(self):
        tracer = Tracer(FakeClock(), max_spans=2)
        for i in range(4):
            tracer.record(Span(f"t{i}", "submit", f"t{i}:submit"))
        assert len(tracer) == 2
        assert tracer.dropped == 2

    def test_by_trace_groups_and_clear_resets(self):
        tracer = Tracer(FakeClock(), max_spans=1)
        tracer.record(Span("t1", "submit", "t1:submit"))
        tracer.record(Span("t2", "submit", "t2:submit"))  # dropped (cap)
        assert set(tracer.by_trace()) == {"t1"}
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.dropped == 0


class TestTelemetry:
    def test_default_clock_is_monotonic_since_creation(self):
        telemetry = Telemetry()
        first = telemetry.now()
        assert first >= 0.0
        assert telemetry.now() >= first

    def test_bind_clock_repoints_tracer_time(self):
        telemetry = Telemetry()
        clock = FakeClock(42.0)
        telemetry.bind_clock(clock)
        assert telemetry.now() == 42.0
        with telemetry.tracer.span("submit", "tx1") as span:
            clock.now = 43.0
        assert (span.start, span.end) == (42.0, 43.0)

    def test_facade_shares_one_context(self):
        telemetry = Telemetry(sample_rate=0.0)
        assert telemetry.tracer.sampled("tx1") is False
        telemetry.metrics.counter("c").inc()
        assert "spans=0" in repr(telemetry) and "metrics=1" in repr(telemetry)
        assert telemetry.spans is telemetry.tracer.spans
