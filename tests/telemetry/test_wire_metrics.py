"""The out-of-band metrics surface of the wire layer.

Unit-level: the ``metrics_result`` reply builder and the codec's frame
counters.  The end-to-end path (live cluster answering ``metrics`` over a
socket) is exercised by the socket smoke run and ``examples/telemetry_tour``.
"""

import asyncio

from repro.net.codec import (
    encode_message,
    install_codec_metrics,
    read_message,
    uninstall_codec_metrics,
)
from repro.net.wire import MESSAGE_TYPES, metrics_result_message
from repro.telemetry import MetricsRegistry, Telemetry, record_phase


def read_one(data: bytes):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_message(reader)

    return asyncio.run(go())


class TestMetricsResultMessage:
    def test_message_types_include_the_metrics_pair(self):
        assert "metrics" in MESSAGE_TYPES
        assert "metrics_result" in MESSAGE_TYPES

    def test_disabled_node_answers_with_empty_snapshot_not_error(self):
        reply = metrics_result_message(None, "Org1.peer0", {"type": "metrics"})
        assert reply["type"] == "metrics_result"
        assert reply["node"] == "Org1.peer0"
        assert reply["enabled"] is False
        assert reply["snapshot"] == {"metrics": []}
        assert "spans" not in reply

    def test_enabled_node_ships_its_registry(self):
        telemetry = Telemetry()
        telemetry.metrics.counter("repro_peer_proposals_total").inc(2)
        reply = metrics_result_message(telemetry, "Org1.peer0", {"type": "metrics"})
        assert reply["enabled"] is True
        assert reply["snapshot"] == telemetry.metrics.snapshot()
        assert "spans" not in reply

    def test_include_spans_adds_recorded_spans(self):
        telemetry = Telemetry()
        record_phase(telemetry, "endorse", "tx1", 0.1, 0.2, node="Org1.peer0")
        reply = metrics_result_message(
            telemetry, "Org1.peer0", {"type": "metrics", "include_spans": True}
        )
        assert reply["spans"] == [span.to_dict() for span in telemetry.spans]


class TestCodecCounters:
    def test_frames_and_bytes_counted_while_installed(self):
        registry = MetricsRegistry()
        handle = install_codec_metrics(registry, node="client")
        try:
            data = encode_message({"type": "ping"})
            assert read_one(data) == {"type": "ping"}
            frames = registry.counter("repro_net_frames_total")
            total_bytes = registry.counter("repro_net_bytes_total")
            assert frames.value(direction="in", node="client") == 1
            assert total_bytes.value(direction="in", node="client") == len(data)
        finally:
            uninstall_codec_metrics(handle)

    def test_uninstalled_sink_stops_counting(self):
        registry = MetricsRegistry()
        handle = install_codec_metrics(registry, node="client")
        uninstall_codec_metrics(handle)
        read_one(encode_message({"type": "ping"}))
        assert registry.counter("repro_net_frames_total").value(
            direction="in", node="client"
        ) == 0

    def test_uninstall_is_idempotent(self):
        registry = MetricsRegistry()
        handle = install_codec_metrics(registry)
        uninstall_codec_metrics(handle)
        uninstall_codec_metrics(handle)  # must not raise
