"""Lifecycle span convention: IDs, parent links, trees, breakdowns."""

import pytest

from repro.telemetry import (
    NODE_PHASES,
    PHASES,
    PHASE_PARENT,
    Span,
    Telemetry,
    complete_traces,
    format_breakdown,
    format_span_tree,
    lifecycle_parent_id,
    lifecycle_span_id,
    phase_breakdown,
    phases_by_trace,
    record_phase,
    span_tree,
)


def record_full_trace(telemetry, tx_id, peers=("p0",)):
    """One transaction's complete six-phase span set across ``peers``."""

    record_phase(telemetry, "submit", tx_id, 0.0, 1.0, node="client")
    for peer in peers:
        record_phase(telemetry, "endorse", tx_id, 0.1, 0.2, node=peer)
    record_phase(telemetry, "order", tx_id, 0.3, 0.5, node="orderer")
    for peer in peers:
        record_phase(telemetry, "deliver", tx_id, 0.6, 0.6, node=peer)
        record_phase(telemetry, "validate", tx_id, 0.6, 0.8, node=peer)
        record_phase(telemetry, "apply", tx_id, 0.8, 0.9, node=peer)


class TestSpanIds:
    def test_per_trace_phases_have_no_node_suffix(self):
        assert lifecycle_span_id("tx1", "submit") == "tx1:submit"
        assert lifecycle_span_id("tx1", "order") == "tx1:order"

    def test_per_node_phases_embed_the_node(self):
        for phase in sorted(NODE_PHASES):
            assert lifecycle_span_id("tx1", phase, "p0") == f"tx1:{phase}:p0"

    def test_per_node_phase_requires_node(self):
        with pytest.raises(ValueError):
            lifecycle_span_id("tx1", "endorse")

    def test_unknown_phase_rejected(self):
        with pytest.raises(ValueError):
            lifecycle_span_id("tx1", "gossip")

    def test_parent_chain_matches_phase_parent(self):
        assert lifecycle_parent_id("tx1", "submit") is None
        assert lifecycle_parent_id("tx1", "endorse", "p0") == "tx1:submit"
        assert lifecycle_parent_id("tx1", "order") == "tx1:submit"
        assert lifecycle_parent_id("tx1", "deliver", "p0") == "tx1:order"
        # deliver → validate → apply chain stays on the same peer.
        assert lifecycle_parent_id("tx1", "validate", "p0") == "tx1:deliver:p0"
        assert lifecycle_parent_id("tx1", "apply", "p0") == "tx1:validate:p0"

    def test_every_phase_has_a_parent_rule(self):
        assert set(PHASE_PARENT) == set(PHASES)


class TestRecordPhase:
    def test_none_telemetry_is_a_no_op(self):
        assert record_phase(None, "submit", "tx1", 0.0, 1.0) is None

    def test_unsampled_trace_records_nothing(self):
        telemetry = Telemetry(sample_rate=0.0)
        assert record_phase(telemetry, "submit", "tx1", 0.0, 1.0) is None
        assert telemetry.spans == []

    def test_recorded_span_carries_ids_times_attrs(self):
        telemetry = Telemetry()
        span = record_phase(
            telemetry, "validate", "tx1", 1.0, 2.0, node="p0", code="VALID"
        )
        assert span is telemetry.spans[0]
        assert span.span_id == "tx1:validate:p0"
        assert span.parent_id == "tx1:deliver:p0"
        assert (span.start, span.end) == (1.0, 2.0)
        assert span.attrs == {"code": "VALID"}


class TestAssembly:
    def test_complete_traces_requires_every_phase(self):
        telemetry = Telemetry()
        record_full_trace(telemetry, "tx1")
        record_phase(telemetry, "submit", "tx2", 0.0, 1.0)  # incomplete
        assert complete_traces(telemetry.spans) == ["tx1"]

    def test_phases_by_trace_groups_by_phase(self):
        telemetry = Telemetry()
        record_full_trace(telemetry, "tx1", peers=("p0", "p1"))
        grouped = phases_by_trace(telemetry.spans)
        assert set(grouped) == {"tx1"}
        assert len(grouped["tx1"]["endorse"]) == 2
        assert len(grouped["tx1"]["order"]) == 1

    def test_span_tree_depths_follow_the_pipeline(self):
        telemetry = Telemetry()
        record_full_trace(telemetry, "tx1")
        depths = {span.name: depth for depth, span in span_tree(telemetry.spans, "tx1")}
        assert depths == {
            "submit": 0,
            "endorse": 1,
            "order": 1,
            "deliver": 2,
            "validate": 3,
            "apply": 4,
        }

    def test_span_tree_roots_orphans_so_partial_traces_render(self):
        # An unsampled/missing parent must not hide the child spans.
        spans = [
            Span("tx1", "validate", "tx1:validate:p0", parent_id="tx1:deliver:p0",
                 node="p0", start=0.5, end=0.8),
        ]
        rows = span_tree(spans, "tx1")
        assert [(depth, span.name) for depth, span in rows] == [(0, "validate")]

    def test_format_span_tree_mentions_every_phase(self):
        telemetry = Telemetry()
        record_full_trace(telemetry, "tx1")
        rendered = format_span_tree(telemetry.spans, "tx1")
        assert rendered.startswith("trace tx1")
        for phase in PHASES:
            assert phase in rendered

    def test_phase_breakdown_counts_and_durations(self):
        telemetry = Telemetry()
        record_full_trace(telemetry, "tx1", peers=("p0", "p1"))
        breakdown = phase_breakdown(telemetry.spans)
        assert breakdown["endorse"]["count"] == 2
        assert breakdown["order"]["mean"] == pytest.approx(0.2)
        rendered = format_breakdown(breakdown)
        assert "endorse" in rendered and "ms" in rendered
