"""Metrics registry: counter/gauge/histogram semantics and merging."""

import json

import pytest

from repro.telemetry import (
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("txs_total")
        assert counter.value() == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5

    def test_label_sets_are_independent(self):
        counter = Counter("txs_total")
        counter.inc(peer="p0")
        counter.inc(3, peer="p1")
        assert counter.value(peer="p0") == 1.0
        assert counter.value(peer="p1") == 3.0
        assert counter.value(peer="p2") == 0.0
        assert counter.total() == 4.0

    def test_label_order_does_not_matter(self):
        counter = Counter("txs_total")
        counter.inc(a="1", b="2")
        counter.inc(b="2", a="1")
        assert counter.value(b="2", a="1") == 2.0

    def test_rejects_negative_increments(self):
        with pytest.raises(ValueError):
            Counter("txs_total").inc(-1)

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Counter("")


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("queue_depth")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec(4)
        assert gauge.value() == 3.0

    def test_can_go_negative(self):
        gauge = Gauge("drift")
        gauge.dec(1.5)
        assert gauge.value() == -1.5


class TestHistogram:
    def test_rejects_empty_and_non_increasing_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))

    def test_accepts_increasing_buckets(self):
        # Regression: the validation must not reject valid increasing bounds.
        Histogram("h", buckets=(0.1, 0.5, 1.0))
        Histogram("h2", buckets=DEFAULT_SECONDS_BUCKETS)
        Histogram("h3", buckets=DEFAULT_COUNT_BUCKETS)

    def test_observations_land_in_first_fitting_bucket(self):
        histogram = Histogram("lat", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.1, 0.5, 5.0, 100.0):
            histogram.observe(value)
        [sample] = histogram.to_dict()["samples"]
        # le=0.1 gets 0.05 and the boundary-equal 0.1; +Inf gets 100.0.
        assert sample["counts"] == [2, 1, 1, 1]
        assert sample["count"] == 5
        assert sample["sum"] == pytest.approx(105.65)

    def test_count_total_mean(self):
        histogram = Histogram("lat", buckets=(1.0,))
        assert histogram.count() == 0
        assert histogram.mean() is None
        histogram.observe(2.0, peer="p0")
        histogram.observe(4.0, peer="p0")
        assert histogram.count(peer="p0") == 2
        assert histogram.total(peer="p0") == 6.0
        assert histogram.mean(peer="p0") == 3.0

    def test_to_dict_carries_bucket_bounds(self):
        histogram = Histogram("lat", buckets=(0.5, 2.0))
        assert histogram.to_dict()["buckets"] == [0.5, 2.0]


class TestMetricsRegistry:
    def test_get_or_create_returns_same_handle(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ValueError):
            registry.gauge("a")

    def test_snapshot_is_sorted_and_json_safe(self):
        registry = MetricsRegistry()
        registry.counter("zeta").inc()
        registry.counter("alpha").inc(peer="p1")
        registry.histogram("mid", buckets=(1.0,)).observe(0.5)
        snapshot = registry.snapshot()
        names = [metric["name"] for metric in snapshot["metrics"]]
        assert names == ["alpha", "mid", "zeta"]
        json.dumps(snapshot)  # must not raise

    def test_names_and_len(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.counter("a")
        assert registry.names() == ("a", "b")
        assert len(registry) == 2
        assert registry.get("a") is not None
        assert registry.get("missing") is None


class TestMergeSnapshots:
    def _registry(self, counter_by_peer, observations):
        registry = MetricsRegistry()
        for peer, amount in counter_by_peer.items():
            registry.counter("txs_total").inc(amount, peer=peer)
        histogram = registry.histogram("lat", buckets=(1.0, 10.0))
        for value in observations:
            histogram.observe(value)
        return registry

    def test_merge_sums_counters_and_histograms_exactly(self):
        a = self._registry({"p0": 2}, [0.5, 5.0])
        b = self._registry({"p0": 3, "p1": 1}, [0.5, 50.0])
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        by_name = {metric["name"]: metric for metric in merged["metrics"]}

        counter_samples = {
            tuple(s["labels"].items()): s["value"]
            for s in by_name["txs_total"]["samples"]
        }
        assert counter_samples == {(("peer", "p0"),): 5.0, (("peer", "p1"),): 1.0}

        [hist] = by_name["lat"]["samples"]
        assert hist["counts"] == [2, 1, 1]
        assert hist["count"] == 4
        assert hist["sum"] == pytest.approx(56.0)
        assert by_name["lat"]["buckets"] == [1.0, 10.0]

    def test_merge_equals_single_registry_with_all_events(self):
        a = self._registry({"p0": 1}, [0.2])
        b = self._registry({"p1": 2}, [3.0])
        combined = self._registry({"p0": 1, "p1": 2}, [0.2, 3.0])
        assert merge_snapshots([a.snapshot(), b.snapshot()]) == combined.snapshot()

    def test_merge_rejects_kind_conflicts(self):
        a = MetricsRegistry()
        a.counter("m").inc()
        b = MetricsRegistry()
        b.gauge("m").set(1)
        with pytest.raises(ValueError):
            merge_snapshots([a.snapshot(), b.snapshot()])

    def test_merge_of_nothing_is_empty(self):
        assert merge_snapshots([]) == {"metrics": []}
