"""Tests for the OR-Map of nested CRDTs."""

import pytest

from repro.common.errors import MergeTypeError
from repro.crdt import GCounter, GSet, ORMap


class TestBasics:
    def test_put_get(self):
        ormap = ORMap().put("hits", GCounter().increment("a", 2), tag="t1")
        value = ormap.get("hits")
        assert value is not None and value.value() == 2
        assert "hits" in ormap
        assert ormap.keys() == ["hits"]

    def test_missing_key(self):
        assert ORMap().get("nope") is None

    def test_update_merges_nested(self):
        ormap = ORMap().put("hits", GCounter().increment("a", 2), tag="t1")
        ormap = ormap.update("hits", GCounter().increment("b", 3), tag="t2")
        assert ormap.get("hits").value() == 5

    def test_remove(self):
        ormap = ORMap().put("k", GCounter().increment("a"), tag="t1").remove("k")
        assert "k" not in ormap
        assert len(ormap) == 0

    def test_empty_tag_rejected(self):
        with pytest.raises(ValueError):
            ORMap().put("k", GCounter(), tag="")


class TestObservedRemove:
    def test_concurrent_put_survives_remove(self):
        base = ORMap().put("k", GCounter().increment("a"), tag="t1")
        removed = base.remove("k")
        concurrent = base.put("k", GCounter().increment("b"), tag="t2")
        merged = removed.merge(concurrent)
        assert "k" in merged  # add-wins
        assert merged == concurrent.merge(removed)

    def test_nested_states_merge_across_replicas(self):
        base = ORMap().put("votes", GCounter().increment("seed", 1), tag="t0")
        left = base.update("votes", GCounter().increment("a", 2), tag="ta")
        right = base.update("votes", GCounter().increment("b", 3), tag="tb")
        merged = left.merge(right)
        assert merged.get("votes").value() == 6

    def test_type_conflict_on_same_tag_rejected(self):
        left = ORMap().put("k", GCounter(), tag="shared")
        right = ORMap().put("k", GSet(), tag="shared")
        with pytest.raises(MergeTypeError):
            left.merge(right)


class TestSerialization:
    def test_roundtrip_nested(self):
        ormap = (
            ORMap()
            .put("count", GCounter().increment("a", 4), tag="t1")
            .put("tags", GSet(["x", "y"]), tag="t2")
            .remove("tags")
        )
        restored = ORMap.from_bytes(ormap.to_bytes())
        assert restored == ormap
        assert restored.value() == {"count": 4}

    def test_value_renders_plain(self):
        ormap = ORMap().put("c", GCounter().increment("a", 1), tag="t")
        assert ormap.value() == {"c": 1}
