"""Tests for G-Set, 2P-Set, and OR-Set semantics."""

from repro.crdt import GSet, ORSet, TwoPhaseSet


class TestGSet:
    def test_add_and_contains(self):
        gset = GSet().add("a").add({"k": 1})
        assert "a" in gset
        assert {"k": 1} in gset
        assert "b" not in gset
        assert len(gset) == 2

    def test_duplicate_add_idempotent(self):
        gset = GSet().add("a").add("a")
        assert len(gset) == 1

    def test_merge_is_union(self):
        left = GSet(["a", "b"])
        right = GSet(["b", "c"])
        merged = left.merge(right)
        assert sorted(merged.value()) == ["a", "b", "c"]

    def test_unhashable_elements_supported(self):
        gset = GSet().add([1, 2]).add({"nested": [3]})
        assert [1, 2] in gset

    def test_roundtrip(self):
        gset = GSet(["x", {"y": 1}])
        assert GSet.from_bytes(gset.to_bytes()) == gset


class TestTwoPhaseSet:
    def test_add_remove(self):
        tps = TwoPhaseSet().add("a").remove("a")
        assert "a" not in tps
        assert len(tps) == 0

    def test_no_re_add(self):
        tps = TwoPhaseSet().add("a").remove("a").add("a")
        assert "a" not in tps  # tombstone wins forever

    def test_remove_before_add_blocks(self):
        tps = TwoPhaseSet().remove("a").add("a")
        assert "a" not in tps

    def test_merge(self):
        left = TwoPhaseSet().add("a").add("b")
        right = TwoPhaseSet().add("b").remove("b")
        merged = left.merge(right)
        assert "a" in merged and "b" not in merged

    def test_roundtrip(self):
        tps = TwoPhaseSet().add("a").add("b").remove("a")
        assert TwoPhaseSet.from_bytes(tps.to_bytes()) == tps


class TestORSet:
    def test_add_remove_readd(self):
        orset = ORSet().add("a", "t1").remove("a")
        assert "a" not in orset
        orset = orset.add("a", "t2")
        assert "a" in orset  # unlike 2P-Set, re-add works

    def test_add_wins_over_concurrent_remove(self):
        base = ORSet().add("x", "t1")
        removed = base.remove("x")  # observed only t1
        readded = base.add("x", "t2")  # concurrent add with a fresh tag
        merged = removed.merge(readded)
        assert "x" in merged  # t2 survives: add-wins
        assert merged == readded.merge(removed)

    def test_remove_only_observed_tags(self):
        base = ORSet().add("x", "t1")
        other = ORSet().add("x", "t2")
        removed = base.remove("x")
        merged = removed.merge(other)
        assert "x" in merged

    def test_empty_tag_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            ORSet().add("x", "")

    def test_value_deterministic_order(self):
        orset = ORSet().add("b", "1").add("a", "2")
        assert orset.value() == ["a", "b"]

    def test_roundtrip(self):
        orset = ORSet().add("a", "t1").add({"j": 1}, "t2").remove("a")
        assert ORSet.from_bytes(orset.to_bytes()) == orset
