"""Tests for the RGA list CRDT."""

import pytest

from repro.common.clock import LamportTimestamp
from repro.crdt import HEAD, RGA


def ts(counter, actor="a"):
    return LamportTimestamp(counter, actor)


class TestInsertion:
    def test_append_order(self):
        rga = RGA().append(ts(1), "a").append(ts(2), "b").append(ts(3), "c")
        assert list(rga) == ["a", "b", "c"]

    def test_insert_after_middle(self):
        rga = RGA().append(ts(1), "a").append(ts(2), "c")
        rga = rga.insert_after(ts(1), ts(3), "b")
        assert list(rga) == ["a", "b", "c"]

    def test_insert_at_head(self):
        rga = RGA().append(ts(1), "b").insert_after(HEAD, ts(2), "a")
        assert list(rga) == ["a", "b"]

    def test_concurrent_inserts_same_anchor_newest_first(self):
        rga = RGA().append(ts(1), "x")
        left = rga.insert_after(ts(1), ts(2, "a"), "A")
        right = rga.insert_after(ts(1), ts(2, "b"), "B")
        merged = left.merge(right)
        # RGA orders concurrent siblings by descending ID: (2,b) > (2,a).
        assert list(merged) == ["x", "B", "A"]
        assert list(right.merge(left)) == ["x", "B", "A"]

    def test_duplicate_id_same_content_idempotent(self):
        rga = RGA().append(ts(1), "a")
        again = rga.insert_after(HEAD, ts(1), "a")
        assert list(again) == ["a"]

    def test_duplicate_id_different_content_rejected(self):
        rga = RGA().append(ts(1), "a")
        with pytest.raises(ValueError):
            rga.insert_after(HEAD, ts(1), "different")

    def test_unknown_anchor_rejected(self):
        with pytest.raises(ValueError):
            RGA().insert_after(ts(9), ts(1), "x")


class TestDeletion:
    def test_delete_hides_element(self):
        rga = RGA().append(ts(1), "a").append(ts(2), "b").delete(ts(1))
        assert list(rga) == ["b"]
        assert len(rga) == 1

    def test_tombstone_keeps_anchor_usable(self):
        rga = RGA().append(ts(1), "a").delete(ts(1))
        rga = rga.insert_after(ts(1), ts(2), "b")  # anchor on a tombstone
        assert list(rga) == ["b"]

    def test_delete_unknown_rejected(self):
        with pytest.raises(ValueError):
            RGA().delete(ts(1))

    def test_delete_idempotent(self):
        rga = RGA().append(ts(1), "a").delete(ts(1)).delete(ts(1))
        assert list(rga) == []


class TestMerge:
    def test_merge_union_of_cells(self):
        shared = RGA().append(ts(1), "base")
        left = shared.insert_after(ts(1), ts(2, "a"), "L")
        right = shared.insert_after(ts(1), ts(2, "b"), "R")
        merged = left.merge(right)
        assert sorted(merged) == ["L", "R", "base"]

    def test_merge_propagates_tombstones(self):
        shared = RGA().append(ts(1), "a").append(ts(2), "b")
        deleted = shared.delete(ts(1))
        merged = shared.merge(deleted)
        assert list(merged) == ["b"]
        assert list(deleted.merge(shared)) == ["b"]

    def test_interleaving_deterministic(self):
        # Two replicas each append runs of elements concurrently; all
        # replicas must converge on one interleaving.
        shared = RGA().append(ts(1), "s")
        left = shared
        for i, ch in enumerate("LMN"):
            left = left.append(ts(10 + i, "a"), ch)
        right = shared
        for i, ch in enumerate("XYZ"):
            right = right.append(ts(10 + i, "b"), ch)
        assert list(left.merge(right)) == list(right.merge(left))

    def test_element_ids_and_last_visible(self):
        rga = RGA().append(ts(1), "a").append(ts(2), "b").delete(ts(2))
        assert rga.element_ids() == [ts(1)]
        assert rga.element_ids(include_deleted=True) == [ts(1), ts(2)]
        assert rga.last_visible_id() == ts(1)

    def test_roundtrip(self):
        rga = RGA().append(ts(1), "a").append(ts(2), {"obj": True}).delete(ts(1))
        assert RGA.from_bytes(rga.to_bytes()) == rga
