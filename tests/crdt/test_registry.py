"""Tests for the CRDT type registry and envelope serialization."""

import pytest

from repro.common.errors import MergeTypeError
from repro.crdt import (
    GCounter,
    ORSet,
    StateCRDT,
    crdt_from_bytes,
    crdt_from_dict_envelope,
    crdt_to_bytes,
    crdt_to_dict_envelope,
    merge_envelopes,
    register_crdt,
    registered_types,
)


class TestEnvelopes:
    def test_roundtrip_all_builtins(self):
        for type_name, cls in registered_types().items():
            instance = cls()
            restored = crdt_from_bytes(crdt_to_bytes(instance))
            assert type(restored) is cls, type_name

    def test_envelope_shape(self):
        envelope = crdt_to_dict_envelope(GCounter().increment("a", 2))
        assert envelope["crdt"] == "g-counter"
        assert "state" in envelope

    def test_unknown_type_rejected(self):
        with pytest.raises(MergeTypeError):
            crdt_from_dict_envelope({"crdt": "no-such-type", "state": {}})

    def test_not_an_envelope_rejected(self):
        with pytest.raises(MergeTypeError):
            crdt_from_dict_envelope({"foo": "bar"})


class TestMergeEnvelopes:
    def test_merges_same_type(self):
        left = crdt_to_bytes(GCounter().increment("a", 1))
        right = crdt_to_bytes(GCounter().increment("b", 2))
        merged = crdt_from_bytes(merge_envelopes(left, right))
        assert merged.value() == 3

    def test_mismatched_types_rejected(self):
        left = crdt_to_bytes(GCounter())
        right = crdt_to_bytes(ORSet())
        with pytest.raises(MergeTypeError):
            merge_envelopes(left, right)


class TestRegistration:
    def test_register_custom_type(self):
        class Custom(StateCRDT):
            type_name = "test-custom-type"

            def __init__(self, n=0):
                self.n = n

            def merge(self, other):
                return Custom(max(self.n, other.n))

            def value(self):
                return self.n

            def to_dict(self):
                return {"n": self.n}

            @classmethod
            def from_dict(cls, payload):
                return cls(payload["n"])

        register_crdt(Custom)
        assert registered_types()["test-custom-type"] is Custom
        register_crdt(Custom)  # idempotent

    def test_conflicting_registration_rejected(self):
        class Impostor(StateCRDT):
            type_name = "g-counter"

        with pytest.raises(MergeTypeError):
            register_crdt(Impostor)
