"""Tests for crdt."""
