"""Property-based tests: every state-based CRDT is a join-semilattice.

For each concrete type we generate random instances and check the three
merge laws — commutativity, associativity, idempotence — plus monotonicity
of merge with respect to each operand (merging never loses elements).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.clock import LamportTimestamp
from repro.crdt import (
    GCounter,
    GSet,
    LWWRegister,
    MVRegister,
    ORMap,
    ORSet,
    PNCounter,
    RGA,
    TwoPhaseSet,
)

actors = st.sampled_from(["a", "b", "c"])
elements = st.one_of(
    st.text(max_size=6),
    st.integers(-100, 100),
    st.dictionaries(st.sampled_from(["k1", "k2"]), st.integers(0, 9), max_size=2),
)


@st.composite
def gcounters(draw):
    counts = draw(st.dictionaries(actors, st.integers(0, 50), max_size=3))
    return GCounter(counts)


@st.composite
def pncounters(draw):
    return PNCounter(draw(gcounters()), draw(gcounters()))


@st.composite
def gsets(draw):
    return GSet(draw(st.lists(elements, max_size=5)))


@st.composite
def twophase_sets(draw):
    result = TwoPhaseSet()
    for element in draw(st.lists(elements, max_size=4)):
        result = result.add(element)
    for element in draw(st.lists(elements, max_size=2)):
        result = result.remove(element)
    return result


@st.composite
def orsets(draw):
    result = ORSet()
    operations = draw(
        st.lists(st.tuples(st.booleans(), elements, st.integers(0, 99)), max_size=6)
    )
    for is_add, element, tag_num in operations:
        if is_add:
            result = result.add(element, f"tag{tag_num}")
        else:
            result = result.remove(element)
    return result


@st.composite
def lww_registers(draw):
    if draw(st.booleans()):
        return LWWRegister()
    return LWWRegister().assign(
        draw(elements), LamportTimestamp(draw(st.integers(1, 20)), draw(actors))
    )


@st.composite
def mv_registers(draw):
    result = MVRegister()
    for value, actor in draw(st.lists(st.tuples(elements, actors), max_size=4)):
        result = result.assign(value, actor)
    return result


_rga_namespace = iter(range(10**9))


@st.composite
def rgas(draw):
    # Element IDs must be globally unique across instances (the RGA
    # contract), so each generated replica gets a fresh actor namespace.
    namespace = next(_rga_namespace)
    result = RGA()
    counter = 0
    for value, actor in draw(st.lists(st.tuples(st.text(max_size=4), actors), max_size=5)):
        counter += 1
        result = result.append(LamportTimestamp(counter, f"{actor}{namespace}"), value)
    visible = result.element_ids()
    for index in draw(st.lists(st.integers(0, 10), max_size=2)):
        if visible:
            result = result.delete(visible[index % len(visible)])
    return result


@st.composite
def ormaps(draw):
    result = ORMap()
    for key, amount, tag_num in draw(
        st.lists(
            st.tuples(st.sampled_from(["x", "y"]), st.integers(0, 9), st.integers(0, 99)),
            max_size=4,
        )
    ):
        result = result.update(key, GCounter().increment("a", amount), f"t{tag_num}")
    if draw(st.booleans()) and result.keys():
        result = result.remove(result.keys()[0])
    return result


ALL_STRATEGIES = [
    gcounters(),
    pncounters(),
    gsets(),
    twophase_sets(),
    orsets(),
    lww_registers(),
    mv_registers(),
    rgas(),
    ormaps(),
]

instance_pairs = st.one_of(*[st.tuples(s, s) for s in ALL_STRATEGIES])
instance_triples = st.one_of(*[st.tuples(s, s, s) for s in ALL_STRATEGIES])


def canonical(crdt) -> str:
    from repro.common.serialization import canonical_json

    return canonical_json({"state": crdt.to_dict(), "value": crdt.value()})


@settings(max_examples=150, deadline=None)
@given(instance_pairs)
def test_merge_commutative(pair):
    a, b = pair
    assert canonical(a.merge(b)) == canonical(b.merge(a))


@settings(max_examples=150, deadline=None)
@given(instance_triples)
def test_merge_associative(triple):
    a, b, c = triple
    assert canonical(a.merge(b).merge(c)) == canonical(a.merge(b.merge(c)))


@settings(max_examples=150, deadline=None)
@given(instance_pairs)
def test_merge_idempotent(pair):
    a, b = pair
    merged = a.merge(b)
    assert canonical(merged.merge(merged)) == canonical(merged)
    assert canonical(merged.merge(a)) == canonical(merged)
    assert canonical(merged.merge(b)) == canonical(merged)


@settings(max_examples=100, deadline=None)
@given(st.one_of(st.tuples(gcounters(), gcounters()), st.tuples(pncounters(), pncounters())))
def test_counter_merge_never_decreases_per_actor_knowledge(pair):
    a, b = pair
    merged = a.merge(b)
    assert canonical(merged.merge(a)) == canonical(merged)


@settings(max_examples=100, deadline=None)
@given(st.tuples(gsets(), gsets()))
def test_gset_merge_is_superset(pair):
    a, b = pair
    merged = a.merge(b)
    for element in list(a) + list(b):
        assert element in merged


@settings(max_examples=100, deadline=None)
@given(st.tuples(rgas(), rgas()))
def test_rga_merge_preserves_all_visible_elements_of_both(pair):
    a, b = pair
    merged = a.merge(b)
    # Deletions only ever happen locally before merging here, so an element
    # visible in either replica and not deleted in the other must survive.
    visible_ids = set(merged.element_ids())
    for replica, other in ((a, b), (b, a)):
        for element_id in replica.element_ids():
            deleted_in_other = (
                element_id in [e for e in other.element_ids(include_deleted=True)]
                and element_id not in other.element_ids()
            )
            if not deleted_in_other:
                assert element_id in visible_ids
