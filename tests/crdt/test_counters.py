"""Tests for G-Counter and PN-Counter."""

import pytest

from repro.common.errors import MergeTypeError
from repro.crdt import GCounter, GSet, PNCounter


class TestGCounter:
    def test_empty_value(self):
        assert GCounter().value() == 0

    def test_increment_is_functional(self):
        base = GCounter()
        bumped = base.increment("a", 3)
        assert base.value() == 0
        assert bumped.value() == 3

    def test_merge_takes_per_actor_max(self):
        # Two replicas that both saw a=2, then diverged.
        shared = GCounter().increment("a", 2)
        left = shared.increment("a", 1)  # a=3
        right = shared.increment("b", 5)  # a=2, b=5
        merged = left.merge(right)
        assert merged.value() == 8
        assert merged.actor_count("a") == 3
        assert merged.actor_count("b") == 5

    def test_decrement_rejected(self):
        with pytest.raises(ValueError):
            GCounter().increment("a", -1)

    def test_negative_state_rejected(self):
        with pytest.raises(ValueError):
            GCounter({"a": -5})

    def test_merge_type_mismatch(self):
        with pytest.raises(MergeTypeError):
            GCounter().merge(GSet())

    def test_serialization_roundtrip(self):
        counter = GCounter().increment("a", 2).increment("b", 7)
        assert GCounter.from_bytes(counter.to_bytes()) == counter

    def test_envelope_type_check(self):
        counter = GCounter().increment("a")
        with pytest.raises(MergeTypeError):
            PNCounter.from_bytes(counter.to_bytes())


class TestPNCounter:
    def test_increment_and_decrement(self):
        counter = PNCounter().increment("a", 10).decrement("b", 4)
        assert counter.value() == 6

    def test_negative_amounts_flip(self):
        assert PNCounter().increment("a", -3).value() == -3
        assert PNCounter().decrement("a", -3).value() == 3

    def test_merge_concurrent(self):
        base = PNCounter().increment("a", 5)
        left = base.decrement("a", 2)  # 3
        right = base.increment("b", 1)  # 6
        merged = left.merge(right)
        assert merged.value() == 4  # 5 - 2 + 1
        assert merged == right.merge(left)

    def test_roundtrip(self):
        counter = PNCounter().increment("x", 3).decrement("y", 1)
        assert PNCounter.from_bytes(counter.to_bytes()) == counter
