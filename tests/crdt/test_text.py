"""Tests for the collaborative text CRDT."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crdt import TextDocument


class TestEditing:
    def test_insert_and_read(self):
        doc = TextDocument("a").insert(0, "hello")
        assert doc.text() == "hello"
        assert len(doc) == 5

    def test_insert_middle(self):
        doc = TextDocument("a").insert(0, "hd").insert(1, "el worl")
        assert doc.text() == "hel world"

    def test_insert_positions(self):
        doc = TextDocument("a").insert(0, "ac").insert(1, "b")
        assert doc.text() == "abc"
        doc = doc.insert(3, "!")
        assert doc.text() == "abc!"
        doc = doc.insert(0, ">")
        assert doc.text() == ">abc!"

    def test_append(self):
        doc = TextDocument("a").append("one").append(" two")
        assert doc.text() == "one two"

    def test_insert_out_of_range(self):
        with pytest.raises(IndexError):
            TextDocument("a").insert(1, "x")

    def test_delete(self):
        doc = TextDocument("a").insert(0, "abcdef").delete(1, 3)
        assert doc.text() == "aef"

    def test_delete_bounds(self):
        doc = TextDocument("a").insert(0, "ab")
        with pytest.raises(IndexError):
            doc.delete(1, 5)
        with pytest.raises(ValueError):
            doc.delete(0, -1)

    def test_functional_edits_do_not_mutate(self):
        base = TextDocument("a").insert(0, "base")
        edited = base.insert(4, "!")
        assert base.text() == "base"
        assert edited.text() == "base!"


class TestConcurrentEditing:
    def test_concurrent_appends_do_not_interleave(self):
        shared = TextDocument("origin").insert(0, "start ")
        alice = shared.fork("alice").append("AAA")
        bob = shared.fork("bob").append("BBB")
        merged = alice.merge(bob)
        text = merged.text()
        assert merged.merge(alice).text() == text  # idempotent
        assert bob.merge(alice).text() == text  # commutative
        assert "AAA" in text and "BBB" in text
        assert text.startswith("start ")
        # Runs stay contiguous: never "ABABAB".
        assert text in ("start AAABBB", "start BBBAAA")

    def test_concurrent_insert_and_delete(self):
        shared = TextDocument("origin").insert(0, "abc")
        deleter = shared.fork("deleter").delete(1)  # "ac"
        inserter = shared.fork("inserter").insert(3, "!")  # "abc!"
        merged = deleter.merge(inserter)
        assert merged.text() == "ac!"
        assert inserter.merge(deleter).text() == "ac!"

    def test_three_way_convergence(self):
        shared = TextDocument("origin").insert(0, "doc: ")
        replicas = [shared.fork(name).append(name) for name in ("r1", "r2", "r3")]
        merged_all = replicas[0].merge(replicas[1]).merge(replicas[2])
        other_order = replicas[2].merge(replicas[0]).merge(replicas[1])
        assert merged_all.text() == other_order.text()

    def test_serialization_roundtrip(self):
        doc = TextDocument("a").insert(0, "persist me").delete(0, 2)
        restored = TextDocument.from_bytes(doc.to_bytes())
        assert restored.text() == doc.text()
        assert restored == doc


@settings(max_examples=60, deadline=None)
@given(
    st.text(alphabet="xyz ", min_size=1, max_size=8),
    st.text(alphabet="abc", min_size=1, max_size=6),
    st.text(alphabet="def", min_size=1, max_size=6),
    st.data(),
)
def test_property_concurrent_edits_converge(base_text, alice_text, bob_text, data):
    shared = TextDocument("origin").insert(0, base_text)
    alice_pos = data.draw(st.integers(0, len(base_text)))
    bob_pos = data.draw(st.integers(0, len(base_text)))
    alice = shared.fork("alice").insert(alice_pos, alice_text)
    bob = shared.fork("bob").insert(bob_pos, bob_text)
    merged_ab = alice.merge(bob)
    merged_ba = bob.merge(alice)
    assert merged_ab.text() == merged_ba.text()
    # Nothing lost: every inserted run appears contiguously.
    assert alice_text in merged_ab.text()
    assert bob_text in merged_ab.text()
    assert len(merged_ab.text()) == len(base_text) + len(alice_text) + len(bob_text)
