"""Tests for LWW and multi-value registers."""

from repro.common.clock import LamportTimestamp
from repro.crdt import LWWRegister, MVRegister


def ts(counter, actor="a"):
    return LamportTimestamp(counter, actor)


class TestLWWRegister:
    def test_highest_timestamp_wins(self):
        reg = LWWRegister().assign("old", ts(1))
        merged = reg.merge(LWWRegister().assign("new", ts(2)))
        assert merged.value() == "new"

    def test_tie_broken_by_actor(self):
        left = LWWRegister().assign("from-a", ts(1, "a"))
        right = LWWRegister().assign("from-b", ts(1, "b"))
        assert left.merge(right).value() == "from-b"
        assert right.merge(left).value() == "from-b"  # commutative

    def test_empty_register(self):
        assert LWWRegister().value() is None
        assert LWWRegister().merge(LWWRegister()).value() is None

    def test_empty_loses_to_any_write(self):
        written = LWWRegister().assign("x", ts(1))
        assert LWWRegister().merge(written).value() == "x"
        assert written.merge(LWWRegister()).value() == "x"

    def test_roundtrip(self):
        reg = LWWRegister().assign({"doc": 1}, ts(5, "p"))
        restored = LWWRegister.from_bytes(reg.to_bytes())
        assert restored == reg
        assert restored.stamp == ts(5, "p")


class TestMVRegister:
    def test_sequential_assign_overwrites(self):
        reg = MVRegister().assign("v1", "a").assign("v2", "a")
        assert reg.value() == ["v2"]

    def test_concurrent_assigns_kept_as_siblings(self):
        base = MVRegister().assign("base", "a")
        left = base.assign("left", "b")
        right = base.assign("right", "c")
        merged = left.merge(right)
        assert sorted(merged.value()) == ["left", "right"]

    def test_causal_dominance_resolves_siblings(self):
        base = MVRegister().assign("base", "a")
        left = base.assign("left", "b")
        right = base.assign("right", "c")
        merged = left.merge(right)
        resolved = merged.assign("final", "a")
        assert resolved.value() == ["final"]
        assert resolved.merge(merged).value() == ["final"]

    def test_merge_idempotent_on_duplicates(self):
        reg = MVRegister().assign("v", "a")
        assert reg.merge(reg).value() == ["v"]

    def test_roundtrip(self):
        base = MVRegister().assign("x", "a")
        merged = base.assign("l", "b").merge(base.assign("r", "c"))
        assert MVRegister.from_bytes(merged.to_bytes()) == merged
