"""Tests for the shared value types."""

import pytest

from repro.common.types import (
    Counterstats,
    ReadItem,
    ReadWriteSet,
    TxStatus,
    ValidationCode,
    Version,
    WriteItem,
)


class TestVersion:
    def test_ordering_matches_commit_order(self):
        assert Version(0, 5) < Version(1, 0)
        assert Version(1, 0) < Version(1, 1)
        assert Version(2, 0) > Version(1, 99)

    def test_string_roundtrip(self):
        version = Version(12, 34)
        assert Version.parse(str(version)) == version

    def test_str_format(self):
        assert str(Version(3, 7)) == "3:7"

    def test_negative_components_rejected(self):
        with pytest.raises(ValueError):
            Version(-1, 0)
        with pytest.raises(ValueError):
            Version(0, -2)

    def test_equality_and_hash(self):
        assert Version(1, 2) == Version(1, 2)
        assert hash(Version(1, 2)) == hash(Version(1, 2))
        assert Version(1, 2) != Version(2, 1)


class TestValidationCode:
    def test_only_valid_is_valid(self):
        assert ValidationCode.VALID.is_valid
        for code in ValidationCode:
            if code is not ValidationCode.VALID:
                assert not code.is_valid

    def test_fabric_enum_values(self):
        # The numeric values mirror Fabric's TxValidationCode.
        assert ValidationCode.VALID.value == 0
        assert ValidationCode.MVCC_READ_CONFLICT.value == 11
        assert ValidationCode.PHANTOM_READ_CONFLICT.value == 12
        assert ValidationCode.ENDORSEMENT_POLICY_FAILURE.value == 10


class TestWriteItem:
    def test_delete_with_value_rejected(self):
        with pytest.raises(ValueError):
            WriteItem("k", b"data", is_delete=True)

    def test_crdt_delete_rejected(self):
        with pytest.raises(ValueError):
            WriteItem("k", b"", is_delete=True, is_crdt=True)

    def test_plain_write(self):
        write = WriteItem("k", b"v")
        assert not write.is_delete and not write.is_crdt


class TestReadWriteSet:
    def test_key_accessors(self):
        rwset = ReadWriteSet.build(
            reads=[ReadItem("a", Version(0, 0)), ReadItem("b", None)],
            writes=[WriteItem("c", b"1"), WriteItem("d", b"2", is_crdt=True)],
        )
        assert rwset.read_keys == ("a", "b")
        assert rwset.write_keys == ("c", "d")
        assert rwset.has_crdt_writes
        assert not rwset.is_read_only

    def test_read_only(self):
        rwset = ReadWriteSet.build(reads=[ReadItem("a", None)])
        assert rwset.is_read_only
        assert not rwset.has_crdt_writes

    def test_merged_with_concatenates(self):
        left = ReadWriteSet.build(reads=[ReadItem("a", None)])
        right = ReadWriteSet.build(writes=[WriteItem("b", b"x")])
        merged = left.merged_with(right)
        assert merged.read_keys == ("a",)
        assert merged.write_keys == ("b",)


class TestTxStatus:
    def test_latency(self):
        status = TxStatus("t", ValidationCode.VALID, submit_time=1.0, commit_time=3.5)
        assert status.latency == pytest.approx(2.5)
        assert status.succeeded

    def test_latency_unknown_when_missing_times(self):
        assert TxStatus("t", ValidationCode.VALID).latency is None


class TestCounterstats:
    def test_bump_and_get(self):
        stats = Counterstats()
        stats.bump("a")
        stats.bump("a", 4)
        assert stats.get("a") == 5
        assert stats.get("missing") == 0
        assert stats.as_dict() == {"a": 5}
