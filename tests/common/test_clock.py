"""Tests for Lamport clocks."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.clock import LamportClock, LamportTimestamp


class TestLamportTimestamp:
    def test_total_order(self):
        assert LamportTimestamp(1, "a") < LamportTimestamp(2, "a")
        assert LamportTimestamp(1, "a") < LamportTimestamp(1, "b")
        assert LamportTimestamp(2, "a") > LamportTimestamp(1, "z")

    def test_string_roundtrip(self):
        stamp = LamportTimestamp(42, "peer1")
        assert LamportTimestamp.parse(str(stamp)) == stamp

    @given(st.integers(0, 1000), st.text(min_size=1, max_size=8, alphabet="abc123"))
    def test_parse_any(self, counter, actor):
        stamp = LamportTimestamp(counter, actor)
        assert LamportTimestamp.parse(str(stamp)) == stamp


class TestLamportClock:
    def test_tick_monotonic(self):
        clock = LamportClock("a")
        stamps = [clock.tick() for _ in range(5)]
        assert stamps == sorted(stamps)
        assert [s.counter for s in stamps] == [1, 2, 3, 4, 5]

    def test_merge_advances(self):
        clock = LamportClock("a")
        clock.tick()
        clock.merge(LamportTimestamp(10, "b"))
        assert clock.tick().counter == 11

    def test_merge_never_rewinds(self):
        clock = LamportClock("a", start=20)
        clock.merge(LamportTimestamp(3, "b"))
        assert clock.time == 20

    def test_peek_does_not_advance(self):
        clock = LamportClock("a")
        assert clock.peek() == LamportTimestamp(1, "a")
        assert clock.time == 0

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            LamportClock("")
        with pytest.raises(ValueError):
            LamportClock("a", start=-1)

    def test_two_clocks_exchange_preserves_causality(self):
        a, b = LamportClock("a"), LamportClock("b")
        stamp_a = a.tick()
        b.merge(stamp_a)
        stamp_b = b.tick()
        assert stamp_b > stamp_a
