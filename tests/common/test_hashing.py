"""Tests for hashing utilities."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.hashing import (
    chain_hash,
    hmac_sign,
    hmac_verify,
    merkle_root,
    sha256,
    sha256_hex,
    short_hash,
    stable_int,
)


class TestDigests:
    def test_sha256_known_vector(self):
        assert (
            sha256_hex(b"")
            == "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        )

    def test_short_hash_prefix(self):
        assert short_hash(b"x", 8) == sha256_hex(b"x")[:8]

    def test_chain_hash_depends_on_both_inputs(self):
        base = chain_hash(b"\x00" * 32, b"payload")
        assert chain_hash(b"\x01" * 32, b"payload") != base
        assert chain_hash(b"\x00" * 32, b"other") != base


class TestMerkle:
    def test_empty(self):
        assert merkle_root([]) == sha256(b"")

    def test_single_leaf(self):
        assert merkle_root([b"a"]) == sha256(b"a")

    def test_order_sensitivity(self):
        assert merkle_root([b"a", b"b"]) != merkle_root([b"b", b"a"])

    def test_content_sensitivity(self):
        assert merkle_root([b"a", b"b"]) != merkle_root([b"a", b"c"])

    @given(st.lists(st.binary(max_size=16), min_size=1, max_size=9))
    def test_deterministic(self, leaves):
        assert merkle_root(leaves) == merkle_root(list(leaves))

    def test_odd_leaf_duplication(self):
        # Three leaves: the implementation duplicates the odd leaf.
        a, b, c = sha256(b"a"), sha256(b"b"), sha256(b"c")
        expected = sha256(sha256(a + b) + sha256(c + c))
        assert merkle_root([b"a", b"b", b"c"]) == expected


class TestHmac:
    def test_sign_verify_roundtrip(self):
        signature = hmac_sign(b"secret", b"payload")
        assert hmac_verify(b"secret", b"payload", signature)

    def test_wrong_secret_rejected(self):
        signature = hmac_sign(b"secret", b"payload")
        assert not hmac_verify(b"other", b"payload", signature)

    def test_wrong_payload_rejected(self):
        signature = hmac_sign(b"secret", b"payload")
        assert not hmac_verify(b"secret", b"tampered", signature)


class TestStableInt:
    @given(st.binary(max_size=32), st.integers(1, 1000))
    def test_in_range_and_stable(self, data, modulus):
        value = stable_int(data, modulus)
        assert 0 <= value < modulus
        assert stable_int(data, modulus) == value

    def test_zero_modulus_rejected(self):
        with pytest.raises(ValueError):
            stable_int(b"x", 0)
