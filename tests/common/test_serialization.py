"""Tests for canonical serialization."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import SerializationError
from repro.common.serialization import (
    byte_size,
    canonical_json,
    deep_copy_json,
    deep_freeze,
    from_bytes,
    json_equal,
    to_bytes,
)

json_values = st.recursive(
    st.none() | st.booleans() | st.integers(-10**9, 10**9) | st.text(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=20,
)


class TestCanonicalJson:
    def test_sorted_keys(self):
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    def test_compact_separators(self):
        assert canonical_json([1, 2, {"k": "v"}]) == '[1,2,{"k":"v"}]'

    def test_unicode_preserved(self):
        assert canonical_json("héllo") == '"héllo"'

    def test_nan_rejected(self):
        with pytest.raises(SerializationError):
            canonical_json(float("nan"))

    def test_non_json_rejected(self):
        with pytest.raises(SerializationError):
            canonical_json({1, 2})

    @given(json_values)
    def test_roundtrip(self, value):
        assert from_bytes(to_bytes(value)) == value

    @given(json_values, json_values)
    def test_equal_iff_canonical_equal(self, a, b):
        assert json_equal(a, b) == (canonical_json(a) == canonical_json(b))


class TestFromBytes:
    def test_malformed_raises(self):
        with pytest.raises(SerializationError):
            from_bytes(b"{not json")

    def test_bad_utf8_raises(self):
        with pytest.raises(SerializationError):
            from_bytes(b"\xff\xfe")


class TestHelpers:
    def test_byte_size(self):
        assert byte_size({"a": 1}) == len(b'{"a":1}')

    def test_deep_freeze_hashable(self):
        frozen = deep_freeze({"a": [1, {"b": 2}]})
        hash(frozen)  # must not raise
        assert deep_freeze({"a": [1, {"b": 2}]}) == frozen

    def test_deep_freeze_distinguishes(self):
        assert deep_freeze({"a": 1}) != deep_freeze({"a": 2})

    @given(json_values)
    def test_deep_copy_equal_but_distinct(self, value):
        copy = deep_copy_json(value)
        assert copy == value
        if isinstance(value, (dict, list)) and value:
            assert copy is not value
