"""Tests for common."""
