"""Tests for configuration validation and factories."""

import pytest

from repro.common.config import (
    CRDTConfig,
    NetworkConfig,
    OrdererConfig,
    TopologyConfig,
    fabric_config,
    fabriccrdt_config,
)
from repro.common.errors import ConfigError


class TestOrdererConfig:
    def test_defaults_match_paper(self):
        config = OrdererConfig()
        assert config.max_message_count == 400
        assert config.preferred_max_bytes == 128 * 1024 * 1024
        assert config.batch_timeout_s == 2.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_message_count": 0},
            {"preferred_max_bytes": 0},
            {"batch_timeout_s": 0.0},
            {"batch_timeout_s": -1.0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            OrdererConfig(**kwargs)


class TestTopologyConfig:
    def test_paper_defaults(self):
        topology = TopologyConfig()
        assert topology.org_names == ("Org1", "Org2", "Org3")
        assert topology.total_peers == 6

    def test_invalid(self):
        with pytest.raises(ConfigError):
            TopologyConfig(num_orgs=0)
        with pytest.raises(ConfigError):
            TopologyConfig(peers_per_org=0)
        with pytest.raises(ConfigError):
            TopologyConfig(channel="")


class TestNetworkConfig:
    def test_with_block_size_preserves_everything_else(self):
        config = fabriccrdt_config(25, seed=5)
        resized = config.with_block_size(100)
        assert resized.orderer.max_message_count == 100
        assert resized.crdt_enabled
        assert resized.seed == 5
        assert resized.orderer.batch_timeout_s == config.orderer.batch_timeout_s

    def test_factories(self):
        assert not fabric_config().crdt_enabled
        assert fabric_config().orderer.max_message_count == 400
        assert fabriccrdt_config().crdt_enabled
        assert fabriccrdt_config().orderer.max_message_count == 25

    def test_crdt_defaults(self):
        crdt = CRDTConfig()
        assert not crdt.seed_from_state  # the literal Algorithm 1
        assert crdt.dedup_identical
        assert crdt.stringify_scalars
