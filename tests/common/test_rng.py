"""Tests for the seeded RNG streams."""

from repro.common.rng import SeedSequence


class TestSeedSequence:
    def test_same_label_same_stream(self):
        seeds = SeedSequence(42)
        a = seeds.stream("x").random()
        b = seeds.stream("x").random()
        assert a == b

    def test_different_labels_independent(self):
        seeds = SeedSequence(42)
        assert seeds.stream("x").random() != seeds.stream("y").random()

    def test_different_roots_differ(self):
        assert SeedSequence(1).stream("x").random() != SeedSequence(2).stream("x").random()

    def test_child_derivation_stable(self):
        child = SeedSequence(7).child("component")
        again = SeedSequence(7).child("component")
        assert child.root_seed == again.root_seed
        assert child.stream("q").random() == again.stream("q").random()

    def test_adding_consumer_does_not_perturb_existing(self):
        seeds = SeedSequence(3)
        first = seeds.stream("existing").random()
        seeds.stream("new-consumer").random()
        assert seeds.stream("existing").random() == first
