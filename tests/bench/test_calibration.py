"""Tests for the cost-model calibration."""

import pytest

from repro.bench.calibration import (
    ANCHOR_FIG3_BLOCK,
    ANCHOR_FIG3_TPS,
    ANCHOR_FIG5_BLOCK,
    ANCHOR_FIG5_DEPTH,
    ANCHOR_FIG5_KEYS,
    ANCHOR_FIG5_TPS,
    calibrated_cost_model,
    calibration_report,
    measure_merge_work,
)
from repro.fabric.peer import CommitWork


class TestMergeWorkMeasurement:
    def test_scan_steps_superlinear_in_block_size(self):
        small = measure_merge_work(10)
        large = measure_merge_work(40)
        # 4x the block size must cost much more than 4x the scan steps —
        # the superlinearity behind Figure 3.
        assert large.scan_steps > 8 * small.scan_steps

    def test_ops_linear_in_block_size(self):
        small = measure_merge_work(10)
        large = measure_merge_work(40)
        assert large.ops == pytest.approx(4 * small.ops, rel=0.2)

    def test_complexity_multiplies_ops(self):
        flat = measure_merge_work(10, json_keys=2, nesting_depth=1)
        nested = measure_merge_work(10, json_keys=6, nesting_depth=6)
        assert nested.ops > 4 * flat.ops

    def test_measurement_deterministic(self):
        assert measure_merge_work(15) == measure_merge_work(15)


class TestCalibration:
    def test_constants_positive(self):
        model = calibrated_cost_model()
        assert model.merge_per_op_s > 0
        assert model.merge_per_scan_step_s > 0

    def test_anchor_fig3_reproduced_by_formula(self):
        model = calibrated_cost_model()
        sample = measure_merge_work(ANCHOR_FIG3_BLOCK)
        work = CommitWork(
            tx_count=sample.block_size,
            vscc_checks=sample.block_size,
            distinct_keys_written=1,
            writes_applied=sample.block_size,
            bytes_written=sample.bytes_written_total(),
            merge_ops=sample.ops,
            merge_scan_steps=sample.scan_steps,
        )
        block_time = model.commit_time(work)
        assert sample.block_size / block_time == pytest.approx(ANCHOR_FIG3_TPS, rel=0.02)

    def test_anchor_fig5_reproduced_by_formula(self):
        model = calibrated_cost_model()
        sample = measure_merge_work(
            ANCHOR_FIG5_BLOCK, json_keys=ANCHOR_FIG5_KEYS, nesting_depth=ANCHOR_FIG5_DEPTH
        )
        work = CommitWork(
            tx_count=sample.block_size,
            vscc_checks=sample.block_size,
            distinct_keys_written=1,
            writes_applied=sample.block_size,
            bytes_written=sample.bytes_written_total(),
            merge_ops=sample.ops,
            merge_scan_steps=sample.scan_steps,
        )
        block_time = model.commit_time(work)
        assert sample.block_size / block_time == pytest.approx(ANCHOR_FIG5_TPS, rel=0.02)

    def test_report_fields(self):
        report = calibration_report()
        assert report["merge_per_op_s"] > 0
        assert report["anchor_fig3"]["block_size"] == ANCHOR_FIG3_BLOCK
        assert report["anchor_fig5"]["target_tps"] == ANCHOR_FIG5_TPS


class TestStructuralConstants:
    def test_endorsement_capacity_near_saturation_ceiling(self):
        """The endorsement pool must cap near the paper's ~250-270 tx/s
        saturation ceiling (Figure 6's knee)."""

        model = calibrated_cost_model()
        capacity = model.endorsement_capacity_tps(1, 1)
        assert 230 <= capacity <= 290
