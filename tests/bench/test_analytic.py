"""Unit tests for the closed-form performance model."""

import pytest

from repro.bench.analytic import block_commit_time, predict_figure3, predict_point
from repro.bench.calibration import calibrated_cost_model


@pytest.fixture(scope="module")
def cost():
    return calibrated_cost_model()


class TestBlockCommitTime:
    def test_grows_superlinearly(self, cost):
        small = block_commit_time(50, cost)
        large = block_commit_time(200, cost)
        assert large > 4 * small  # superlinear: 4x block, >4x time

    def test_complexity_increases_time(self, cost):
        flat = block_commit_time(25, cost, json_keys=2, nesting_depth=1)
        nested = block_commit_time(25, cost, json_keys=6, nesting_depth=6)
        assert nested > flat

    def test_anchor_value(self, cost):
        # The fig3 anchor: 1000-tx blocks at 20 tx/s -> 50 s.
        assert block_commit_time(1000, cost) == pytest.approx(50.0, rel=0.02)


class TestPredictPoint:
    def test_small_blocks_endorsement_bound(self, cost):
        point = predict_point(25, cost=cost)
        assert point.bottleneck == "endorsement"
        assert point.throughput_tps == pytest.approx(
            cost.endorsement_capacity_tps(1, 1), rel=0.01
        )

    def test_large_blocks_commit_bound(self, cost):
        point = predict_point(1000, cost=cost)
        assert point.bottleneck == "commit"
        assert point.throughput_tps < 50

    def test_low_rate_arrival_bound(self, cost):
        point = predict_point(25, arrival_tps=50.0, cost=cost)
        assert point.bottleneck == "arrival"
        assert point.throughput_tps == pytest.approx(50.0)
        assert point.avg_latency_s < 1.0  # no queueing below capacity

    def test_overload_latency_reflects_deficit(self, cost):
        point = predict_point(400, arrival_tps=300.0, total_transactions=10000, cost=cost)
        assert point.avg_latency_s > 10  # deficit queueing dominates

    def test_timeout_caps_effective_block(self, cost):
        capped = predict_point(1000, arrival_tps=300.0, cost=cost)
        uncapped_time = block_commit_time(1000, cost)
        assert capped.block_time_s < uncapped_time  # computed for 600, not 1000


class TestPredictFigure3:
    def test_monotone_after_knee(self, cost):
        predictions = predict_figure3((100, 200, 400), cost=cost)
        tps = [predictions[size].throughput_tps for size in (100, 200, 400)]
        assert tps[0] > tps[1] > tps[2]

    def test_all_points_present(self, cost):
        sizes = (25, 50, 100)
        predictions = predict_figure3(sizes, cost=cost)
        assert set(predictions) == set(sizes)
