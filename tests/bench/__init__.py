"""Tests for bench."""
