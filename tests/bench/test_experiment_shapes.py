"""Shape assertions for the figure experiments at CI scale.

These tests run each figure's sweep at a small transaction count and check
the paper's *qualitative* findings — the claims §7 actually makes — rather
than absolute numbers:

* FabricCRDT commits every submitted transaction in every configuration;
  vanilla Fabric commits almost none under all-conflicting workloads.
* FabricCRDT throughput decreases as blocks grow (Figure 3) and as JSON
  complexity grows (Figure 5); latency moves the other way.
* Throughput saturates with arrival rate (Figure 6).
* Fabric's failures grow with the conflict percentage while FabricCRDT's
  stay at zero (Figure 7).
"""

import pytest

from repro.bench.calibration import calibrated_cost_model
from repro.bench.experiments import (
    ExperimentScale,
    figure3,
    figure5,
    figure6,
    figure7,
)

SCALE = ExperimentScale(transactions=400, light_topology=True)
COST = calibrated_cost_model()


@pytest.fixture(scope="module")
def fig3():
    return figure3(SCALE, block_sizes=(25, 100, 400), cost=COST)


@pytest.fixture(scope="module")
def fig7():
    return figure7(SCALE, conflict_percentages=(0, 80), cost=COST)


class TestFigure3Shape:
    def test_crdt_commits_everything(self, fig3):
        for result in fig3.crdt.values():
            assert result.successful == 400
            assert result.failed == 0

    def test_fabric_commits_almost_nothing(self, fig3):
        for result in fig3.fabric.values():
            assert result.successful < 40
            assert result.failure_codes.get("MVCC_READ_CONFLICT", 0) > 350

    def test_crdt_throughput_decreases_with_block_size(self, fig3):
        tps = [fig3.crdt[size].throughput_tps for size in (25, 100, 400)]
        assert tps[0] > tps[1] > tps[2]

    def test_crdt_latency_increases_with_block_size(self, fig3):
        latency = [fig3.crdt[size].avg_latency_s for size in (25, 100, 400)]
        assert latency[0] < latency[1] < latency[2]

    def test_crdt_beats_fabric_on_successful_throughput(self, fig3):
        for size in (25, 100, 400):
            assert fig3.crdt[size].throughput_tps > 20 * fig3.fabric[size].throughput_tps


class TestFigure5Shape:
    def test_complexity_degrades_throughput(self):
        result = figure5(SCALE, complexity=((2, 2), (6, 6)), cost=COST)
        assert (
            result.crdt[(2, 2)].throughput_tps > result.crdt[(6, 6)].throughput_tps
        )
        for point in result.crdt.values():
            assert point.successful == 400


class TestFigure6Shape:
    def test_throughput_saturates(self):
        result = figure6(SCALE, rates=(100, 500), cost=COST)
        low, high = result.crdt[100], result.crdt[500]
        # At 100 tx/s the system keeps up; at 500 it saturates below offered.
        assert low.throughput_tps == pytest.approx(100, rel=0.15)
        assert high.throughput_tps < 350
        assert high.avg_latency_s > low.avg_latency_s


class TestFigure7Shape:
    def test_fabric_failures_grow_with_conflicts(self, fig7):
        assert fig7.fabric[0].successful == 400
        assert fig7.fabric[80].successful < 250

    def test_crdt_never_fails(self, fig7):
        for result in fig7.crdt.values():
            assert result.failed == 0

    def test_systems_comparable_at_zero_conflicts(self, fig7):
        # At CI scale (400 txs) vanilla Fabric commits a single 400-tx block,
        # so its measured duration is dominated by that one block's tail and
        # throughput under-reads; at full scale the two systems converge
        # (see EXPERIMENTS.md).  Allow a generous but bounded gap here.
        crdt_tps = fig7.crdt[0].throughput_tps
        fabric_tps = fig7.fabric[0].throughput_tps
        assert abs(crdt_tps - fabric_tps) / max(crdt_tps, fabric_tps) < 0.65

    def test_comparison_rows_include_paper_numbers(self, fig7):
        rows = fig7.comparison_rows()
        zero_row = next(r for r in rows if r["sweep"] == 0)
        assert zero_row["fabric_paper_tps"] == 222.6
        assert zero_row["crdt_measured_tps"] is not None
