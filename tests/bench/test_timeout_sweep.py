"""Tests for the timeout-sweep extension experiment."""

import pytest

from repro.bench.calibration import calibrated_cost_model
from repro.bench.experiments import ExperimentScale, timeout_sweep


@pytest.fixture(scope="module")
def sweep():
    scale = ExperimentScale(transactions=600, light_topology=True)
    return timeout_sweep(
        scale, timeouts_s=(0.5, 2.0), block_size=1000, cost=calibrated_cost_model()
    )


class TestTimeoutSweep:
    def test_short_timeout_means_small_blocks_and_high_throughput(self, sweep):
        short, paper_default = sweep.crdt[0.5], sweep.crdt[2.0]
        assert short.avg_block_fill < paper_default.avg_block_fill
        assert short.throughput_tps > paper_default.throughput_tps

    def test_all_transactions_commit_regardless(self, sweep):
        for result in sweep.crdt.values():
            assert result.successful == 600

    def test_effective_block_size_capped_by_rate_times_timeout(self, sweep):
        # 300 tx/s * 0.5 s = 150 transactions per timeout-cut block.
        short = sweep.crdt[0.5]
        assert short.avg_block_fill <= 160
