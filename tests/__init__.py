"""Test suite for the FabricCRDT reproduction."""
