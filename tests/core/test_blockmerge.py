"""Unit tests for Algorithm 1 (ValidateMergeBlock)."""

from repro.common.config import CRDTConfig
from repro.common.serialization import from_bytes, to_bytes
from repro.common.types import ReadItem, ReadWriteSet, ValidationCode, Version, WriteItem
from repro.core.blockmerge import validate_merge_block
from repro.fabric.block import GENESIS_PREVIOUS_HASH, Block
from repro.fabric.statedb import StateDB

from ..fabric.helpers import build_peer, endorsed_tx, write_rwset


def crdt_tx(peer, nonce, key, value, reads=()):
    return endorsed_tx(peer, write_rwset((key, value), reads=reads, crdt=True), nonce)


def build_block(peer, txs):
    return Block.build(peer.ledger.height, peer.ledger.last_hash, tuple(txs))


def run_algorithm1(peer, txs, config=CRDTConfig(), precodes=None):
    block = build_block(peer, txs)
    codes = precodes if precodes is not None else [None] * len(txs)
    return block, validate_merge_block(block, codes, peer.ledger.state, config)


class TestFirstPass:
    def test_crdt_txs_skip_mvcc(self):
        peer = build_peer()
        txs = [crdt_tx(peer, i, "k", {"l": [str(i)]}) for i in range(3)]
        _, plan = run_algorithm1(peer, txs)
        assert plan.skip_mvcc == frozenset({0, 1, 2})

    def test_non_crdt_txs_left_alone(self):
        peer = build_peer()
        plain = endorsed_tx(peer, write_rwset(("p", {"x": 1})), 1)
        flagged = crdt_tx(peer, 2, "k", {"l": ["a"]})
        _, plan = run_algorithm1(peer, [plain, flagged])
        assert plan.skip_mvcc == frozenset({1})
        assert 0 not in plan.replacement_writes

    def test_endorsement_failed_txs_excluded(self):
        """Only transactions passing endorsement validation are merged
        (the paper's definition of valid transactions, §4.2)."""

        peer = build_peer()
        txs = [crdt_tx(peer, i, "k", {"l": [str(i)]}) for i in range(2)]
        _, plan = run_algorithm1(
            peer, txs, precodes=[ValidationCode.ENDORSEMENT_POLICY_FAILURE, None]
        )
        assert plan.skip_mvcc == frozenset({1})
        merged = from_bytes(plan.replacement_writes[1][0].value)
        assert merged == {"l": ["1"]}  # tx 0's value not merged

    def test_merge_work_counters(self):
        peer = build_peer()
        txs = [crdt_tx(peer, i, "k", {"l": [str(i)]}) for i in range(4)]
        _, plan = run_algorithm1(peer, txs)
        assert plan.work["merge_docs"] == 1
        assert plan.work["merge_ops"] > 0
        assert plan.work["merge_scan_steps"] > 0


class TestSecondPass:
    def test_all_crdt_writes_get_identical_merged_value(self):
        """Listing 2: after merging, every transaction's write-set holds the
        same converged value."""

        peer = build_peer()
        txs = [crdt_tx(peer, i, "dev", {"r": [{"t": str(20 + i)}]}) for i in range(3)]
        _, plan = run_algorithm1(peer, txs)
        values = {plan.replacement_writes[i][0].value for i in range(3)}
        assert len(values) == 1
        merged = from_bytes(values.pop())
        assert merged == {"r": [{"t": "20"}, {"t": "21"}, {"t": "22"}]}

    def test_multiple_keys_merged_independently(self):
        peer = build_peer()
        tx_a = crdt_tx(peer, 1, "ka", {"l": ["a"]})
        tx_b = crdt_tx(peer, 2, "kb", {"l": ["b"]})
        _, plan = run_algorithm1(peer, [tx_a, tx_b])
        assert plan.work["merge_docs"] == 2
        assert from_bytes(plan.replacement_writes[0][0].value) == {"l": ["a"]}
        assert from_bytes(plan.replacement_writes[1][0].value) == {"l": ["b"]}

    def test_mixed_writes_only_crdt_replaced(self):
        peer = build_peer()
        rwset = ReadWriteSet.build(
            writes=[
                WriteItem("plain", to_bytes({"p": 1})),
                WriteItem("flagged", to_bytes({"l": ["x"]}), is_crdt=True),
            ]
        )
        tx = endorsed_tx(peer, rwset, 1)
        _, plan = run_algorithm1(peer, [tx])
        new_writes = plan.replacement_writes[0]
        assert new_writes[0].value == to_bytes({"p": 1})  # untouched
        assert from_bytes(new_writes[1].value) == {"l": ["x"]}
        assert new_writes[1].is_crdt


class TestDeterminism:
    def test_two_peers_compute_identical_plans(self):
        peer_a = build_peer(name="peerA")
        peer_b = build_peer(name="peerB", membership=peer_a.membership,
                            chaincodes=peer_a.chaincodes)
        txs = [crdt_tx(peer_a, i, "k", {"l": [{"t": str(i)}]}) for i in range(5)]
        block = build_block(peer_a, txs)
        config = CRDTConfig()
        plan_a = validate_merge_block(block, [None] * 5, peer_a.ledger.state, config)
        plan_b = validate_merge_block(block, [None] * 5, peer_b.ledger.state, config)
        for index in range(5):
            assert (
                plan_a.replacement_writes[index] == plan_b.replacement_writes[index]
            )

    def test_rerunning_merge_on_committed_block_reproduces_effective_writes(self):
        """The world state stays a *replayable* function of the raw chain:
        re-running Algorithm 1 on the stored block regenerates exactly the
        effective writes the peer applied."""

        from repro.core.peer import CRDTPeer

        peer = build_peer(peer_cls=CRDTPeer)
        txs = [crdt_tx(peer, i, "k", {"l": [str(i)]}) for i in range(4)]
        block = build_block(peer, txs)
        committed = peer.validate_and_commit(block)
        fresh_state = StateDB()
        replan = validate_merge_block(block, [None] * 4, fresh_state, CRDTConfig())
        regenerated = []
        for tx_index, tx in enumerate(block.transactions):
            for write in replan.replacement_writes.get(tx_index, tx.rwset.writes):
                regenerated.append((tx_index, write))
        assert tuple(regenerated) == committed.effective_writes


class TestBadPayloads:
    def test_unparseable_value_forces_bad_payload(self):
        peer = build_peer()
        rwset = ReadWriteSet.build(writes=[WriteItem("k", b"\xff\xfe", is_crdt=True)])
        bad = endorsed_tx(peer, rwset, 1)
        good = crdt_tx(peer, 2, "k", {"l": ["ok"]})
        _, plan = run_algorithm1(peer, [bad, good])
        assert plan.forced_codes == {0: ValidationCode.BAD_PAYLOAD}
        assert plan.skip_mvcc == frozenset({1})
        assert from_bytes(plan.replacement_writes[1][0].value) == {"l": ["ok"]}

    def test_non_object_value_forces_bad_payload(self):
        peer = build_peer()
        rwset = ReadWriteSet.build(
            writes=[WriteItem("k", to_bytes(["array", "top"]), is_crdt=True)]
        )
        tx = endorsed_tx(peer, rwset, 1)
        _, plan = run_algorithm1(peer, [tx])
        assert plan.forced_codes == {0: ValidationCode.BAD_PAYLOAD}

    def test_kind_mix_on_one_key_rejected(self):
        from repro.crdt import GCounter
        from repro.crdt.registry import crdt_to_dict_envelope

        peer = build_peer()
        json_tx = crdt_tx(peer, 1, "k", {"l": ["x"]})
        envelope_tx = crdt_tx(
            peer, 2, "k", crdt_to_dict_envelope(GCounter().increment("a"))
        )
        _, plan = run_algorithm1(peer, [json_tx, envelope_tx])
        assert plan.skip_mvcc == frozenset({0})
        assert plan.forced_codes == {1: ValidationCode.BAD_PAYLOAD}


class TestSeeding:
    def test_literal_algorithm_starts_empty(self):
        peer = build_peer()
        peer.ledger.state.apply_write(
            "k", to_bytes({"l": ["committed"]}), Version(0, 0)
        )
        tx = crdt_tx(peer, 1, "k", {"l": ["new"]})
        _, plan = run_algorithm1(peer, [tx], config=CRDTConfig(seed_from_state=False))
        assert from_bytes(plan.replacement_writes[0][0].value) == {"l": ["new"]}

    def test_seeded_merge_includes_committed_state(self):
        peer = build_peer()
        peer.ledger.state.apply_write(
            "k", to_bytes({"l": ["committed"]}), Version(0, 0)
        )
        tx = crdt_tx(peer, 1, "k", {"l": ["new"]})
        _, plan = run_algorithm1(peer, [tx], config=CRDTConfig(seed_from_state=True))
        merged = from_bytes(plan.replacement_writes[0][0].value)
        assert merged == {"l": ["committed", "new"]}
