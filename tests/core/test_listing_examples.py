"""The paper's Listings 1–4, reproduced end to end through the peer."""

from repro.common.serialization import from_bytes
from repro.core.peer import CRDTPeer
from repro.fabric.block import Block

from ..fabric.helpers import build_peer, endorsed_tx, write_rwset


def test_listing_1_to_2_through_the_commit_path():
    """Two CRDT transactions write disjoint temperature readings under
    'Device1'; after Algorithm 1, both write-sets carry the merged value
    and that value is committed (§5.1, Listings 1 and 2)."""

    peer = build_peer(peer_cls=CRDTPeer)
    tx1 = endorsed_tx(
        peer,
        write_rwset(("Device1", {"tempReadings": [{"temperature": "15"}]}), crdt=True),
        nonce=1,
    )
    tx2 = endorsed_tx(
        peer,
        write_rwset(("Device1", {"tempReadings": [{"temperature": "20"}]}), crdt=True),
        nonce=2,
    )
    block = Block.build(0, peer.ledger.last_hash, (tx1, tx2))
    committed = peer.validate_and_commit(block)

    expected = {"tempReadings": [{"temperature": "15"}, {"temperature": "20"}]}
    # Listing 2: "The write-set of Transaction 2 is identical to the
    # write-set of Transaction 1."
    writes = dict(committed.effective_writes)
    assert from_bytes(writes[0].value) == expected
    assert from_bytes(writes[1].value) == expected
    assert from_bytes(peer.ledger.state.get_value("Device1")) == expected


def test_listing_3_shape_through_commit():
    peer = build_peer(peer_cls=CRDTPeer)
    payload = {
        "deviceID": "e23df70a",
        "temperatureReadings": [
            {"temperature": 25},
            {"temperature": 30},
            {"temperature": 15},
        ],
    }
    tx = endorsed_tx(peer, write_rwset(("dev", payload), crdt=True), 1)
    peer.validate_and_commit(Block.build(0, peer.ledger.last_hash, (tx,)))
    committed = from_bytes(peer.ledger.state.get_value("dev"))
    assert committed["deviceID"] == "e23df70a"
    assert [r["temperature"] for r in committed["temperatureReadings"]] == [
        "25", "30", "15",
    ]


def test_listing_4_nested_complexity_payload():
    from repro.workload.iot import nested_payload

    payload = nested_payload(3, 3, 10, sequence=0)
    assert set(payload) == {"temperatureRoom1", "temperatureRoom2", "temperatureRoom3"}
    room = payload["temperatureRoom1"]
    # depth 3: list -> map -> list -> map-free leaf via nested levels
    assert isinstance(room, list) and isinstance(room[0], dict)
    (inner_key, inner_value), = room[0].items()
    assert isinstance(inner_value, list)

    peer = build_peer(peer_cls=CRDTPeer)
    tx1 = endorsed_tx(peer, write_rwset(("room", nested_payload(3, 3, 10, 0)), crdt=True), 1)
    tx2 = endorsed_tx(peer, write_rwset(("room", nested_payload(3, 3, 20, 1)), crdt=True), 2)
    peer.validate_and_commit(Block.build(0, peer.ledger.last_hash, (tx1, tx2)))
    committed = from_bytes(peer.ledger.state.get_value("room"))
    # Both transactions' readings survive under every room key.
    for room_key in committed:
        assert len(committed[room_key]) == 2
