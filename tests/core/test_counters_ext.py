"""Tests for the counters extension (future work §9 / FAB-10711)."""

import pytest

from repro.common.errors import ChaincodeError
from repro.common.types import ValidationCode
from repro.core.counters import VotingChaincode, increment_counter, adjust_pn_counter
from repro.fabric.chaincode import ShimStub
from repro.fabric.statedb import StateDB

from ..conftest import small_config
from repro.core.network import crdt_network


class TestShimHelpers:
    def test_increment_counter_from_empty(self):
        stub = ShimStub(StateDB(), "tx1")
        total = increment_counter(stub, "hits", actor="client0", amount=3)
        assert total == 3
        write = stub.build_rwset().writes[0]
        assert write.is_crdt

    def test_negative_gcounter_increment_rejected(self):
        stub = ShimStub(StateDB(), "tx1")
        with pytest.raises(ChaincodeError):
            increment_counter(stub, "hits", actor="c", amount=-1)

    def test_pn_counter_decrement(self):
        stub = ShimStub(StateDB(), "tx1")
        assert adjust_pn_counter(stub, "bal", actor="c", delta=5) == 5
        stub2 = ShimStub(StateDB(), "tx2")
        assert adjust_pn_counter(stub2, "bal", actor="c", delta=-2) == -2

    def test_non_envelope_value_rejected(self):
        from repro.common.serialization import to_bytes
        from repro.common.types import Version
        from repro.core.counters import read_crdt

        db = StateDB()
        db.apply_write("k", to_bytes({"plain": "json"}), Version(0, 0))
        stub = ShimStub(db, "tx1")
        with pytest.raises(ChaincodeError):
            read_crdt(stub, "k")


class TestVotingEndToEnd:
    def _network(self):
        network = crdt_network(small_config(max_message_count=25, crdt_enabled=True))
        network.deploy(VotingChaincode())
        return network

    def test_concurrent_votes_all_count(self):
        network = self._network()
        tx_ids = []
        for voter in range(9):
            option = ["red", "green", "blue"][voter % 3]
            tx_ids.append(
                network.invoke("voting", "vote", ["poll", option, f"v{voter}"])
            )
        network.flush()
        assert all(network.status_of(t) is ValidationCode.VALID for t in tx_ids)
        tally = network.query("voting", "tally", ["poll"])
        assert tally == {"red": 3, "green": 3, "blue": 3}

    def test_votes_accumulate_across_blocks(self):
        network = self._network()
        for round_num in range(3):
            for voter in range(4):
                network.invoke(
                    "voting", "vote", ["poll", "yes", f"r{round_num}v{voter}"]
                )
            network.flush()
        tally = network.query("voting", "tally", ["poll"])
        assert tally == {"yes": 12}

    def test_same_voter_repeated_votes_count_via_actor_entries(self):
        network = self._network()
        for _ in range(3):
            network.invoke("voting", "vote", ["poll", "yes", "alice"])
            network.flush()
        tally = network.query("voting", "tally", ["poll"])
        assert tally == {"yes": 3}

    def test_all_peers_agree_on_tally(self):
        network = self._network()
        for voter in range(6):
            network.invoke("voting", "vote", ["poll", "x", f"v{voter}"])
        network.flush()
        network.assert_states_converged()
