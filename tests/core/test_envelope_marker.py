"""Regression tests for the explicit envelope marker (ISSUE 2, satellite 1).

Before the marker, ``is_crdt_envelope`` recognised envelopes purely by the
exact key set ``{"crdt", "state"}`` — so ordinary user JSON shaped that way
was misrouted into the state-CRDT merge path and invalidated the
transaction with ``BAD_PAYLOAD``.  Now envelopes carry ``$fabriccrdt`` and
legacy envelopes are only accepted when the type tag is actually
registered.
"""

import pytest

from repro.common.config import CRDTConfig
from repro.common.errors import MergeTypeError
from repro.core.jsonmerge import init_empty_crdt, is_crdt_envelope, merge_crdt
from repro.crdt.base import ENVELOPE_MARKER
from repro.crdt.gcounter import GCounter
from repro.crdt.registry import crdt_from_dict_envelope, crdt_to_dict_envelope
from repro.gateway import Gateway


class TestRecognition:
    def test_new_envelopes_carry_the_marker(self):
        envelope = crdt_to_dict_envelope(GCounter().increment("a"))
        assert envelope[ENVELOPE_MARKER] == 1
        assert is_crdt_envelope(envelope)

    def test_user_json_with_unregistered_type_tag_is_plain_data(self):
        # Exactly the ambiguous shape: two keys named crdt/state, but the
        # "type" is just a user string.  Must merge as a JSON document.
        value = {"crdt": "certainly", "state": "california"}
        assert not is_crdt_envelope(value)
        merged = init_empty_crdt("k", value, actor="b1")
        assert merged.document is not None  # JSON CRDT, not a state CRDT
        merge_crdt(merged, value, CRDTConfig())
        assert merged.values_merged == 1

    def test_user_json_with_non_string_crdt_key_is_plain_data(self):
        assert not is_crdt_envelope({"crdt": {"nested": 1}, "state": 2})

    def test_legacy_envelope_with_registered_type_still_reads(self):
        legacy = {"crdt": "g-counter", "state": GCounter().increment("a", 3).to_dict()}
        assert is_crdt_envelope(legacy)
        assert crdt_from_dict_envelope(legacy).value() == 3

    def test_extra_keys_without_marker_stay_plain(self):
        assert not is_crdt_envelope({"crdt": "g-counter", "state": {}, "extra": 1})

    def test_marked_envelope_with_unknown_version_rejected(self):
        bad = {ENVELOPE_MARKER: 99, "crdt": "g-counter", "state": {"entries": {}}}
        assert is_crdt_envelope(bad)
        with pytest.raises(MergeTypeError, match="version"):
            crdt_from_dict_envelope(bad)


class TestEndToEnd:
    def test_envelope_shaped_user_json_commits_as_crdt_write(self, crdt_net):
        """The historical failure: this payload was BAD_PAYLOAD before."""

        import json

        from repro.workload.iot import encode_call

        contract = Gateway.connect(crdt_net).get_contract("iot")
        contract.submit("populate", json.dumps({"keys": ["dev"]}))
        call = encode_call(
            read_keys=["dev"],
            write_keys=["dev"],
            payload={"crdt": "userfield", "state": "userdata"},
            crdt=True,
        )
        tx = contract.submit_async("record", call)
        status = tx.commit_status()
        assert status.succeeded, status.code
        committed = crdt_net.state_of("dev")
        assert committed["crdt"] == "userfield"
        assert committed["state"] == "userdata"

    def test_legacy_committed_envelope_seeds_new_merges(self, local_seeded_network):
        """Counters committed in the pre-marker format keep accumulating."""

        network, contract = local_seeded_network
        assert contract.submit("vote", "poll", "yes", "alice")["observed_total"] == 4


@pytest.fixture
def local_seeded_network():
    """A network whose state already holds a *legacy-format* counter."""

    from repro.common.serialization import to_bytes
    from repro.common.types import Version
    from repro.core.counters import VotingChaincode
    from repro.core.network import crdt_network

    from ..conftest import small_config

    network = crdt_network(
        small_config(max_message_count=5, crdt_enabled=True, num_orgs=1, peers_per_org=1)
    )
    network.deploy(VotingChaincode())
    legacy = {"crdt": "g-counter", "state": GCounter().increment("seed", 3).to_dict()}
    for peer in network.peers:
        peer.ledger.state.apply_write("vote/poll/yes", to_bytes(legacy), Version(0, 0))
    return network, Gateway.connect(network).get_contract("voting")
