"""End-to-end tests for the CRDT peer: the paper's core requirements.

§4.2 requirements checked here: *no failure* (every endorsement-valid CRDT
transaction commits), *no update loss* (all written readings survive the
merge), *compatibility* (non-CRDT transactions behave exactly as on Fabric),
plus determinism across peers.
"""

import json

from repro.common.config import CRDTConfig
from repro.common.serialization import from_bytes
from repro.common.types import ValidationCode
from repro.core.peer import CRDTPeer
from repro.fabric.block import Block
from repro.workload.iot import IoTChaincode, encode_call, reading_payload

from ..conftest import small_config
from ..fabric.helpers import build_peer, endorsed_tx, seed_block, write_rwset
from repro.core.network import crdt_network


def crdt_peer(**kwargs):
    return build_peer(peer_cls=CRDTPeer, **kwargs)


def make_block(peer, txs):
    return Block.build(peer.ledger.height, peer.ledger.last_hash, tuple(txs))


class TestNoFailureRequirement:
    def test_all_conflicting_crdt_txs_commit(self):
        peer = crdt_peer()
        versions = seed_block(peer, {"hot": {"tempReadings": []}})
        txs = [
            endorsed_tx(
                peer,
                write_rwset(
                    ("hot", {"tempReadings": [{"t": str(i), "seq": str(i)}]}),
                    reads=(("hot", versions["hot"]),),
                    crdt=True,
                ),
                nonce=i,
            )
            for i in range(10)
        ]
        committed = peer.validate_and_commit(make_block(peer, txs))
        assert committed.metadata.valid_count == 10
        assert committed.metadata.invalid_count == 0

    def test_stale_reads_do_not_fail_crdt_txs(self):
        peer = crdt_peer()
        stale = seed_block(peer, {"hot": {"l": []}})["hot"]
        first = endorsed_tx(
            peer, write_rwset(("hot", {"l": ["a"]}), reads=(("hot", stale),), crdt=True), 1
        )
        peer.validate_and_commit(make_block(peer, [first]))
        # Same (now outdated) read version: vanilla would reject, CRDT commits.
        second = endorsed_tx(
            peer, write_rwset(("hot", {"l": ["b"]}), reads=(("hot", stale),), crdt=True), 2
        )
        committed = peer.validate_and_commit(make_block(peer, [second]))
        assert committed.metadata.code_for(0) is ValidationCode.VALID

    def test_endorsement_failures_still_fail(self):
        """No-failure covers *valid* transactions only: endorsement policy
        violations are still rejected (§4.2)."""

        peer = crdt_peer()
        tx = endorsed_tx(peer, write_rwset(("k", {"l": ["x"]}), crdt=True), 1)
        stripped = type(tx)(
            proposal=tx.proposal, rwset=tx.rwset, endorsements=(),
            chaincode_result=tx.chaincode_result,
        )
        committed = peer.validate_and_commit(make_block(peer, [stripped]))
        assert committed.metadata.code_for(0) is ValidationCode.ENDORSEMENT_POLICY_FAILURE


class TestNoUpdateLossRequirement:
    def test_all_readings_survive_within_block(self):
        peer = crdt_peer()
        txs = [
            endorsed_tx(
                peer,
                write_rwset(("dev", {"r": [{"t": str(i), "seq": str(i)}]}), crdt=True),
                nonce=i,
            )
            for i in range(25)
        ]
        peer.validate_and_commit(make_block(peer, txs))
        committed = from_bytes(peer.ledger.state.get_value("dev"))
        sequences = {item["seq"] for item in committed["r"]}
        assert sequences == {str(i) for i in range(25)}

    def test_duplicate_txids_merge_per_system_model(self):
        """§4.1: 'In the case that duplicate transactions are submitted,
        FabricCRDT also commits duplicate transactions' — the duplicate is
        flagged DUPLICATE_TXID like Fabric, but the *value* is merged
        idempotently, so no update is double-counted."""

        peer = crdt_peer()
        tx = endorsed_tx(peer, write_rwset(("dev", {"r": ["x"]}), crdt=True), 1)
        committed = peer.validate_and_commit(make_block(peer, [tx, tx]))
        assert committed.metadata.code_for(0) is ValidationCode.VALID
        assert committed.metadata.code_for(1) is ValidationCode.DUPLICATE_TXID
        assert from_bytes(peer.ledger.state.get_value("dev")) == {"r": ["x"]}


class TestCompatibility:
    def test_non_crdt_txs_mvcc_validated_in_same_block(self):
        peer = crdt_peer()
        versions = seed_block(peer, {"plain": {"v": 0}, "hot": {"l": []}})
        crdt_txs = [
            endorsed_tx(
                peer, write_rwset(("hot", {"l": [str(i)]}), crdt=True), nonce=i
            )
            for i in range(2)
        ]
        stale = versions["plain"]
        plain_writer = endorsed_tx(
            peer, write_rwset(("plain", {"v": 1}), reads=(("plain", stale),)), 10
        )
        plain_stale = endorsed_tx(
            peer, write_rwset(("plain", {"v": 2}), reads=(("plain", stale),)), 11
        )
        committed = peer.validate_and_commit(
            make_block(peer, [crdt_txs[0], plain_writer, plain_stale, crdt_txs[1]])
        )
        assert committed.metadata.code_for(0) is ValidationCode.VALID
        assert committed.metadata.code_for(1) is ValidationCode.VALID
        assert committed.metadata.code_for(2) is ValidationCode.MVCC_READ_CONFLICT
        assert committed.metadata.code_for(3) is ValidationCode.VALID


class TestCrossPeerDeterminism:
    def test_peers_commit_byte_identical_states(self, crdt_net):
        crdt_net.invoke("iot", "populate", [json.dumps({"keys": ["hot"]})])
        crdt_net.flush()
        for i in range(7):
            arg = encode_call(
                ["hot"], ["hot"], reading_payload("hot", 20 + i, i), crdt=True
            )
            crdt_net.invoke("iot", "record", [arg], client_index=i % 4)
        crdt_net.flush()
        crdt_net.assert_states_converged()
        for peer in crdt_net.peers:
            rebuilt = peer.ledger.rebuild_state()
            assert rebuilt.snapshot_versions() == peer.ledger.state.snapshot_versions()

    def test_merged_value_reflects_block_order(self, crdt_net):
        crdt_net.invoke("iot", "populate", [json.dumps({"keys": ["hot"]})])
        crdt_net.flush()
        for i in range(3):
            arg = encode_call(["hot"], ["hot"], reading_payload("hot", 30 + i, i), crdt=True)
            crdt_net.invoke("iot", "record", [arg])
        crdt_net.flush()
        state = crdt_net.state_of("hot")
        assert [r["temperature"] for r in state["tempReadings"]] == ["30", "31", "32"]


class TestStatsAccounting:
    def test_merge_counters_accumulate(self):
        peer = crdt_peer()
        txs = [
            endorsed_tx(peer, write_rwset(("k", {"l": [str(i)]}), crdt=True), nonce=i)
            for i in range(3)
        ]
        peer.validate_and_commit(make_block(peer, txs))
        assert peer.stats.get("crdt_blocks_merged") == 1
        assert peer.stats.get("crdt_txs_merged") == 3
        assert peer.stats.get("merge_ops_total") > 0
