"""Tests for the Algorithm 2 wrapper and CRDT-kind detection."""

import pytest

from repro.common.config import CRDTConfig
from repro.common.errors import MergeTypeError, UnsupportedValueError
from repro.common.serialization import from_bytes
from repro.core.jsonmerge import (
    init_empty_crdt,
    is_crdt_envelope,
    merge_crdt,
    merge_options,
    merge_value_bytes,
)
from repro.crdt import GCounter, ORSet
from repro.crdt.registry import crdt_to_dict_envelope


class TestKindDetection:
    def test_json_object_is_not_envelope(self):
        assert not is_crdt_envelope({"deviceID": "x"})

    def test_envelope_detected(self):
        assert is_crdt_envelope(crdt_to_dict_envelope(GCounter()))

    def test_envelope_requires_exact_keys(self):
        assert not is_crdt_envelope({"crdt": "g-counter"})
        assert not is_crdt_envelope({"crdt": "g-counter", "state": {}, "extra": 1})

    def test_init_json_kind(self):
        merged = init_empty_crdt("k", {"a": "1"}, actor="b0")
        assert merged.kind == "json"
        assert merged.document is not None

    def test_init_envelope_kind_starts_empty(self):
        envelope = crdt_to_dict_envelope(GCounter().increment("a", 5))
        merged = init_empty_crdt("k", envelope, actor="b0")
        assert merged.kind == "state"
        assert merged.state_crdt.value() == 0  # InitEmptyCRDT: empty, not 5

    def test_init_scalar_rejected(self):
        with pytest.raises(UnsupportedValueError):
            init_empty_crdt("k", "just a string", actor="b0")


class TestMergeCRDT:
    def test_json_values_accumulate(self):
        merged = init_empty_crdt("k", {"l": ["a"]}, actor="b0")
        config = CRDTConfig()
        ops_first = merge_crdt(merged, {"l": ["a"]}, config)
        ops_second = merge_crdt(merged, {"l": ["b"]}, config)
        assert merged.values_merged == 2
        assert merged.document.to_plain() == {"l": ["a", "b"]}
        assert len(ops_first) > 0 and len(ops_second) > 0

    def test_envelope_values_merge_lattice(self):
        envelope_a = crdt_to_dict_envelope(GCounter().increment("a", 2))
        envelope_b = crdt_to_dict_envelope(GCounter().increment("b", 3))
        merged = init_empty_crdt("k", envelope_a, actor="b0")
        config = CRDTConfig()
        merge_crdt(merged, envelope_a, config)
        merge_crdt(merged, envelope_b, config)
        assert merged.state_crdt.value() == 5

    def test_kind_mismatch_raises(self):
        merged = init_empty_crdt("k", {"l": []}, actor="b0")
        with pytest.raises(MergeTypeError):
            merge_crdt(merged, crdt_to_dict_envelope(GCounter()), CRDTConfig())
        envelope_merged = init_empty_crdt(
            "k", crdt_to_dict_envelope(GCounter()), actor="b0"
        )
        with pytest.raises(MergeTypeError):
            merge_crdt(envelope_merged, {"json": "object"}, CRDTConfig())

    def test_scalar_value_rejected(self):
        merged = init_empty_crdt("k", {"l": []}, actor="b0")
        with pytest.raises(UnsupportedValueError):
            merge_crdt(merged, "scalar", CRDTConfig())

    def test_merge_value_bytes_decodes(self):
        from repro.common.serialization import to_bytes

        merged = init_empty_crdt("k", {"l": []}, actor="b0")
        merge_value_bytes(merged, to_bytes({"l": ["x"]}), CRDTConfig())
        assert merged.document.to_plain() == {"l": ["x"]}


class TestCommittedBytes:
    def test_json_commits_plain_value(self):
        merged = init_empty_crdt("k", {"l": ["a"]}, actor="b0")
        merge_crdt(merged, {"l": ["a"]}, CRDTConfig())
        committed = from_bytes(merged.to_committed_bytes())
        assert committed == {"l": ["a"]}
        assert "crdt" not in committed  # metadata stripped

    def test_envelope_commits_envelope(self):
        envelope = crdt_to_dict_envelope(GCounter().increment("a", 1))
        merged = init_empty_crdt("k", envelope, actor="b0")
        merge_crdt(merged, envelope, CRDTConfig())
        committed = from_bytes(merged.to_committed_bytes())
        assert committed["crdt"] == "g-counter"  # envelopes keep their metadata

    def test_envelope_type_preserved(self):
        envelope = crdt_to_dict_envelope(ORSet().add("x", "t1"))
        merged = init_empty_crdt("k", envelope, actor="b0")
        merge_crdt(merged, envelope, CRDTConfig())
        committed = from_bytes(merged.to_committed_bytes())
        assert committed["crdt"] == "or-set"


class TestOptions:
    def test_merge_options_translation(self):
        config = CRDTConfig(dedup_identical=False, stringify_scalars=False)
        options = merge_options(config)
        assert not options.dedup_identical
        assert not options.stringify_scalars
