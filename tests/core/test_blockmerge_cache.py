"""The per-block decode cache in ValidateMergeBlock.

Within one block, byte-identical CRDT payloads (hot-key workloads, repeated
committed-state seed reads) are deserialized once instead of once per
transaction — with no effect on the merged result.
"""

from repro.common.config import CRDTConfig
from repro.common.serialization import from_bytes
from repro.core.blockmerge import validate_merge_block

from ..fabric.helpers import build_peer, seed_state
from .test_blockmerge import build_block, crdt_tx, run_algorithm1


class TestDecodeCache:
    def test_identical_payloads_decoded_once(self):
        peer = build_peer()
        txs = [crdt_tx(peer, i, "hot", {"l": ["same"]}) for i in range(5)]
        _, plan = run_algorithm1(peer, txs)
        # First sighting decodes; the four byte-identical repeats hit.
        assert plan.work["decode_cache_misses"] == 1
        assert plan.work["decode_cache_hits"] == 4

    def test_distinct_payloads_all_miss(self):
        peer = build_peer()
        txs = [crdt_tx(peer, i, "hot", {"l": [str(i)]}) for i in range(5)]
        _, plan = run_algorithm1(peer, txs)
        assert plan.work["decode_cache_misses"] == 5
        assert plan.work["decode_cache_hits"] == 0

    def test_seed_read_goes_through_cache(self):
        peer = build_peer()
        seed_state(peer, "hot", {"l": ["committed"]})
        config = CRDTConfig(seed_from_state=True)
        txs = [crdt_tx(peer, i, "hot", {"l": [f"v{i}"]}) for i in range(3)]
        _, plan = run_algorithm1(peer, txs, config=config)
        # 3 distinct tx payloads + 1 committed value = 4 decodes.
        assert plan.work["decode_cache_misses"] == 4

    def test_cached_decode_changes_nothing(self):
        """Byte-identical payloads merge to the same result as distinct
        decodes of the same bytes would (the cache is semantically inert)."""

        peer_cached = build_peer()
        peer_control = build_peer()
        config = CRDTConfig()
        repeated = [{"l": ["x"]}, {"l": ["x"]}, {"l": ["y"]}]
        txs_a = [crdt_tx(peer_cached, i, "k", value) for i, value in enumerate(repeated)]
        block_a = build_block(peer_cached, txs_a)
        plan_a = validate_merge_block(
            block_a, [None] * 3, peer_cached.ledger.state, config
        )
        # The control peer sees the same values via distinct byte strings
        # (different tx nonces force fresh envelopes but same write values).
        txs_b = [crdt_tx(peer_control, 10 + i, "k", value) for i, value in enumerate(repeated)]
        block_b = build_block(peer_control, txs_b)
        plan_b = validate_merge_block(
            block_b, [None] * 3, peer_control.ledger.state, config
        )
        merged_a = from_bytes(plan_a.replacement_writes[2][0].value)
        merged_b = from_bytes(plan_b.replacement_writes[2][0].value)
        assert merged_a == merged_b == {"l": ["x", "y"]}
