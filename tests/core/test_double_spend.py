"""The paper's §6 limitation: asset transfers must NOT be modelled as CRDTs.

"FabricCRDT skips the MVCC validation, merges the transactions' values, and
successfully commits all of the attacker's transactions" — we reproduce the
double-spend on FabricCRDT and show vanilla Fabric rejects it.
"""

import json

from repro.common.types import Json, ValidationCode
from repro.fabric.chaincode import Chaincode, ShimStub

from ..conftest import small_config
from repro.core.network import crdt_network, vanilla_network


class AssetChaincode(Chaincode):
    """A deliberately naive asset-transfer chaincode.

    ``transfer`` reads the asset, checks ownership, and writes the new
    owner.  ``crdt`` switches the write to ``put_crdt`` — the anti-pattern
    §6 warns about.
    """

    name = "assets"

    def fn_create(self, stub: ShimStub, asset_id: str, owner: str) -> Json:
        stub.put_state(asset_id, {"owner": owner})
        return {"created": asset_id}

    def fn_transfer(self, stub: ShimStub, asset_id: str, seller: str, buyer: str, crdt: str) -> Json:
        asset = stub.get_state(asset_id)
        if asset is None or asset.get("owner") != seller:
            raise ValueError(f"{seller} does not own {asset_id}")
        new_state = {"owner": buyer}
        if crdt == "yes":
            stub.put_crdt(asset_id, new_state)
        else:
            stub.put_state(asset_id, new_state)
        return {"transferred_to": buyer}


def _run_double_spend(network, crdt_flag):
    network.deploy(AssetChaincode())
    network.invoke("assets", "create", ["coin1", "mallory"])
    network.flush()
    # Mallory transfers the same coin to two victims concurrently (both
    # endorsed against the same committed state, same block).
    tx_alice = network.invoke("assets", "transfer", ["coin1", "mallory", "alice", crdt_flag])
    tx_bob = network.invoke("assets", "transfer", ["coin1", "mallory", "bob", crdt_flag])
    network.flush()
    return network.status_of(tx_alice), network.status_of(tx_bob)


class TestVanillaFabricPreventsDoubleSpend:
    def test_only_one_transfer_commits(self):
        network = vanilla_network(small_config(max_message_count=10))
        alice_code, bob_code = _run_double_spend(network, crdt_flag="no")
        codes = sorted([alice_code, bob_code], key=lambda c: c.value)
        assert codes == [ValidationCode.VALID, ValidationCode.MVCC_READ_CONFLICT]


class TestFabricCRDTIsVulnerable:
    def test_both_transfers_commit(self):
        network = crdt_network(small_config(max_message_count=10, crdt_enabled=True))
        alice_code, bob_code = _run_double_spend(network, crdt_flag="yes")
        # The attack the paper warns about: both succeed.
        assert alice_code is ValidationCode.VALID
        assert bob_code is ValidationCode.VALID
        # The final owner is whichever assignment the merge resolved last —
        # deterministic, but both victims saw a successful transfer.
        final_owner = network.state_of("coin1")["owner"]
        assert final_owner in ("alice", "bob")

    def test_non_crdt_transfers_stay_safe_on_fabriccrdt(self):
        """Compatibility: the same chaincode using put_state keeps Fabric's
        protection even on a FabricCRDT network."""

        network = crdt_network(small_config(max_message_count=10, crdt_enabled=True))
        alice_code, bob_code = _run_double_spend(network, crdt_flag="no")
        codes = sorted([alice_code, bob_code], key=lambda c: c.value)
        assert codes == [ValidationCode.VALID, ValidationCode.MVCC_READ_CONFLICT]
