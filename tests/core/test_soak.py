"""Randomized soak: mixed CRDT / non-CRDT traffic, all invariants at once.

Drives a full 3-org × 2-peer FabricCRDT network with randomized interleaved
traffic — CRDT read-modify-writes on hot keys, plain writes on private keys,
random block boundaries — and then checks every global invariant the design
promises (DESIGN.md §7):

* every peer holds an identical world state (convergence);
* every hash chain verifies;
* replaying the chain (with CRDT re-merging via effective writes)
  reproduces the live state byte-for-byte;
* every CRDT transaction committed successfully (no-failure);
* the final document of each hot key contains every reading any CRDT
  transaction ever wrote to it (no-update-loss, with seed_from_state).
"""

import json
import random

from repro.common.config import CRDTConfig
from repro.common.types import ValidationCode
from repro.core.network import crdt_network
from repro.workload.iot import IoTChaincode, encode_call, reading_payload

from ..conftest import small_config

HOT_KEYS = [f"hot-{i}" for i in range(3)]


def build_soak_network():
    config = small_config(
        max_message_count=7,
        crdt_enabled=True,
        crdt=CRDTConfig(seed_from_state=True),
    )
    network = crdt_network(config)
    network.deploy(IoTChaincode())
    network.invoke("iot", "populate", [json.dumps({"keys": HOT_KEYS})])
    network.flush()
    return network


def test_randomized_soak():
    rng = random.Random(2026)
    network = build_soak_network()

    crdt_sequences: dict[str, set[str]] = {key: set() for key in HOT_KEYS}
    crdt_tx_ids: list[str] = []
    plain_tx_ids: list[str] = []
    sequence = 0

    for _ in range(120):
        sequence += 1
        if rng.random() < 0.65:
            # CRDT read-modify-write on a hot key.
            key = rng.choice(HOT_KEYS)
            call = encode_call(
                [key], [key], reading_payload(key, rng.randint(10, 35), sequence),
                crdt=True,
            )
            tx_id = network.invoke(
                "iot", "record", [call], client_index=rng.randrange(4)
            )
            crdt_tx_ids.append(tx_id)
            crdt_sequences[key].add(str(sequence))
        else:
            # Plain write on a private key (never contended).
            key = f"private-{sequence}"
            call = encode_call(
                [], [key], reading_payload(key, rng.randint(10, 35), sequence),
                crdt=False,
            )
            plain_tx_ids.append(
                network.invoke("iot", "record", [call], client_index=rng.randrange(4))
            )
        if rng.random() < 0.15:
            network.flush()  # random block boundary
    network.flush()

    # -- no-failure: every CRDT transaction committed -------------------------
    for tx_id in crdt_tx_ids:
        assert network.status_of(tx_id) is ValidationCode.VALID
    for tx_id in plain_tx_ids:
        assert network.status_of(tx_id) is ValidationCode.VALID

    # -- convergence + chain integrity + replay --------------------------------
    network.assert_states_converged()
    for peer in network.peers:
        assert peer.ledger.verify_chain()
        rebuilt = peer.ledger.rebuild_state()
        assert rebuilt.snapshot_versions() == peer.ledger.state.snapshot_versions()
        for key in rebuilt.keys():
            assert rebuilt.get_value(key) == peer.ledger.state.get_value(key)

    # -- no-update-loss on every hot key ---------------------------------------
    for key in HOT_KEYS:
        committed = network.state_of(key)
        committed_sequences = {r["ts"] for r in committed["tempReadings"]}
        assert committed_sequences >= crdt_sequences[key], (
            f"{key}: lost readings {crdt_sequences[key] - committed_sequences}"
        )


def test_soak_is_deterministic():
    """Two identical soak runs leave identical world states."""

    def run():
        rng = random.Random(7)
        network = build_soak_network()
        for sequence in range(40):
            key = rng.choice(HOT_KEYS)
            call = encode_call(
                [key], [key], reading_payload(key, rng.randint(10, 35), sequence),
                crdt=True,
            )
            network.invoke("iot", "record", [call], client_index=rng.randrange(4))
            if rng.random() < 0.2:
                network.flush()
        network.flush()
        return {key: network.state_of(key) for key in HOT_KEYS}

    assert run() == run()
