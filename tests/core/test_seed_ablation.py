"""The seed-from-state design decision (DESIGN.md §3, decision 1).

Algorithm 1 as written instantiates a *fresh* CRDT per block and merges only
that block's values.  When every transaction in a block was endorsed against
pre-previous-block state (entirely possible under the paper's own latency
argument), the merged value overwrites the newer committed state — an
update-loss anomaly across blocks.  ``seed_from_state=True`` closes it.
"""

from repro.common.config import CRDTConfig
from repro.common.serialization import from_bytes
from repro.core.peer import CRDTPeer
from repro.fabric.block import Block

from ..fabric.helpers import build_peer, endorsed_tx, write_rwset


def _stale_two_block_run(peer):
    """Block 1 writes reading 'a'; block 2's only transaction carries a
    write generated *before* block 1 committed (it contains only 'b')."""

    early_tx_1 = endorsed_tx(peer, write_rwset(("dev", {"r": ["a"]}), crdt=True), 1)
    early_tx_2 = endorsed_tx(peer, write_rwset(("dev", {"r": ["b"]}), crdt=True), 2)
    block1 = Block.build(peer.ledger.height, peer.ledger.last_hash, (early_tx_1,))
    peer.validate_and_commit(block1)
    block2 = Block.build(peer.ledger.height, peer.ledger.last_hash, (early_tx_2,))
    peer.validate_and_commit(block2)
    return from_bytes(peer.ledger.state.get_value("dev"))


class TestLiteralAlgorithmLosesAcrossBlocks:
    def test_update_loss_demonstrated(self):
        peer = build_peer(
            peer_cls=CRDTPeer, crdt_config=CRDTConfig(seed_from_state=False)
        )
        final = _stale_two_block_run(peer)
        assert final == {"r": ["b"]}  # reading 'a' was lost


class TestSeededAlgorithmPreservesUpdates:
    def test_no_update_loss(self):
        peer = build_peer(
            peer_cls=CRDTPeer, crdt_config=CRDTConfig(seed_from_state=True)
        )
        final = _stale_two_block_run(peer)
        assert final == {"r": ["a", "b"]}

    def test_seeding_is_idempotent_for_read_modify_write(self):
        """With read-modify-write payloads (the accumulate chaincode), the
        seeded merge does not duplicate items the writes already carry."""

        peer = build_peer(
            peer_cls=CRDTPeer, crdt_config=CRDTConfig(seed_from_state=True)
        )
        first = endorsed_tx(peer, write_rwset(("dev", {"r": ["a"]}), crdt=True), 1)
        block1 = Block.build(0, peer.ledger.last_hash, (first,))
        peer.validate_and_commit(block1)
        # This writer read {'r': ['a']} and appended 'b' — its payload
        # already carries 'a'; the seeded merge must not double it.
        rmw = endorsed_tx(peer, write_rwset(("dev", {"r": ["a", "b"]}), crdt=True), 2)
        block2 = Block.build(1, peer.ledger.last_hash, (rmw,))
        peer.validate_and_commit(block2)
        assert from_bytes(peer.ledger.state.get_value("dev")) == {"r": ["a", "b"]}


class TestDedupAblation:
    def test_naive_ids_duplicate_under_read_modify_write(self):
        """dedup_identical=False reproduces the duplicate-amplification
        anomaly for overlapping read-modify-write payloads."""

        config = CRDTConfig(dedup_identical=False)
        peer = build_peer(peer_cls=CRDTPeer, crdt_config=config)
        txs = [
            endorsed_tx(peer, write_rwset(("dev", {"r": ["base", str(i)]}), crdt=True), i)
            for i in range(3)
        ]
        block = Block.build(0, peer.ledger.last_hash, tuple(txs))
        peer.validate_and_commit(block)
        final = from_bytes(peer.ledger.state.get_value("dev"))
        assert final["r"].count("base") == 3  # amplified

    def test_content_ids_deduplicate(self):
        peer = build_peer(peer_cls=CRDTPeer, crdt_config=CRDTConfig())
        txs = [
            endorsed_tx(peer, write_rwset(("dev", {"r": ["base", str(i)]}), crdt=True), i)
            for i in range(3)
        ]
        block = Block.build(0, peer.ledger.last_hash, tuple(txs))
        peer.validate_and_commit(block)
        final = from_bytes(peer.ledger.state.get_value("dev"))
        assert final["r"].count("base") == 1
        assert {"0", "1", "2"} <= set(final["r"])
