"""Tests for core."""
