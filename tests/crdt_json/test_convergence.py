"""Property-based convergence tests for the JSON CRDT.

The central CRDT guarantee: applying the same causally-closed set of
operations, in any causality-respecting order, yields the same document.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crdt.json import JsonDocument, MergeOptions, merge_json, replicate

json_leaves = st.one_of(st.text(max_size=5), st.integers(0, 99))
json_objects = st.recursive(
    st.dictionaries(
        st.sampled_from(["a", "b", "c", "d"]), json_leaves, min_size=0, max_size=3
    ),
    lambda children: st.dictionaries(
        st.sampled_from(["a", "b", "c", "d"]),
        st.one_of(json_leaves, children, st.lists(st.one_of(json_leaves, children), max_size=3)),
        max_size=3,
    ),
    max_leaves=12,
)


@settings(max_examples=60, deadline=None)
@given(st.lists(json_objects, min_size=1, max_size=4), st.randoms(use_true_random=False))
def test_shuffled_delivery_converges(values, rng):
    source = JsonDocument("source")
    for value in values:
        merge_json(source, value)

    operations = list(source.op_log)
    rng.shuffle(operations)
    replica = JsonDocument("replica")
    replica.apply_all(operations)
    replica.require_quiescent()
    assert replica.to_plain() == source.to_plain()


@settings(max_examples=60, deadline=None)
@given(st.lists(json_objects, min_size=2, max_size=4))
def test_replication_is_deterministic(values):
    source = JsonDocument("source")
    for value in values:
        merge_json(source, value)
    replica_one = replicate(source, "r1")
    replica_two = replicate(source, "r2")
    assert replica_one.to_plain() == replica_two.to_plain() == source.to_plain()


def _types_compatible(a, b) -> bool:
    """True if no key path holds different JSON types in ``a`` vs ``b``.

    Type-conflicting assigns (a string vs a map under one key) are resolved
    by merge order — deterministically, but order-dependently — so the
    order-independence property below only applies to compatible values.
    """

    if isinstance(a, dict) and isinstance(b, dict):
        return all(
            _types_compatible(a[key], b[key]) for key in set(a) & set(b)
        )
    kind_a = "map" if isinstance(a, dict) else "list" if isinstance(a, list) else "leaf"
    kind_b = "map" if isinstance(b, dict) else "list" if isinstance(b, list) else "leaf"
    return kind_a == kind_b


@settings(max_examples=40, deadline=None)
@given(json_objects, json_objects)
def test_merge_order_preserves_structure_and_list_items(a, b):
    """Merging in either order keeps the same map keys and list-item
    multisets.  Leaf values assigned by both merges are order-resolved
    (the block order is authoritative and identical on every peer), so only
    set/multiset structure is order-independent — no list item or key may
    be lost either way."""

    from hypothesis import assume

    from repro.common.serialization import canonical_json

    assume(_types_compatible(a, b))

    def collect(plain, path, keys, items):
        if isinstance(plain, dict):
            for key, value in plain.items():
                keys.add((path, key))
                collect(value, f"{path}.{key}", keys, items)
        elif isinstance(plain, list):
            for item in plain:
                items.append((path, canonical_json(item)))

    def structure(plain):
        keys: set = set()
        items: list = []
        collect(plain, "$", keys, items)
        return keys, sorted(items)

    doc_ab = JsonDocument("x")
    merge_json(doc_ab, a)
    merge_json(doc_ab, b)
    doc_ba = JsonDocument("x")
    merge_json(doc_ba, b)
    merge_json(doc_ba, a)
    keys_ab, items_ab = structure(doc_ab.to_plain())
    keys_ba, items_ba = structure(doc_ba.to_plain())
    assert keys_ab == keys_ba
    assert items_ab == items_ba


@settings(max_examples=40, deadline=None)
@given(st.lists(json_objects, min_size=1, max_size=3))
def test_merging_same_value_twice_is_idempotent(values):
    doc_once = JsonDocument("x")
    doc_twice = JsonDocument("x")
    for value in values:
        merge_json(doc_once, value)
        merge_json(doc_twice, value)
        merge_json(doc_twice, value)
    assert doc_once.to_plain() == doc_twice.to_plain()


def test_deterministic_interleave_regression():
    """Fixed-seed regression: 20 values merged in two shuffled op orders."""

    source = JsonDocument("s")
    rng = random.Random(99)
    for i in range(20):
        merge_json(
            source,
            {"readings": [{"t": str(rng.randint(0, 50)), "seq": str(i)}]},
        )
    operations = list(source.op_log)
    for seed in range(5):
        shuffled = operations[:]
        random.Random(seed).shuffle(shuffled)
        replica = JsonDocument(f"r{seed}")
        replica.apply_all(shuffled)
        replica.require_quiescent()
        assert replica.to_plain() == source.to_plain()
