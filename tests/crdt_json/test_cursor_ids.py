"""Tests for cursors and operation IDs."""

import pytest

from repro.common.clock import LamportTimestamp
from repro.crdt.json.cursor import Cursor, CursorBuilder, ListStep, MapStep
from repro.crdt.json.ids import CONTENT_COUNTER, content_id, is_content_id


class TestCursor:
    def test_extend_and_parent(self):
        cursor = Cursor().extended(MapStep("a")).extended(MapStep("b"))
        assert len(cursor) == 2
        assert cursor.parent().steps == (MapStep("a"),)

    def test_root_parent_rejected(self):
        with pytest.raises(ValueError):
            Cursor().parent()

    def test_string_form(self):
        cursor = Cursor(
            (MapStep("items"), ListStep(LamportTimestamp(3, "a")), MapStep("t"))
        )
        assert str(cursor) == "$.items[3@a].t"
        assert cursor.path_repr() == str(cursor)


class TestCursorBuilder:
    def test_mirrors_algorithm2_usage(self):
        builder = CursorBuilder()
        builder.add_key("tempReadings")
        snapshot_outer = builder.snapshot()
        builder.add_element(LamportTimestamp(1, "x"))
        assert len(builder) == 2
        builder.remove_last()
        assert builder.snapshot() == snapshot_outer

    def test_remove_from_empty_rejected(self):
        with pytest.raises(ValueError):
            CursorBuilder().remove_last()


class TestContentIds:
    def test_deterministic(self):
        a = content_id("$.l", {"t": "1"}, 0)
        b = content_id("$.l", {"t": "1"}, 0)
        assert a == b

    def test_occurrence_distinguishes(self):
        assert content_id("$.l", "x", 0) != content_id("$.l", "x", 1)

    def test_path_distinguishes(self):
        assert content_id("$.a", "x", 0) != content_id("$.b", "x", 0)

    def test_content_distinguishes(self):
        assert content_id("$.l", "x", 0) != content_id("$.l", "y", 0)

    def test_marker(self):
        assert is_content_id(content_id("$.l", "x", 0))
        assert not is_content_id(LamportTimestamp(1, "peer"))

    def test_counter_constant(self):
        assert content_id("$.l", "x", 0).counter == CONTENT_COUNTER

    def test_negative_occurrence_rejected(self):
        with pytest.raises(ValueError):
            content_id("$.l", "x", -1)
