"""Tests for crdt_json."""
