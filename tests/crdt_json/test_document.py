"""Tests for the JSON CRDT document: local edits, visibility, deletion."""

import pytest

from repro.common.errors import CausalityError, CursorError
from repro.crdt.json import (
    Cursor,
    JsonDocument,
    ListStep,
    MapStep,
    Operation,
    Payload,
)


class TestAssign:
    def test_assign_string_at_root(self):
        doc = JsonDocument("a")
        doc.assign(Cursor(), "name", "value")
        assert doc.to_plain() == {"name": "value"}

    def test_reassign_overwrites(self):
        doc = JsonDocument("a")
        doc.assign(Cursor(), "k", "v1")
        doc.assign(Cursor(), "k", "v2")
        assert doc.to_plain() == {"k": "v2"}

    def test_assign_nested_map(self):
        doc = JsonDocument("a")
        doc.assign_container(Cursor(), "outer", "map")
        doc.assign(Cursor((MapStep("outer"),)), "inner", "deep")
        assert doc.to_plain() == {"outer": {"inner": "deep"}}

    def test_non_string_leaf_rejected(self):
        doc = JsonDocument("a")
        with pytest.raises(TypeError):
            doc.assign(Cursor(), "k", 42)


class TestLists:
    def test_append_order(self):
        doc = JsonDocument("a")
        doc.assign_container(Cursor(), "items", "list")
        cursor = Cursor((MapStep("items"),))
        for value in ("x", "y", "z"):
            doc.append(cursor, Payload.string(value))
        assert doc.to_plain() == {"items": ["x", "y", "z"]}

    def test_insert_after_none_prepends(self):
        doc = JsonDocument("a")
        doc.assign_container(Cursor(), "items", "list")
        cursor = Cursor((MapStep("items"),))
        doc.append(cursor, Payload.string("second"))
        doc.insert_after(cursor, None, Payload.string("first"))
        assert doc.to_plain() == {"items": ["first", "second"]}

    def test_nested_map_in_list(self):
        doc = JsonDocument("a")
        doc.assign_container(Cursor(), "items", "list")
        list_cursor = Cursor((MapStep("items"),))
        insert = doc.append(list_cursor, Payload.empty_map())
        item_cursor = list_cursor.extended(ListStep(insert.id))
        doc.assign(item_cursor, "temperature", "15")
        assert doc.to_plain() == {"items": [{"temperature": "15"}]}


class TestDelete:
    def test_delete_key(self):
        doc = JsonDocument("a")
        doc.assign(Cursor(), "k", "v")
        doc.delete_key(Cursor(), "k")
        assert doc.to_plain() == {}

    def test_delete_missing_key_noop(self):
        doc = JsonDocument("a")
        doc.delete_key(Cursor(), "ghost")
        assert doc.to_plain() == {}

    def test_delete_list_element(self):
        doc = JsonDocument("a")
        doc.assign_container(Cursor(), "items", "list")
        cursor = Cursor((MapStep("items"),))
        first = doc.append(cursor, Payload.string("a"))
        doc.append(cursor, Payload.string("b"))
        doc.delete_elem(cursor, first.id)
        assert doc.to_plain() == {"items": ["b"]}

    def test_concurrent_add_survives_delete(self):
        # Replica A deletes key "k" having observed only op1; replica B's
        # concurrent re-assign (not observed by the delete) must survive.
        source = JsonDocument("src")
        op1 = source.assign(Cursor(), "k", "v1")
        delete = source.delete_key(Cursor(), "k")  # observed == {op1 path ids}
        replica = JsonDocument("replica")
        replica.apply(op1)
        concurrent = replica.assign(Cursor(), "k", "v2")
        replica.apply(delete)
        assert replica.to_plain() == {"k": "v2"}

    def test_resurrection_via_later_assign(self):
        doc = JsonDocument("a")
        doc.assign(Cursor(), "k", "v")
        doc.delete_key(Cursor(), "k")
        doc.assign(Cursor(), "k", "back")
        assert doc.to_plain() == {"k": "back"}


class TestApply:
    def test_duplicate_application_is_noop(self):
        source = JsonDocument("src")
        op = source.assign(Cursor(), "k", "v")
        replica = JsonDocument("rep")
        assert replica.apply(op) is True
        assert replica.apply(op) is False
        assert replica.to_plain() == {"k": "v"}

    def test_missing_deps_buffered(self):
        source = JsonDocument("src")
        op1 = source.assign(Cursor(), "a", "1")
        op2 = source.assign(Cursor(), "b", "2", deps=frozenset({op1.id}))
        replica = JsonDocument("rep")
        assert replica.apply(op2) is False  # buffered
        assert replica.pending_count == 1
        assert replica.to_plain() == {}
        replica.apply(op1)
        assert replica.pending_count == 0
        assert replica.to_plain() == {"a": "1", "b": "2"}

    def test_require_quiescent_raises_on_stuck_ops(self):
        source = JsonDocument("src")
        op1 = source.assign(Cursor(), "a", "1")
        op2 = source.assign(Cursor(), "b", "2", deps=frozenset({op1.id}))
        replica = JsonDocument("rep")
        replica.apply(op2)
        with pytest.raises(CausalityError):
            replica.require_quiescent()

    def test_cursor_through_unknown_list_element_buffers(self):
        source = JsonDocument("src")
        source.assign_container(Cursor(), "items", "list")
        insert = source.append(Cursor((MapStep("items"),)), Payload.empty_map())
        nested = source.assign(
            Cursor((MapStep("items"), ListStep(insert.id))), "k", "v"
        )
        replica = JsonDocument("rep")
        # nested references insert.id in its cursor: buffered until it arrives
        assert replica.apply(nested) is False
        replica.apply_all(source.op_log)
        replica.require_quiescent()
        assert replica.to_plain() == source.to_plain()

    def test_type_mismatch_cursor_raises(self):
        doc = JsonDocument("a")
        doc.assign(Cursor(), "k", "just-a-string")
        bad = Operation(
            id=doc.clock.tick(),
            cursor=Cursor((MapStep("k"), MapStep("nested"))),
            mutation=__import__(
                "repro.crdt.json.mutation", fromlist=["AssignKey"]
            ).AssignKey("x", Payload.string("y")),
        )
        # Descending through "k" creates a map branch beside the string leaf;
        # conversion then resolves the slot by highest op id.
        doc.apply(bad)
        assert doc.to_plain()["k"] == {"nested": {"x": "y"}}


class TestClock:
    def test_clock_advances_past_applied_ops(self):
        source = JsonDocument("src")
        for i in range(5):
            source.assign(Cursor(), f"k{i}", "v")
        replica = JsonDocument("rep")
        replica.apply_all(source.op_log)
        fresh = replica.assign(Cursor(), "mine", "v")
        assert all(fresh.id > op.id for op in source.op_log)

    def test_op_log_in_application_order(self):
        doc = JsonDocument("a")
        doc.assign(Cursor(), "x", "1")
        doc.assign(Cursor(), "y", "2")
        ids = [op.id for op in doc.op_log]
        assert ids == sorted(ids)
