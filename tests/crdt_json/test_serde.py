"""Tests for JSON-CRDT operation serialization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import SerializationError
from repro.crdt.json import Cursor, JsonDocument, MapStep, merge_json
from repro.crdt.json.serde import (
    operation_from_dict,
    operation_to_dict,
    operations_from_bytes,
    operations_to_bytes,
)

json_objects = st.recursive(
    st.dictionaries(st.sampled_from(["a", "b", "c"]), st.text(max_size=4), max_size=3),
    lambda children: st.dictionaries(
        st.sampled_from(["a", "b", "c"]),
        st.one_of(st.text(max_size=4), children,
                  st.lists(st.one_of(st.text(max_size=4), children), max_size=3)),
        max_size=3,
    ),
    max_leaves=10,
)


def sample_ops():
    """One op of every mutation type."""

    doc = JsonDocument("serde")
    ops = merge_json(doc, {"name": "x", "items": [{"k": "v"}, "leaf"]})
    ops.append(doc.delete_key(Cursor(), "name"))
    items_cursor = Cursor((MapStep("items"),))
    insert_op = next(
        op for op in ops if type(op.mutation).__name__ == "InsertAfter"
    )
    ops.append(doc.delete_elem(items_cursor, insert_op.id))
    return ops


class TestRoundtrip:
    def test_every_mutation_type(self):
        for op in sample_ops():
            assert operation_from_dict(operation_to_dict(op)) == op

    def test_op_log_bytes(self):
        ops = sample_ops()
        restored = operations_from_bytes(operations_to_bytes(ops))
        assert restored == ops

    @settings(max_examples=50, deadline=None)
    @given(st.lists(json_objects, min_size=1, max_size=3))
    def test_property_merge_ops_roundtrip(self, values):
        doc = JsonDocument("src")
        for value in values:
            merge_json(doc, value)
        ops = list(doc.op_log)
        restored = operations_from_bytes(operations_to_bytes(ops))
        assert restored == ops

    @settings(max_examples=30, deadline=None)
    @given(st.lists(json_objects, min_size=1, max_size=3))
    def test_replica_built_from_serialized_ops_converges(self, values):
        source = JsonDocument("src")
        for value in values:
            merge_json(source, value)
        wire = operations_to_bytes(list(source.op_log))
        replica = JsonDocument("replica")
        replica.apply_all(operations_from_bytes(wire))
        replica.require_quiescent()
        assert replica.to_plain() == source.to_plain()


class TestErrors:
    def test_malformed_operation(self):
        with pytest.raises(SerializationError):
            operation_from_dict({"id": "1@a"})  # missing fields

    def test_unknown_mutation_type(self):
        with pytest.raises(SerializationError):
            operation_from_dict(
                {"id": "1@a", "deps": [], "cursor": [], "mutation": {"type": "explode"}}
            )

    def test_unknown_cursor_step(self):
        from repro.crdt.json.serde import cursor_from_dict

        with pytest.raises(SerializationError):
            cursor_from_dict([{"teleport": "x"}])

    def test_non_list_op_log(self):
        from repro.common.serialization import to_bytes

        with pytest.raises(SerializationError):
            operations_from_bytes(to_bytes({"not": "a list"}))
