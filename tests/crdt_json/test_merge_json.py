"""Tests for Algorithm 2 (merge a plain JSON object into a document)."""

import pytest

from repro.common.errors import UnsupportedValueError
from repro.crdt.json import JsonDocument, MergeOptions, merge_json


def merged_plain(*values, options=MergeOptions()):
    doc = JsonDocument("peer")
    for value in values:
        merge_json(doc, value, options)
    return doc.to_plain()


class TestListingExamples:
    def test_listing_1_to_2(self):
        """The paper's worked example: disjoint readings both survive."""

        result = merged_plain(
            {"tempReadings": [{"temperature": "15"}]},
            {"tempReadings": [{"temperature": "20"}]},
        )
        assert result == {
            "tempReadings": [{"temperature": "15"}, {"temperature": "20"}]
        }

    def test_listing_3_payload(self):
        result = merged_plain(
            {
                "deviceID": "e23df70a",
                "temperatureReadings": [
                    {"temperature": 25},
                    {"temperature": 30},
                    {"temperature": 15},
                ],
            }
        )
        assert result["deviceID"] == "e23df70a"
        assert [r["temperature"] for r in result["temperatureReadings"]] == [
            "25",
            "30",
            "15",
        ]


class TestDedup:
    def test_read_modify_write_no_duplication(self):
        base = {"l": [{"t": "1"}]}
        extended_a = {"l": [{"t": "1"}, {"t": "2"}]}
        extended_b = {"l": [{"t": "1"}, {"t": "3"}]}
        result = merged_plain(base, extended_a, extended_b)
        assert result == {"l": [{"t": "1"}, {"t": "2"}, {"t": "3"}]}

    def test_identical_items_within_one_value_kept(self):
        # Occurrence indexing: ["a", "a"] is two distinct items.
        assert merged_plain({"l": ["a", "a"]}) == {"l": ["a", "a"]}

    def test_multiset_maximum_across_values(self):
        result = merged_plain({"l": ["a", "a"]}, {"l": ["a"]})
        assert result == {"l": ["a", "a"]}

    def test_naive_mode_duplicates(self):
        options = MergeOptions(dedup_identical=False)
        result = merged_plain({"l": ["x"]}, {"l": ["x", "y"]}, options=options)
        assert result == {"l": ["x", "x", "y"]}

    def test_same_content_different_paths_not_confused(self):
        result = merged_plain({"a": ["x"], "b": ["x"]})
        assert result == {"a": ["x"], "b": ["x"]}


class TestScalars:
    def test_stringify_numbers_and_bools(self):
        result = merged_plain({"n": 42, "f": 2.5, "b": True, "z": None})
        assert result == {"n": "42", "f": "2.5", "b": "true", "z": "null"}

    def test_strict_mode_rejects_scalars(self):
        options = MergeOptions(stringify_scalars=False)
        with pytest.raises(UnsupportedValueError):
            merged_plain({"n": 42}, options=options)

    def test_strict_mode_accepts_strings(self):
        options = MergeOptions(stringify_scalars=False)
        assert merged_plain({"s": "fine"}, options=options) == {"s": "fine"}


class TestStructures:
    def test_nested_lists(self):
        result = merged_plain({"outer": [["a", "b"], ["c"]]})
        assert result == {"outer": [["a", "b"], ["c"]]}

    def test_deeply_nested(self):
        value = {"k": [{"l2": [{"l1": "leaf"}]}]}
        assert merged_plain(value) == value

    def test_map_field_overwrite_across_values(self):
        result = merged_plain({"deviceID": "dev1"}, {"deviceID": "dev1"})
        assert result == {"deviceID": "dev1"}

    def test_top_level_non_object_rejected(self):
        doc = JsonDocument("peer")
        with pytest.raises(UnsupportedValueError):
            merge_json(doc, ["not", "an", "object"])

    def test_non_string_keys_rejected(self):
        doc = JsonDocument("peer")
        with pytest.raises(UnsupportedValueError):
            merge_json(doc, {1: "x"})

    def test_empty_object(self):
        assert merged_plain({}) == {}

    def test_empty_list_value(self):
        assert merged_plain({"l": []}) == {"l": []}


class TestOperations:
    def test_ops_returned_and_applied(self):
        doc = JsonDocument("peer")
        ops = merge_json(doc, {"a": "1", "l": ["x"]})
        # assign a + assign-container l + insert x = 3 operations
        assert len(ops) == 3
        assert all(doc.has_applied(op.id) for op in ops)

    def test_dedup_skips_known_items_without_ops(self):
        doc = JsonDocument("peer")
        merge_json(doc, {"l": ["x"]})
        ops = merge_json(doc, {"l": ["x"]})
        # assign-container for "l" re-emitted, but no insert for "x"
        assert all(op.mutation.__class__.__name__ != "InsertAfter" for op in ops)

    def test_deps_chain(self):
        doc = JsonDocument("peer")
        ops = merge_json(doc, {"a": "1", "b": "2", "c": "3"})
        for previous, current in zip(ops, ops[1:]):
            assert previous.id in current.deps
