"""Tests for the ordering service's block-cutting rules."""

import pytest

from repro.common.config import OrdererConfig
from repro.common.errors import OrderingError
from repro.common.types import ReadWriteSet, WriteItem
from repro.fabric.orderer import OrderingService
from repro.fabric.policy import EndorsementPolicy, or_policy
from repro.fabric.transaction import Proposal, TransactionEnvelope

POLICY = EndorsementPolicy(or_policy("Org1"))


def envelope(nonce, payload_bytes=10):
    proposal = Proposal.create("ch", "cc", "fn", (str(nonce),), "Org1.c", POLICY, nonce)
    return TransactionEnvelope(
        proposal=proposal,
        rwset=ReadWriteSet.build(writes=[WriteItem("k", b"x" * payload_bytes)]),
        endorsements=(),
    )


class TestCountCutting:
    def test_cuts_at_max_message_count(self):
        service = OrderingService(OrdererConfig(max_message_count=3))
        blocks = []
        for i in range(7):
            blocks.extend(service.submit(envelope(i), now=float(i)))
        assert [len(b) for b in blocks] == [3, 3]
        assert service.pending_count == 1
        assert [b.number for b in blocks] == [0, 1]
        assert all(b.cut_reason == "count" for b in blocks)

    def test_block_numbers_and_hash_chain(self):
        service = OrderingService(OrdererConfig(max_message_count=1))
        first = service.submit(envelope(0))[0]
        second = service.submit(envelope(1))[0]
        assert second.header.previous_hash == first.header.hash()
        assert second.verify_integrity(expected_previous_hash=first.header.hash())


class TestByteCutting:
    def test_cuts_before_exceeding_preferred_bytes(self):
        big = envelope(0, payload_bytes=400)
        size = big.byte_size()
        service = OrderingService(
            OrdererConfig(max_message_count=100, preferred_max_bytes=int(size * 2.5))
        )
        assert service.submit(envelope(0, 400), now=0.0) == []
        assert service.submit(envelope(1, 400), now=0.0) == []
        blocks = service.submit(envelope(2, 400), now=1.0)
        assert len(blocks) == 1
        assert len(blocks[0]) == 2  # the pending pair, cut before admitting #3
        assert blocks[0].cut_reason == "bytes"
        assert service.pending_count == 1

    def test_oversized_envelope_gets_own_block(self):
        small = envelope(0, 10)
        service = OrderingService(
            OrdererConfig(max_message_count=100, preferred_max_bytes=small.byte_size() * 3)
        )
        assert service.submit(small) == []
        blocks = service.submit(envelope(1, 5000), now=0.0)
        assert [len(b) for b in blocks] == [1, 1]
        assert blocks[0].transactions[0].tx_id == small.tx_id
        assert blocks[1].transactions[0].tx_id == envelope(1, 5000).tx_id


class TestTimeoutCutting:
    def test_deadline_tracks_first_pending(self):
        service = OrderingService(OrdererConfig(max_message_count=10, batch_timeout_s=2.0))
        assert service.timeout_deadline() is None
        service.submit(envelope(0), now=5.0)
        service.submit(envelope(1), now=6.0)
        assert service.timeout_deadline() == pytest.approx(7.0)

    def test_cut_on_timeout_with_current_epoch(self):
        service = OrderingService(OrdererConfig(max_message_count=10))
        service.submit(envelope(0), now=0.0)
        epoch = service.batch_epoch
        block = service.cut_on_timeout(now=2.0, epoch=epoch)
        assert block is not None and len(block) == 1
        assert block.cut_reason == "timeout"
        assert service.timeout_deadline() is None

    def test_stale_epoch_ignored(self):
        service = OrderingService(OrdererConfig(max_message_count=2))
        service.submit(envelope(0), now=0.0)
        stale_epoch = service.batch_epoch
        service.submit(envelope(1), now=0.5)  # cuts by count, bumps epoch
        assert service.cut_on_timeout(now=2.0, epoch=stale_epoch) is None

    def test_timeout_with_nothing_pending(self):
        service = OrderingService(OrdererConfig())
        assert service.cut_on_timeout(now=2.0, epoch=service.batch_epoch) is None


class TestFlush:
    def test_flush_cuts_remainder(self):
        service = OrderingService(OrdererConfig(max_message_count=10))
        service.submit(envelope(0))
        service.submit(envelope(1))
        block = service.flush(now=9.0)
        assert block is not None and len(block) == 2
        assert block.cut_reason == "flush"
        assert service.flush() is None

    def test_internal_cut_requires_pending(self):
        service = OrderingService(OrdererConfig())
        with pytest.raises(OrderingError):
            service._cut("count", 0.0)


class TestStats:
    def test_counters(self):
        service = OrderingService(OrdererConfig(max_message_count=2))
        for i in range(5):
            service.submit(envelope(i))
        service.flush()
        assert service.stats.get("envelopes_received") == 5
        assert service.stats.get("blocks_cut") == 3
        assert service.stats.get("blocks_cut_count") == 2
        assert service.stats.get("blocks_cut_flush") == 1
