"""Tests for the service-time cost model."""

import pytest

from repro.fabric.costmodel import CostModel, zero_latency_model
from repro.fabric.peer import CommitWork


class TestEndorseTime:
    def test_composition(self):
        model = CostModel(endorse_base_s=0.1, endorse_per_read_s=0.01, endorse_per_write_s=0.002)
        assert model.endorse_time(3, 2) == pytest.approx(0.1 + 0.03 + 0.004)

    def test_capacity(self):
        model = CostModel(
            endorse_base_s=0.1,
            endorse_per_read_s=0.0,
            endorse_per_write_s=0.0,
            endorsement_pool_size=5,
        )
        assert model.endorsement_capacity_tps(1, 1) == pytest.approx(50.0)


class TestCommitTime:
    def test_all_terms_counted(self):
        model = CostModel(
            commit_base_s=1.0,
            vscc_per_tx_s=0.1,
            mvcc_per_read_s=0.01,
            write_per_key_s=0.001,
            write_per_kib_s=0.5,
            merge_per_op_s=0.0001,
            merge_per_scan_step_s=0.00001,
        )
        work = CommitWork(
            tx_count=10,
            vscc_checks=10,
            mvcc_reads=20,
            range_requeries=2,
            writes_applied=10,
            distinct_keys_written=3,
            bytes_written=2048,
            merge_ops=100,
            merge_scan_steps=1000,
        )
        expected = (
            1.0
            + 0.1 * 10
            + 0.01 * 20
            + 0.01 * 2
            + 0.001 * 3
            + 0.5 * 2.0
            + 0.0001 * 100
            + 0.00001 * 1000
        )
        assert model.commit_time(work) == pytest.approx(expected)

    def test_empty_block_costs_base(self):
        model = CostModel()
        assert model.commit_time(CommitWork()) == pytest.approx(model.commit_base_s)

    def test_with_merge_constants(self):
        model = CostModel().with_merge_constants(0.5, 0.25)
        assert model.merge_per_op_s == 0.5
        assert model.merge_per_scan_step_s == 0.25
        # Everything else preserved.
        assert model.endorse_base_s == CostModel().endorse_base_s


class TestZeroLatencyModel:
    def test_everything_is_free(self):
        model = zero_latency_model()
        assert model.endorse_time(5, 5) == 0.0
        work = CommitWork(
            tx_count=100, vscc_checks=100, mvcc_reads=100,
            writes_applied=100, distinct_keys_written=100,
            bytes_written=10**6, merge_ops=10**4, merge_scan_steps=10**5,
        )
        assert model.commit_time(work) == 0.0

    def test_network_latencies_zero(self):
        import random

        model = zero_latency_model()
        rng = random.Random(0)
        assert model.client_to_peer.sample(rng) == 0.0
        assert model.orderer_to_peer.sample(rng) == 0.0
