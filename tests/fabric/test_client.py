"""Tests for client-side endorsement collection and assembly."""

import pytest

from repro.common.errors import EndorsementError
from repro.fabric.chaincode import Chaincode, ChaincodeRegistry, ShimStub
from repro.fabric.client import (
    AssembledTransaction,
    Client,
    EndorsementRoundFailure,
    select_endorsing_orgs,
)
from repro.fabric.identity import MembershipRegistry
from repro.fabric.peer import Peer
from repro.fabric.policy import EndorsementPolicy, and_policy, or_policy

from .helpers import seed_state


class Writer(Chaincode):
    name = "writer"

    def fn_put(self, stub: ShimStub, key: str, value: str) -> dict:
        stub.put_state(key, {"value": value})
        return {"ok": True}

    def fn_read(self, stub: ShimStub, key: str) -> dict:
        return {"value": stub.get_state(key)}

    def fn_boom(self, stub: ShimStub) -> dict:
        raise RuntimeError("chaincode crash")


def build_world(num_orgs=3):
    membership = MembershipRegistry()
    chaincodes = ChaincodeRegistry()
    chaincodes.deploy(Writer())
    peers = [
        Peer(membership.enroll(f"Org{i + 1}", "peer0"), membership, chaincodes)
        for i in range(num_orgs)
    ]
    client = Client(membership.enroll("Org1", "client0"), membership)
    return membership, peers, client


class TestSelectEndorsingOrgs:
    def test_or_picks_single(self):
        policy = EndorsementPolicy(or_policy("Org1", "Org2", "Org3"))
        assert select_endorsing_orgs(policy, ["Org1", "Org2", "Org3"]) == ["Org1"]

    def test_and_picks_all(self):
        policy = EndorsementPolicy(and_policy("Org1", "Org3"))
        assert select_endorsing_orgs(policy, ["Org1", "Org2", "Org3"]) == ["Org1", "Org3"]

    def test_unsatisfiable_raises(self):
        policy = EndorsementPolicy(and_policy("Org1", "Org9"))
        with pytest.raises(EndorsementError):
            select_endorsing_orgs(policy, ["Org1", "Org2"])


class TestEndorsementRound:
    def test_successful_round(self):
        _, peers, client = build_world()
        policy = EndorsementPolicy(or_policy("Org1", "Org2", "Org3"))
        proposal = client.new_proposal("ch", "writer", "put", ("k", "v"), policy)
        outcome = client.endorse_at(proposal, peers[:1])
        assert isinstance(outcome, AssembledTransaction)
        assert outcome.envelope.tx_id == proposal.tx_id
        assert len(outcome.envelope.endorsements) == 1
        assert outcome.envelope.client_signature is not None

    def test_chaincode_error_reported(self):
        _, peers, client = build_world()
        policy = EndorsementPolicy(or_policy("Org1"))
        proposal = client.new_proposal("ch", "writer", "boom", (), policy)
        outcome = client.endorse_at(proposal, peers[:1])
        assert isinstance(outcome, EndorsementRoundFailure)
        assert outcome.failures[0].chaincode_error is not None

    def test_policy_needing_two_orgs(self):
        _, peers, client = build_world()
        policy = EndorsementPolicy(and_policy("Org1", "Org2"))
        proposal = client.new_proposal("ch", "writer", "put", ("k", "v"), policy)
        outcome = client.endorse_at(proposal, peers[:2])
        assert isinstance(outcome, AssembledTransaction)
        assert len(outcome.envelope.endorsements) == 2

    def test_insufficient_orgs_fail(self):
        _, peers, client = build_world()
        policy = EndorsementPolicy(and_policy("Org1", "Org2"))
        proposal = client.new_proposal("ch", "writer", "put", ("k", "v"), policy)
        outcome = client.endorse_at(proposal, peers[:1])
        assert isinstance(outcome, EndorsementRoundFailure)


class TestDivergentResponses:
    def test_largest_consistent_group_wins(self):
        """Peers at different heights return different rwsets; the client
        groups them and picks a policy-satisfying group (SDK behaviour)."""

        _, peers, client = build_world()
        # Make Org2's peer see different committed state for the read.
        seed_state(peers[1], "k", {"value": "divergent"}, 0, 0)
        policy = EndorsementPolicy(or_policy("Org1", "Org2", "Org3"))
        proposal = client.new_proposal("ch", "writer", "read", ("k",), policy)
        outcome = client.endorse_at(proposal, peers)
        assert isinstance(outcome, AssembledTransaction)
        # Org1+Org3 agree (both see the key absent): their group is larger.
        assert len(outcome.responses) == 2
        endorsers = {r.endorser for r in outcome.responses}
        assert endorsers == {"Org1.peer0", "Org3.peer0"}

    def test_divergence_fails_strict_and_policy(self):
        _, peers, client = build_world(num_orgs=2)
        seed_state(peers[1], "k", {"value": "divergent"}, 0, 0)
        policy = EndorsementPolicy(and_policy("Org1", "Org2"))
        proposal = client.new_proposal("ch", "writer", "read", ("k",), policy)
        outcome = client.endorse_at(proposal, peers)
        assert isinstance(outcome, EndorsementRoundFailure)

    def test_no_responses(self):
        _, _, client = build_world()
        policy = EndorsementPolicy(or_policy("Org1"))
        proposal = client.new_proposal("ch", "writer", "put", ("k", "v"), policy)
        outcome = client.assemble(proposal, [])
        assert isinstance(outcome, EndorsementRoundFailure)


class TestNonces:
    def test_distinct_tx_ids_for_identical_calls(self):
        _, peers, client = build_world()
        policy = EndorsementPolicy(or_policy("Org1"))
        first = client.new_proposal("ch", "writer", "put", ("k", "v"), policy)
        second = client.new_proposal("ch", "writer", "put", ("k", "v"), policy)
        assert first.tx_id != second.tx_id
