"""Tests for the ledger: chain integrity, replay, history."""

import pytest

from repro.common.errors import LedgerError
from repro.common.types import ReadWriteSet, ValidationCode, WriteItem
from repro.fabric.block import GENESIS_PREVIOUS_HASH, Block, BlockMetadata, CommittedBlock
from repro.fabric.ledger import Ledger
from repro.fabric.policy import EndorsementPolicy, or_policy
from repro.fabric.transaction import Proposal, TransactionEnvelope

POLICY = EndorsementPolicy(or_policy("Org1"))


def make_tx(nonce, key="k", value=b"v"):
    proposal = Proposal.create("ch", "cc", "fn", (str(nonce),), "Org1.c", POLICY, nonce)
    return TransactionEnvelope(
        proposal=proposal,
        rwset=ReadWriteSet.build(writes=[WriteItem(key, value)]),
        endorsements=(),
    )


def committed_block(number, previous_hash, txs, codes):
    block = Block.build(number, previous_hash, tuple(txs))
    metadata = BlockMetadata(number)
    for index, code in enumerate(codes):
        metadata.mark(index, code)
    return CommittedBlock(block, metadata)


class TestAppend:
    def test_height_and_hash_advance(self):
        ledger = Ledger()
        assert ledger.height == 0
        assert ledger.last_hash == GENESIS_PREVIOUS_HASH
        first = committed_block(0, ledger.last_hash, [make_tx(1)], [ValidationCode.VALID])
        ledger.append_block(first)
        assert ledger.height == 1
        assert ledger.last_hash == first.block.header.hash()

    def test_out_of_order_rejected(self):
        ledger = Ledger()
        with pytest.raises(LedgerError):
            ledger.append_block(
                committed_block(5, ledger.last_hash, [make_tx(1)], [ValidationCode.VALID])
            )

    def test_bad_chain_link_rejected(self):
        ledger = Ledger()
        ledger.append_block(
            committed_block(0, ledger.last_hash, [make_tx(1)], [ValidationCode.VALID])
        )
        with pytest.raises(LedgerError):
            ledger.append_block(
                committed_block(1, b"\x99" * 32, [make_tx(2)], [ValidationCode.VALID])
            )

    def test_tx_lookup(self):
        ledger = Ledger()
        tx = make_tx(1)
        ledger.append_block(
            committed_block(0, ledger.last_hash, [tx], [ValidationCode.MVCC_READ_CONFLICT])
        )
        assert ledger.has_transaction(tx.tx_id)
        assert ledger.transaction_status(tx.tx_id) is ValidationCode.MVCC_READ_CONFLICT
        assert ledger.transaction_status("nope") is None

    def test_block_at(self):
        ledger = Ledger()
        first = committed_block(0, ledger.last_hash, [make_tx(1)], [ValidationCode.VALID])
        ledger.append_block(first)
        assert ledger.block_at(0) is first
        with pytest.raises(LedgerError):
            ledger.block_at(9)

    def test_block_at_rejects_negative_numbers(self):
        """Regression: Python's negative indexing used to silently serve
        blocks from the end of the chain — block numbers are absolute."""

        ledger = Ledger()
        ledger.append_block(
            committed_block(0, ledger.last_hash, [make_tx(1)], [ValidationCode.VALID])
        )
        for number in (-1, -2):
            with pytest.raises(LedgerError, match="non-negative"):
                ledger.block_at(number)


class TestHistoryAndReplay:
    def _ledger_with_writes(self):
        ledger = Ledger()
        tx1, tx2 = make_tx(1, value=b"v1"), make_tx(2, value=b"v2")
        block = committed_block(
            0, ledger.last_hash, [tx1, tx2], [ValidationCode.VALID, ValidationCode.VALID]
        )
        for tx_index, write in block.writes_applied():
            from repro.common.types import Version

            ledger.state.apply_write(write.key, write.value, Version(0, tx_index))
        ledger.append_block(block)
        return ledger, tx1, tx2

    def test_history_records_valid_writes(self):
        ledger, tx1, tx2 = self._ledger_with_writes()
        history = ledger.history_for_key("k")
        assert [mod.tx_id for mod in history] == [tx1.tx_id, tx2.tx_id]
        assert history[-1].value == b"v2"

    def test_rebuild_state_matches_live(self):
        ledger, _, _ = self._ledger_with_writes()
        rebuilt = ledger.rebuild_state()
        assert rebuilt.snapshot_versions() == ledger.state.snapshot_versions()
        assert rebuilt.get_value("k") == ledger.state.get_value("k")

    def test_invalid_tx_writes_not_replayed(self):
        ledger = Ledger()
        tx = make_tx(1)
        block = committed_block(
            0, ledger.last_hash, [tx], [ValidationCode.MVCC_READ_CONFLICT]
        )
        ledger.append_block(block)
        assert ledger.rebuild_state().get_value("k") is None
        assert ledger.history_for_key("k") == ()

    def test_verify_chain(self):
        ledger, _, _ = self._ledger_with_writes()
        assert ledger.verify_chain()

    def test_count_statuses(self):
        ledger = Ledger()
        block = committed_block(
            0,
            ledger.last_hash,
            [make_tx(1), make_tx(2)],
            [ValidationCode.VALID, ValidationCode.MVCC_READ_CONFLICT],
        )
        ledger.append_block(block)
        assert ledger.count_statuses() == {"VALID": 1, "MVCC_READ_CONFLICT": 1}
