"""Tests for the versioned world state and the Mango query subset."""

import pytest

from repro.common.errors import StateError
from repro.common.serialization import to_bytes
from repro.common.types import Version
from repro.fabric.statedb import StateDB, compile_selector


def put(db, key, value, block=0, tx=0):
    db.apply_write(key, to_bytes(value), Version(block, tx))


class TestVersionedStore:
    def test_get_and_version(self):
        db = StateDB()
        put(db, "k", {"a": 1}, block=2, tx=5)
        entry = db.get("k")
        assert entry.version == Version(2, 5)
        assert db.get_version("k") == Version(2, 5)
        assert db.get_value("missing") is None

    def test_overwrite_bumps_version(self):
        db = StateDB()
        put(db, "k", {"a": 1}, block=0, tx=0)
        put(db, "k", {"a": 2}, block=1, tx=3)
        assert db.get_version("k") == Version(1, 3)

    def test_delete_removes_key(self):
        db = StateDB()
        put(db, "k", {"a": 1})
        db.apply_write("k", b"", Version(1, 0), is_delete=True)
        assert "k" not in db
        assert db.get_version("k") is None
        assert "k" not in db.keys()

    def test_delete_missing_is_noop(self):
        db = StateDB()
        db.apply_write("ghost", b"", Version(0, 0), is_delete=True)
        assert len(db) == 0

    def test_keys_sorted(self):
        db = StateDB()
        for key in ("b", "a", "c"):
            put(db, key, {})
        assert db.keys() == ("a", "b", "c")

    def test_apply_batch(self):
        db = StateDB()
        db.apply_batch([("a", b"1", False), ("b", b"2", False)], Version(0, 0))
        assert len(db) == 2


class TestRangeScan:
    def test_half_open_range(self):
        db = StateDB()
        for key in ("a1", "a2", "a3", "b1"):
            put(db, key, {})
        keys = [key for key, _ in db.range_scan("a1", "a3")]
        assert keys == ["a1", "a2"]

    def test_open_end(self):
        db = StateDB()
        for key in ("a", "b", "c"):
            put(db, key, {})
        keys = [key for key, _ in db.range_scan("b", "")]
        assert keys == ["b", "c"]


class TestMangoQueries:
    def _populated(self):
        db = StateDB()
        put(db, "d1", {"type": "sensor", "temp": 20, "loc": {"room": "A"}})
        put(db, "d2", {"type": "sensor", "temp": 30, "loc": {"room": "B"}})
        put(db, "d3", {"type": "gateway", "temp": 25})
        return db

    def test_equality(self):
        db = self._populated()
        assert [k for k, _ in db.rich_query({"type": "sensor"})] == ["d1", "d2"]

    def test_comparison_operators(self):
        db = self._populated()
        assert [k for k, _ in db.rich_query({"temp": {"$gt": 22}})] == ["d2", "d3"]
        assert [k for k, _ in db.rich_query({"temp": {"$lte": 25}})] == ["d1", "d3"]
        assert [k for k, _ in db.rich_query({"temp": {"$ne": 25}})] == ["d1", "d2"]

    def test_dotted_paths(self):
        db = self._populated()
        assert [k for k, _ in db.rich_query({"loc.room": "B"})] == ["d2"]

    def test_in_operator(self):
        db = self._populated()
        assert [k for k, _ in db.rich_query({"temp": {"$in": [20, 25]}})] == ["d1", "d3"]

    def test_and_or_not(self):
        db = self._populated()
        selector = {"$or": [{"temp": 20}, {"type": "gateway"}]}
        assert [k for k, _ in db.rich_query(selector)] == ["d1", "d3"]
        selector = {"$and": [{"type": "sensor"}, {"temp": {"$gt": 25}}]}
        assert [k for k, _ in db.rich_query(selector)] == ["d2"]
        selector = {"$not": {"type": "sensor"}}
        assert [k for k, _ in db.rich_query(selector)] == ["d3"]

    def test_exists(self):
        db = self._populated()
        assert [k for k, _ in db.rich_query({"loc": {"$exists": True}})] == ["d1", "d2"]
        assert [k for k, _ in db.rich_query({"loc": {"$exists": False}})] == ["d3"]

    def test_limit(self):
        db = self._populated()
        assert len(db.rich_query({"temp": {"$gt": 0}}, limit=2)) == 2

    def test_type_mismatch_never_matches(self):
        db = self._populated()
        assert db.rich_query({"type": {"$gt": 5}}) == []

    def test_non_json_values_skipped(self):
        db = self._populated()
        db.apply_write("binary", b"\xff\xfe", Version(1, 0))
        assert len(db.rich_query({"temp": {"$gte": 0}})) == 3

    def test_invalid_selectors_rejected(self):
        with pytest.raises(StateError):
            compile_selector({"$and": "not-a-list"})
        with pytest.raises(StateError):
            compile_selector({"$unknown": []})
        db = self._populated()
        with pytest.raises(StateError):
            db.rich_query({"temp": {"$in": 5}})
