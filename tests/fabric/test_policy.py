"""Tests for endorsement policy expressions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import PolicyError
from repro.fabric.policy import (
    EndorsementPolicy,
    OutOf,
    Principal,
    and_policy,
    majority_policy,
    or_policy,
)

ORGS = ["Org1", "Org2", "Org3"]


class TestCombinators:
    def test_or_any_single_org(self):
        policy = EndorsementPolicy(or_policy(*ORGS))
        assert policy.satisfied_by(["Org2"])
        assert not policy.satisfied_by(["OrgX"])
        assert policy.min_endorsers() == 1

    def test_and_needs_all(self):
        policy = EndorsementPolicy(and_policy(*ORGS))
        assert policy.satisfied_by(ORGS)
        assert not policy.satisfied_by(["Org1", "Org2"])
        assert policy.min_endorsers() == 3

    def test_majority(self):
        policy = EndorsementPolicy(majority_policy(ORGS))
        assert policy.satisfied_by(["Org1", "Org3"])
        assert not policy.satisfied_by(["Org2"])
        assert policy.min_endorsers() == 2

    def test_nested_expression(self):
        # AND(Org1, OR(Org2, Org3))
        expression = OutOf(2, (Principal("Org1"), or_policy("Org2", "Org3")))
        policy = EndorsementPolicy(expression)
        assert policy.satisfied_by(["Org1", "Org3"])
        assert policy.satisfied_by(["Org1", "Org2"])
        assert not policy.satisfied_by(["Org2", "Org3"])
        assert policy.min_endorsers() == 2

    def test_orgs_mentioned(self):
        policy = EndorsementPolicy(and_policy("Org1", "Org2"))
        assert policy.orgs_mentioned() == frozenset({"Org1", "Org2"})

    def test_string_rendering(self):
        assert str(EndorsementPolicy(and_policy("Org1", "Org2"))) == "AND('Org1.member', 'Org2.member')"
        assert str(EndorsementPolicy(or_policy("Org1", "Org2"))) == "OR('Org1.member', 'Org2.member')"
        assert "OutOf(2" in str(EndorsementPolicy(majority_policy(ORGS)))


class TestValidation:
    def test_empty_rules_rejected(self):
        with pytest.raises(PolicyError):
            OutOf(1, ())

    def test_threshold_out_of_range(self):
        with pytest.raises(PolicyError):
            OutOf(0, (Principal("Org1"),))
        with pytest.raises(PolicyError):
            OutOf(3, (Principal("Org1"), Principal("Org2")))


class TestTruthTable:
    @given(st.sets(st.sampled_from(ORGS)))
    def test_out_of_2_matches_counting(self, endorsers):
        policy = EndorsementPolicy(OutOf(2, tuple(Principal(o) for o in ORGS)))
        expected = len(endorsers) >= 2
        assert policy.satisfied_by(endorsers) == expected

    @given(st.sets(st.sampled_from(ORGS + ["OrgX"])), st.integers(1, 3))
    def test_out_of_n_semantics(self, endorsers, threshold):
        policy = EndorsementPolicy(OutOf(threshold, tuple(Principal(o) for o in ORGS)))
        expected = len(endorsers & set(ORGS)) >= threshold
        assert policy.satisfied_by(endorsers) == expected
