"""Helpers for building endorsed transactions against hand-crafted peers."""

from __future__ import annotations

from typing import Optional

from repro.common.hashing import sha256
from repro.common.serialization import to_bytes
from repro.common.types import ReadItem, ReadWriteSet, Version, WriteItem
from repro.fabric.chaincode import ChaincodeRegistry
from repro.fabric.identity import MembershipRegistry
from repro.fabric.peer import Peer
from repro.fabric.policy import EndorsementPolicy, or_policy
from repro.fabric.transaction import (
    Proposal,
    TransactionEnvelope,
    endorsed_payload_bytes,
)


def build_peer(
    org: str = "Org1",
    name: str = "peer0",
    membership: Optional[MembershipRegistry] = None,
    chaincodes: Optional[ChaincodeRegistry] = None,
    peer_cls: type = Peer,
    **peer_kwargs,
) -> Peer:
    membership = membership if membership is not None else MembershipRegistry()
    chaincodes = chaincodes if chaincodes is not None else ChaincodeRegistry()
    identity = membership.enroll(org, name)
    return peer_cls(identity, membership, chaincodes, **peer_kwargs)


def endorsed_tx(
    peer: Peer,
    rwset: ReadWriteSet,
    nonce: int,
    policy: Optional[EndorsementPolicy] = None,
    endorser_orgs: Optional[list[str]] = None,
) -> TransactionEnvelope:
    """A transaction with a hand-crafted rwset, properly signed.

    ``endorser_orgs`` lets tests endorse from several orgs (identities are
    enrolled on demand as ``<org>.endorser``).
    """

    policy = policy if policy is not None else EndorsementPolicy(or_policy(peer.org_name))
    proposal = Proposal.create(
        channel="ch",
        chaincode="cc",
        function="fn",
        args=(str(nonce),),
        creator=f"{peer.org_name}.client0",
        policy=policy,
        nonce=nonce,
    )
    result_bytes = to_bytes(None)
    response_hash = sha256(endorsed_payload_bytes(rwset, result_bytes, None))
    orgs = endorser_orgs if endorser_orgs is not None else [peer.org_name]
    endorsements = []
    for org in orgs:
        endorser = peer.membership.enroll(org, "endorser")
        endorsements.append(peer.membership.sign_as(endorser.qualified_name, response_hash))
    return TransactionEnvelope(
        proposal=proposal,
        rwset=rwset,
        endorsements=tuple(endorsements),
        chaincode_result=result_bytes,
    )


def write_rwset(
    *writes: tuple[str, dict],
    reads: tuple[tuple[str, Optional[Version]], ...] = (),
    crdt: bool = False,
) -> ReadWriteSet:
    return ReadWriteSet.build(
        reads=[ReadItem(key, version) for key, version in reads],
        writes=[WriteItem(key, to_bytes(value), is_crdt=crdt) for key, value in writes],
    )


def seed_state(peer: Peer, key: str, value: dict, block: int = 0, tx: int = 0) -> Version:
    """Directly mutate committed state (bypassing the ledger).

    Only for tests that deliberately simulate out-of-band changes (e.g.
    phantom inserts).  For normal seeding use :func:`seed_block`, which
    commits a real block so version numbering stays consistent.
    """

    version = Version(block, tx)
    peer.ledger.state.apply_write(key, to_bytes(value), version)
    return version


def seed_block(peer: Peer, values: dict, nonce_base: int = 9000) -> dict:
    """Populate keys through one real committed block (one tx per key).

    Returns ``{key: Version}`` as committed, mirroring the paper's
    pre-population step (§7.2).
    """

    from repro.fabric.block import Block

    txs = [
        endorsed_tx(peer, write_rwset((key, value)), nonce_base + index)
        for index, (key, value) in enumerate(values.items())
    ]
    block = Block.build(peer.ledger.height, peer.ledger.last_hash, tuple(txs))
    committed = peer.validate_and_commit(block)
    assert committed.metadata.invalid_count == 0, "seed block must commit cleanly"
    return {key: peer.ledger.state.get_version(key) for key in values}
