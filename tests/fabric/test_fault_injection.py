"""Fault injection on the timed network: reordering, loss, and catch-up."""

import json
import random

from repro.common.config import NetworkConfig, OrdererConfig, TopologyConfig
from repro.fabric.costmodel import zero_latency_model
from repro.fabric.network import SimulatedNetwork, send_after
from repro.sim import Environment, Uniform
from repro.workload.iot import IoTChaincode, encode_call, reading_payload


def build(env, cost=None, max_count=2):
    config = NetworkConfig(
        topology=TopologyConfig(num_orgs=1, peers_per_org=1),
        orderer=OrdererConfig(max_message_count=max_count, batch_timeout_s=1.0),
    )
    network = SimulatedNetwork(env, config, cost=cost or zero_latency_model())
    network.deploy(IoTChaincode())
    return network


def submit(env, network, key, sequence):
    arg = encode_call([], [key], reading_payload(key, 20, sequence), crdt=False)
    env.process(
        network.submit_flow(network.clients[0], "iot", "record", (arg,))
    )


class TestOutOfOrderDelivery:
    def test_blocks_arriving_out_of_order_commit_in_order(self):
        """High-variance orderer→peer latency can swap block deliveries;
        the peer's reorder buffer must commit them strictly in order."""

        cost = zero_latency_model()
        # Latency in [0, 2]s over blocks cut ~10 ms apart: frequent swaps.
        cost = type(cost)(**{**cost.__dict__, "orderer_to_peer": Uniform(0.0, 2.0)})
        env = Environment()
        network = build(env, cost=cost, max_count=1)
        for i in range(30):
            submit(env, network, f"d{i}", i)
        env.run()
        peer = network.anchor_peer
        assert peer.ledger.height == 30
        assert peer.ledger.verify_chain()
        assert peer.stats.get("txs_valid") == 30


class TestLossAndCatchup:
    def test_dropped_block_recovered_via_catchup(self):
        env = Environment()
        network = build(env, max_count=1)
        node = network.anchor_node

        # Submit one tx, then swallow its block delivery (simulated drop).
        original_box = node.block_box
        dropped = []

        real_put = original_box.put

        def lossy_put(item):
            if not dropped:
                dropped.append(item)

                class _Absorbed:
                    triggered = True
                    callbacks = None

                # Swallow silently: return an already-satisfied put event.
                return real_put.__self__.env.event().succeed()
            return real_put(item)

        original_box.put = lossy_put  # type: ignore[method-assign]
        submit(env, network, "a", 0)
        env.run()
        assert network.anchor_peer.ledger.height == 0  # block 0 lost
        original_box.put = real_put  # type: ignore[method-assign]

        # The next block arrives with number 1: the peer detects the gap and
        # fetches block 0 from the orderer archive.
        submit(env, network, "b", 1)
        env.run()
        peer = network.anchor_peer
        assert peer.ledger.height == 2
        assert peer.ledger.verify_chain()
        assert peer.stats.get("txs_valid") == 2

    def test_duplicate_deliveries_ignored(self):
        env = Environment()
        network = build(env, max_count=1)
        submit(env, network, "a", 0)
        env.run()
        block = network.orderer_node.archive[0]
        # Redeliver the same block twice.
        send_after(env, network.anchor_node.block_box, block, 0.0)
        send_after(env, network.anchor_node.block_box, block, 0.0)
        env.run()
        assert network.anchor_peer.ledger.height == 1

    def test_multi_peer_partition_heals(self):
        """Messages to one peer delayed massively; after they drain, both
        peers converge to identical states."""

        cost = zero_latency_model()
        env = Environment()
        config = NetworkConfig(
            topology=TopologyConfig(num_orgs=1, peers_per_org=2),
            orderer=OrdererConfig(max_message_count=1, batch_timeout_s=1.0),
        )
        network = SimulatedNetwork(env, config, cost=cost)
        network.deploy(IoTChaincode())
        network.bootstrap("iot", "populate", [(json.dumps({"keys": ["a"]}),)])
        for i in range(5):
            submit(env, network, f"d{i}", i)
        env.run()
        first, second = network.peers()
        assert first.ledger.state.snapshot_versions() == second.ledger.state.snapshot_versions()
