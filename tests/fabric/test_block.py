"""Tests for block structure, hashing, and metadata."""

from repro.common.types import ReadWriteSet, ValidationCode, WriteItem
from repro.fabric.block import (
    GENESIS_PREVIOUS_HASH,
    Block,
    BlockMetadata,
    CommittedBlock,
)
from repro.fabric.policy import EndorsementPolicy, or_policy
from repro.fabric.transaction import Proposal, TransactionEnvelope

POLICY = EndorsementPolicy(or_policy("Org1"))


def make_tx(nonce, value=b"v"):
    proposal = Proposal.create("ch", "cc", "fn", (), "Org1.c", POLICY, nonce)
    return TransactionEnvelope(
        proposal=proposal,
        rwset=ReadWriteSet.build(writes=[WriteItem("k", value)]),
        endorsements=(),
    )


class TestBlock:
    def test_build_and_verify(self):
        block = Block.build(0, GENESIS_PREVIOUS_HASH, (make_tx(1), make_tx(2)))
        assert block.verify_integrity(expected_previous_hash=GENESIS_PREVIOUS_HASH)
        assert len(block) == 2
        assert block.tx_ids() == tuple(tx.tx_id for tx in block.transactions)

    def test_tamper_detected(self):
        block = Block.build(0, GENESIS_PREVIOUS_HASH, (make_tx(1),))
        tampered = Block(
            header=block.header,
            transactions=(make_tx(2),),
        )
        assert not tampered.verify_integrity()

    def test_chain_link_detected(self):
        first = Block.build(0, GENESIS_PREVIOUS_HASH, (make_tx(1),))
        second = Block.build(1, first.header.hash(), (make_tx(2),))
        assert second.verify_integrity(expected_previous_hash=first.header.hash())
        assert not second.verify_integrity(expected_previous_hash=GENESIS_PREVIOUS_HASH)

    def test_header_hash_depends_on_number(self):
        a = Block.build(0, GENESIS_PREVIOUS_HASH, (make_tx(1),))
        b = Block.build(1, GENESIS_PREVIOUS_HASH, (make_tx(1),))
        assert a.header.hash() != b.header.hash()

    def test_empty_block_hashable(self):
        block = Block.build(0, GENESIS_PREVIOUS_HASH, ())
        assert block.verify_integrity()


class TestBlockMetadata:
    def test_mark_and_count(self):
        metadata = BlockMetadata(0)
        metadata.mark(0, ValidationCode.VALID)
        metadata.mark(2, ValidationCode.MVCC_READ_CONFLICT)
        assert metadata.code_for(0) is ValidationCode.VALID
        assert metadata.code_for(1) is ValidationCode.NOT_VALIDATED
        assert metadata.code_for(2) is ValidationCode.MVCC_READ_CONFLICT
        assert metadata.valid_count == 1
        assert metadata.invalid_count == 2  # NOT_VALIDATED counts as invalid

    def test_code_for_out_of_range(self):
        assert BlockMetadata(0).code_for(5) is ValidationCode.NOT_VALIDATED


class TestCommittedBlock:
    def test_writes_applied_default_uses_valid_txs(self):
        tx_ok, tx_bad = make_tx(1, b"ok"), make_tx(2, b"bad")
        block = Block.build(0, GENESIS_PREVIOUS_HASH, (tx_ok, tx_bad))
        metadata = BlockMetadata(0)
        metadata.mark(0, ValidationCode.VALID)
        metadata.mark(1, ValidationCode.MVCC_READ_CONFLICT)
        committed = CommittedBlock(block, metadata)
        writes = committed.writes_applied()
        assert len(writes) == 1
        assert writes[0][0] == 0 and writes[0][1].value == b"ok"

    def test_effective_writes_override(self):
        tx = make_tx(1)
        block = Block.build(0, GENESIS_PREVIOUS_HASH, (tx,))
        metadata = BlockMetadata(0)
        metadata.mark(0, ValidationCode.VALID)
        merged = WriteItem("k", b"merged", is_crdt=True)
        committed = CommittedBlock(block, metadata, effective_writes=((0, merged),))
        assert committed.writes_applied() == ((0, merged),)

    def test_statuses(self):
        tx = make_tx(1)
        block = Block.build(3, GENESIS_PREVIOUS_HASH, (tx,))
        metadata = BlockMetadata(3)
        metadata.mark(0, ValidationCode.VALID)
        committed = CommittedBlock(block, metadata)
        assert committed.statuses() == [(tx.tx_id, ValidationCode.VALID)]
