"""Mango selector edge cases: compiled predicate ≡ naive evaluator.

Covers the corners the original suite skipped — ``$not`` over complex
subtrees, ``$exists`` interplay with missing paths, nested ``$and``/``$or``
combinations, and non-comparable type mismatches — asserted identical
across both state-store backends, plus a hypothesis property comparing the
compiled predicate against an independently written naive evaluator.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.serialization import to_bytes
from repro.common.types import Version
from repro.fabric.statedb import compile_selector
from repro.fabric.store import create_store

BACKENDS = ("memory", "sqlite")


# ---------------------------------------------------------------------------
# A naive, independent re-statement of the selector semantics
# ---------------------------------------------------------------------------

_ABSENT = object()


def _lookup(doc, path):
    node = doc
    for part in path.split("."):
        if isinstance(node, dict) and part in node:
            node = node[part]
        else:
            return _ABSENT
    return node


def _types_comparable(a, b):
    if isinstance(a, bool) or isinstance(b, bool):
        return isinstance(a, bool) and isinstance(b, bool)
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return True
    return type(a) is type(b)


def _naive_op(op, actual, expected):
    if actual is _ABSENT:
        return False
    if op == "$eq":
        return actual == expected
    if op == "$ne":
        return actual != expected
    if op == "$in":
        return actual in expected
    if op == "$nin":
        return actual not in expected
    if not _types_comparable(actual, expected):
        return False
    return {
        "$gt": actual > expected,
        "$gte": actual >= expected,
        "$lt": actual < expected,
        "$lte": actual <= expected,
    }[op]


def naive_matches(selector, doc):
    """Straight-line recursive evaluation of a Mango selector."""

    for field, condition in selector.items():
        if field == "$and":
            if not all(naive_matches(sub, doc) for sub in condition):
                return False
        elif field == "$or":
            if not any(naive_matches(sub, doc) for sub in condition):
                return False
        elif field == "$not":
            if naive_matches(condition, doc):
                return False
        elif isinstance(condition, dict) and any(k.startswith("$") for k in condition):
            actual = _lookup(doc, field)
            for op, expected in condition.items():
                if op == "$exists":
                    if (actual is not _ABSENT) != bool(expected):
                        return False
                elif not _naive_op(op, actual, expected):
                    return False
        else:
            if _lookup(doc, field) != condition:
                return False
    return True


# ---------------------------------------------------------------------------
# Directed edge cases
# ---------------------------------------------------------------------------

DOCS = {
    "d1": {"type": "sensor", "temp": 20, "loc": {"room": "A", "floor": 1}},
    "d2": {"type": "sensor", "temp": 30.5, "loc": {"room": "B"}},
    "d3": {"type": "gateway", "temp": "hot"},
    "d4": {"type": "sensor", "active": True, "temp": 1},
    "d5": {"loc": {"room": {"wing": "north"}}},
}


def _query_all_backends(selector):
    """rich_query results on every backend (asserted identical), as key lists."""

    per_backend = []
    for backend in BACKENDS:
        store = create_store(backend)
        for index, (key, doc) in enumerate(sorted(DOCS.items())):
            store.apply_write(key, to_bytes(doc), Version(0, index))
        per_backend.append([key for key, _ in store.rich_query(selector)])
        store.close()
    assert per_backend[0] == per_backend[1]
    return per_backend[0]


class TestNotOperator:
    def test_not_over_equality(self):
        assert _query_all_backends({"$not": {"type": "sensor"}}) == ["d3", "d5"]

    def test_not_over_nested_or(self):
        selector = {"$not": {"$or": [{"type": "gateway"}, {"temp": {"$gte": 30}}]}}
        assert _query_all_backends(selector) == ["d1", "d4", "d5"]

    def test_double_negation(self):
        assert _query_all_backends({"$not": {"$not": {"type": "sensor"}}}) == [
            "d1",
            "d2",
            "d4",
        ]

    def test_not_on_missing_field_matches(self):
        # $not over a field predicate on an absent field: the inner predicate
        # is false, so the negation matches (CouchDB semantics).
        assert "d5" in _query_all_backends({"$not": {"temp": {"$gt": 0}}})


class TestExists:
    def test_exists_true_and_false(self):
        assert _query_all_backends({"loc": {"$exists": True}}) == ["d1", "d2", "d5"]
        assert _query_all_backends({"loc": {"$exists": False}}) == ["d3", "d4"]

    def test_exists_on_dotted_path(self):
        assert _query_all_backends({"loc.room.wing": {"$exists": True}}) == ["d5"]

    def test_exists_combined_with_comparison(self):
        selector = {"temp": {"$exists": True, "$gte": 20}}
        assert _query_all_backends(selector) == ["d1", "d2"]

    def test_exists_with_truthy_values(self):
        # CouchDB coerces $exists operands to booleans.
        assert _query_all_backends({"loc": {"$exists": 1}}) == ["d1", "d2", "d5"]


class TestNestedCombinators:
    def test_and_inside_or(self):
        selector = {
            "$or": [
                {"$and": [{"type": "sensor"}, {"temp": {"$lt": 25}}]},
                {"type": "gateway"},
            ]
        }
        assert _query_all_backends(selector) == ["d1", "d3", "d4"]

    def test_or_inside_and(self):
        selector = {
            "$and": [
                {"$or": [{"loc.room": "A"}, {"loc.room": "B"}]},
                {"temp": {"$gt": 25}},
            ]
        }
        assert _query_all_backends(selector) == ["d2"]

    def test_empty_and_or_behaviour(self):
        assert _query_all_backends({"$and": []}) == sorted(DOCS)
        assert _query_all_backends({"$or": []}) == []

    def test_implicit_and_of_fields(self):
        assert _query_all_backends({"type": "sensor", "temp": {"$lte": 20}}) == [
            "d1",
            "d4",
        ]


class TestTypeMismatches:
    def test_range_ops_never_match_across_types(self):
        assert _query_all_backends({"temp": {"$gt": 5}}) == ["d1", "d2"]  # not "hot"
        assert _query_all_backends({"type": {"$lt": 100}}) == []

    def test_bool_is_not_a_number(self):
        # Booleans and numbers are mutually incomparable in range ops: True
        # never satisfies a numeric bound, and numeric temps never satisfy a
        # boolean bound.
        assert _query_all_backends({"active": {"$gte": 0}}) == []
        assert _query_all_backends({"temp": {"$gte": False}}) == []

    def test_eq_across_types_is_plain_equality(self):
        assert _query_all_backends({"temp": "hot"}) == ["d3"]
        # $ne still requires the field to be present (d5 has no temp).
        assert _query_all_backends({"temp": {"$ne": "hot"}}) == ["d1", "d2", "d4"]

    def test_int_float_compare_numerically(self):
        assert _query_all_backends({"temp": {"$gt": 20, "$lt": 31}}) == ["d2"]


# ---------------------------------------------------------------------------
# Hypothesis: compiled predicate ≡ naive evaluator
# ---------------------------------------------------------------------------

FIELDS = ("a", "b", "c", "a.x", "a.y")
LEAF_VALUES = st.one_of(
    st.integers(min_value=-5, max_value=5),
    st.sampled_from(["red", "green", ""]),
    st.booleans(),
    st.floats(min_value=-5, max_value=5, allow_nan=False),
)

DOC_STRATEGY = st.fixed_dictionaries(
    {},
    optional={
        "a": st.one_of(
            LEAF_VALUES,
            st.fixed_dictionaries({}, optional={"x": LEAF_VALUES, "y": LEAF_VALUES}),
        ),
        "b": LEAF_VALUES,
        "c": LEAF_VALUES,
    },
)

COMPARISON_OPS = ("$eq", "$ne", "$gt", "$gte", "$lt", "$lte")


def field_selector():
    op_condition = st.dictionaries(
        st.sampled_from(COMPARISON_OPS), LEAF_VALUES, min_size=1, max_size=2
    )
    exists_condition = st.fixed_dictionaries({"$exists": st.booleans()})
    in_condition = st.fixed_dictionaries(
        {"$in": st.lists(LEAF_VALUES, max_size=3)}
    )
    condition = st.one_of(LEAF_VALUES, op_condition, exists_condition, in_condition)
    return st.dictionaries(st.sampled_from(FIELDS), condition, min_size=1, max_size=2)


SELECTOR_STRATEGY = st.recursive(
    field_selector(),
    lambda children: st.one_of(
        st.fixed_dictionaries({"$and": st.lists(children, min_size=1, max_size=3)}),
        st.fixed_dictionaries({"$or": st.lists(children, min_size=1, max_size=3)}),
        st.fixed_dictionaries({"$not": children}),
    ),
    max_leaves=4,
)


@settings(max_examples=300, deadline=None)
@given(selector=SELECTOR_STRATEGY, doc=DOC_STRATEGY)
def test_compiled_predicate_equals_naive_evaluator(selector, doc):
    assert compile_selector(selector)(doc) == naive_matches(selector, doc)


@settings(max_examples=60, deadline=None)
@given(
    selector=SELECTOR_STRATEGY,
    docs=st.lists(DOC_STRATEGY, min_size=1, max_size=5),
)
def test_rich_query_identical_across_backends(selector, docs):
    results = []
    for backend in BACKENDS:
        store = create_store(backend)
        for index, doc in enumerate(docs):
            store.apply_write(f"k{index}", to_bytes(doc), Version(0, index))
        results.append(store.rich_query(selector))
        store.close()
    assert results[0] == results[1]
    expected = [
        (f"k{index}", to_bytes(doc))
        for index, doc in enumerate(docs)
        if naive_matches(selector, doc)
    ]
    assert results[0] == expected
