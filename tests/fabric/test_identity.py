"""Tests for organizations, identities, and the membership registry."""

import pytest

from repro.common.errors import FabricError
from repro.common.hashing import sha256
from repro.fabric.identity import MembershipRegistry, Organization


class TestEnrollment:
    def test_enroll_creates_identity(self):
        registry = MembershipRegistry()
        identity = registry.enroll("Org1", "peer0")
        assert identity.qualified_name == "Org1.peer0"
        assert identity.org == Organization("Org1")
        assert identity.org.msp_id == "Org1MSP"

    def test_enroll_idempotent(self):
        registry = MembershipRegistry()
        first = registry.enroll("Org1", "peer0")
        second = registry.enroll("Org1", "peer0")
        assert first is second

    def test_unknown_lookups_raise(self):
        registry = MembershipRegistry()
        with pytest.raises(FabricError):
            registry.org("Nope")
        with pytest.raises(FabricError):
            registry.identity("Nope.peer9")

    def test_orgs_sorted(self):
        registry = MembershipRegistry()
        registry.add_org("OrgB")
        registry.add_org("OrgA")
        assert [org.name for org in registry.orgs()] == ["OrgA", "OrgB"]


class TestSigning:
    def test_sign_verify_roundtrip(self):
        registry = MembershipRegistry()
        registry.enroll("Org1", "peer0")
        payload_hash = sha256(b"payload")
        signed = registry.sign_as("Org1.peer0", payload_hash)
        assert registry.verify(signed, payload_hash)

    def test_wrong_payload_rejected(self):
        registry = MembershipRegistry()
        registry.enroll("Org1", "peer0")
        signed = registry.sign_as("Org1.peer0", sha256(b"payload"))
        assert not registry.verify(signed, sha256(b"other"))

    def test_unknown_signer_rejected(self):
        registry = MembershipRegistry()
        registry.enroll("Org1", "peer0")
        signed = registry.sign_as("Org1.peer0", sha256(b"p"))
        forged = type(signed)(signed.payload_hash, "Org9.ghost", signed.signature)
        assert not registry.verify(forged, sha256(b"p"))

    def test_cross_identity_signature_rejected(self):
        registry = MembershipRegistry()
        registry.enroll("Org1", "peer0")
        registry.enroll("Org2", "peer0")
        payload_hash = sha256(b"p")
        signed = registry.sign_as("Org1.peer0", payload_hash)
        forged = type(signed)(payload_hash, "Org2.peer0", signed.signature)
        assert not registry.verify(forged, payload_hash)

    def test_distinct_identities_distinct_secrets(self):
        registry = MembershipRegistry()
        a = registry.enroll("Org1", "peer0")
        b = registry.enroll("Org1", "peer1")
        assert a.sign(b"x") != b.sign(b"x")
