"""Tests for proposals, read-write-set hashing, and envelopes."""

from repro.common.types import ReadItem, ReadWriteSet, TxType, Version, WriteItem
from repro.fabric.policy import EndorsementPolicy, or_policy
from repro.fabric.transaction import Proposal, TransactionEnvelope, rwset_hash, rwset_to_dict

POLICY = EndorsementPolicy(or_policy("Org1"))


def make_proposal(nonce=0, args=("x",)):
    return Proposal.create(
        channel="ch",
        chaincode="cc",
        function="fn",
        args=args,
        creator="Org1.client0",
        policy=POLICY,
        nonce=nonce,
    )


class TestProposal:
    def test_tx_id_deterministic(self):
        assert make_proposal(nonce=1).tx_id == make_proposal(nonce=1).tx_id

    def test_tx_id_unique_per_nonce(self):
        assert make_proposal(nonce=1).tx_id != make_proposal(nonce=2).tx_id

    def test_tx_id_depends_on_payload(self):
        assert make_proposal(args=("a",)).tx_id != make_proposal(args=("b",)).tx_id


class TestRwsetHash:
    def test_stable(self):
        rwset = ReadWriteSet.build(
            reads=[ReadItem("k", Version(0, 1))],
            writes=[WriteItem("k", b"v")],
        )
        assert rwset_hash(rwset) == rwset_hash(rwset)

    def test_sensitive_to_versions(self):
        base = ReadWriteSet.build(reads=[ReadItem("k", Version(0, 1))])
        other = ReadWriteSet.build(reads=[ReadItem("k", Version(0, 2))])
        assert rwset_hash(base) != rwset_hash(other)

    def test_sensitive_to_crdt_flag(self):
        plain = ReadWriteSet.build(writes=[WriteItem("k", b"v")])
        flagged = ReadWriteSet.build(writes=[WriteItem("k", b"v", is_crdt=True)])
        assert rwset_hash(plain) != rwset_hash(flagged)

    def test_dict_form_includes_nil_version(self):
        rwset = ReadWriteSet.build(reads=[ReadItem("missing", None)])
        as_dict = rwset_to_dict(rwset)
        assert as_dict["reads"][0]["version"] is None


class TestEnvelope:
    def _envelope(self, rwset):
        return TransactionEnvelope(
            proposal=make_proposal(),
            rwset=rwset,
            endorsements=(),
        )

    def test_tx_type_standard(self):
        envelope = self._envelope(ReadWriteSet.build(writes=[WriteItem("k", b"v")]))
        assert envelope.tx_type is TxType.STANDARD

    def test_tx_type_crdt(self):
        envelope = self._envelope(
            ReadWriteSet.build(writes=[WriteItem("k", b"v", is_crdt=True)])
        )
        assert envelope.tx_type is TxType.CRDT

    def test_with_rwset_replaces_only_rwset(self):
        original = self._envelope(ReadWriteSet.build(writes=[WriteItem("k", b"old")]))
        replacement = ReadWriteSet.build(writes=[WriteItem("k", b"new")])
        updated = original.with_rwset(replacement)
        assert updated.rwset is replacement
        assert updated.proposal is original.proposal
        assert updated.tx_id == original.tx_id

    def test_byte_size_grows_with_payload(self):
        small = self._envelope(ReadWriteSet.build(writes=[WriteItem("k", b"v")]))
        big = self._envelope(ReadWriteSet.build(writes=[WriteItem("k", b"v" * 1000)]))
        assert big.byte_size() > small.byte_size()
