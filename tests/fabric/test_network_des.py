"""Tests for the discrete-event network: flows, timers, and the conflict window."""

import json

from repro.common.config import NetworkConfig, OrdererConfig, TopologyConfig
from repro.common.types import ValidationCode
from repro.fabric.costmodel import CostModel, zero_latency_model
from repro.fabric.network import SimulatedNetwork
from repro.sim import Environment, Fixed
from repro.workload.iot import IoTChaincode, encode_call, reading_payload


def build(env, max_count=5, cost=None, crdt=False, timeout_s=2.0):
    from repro.core.network import crdt_peer_factory

    config = NetworkConfig(
        topology=TopologyConfig(num_orgs=1, peers_per_org=1),
        orderer=OrdererConfig(max_message_count=max_count, batch_timeout_s=timeout_s),
        crdt_enabled=crdt,
    )
    network = SimulatedNetwork(
        env,
        config,
        cost=cost if cost is not None else zero_latency_model(),
        peer_factory=crdt_peer_factory(config.crdt) if crdt else None,
    )
    network.deploy(IoTChaincode())
    return network


def submit(env, network, key, temperature, sequence, crdt=False):
    client = network.clients[0]
    arg = encode_call([key], [key], reading_payload(key, temperature, sequence), crdt=crdt)
    return env.process(network.submit_flow(client, "iot", "record", (arg,)))


class TestFlows:
    def test_transactions_commit_when_block_fills(self):
        env = Environment()
        network = build(env, max_count=3)
        network.bootstrap("iot", "populate", [(json.dumps({"keys": ["d"]}),)])
        for i in range(3):
            submit(env, network, f"d{i}", 20, i)
        env.run()
        peer = network.anchor_peer
        assert peer.ledger.height == 2  # bootstrap + one data block
        assert peer.stats.get("txs_valid") >= 3

    def test_batch_timeout_cuts_partial_block(self):
        env = Environment()
        network = build(env, max_count=100, timeout_s=2.0)
        submit(env, network, "d", 20, 0)
        env.run()
        peer = network.anchor_peer
        assert peer.ledger.height == 1
        committed = peer.ledger.block_at(0)
        assert committed.block.cut_reason == "timeout"
        assert env.now >= 2.0

    def test_count_cut_preempts_timer(self):
        env = Environment()
        network = build(env, max_count=2, timeout_s=50.0)
        submit(env, network, "a", 20, 0)
        submit(env, network, "b", 20, 1)
        env.run()
        assert network.anchor_peer.ledger.height == 1
        committed = network.anchor_peer.ledger.block_at(0)
        assert committed.block.cut_reason == "count"
        # The block committed immediately; only the stale (ignored) timer
        # kept the simulation alive until its no-op firing.
        assert committed.commit_time < 1.0

    def test_bootstrap_commits_everywhere_at_time_zero(self):
        env = Environment()
        config = NetworkConfig(
            topology=TopologyConfig(num_orgs=2, peers_per_org=2),
            orderer=OrdererConfig(max_message_count=5),
        )
        network = SimulatedNetwork(env, config, cost=zero_latency_model())
        network.deploy(IoTChaincode())
        network.bootstrap("iot", "populate", [(json.dumps({"keys": ["a", "b"]}),)])
        for node in network.peer_nodes:
            assert node.peer.ledger.height == 1
            assert node.peer.ledger.state.get_value("a") is not None
        assert env.now == 0.0


class TestConflictWindow:
    def test_endorsement_during_commit_window_sees_pre_block_state(self):
        """The mechanism behind the paper's §3: a proposal endorsed while a
        block's commit is in service reads the pre-block version and fails
        MVCC — the endorse-to-commit latency manufactures conflicts."""

        cost = zero_latency_model()
        cost = type(cost)(**{**cost.__dict__, "write_per_key_s": 1.0})
        env = Environment()
        network = build(env, max_count=1, cost=cost)
        network.bootstrap("iot", "populate", [(json.dumps({"keys": ["hot"]}),)])

        # First tx cuts a block immediately; its commit takes ~1 virtual
        # second.  The second tx endorses inside that window.
        submit(env, network, "hot", 20, 0)

        def delayed():
            yield env.timeout(0.5)
            submit(env, network, "hot", 21, 1)

        env.process(delayed())
        env.run()
        statuses = network.anchor_peer.ledger.count_statuses()
        assert statuses.get("VALID", 0) == 2  # populate + first record
        assert statuses.get("MVCC_READ_CONFLICT", 0) == 1

    def test_endorsement_after_commit_succeeds(self):
        cost = zero_latency_model()
        env = Environment()
        network = build(env, max_count=1, cost=cost)
        network.bootstrap("iot", "populate", [(json.dumps({"keys": ["hot"]}),)])
        submit(env, network, "hot", 20, 0)

        def later():
            yield env.timeout(5.0)  # well past the first commit
            submit(env, network, "hot", 21, 1)

        env.process(later())
        env.run()
        statuses = network.anchor_peer.ledger.count_statuses()
        assert statuses.get("MVCC_READ_CONFLICT", 0) == 0
        assert statuses.get("VALID", 0) == 3


class TestEndorsementPoolTiming:
    def test_pool_size_bounds_throughput(self):
        cost = CostModel(
            endorse_base_s=1.0,
            endorse_per_read_s=0.0,
            endorse_per_write_s=0.0,
            endorsement_pool_size=2,
            commit_base_s=0.0,
            vscc_per_tx_s=0.0,
            mvcc_per_read_s=0.0,
            write_per_key_s=0.0,
            write_per_kib_s=0.0,
            client_to_peer=Fixed(0.0),
            peer_to_client=Fixed(0.0),
            client_to_orderer=Fixed(0.0),
            orderer_to_peer=Fixed(0.0),
        )
        env = Environment()
        network = build(env, max_count=100, cost=cost, timeout_s=100.0)
        network.bootstrap("iot", "populate", [(json.dumps({"keys": ["d"]}),)])
        for i in range(6):
            submit(env, network, f"d{i}", 20, i)
        env.run(until=3.5)
        # 6 proposals at 1 s each on a pool of 2: three service rounds.
        in_flight = network.ordering.pending_count
        assert in_flight == 6  # all endorsed by t=3, orderer holds them
