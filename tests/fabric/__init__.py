"""Tests for fabric."""
