"""EventHub semantics: unsubscribe edge cases and the deprecation shim."""

import warnings

import pytest

from repro.common.deprecation import reset_deprecation_warnings
from repro.fabric.block import Block, BlockMetadata, CommittedBlock

from .helpers import build_peer, endorsed_tx, write_rwset


@pytest.fixture(autouse=True)
def rearm_latches():
    reset_deprecation_warnings()
    yield
    reset_deprecation_warnings()


def committed_block(peer, number=0, nonce=1):
    tx = endorsed_tx(peer, write_rwset(("key", {"n": nonce})), nonce)
    block = Block.build(number, b"\x00" * 32, (tx,))
    return CommittedBlock(block=block, metadata=BlockMetadata(number))


class TestUnsubscribeDuringPublish:
    def test_listener_removed_mid_publish_still_gets_current_block(self):
        """Publish iterates a snapshot: unsubscribing a later listener from
        an earlier one's callback only affects *subsequent* blocks."""

        peer = build_peer()
        hub = peer.events
        seen = []
        unsubscribe_second = None

        def first(committed, peer_name):
            seen.append(("first", committed.block.number))
            unsubscribe_second()

        def second(committed, peer_name):
            seen.append(("second", committed.block.number))

        hub.subscribe_internal(first)
        unsubscribe_second = hub.subscribe_internal(second)

        hub.publish(committed_block(peer, number=0))
        hub.publish(committed_block(peer, number=1, nonce=2))
        assert seen == [("first", 0), ("second", 0), ("first", 1)]

    def test_listener_unsubscribing_itself_mid_publish(self):
        peer = build_peer()
        hub = peer.events
        seen = []
        unsubscribe = None

        def once(committed, peer_name):
            seen.append(committed.block.number)
            unsubscribe()

        unsubscribe = hub.subscribe_internal(once)
        hub.publish(committed_block(peer, number=0))
        hub.publish(committed_block(peer, number=1, nonce=2))
        assert seen == [0]


class TestDoubleUnsubscribe:
    def test_double_unsubscribe_is_a_noop(self):
        peer = build_peer()
        hub = peer.events
        unsubscribe = hub.subscribe_internal(lambda committed, peer_name: None)
        unsubscribe()
        unsubscribe()  # second call: silent no-op

    def test_double_unsubscribe_spares_a_reregistration(self):
        """Each unsubscribe token is bound to one registration: calling it
        twice must not strip a *second* registration of the same callable."""

        peer = build_peer()
        hub = peer.events
        seen = []

        def listener(committed, peer_name):
            seen.append(committed.block.number)

        first_token = hub.subscribe_internal(listener)
        hub.subscribe_internal(listener)  # registered twice
        first_token()
        first_token()  # must not remove the second registration
        hub.publish(committed_block(peer, number=0))
        assert seen == [0]


class TestDeprecationShim:
    def test_external_subscribe_warns_once_and_points_at_gateway(self):
        peer = build_peer()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            peer.events.subscribe(lambda committed, peer_name: None)
            peer.events.subscribe(lambda committed, peer_name: None)
        deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert "gateway.block_events()" in str(deprecations[0].message)

    def test_deprecated_subscribe_still_delivers(self):
        peer = build_peer()
        seen = []
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            unsubscribe = peer.events.subscribe(
                lambda committed, peer_name: seen.append(committed.block.number)
            )
        peer.events.publish(committed_block(peer, number=0))
        unsubscribe()
        peer.events.publish(committed_block(peer, number=1, nonce=2))
        assert seen == [0]

    def test_internal_subscribe_is_silent(self):
        peer = build_peer()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            peer.events.subscribe_internal(lambda committed, peer_name: None)
        assert [w for w in caught if issubclass(w.category, DeprecationWarning)] == []

    def test_event_service_consumers_trigger_no_warning(self):
        """The migrated stack — Channel tracking, Gateway streams — must not
        cross the deprecated surface."""

        from repro.fabric.localnet import LocalNetwork
        from repro.gateway import Gateway
        from repro.workload.iot import IoTChaincode

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            network = LocalNetwork()
            network.deploy(IoTChaincode())
            stream = Gateway.connect(network).block_events(start_block=0)
            stream.close()
        assert [w for w in caught if issubclass(w.category, DeprecationWarning)] == []
