"""Tests for the chaincode shim: read/write recording and Fabric semantics."""

import pytest

from repro.common.errors import ChaincodeError
from repro.common.serialization import to_bytes
from repro.common.types import Version
from repro.fabric.chaincode import Chaincode, ChaincodeRegistry, ShimStub
from repro.fabric.statedb import StateDB


@pytest.fixture
def state():
    db = StateDB()
    db.apply_write("existing", to_bytes({"v": 1}), Version(0, 0))
    db.apply_write("other", to_bytes({"v": 2}), Version(0, 1))
    return db


class TestReads:
    def test_read_records_version(self, state):
        stub = ShimStub(state, "tx1")
        assert stub.get_state("existing") == {"v": 1}
        rwset = stub.build_rwset()
        assert rwset.reads[0].key == "existing"
        assert rwset.reads[0].version == Version(0, 0)

    def test_missing_key_records_nil_version(self, state):
        stub = ShimStub(state, "tx1")
        assert stub.get_state("ghost") is None
        assert stub.build_rwset().reads[0].version is None

    def test_repeated_read_recorded_once(self, state):
        stub = ShimStub(state, "tx1")
        stub.get_state("existing")
        stub.get_state("existing")
        assert len(stub.build_rwset().reads) == 1

    def test_no_read_your_writes(self, state):
        """Fabric semantics: GetState after PutState returns committed state."""

        stub = ShimStub(state, "tx1")
        stub.put_state("existing", {"v": 99})
        assert stub.get_state("existing") == {"v": 1}

    def test_raw_read(self, state):
        stub = ShimStub(state, "tx1")
        assert stub.get_state_raw("existing") == to_bytes({"v": 1})


class TestWrites:
    def test_last_write_wins_within_tx(self, state):
        stub = ShimStub(state, "tx1")
        stub.put_state("k", {"n": 1})
        stub.put_state("k", {"n": 2})
        writes = stub.build_rwset().writes
        assert len(writes) == 1
        assert writes[0].value == to_bytes({"n": 2})

    def test_write_order_preserved(self, state):
        stub = ShimStub(state, "tx1")
        stub.put_state("b", {})
        stub.put_state("a", {})
        assert [w.key for w in stub.build_rwset().writes] == ["b", "a"]

    def test_put_crdt_sets_flag(self, state):
        stub = ShimStub(state, "tx1")
        stub.put_crdt("k", {"readings": []})
        write = stub.build_rwset().writes[0]
        assert write.is_crdt and not write.is_delete

    def test_delete(self, state):
        stub = ShimStub(state, "tx1")
        stub.del_state("existing")
        write = stub.build_rwset().writes[0]
        assert write.is_delete and write.value == b""

    def test_invalid_key_rejected(self, state):
        stub = ShimStub(state, "tx1")
        with pytest.raises(ChaincodeError):
            stub.put_state("", {})
        with pytest.raises(ChaincodeError):
            stub.get_state("")


class TestRangeAndRichQueries:
    def test_range_query_recorded(self, state):
        stub = ShimStub(state, "tx1")
        results = stub.get_state_by_range("e", "f")
        assert [key for key, _ in results] == ["existing"]
        rwset = stub.build_rwset()
        assert len(rwset.range_queries) == 1
        assert rwset.range_queries[0].start_key == "e"

    def test_rich_query_not_recorded(self, state):
        """Rich queries give no phantom protection in Fabric."""

        stub = ShimStub(state, "tx1")
        results = stub.get_query_result({"v": {"$gte": 1}})
        assert len(results) == 2
        rwset = stub.build_rwset()
        assert rwset.range_queries == () and rwset.reads == ()


class TestChaincodeDispatch:
    class Adder(Chaincode):
        name = "adder"

        def fn_add(self, stub, a, b):
            return {"sum": int(a) + int(b)}

    def test_invoke_dispatches_to_fn(self, state):
        stub = ShimStub(state, "tx1")
        result = self.Adder().invoke(stub, "add", ("2", "3"))
        assert result == {"sum": 5}

    def test_unknown_function_raises(self, state):
        stub = ShimStub(state, "tx1")
        with pytest.raises(ChaincodeError):
            self.Adder().invoke(stub, "nope", ())

    def test_registry(self):
        registry = ChaincodeRegistry()
        chaincode = self.Adder()
        registry.deploy(chaincode)
        assert registry.get("adder") is chaincode
        assert "adder" in registry
        assert registry.names() == ("adder",)
        with pytest.raises(ChaincodeError):
            registry.get("missing")
