"""Tests for the Fabric++-style reordering orderer (the related-work baseline)."""

from repro.common.config import OrdererConfig
from repro.common.types import ReadItem, ReadWriteSet, ValidationCode, WriteItem
from repro.common.serialization import to_bytes
from repro.fabric.block import Block
from repro.fabric.reorder import ReorderingOrderingService, reorder_batch

from .helpers import build_peer, endorsed_tx, seed_block, write_rwset


def reader_writer_txs(peer, versions):
    """A blind writer of K plus a reader of K (writing elsewhere).

    In arrival order [writer, reader] the reader fails; readers-first
    reordering saves it.
    """

    writer = endorsed_tx(peer, write_rwset(("K", {"v": 1})), 1)
    reader = endorsed_tx(
        peer, write_rwset(("out", {"seen": 1}), reads=(("K", versions["K"]),)), 2
    )
    return writer, reader


class TestReorderBatch:
    def test_readers_scheduled_before_writers(self):
        peer = build_peer()
        versions = seed_block(peer, {"K": {"v": 0}})
        writer, reader = reader_writer_txs(peer, versions)
        scheduled, victims = reorder_batch([writer, reader])
        assert victims == []
        assert [tx.tx_id for tx in scheduled] == [reader.tx_id, writer.tx_id]

    def test_hot_key_cycle_keeps_one(self):
        peer = build_peer()
        versions = seed_block(peer, {"K": {"v": 0}})
        txs = [
            endorsed_tx(
                peer, write_rwset(("K", {"v": i}), reads=(("K", versions["K"]),)), i
            )
            for i in range(4)
        ]
        scheduled, victims = reorder_batch(txs)
        assert len(scheduled) == 1
        assert len(victims) == 3

    def test_two_tx_swap_cycle(self):
        peer = build_peer()
        versions = seed_block(peer, {"A": {"v": 0}, "B": {"v": 0}})
        # t1 reads A writes B; t2 reads B writes A: a genuine cycle.
        t1 = endorsed_tx(peer, write_rwset(("B", {"v": 1}), reads=(("A", versions["A"]),)), 1)
        t2 = endorsed_tx(peer, write_rwset(("A", {"v": 1}), reads=(("B", versions["B"]),)), 2)
        scheduled, victims = reorder_batch([t1, t2])
        assert len(scheduled) == 1 and len(victims) == 1

    def test_independent_txs_untouched(self):
        peer = build_peer()
        txs = [endorsed_tx(peer, write_rwset((f"k{i}", {"v": i})), i) for i in range(5)]
        scheduled, victims = reorder_batch(txs)
        assert victims == []
        assert len(scheduled) == 5

    def test_crdt_writes_do_not_create_conflicts(self):
        peer = build_peer()
        versions = seed_block(peer, {"K": {"v": 0}})
        crdt_writer = endorsed_tx(peer, write_rwset(("K", {"l": ["x"]}), crdt=True), 1)
        reader = endorsed_tx(
            peer, write_rwset(("out", {"s": 1}), reads=(("K", versions["K"]),)), 2
        )
        scheduled, victims = reorder_batch([crdt_writer, reader])
        assert victims == []


class TestReorderingOrderingService:
    def _commit_through(self, peer, txs, early_abort=False):
        service = ReorderingOrderingService(
            OrdererConfig(max_message_count=len(txs)), early_abort=early_abort
        )
        service.resume_from(peer.ledger.height, peer.ledger.last_hash)
        blocks = []
        for tx in txs:
            blocks.extend(service.submit(tx, 0.0))
        remainder = service.flush(0.0)
        if remainder is not None:
            blocks.append(remainder)
        return [peer.validate_and_commit(block) for block in blocks], service

    def test_reordering_saves_the_reader(self):
        peer = build_peer()
        versions = seed_block(peer, {"K": {"v": 0}})
        writer, reader = reader_writer_txs(peer, versions)
        committed_blocks, _ = self._commit_through(peer, [writer, reader])
        statuses = dict(committed_blocks[0].statuses())
        assert statuses[reader.tx_id] is ValidationCode.VALID
        assert statuses[writer.tx_id] is ValidationCode.VALID

    def test_without_reordering_reader_fails(self):
        peer = build_peer()
        versions = seed_block(peer, {"K": {"v": 0}})
        writer, reader = reader_writer_txs(peer, versions)
        block = Block.build(peer.ledger.height, peer.ledger.last_hash, (writer, reader))
        committed = peer.validate_and_commit(block)
        statuses = dict(committed.statuses())
        assert statuses[reader.tx_id] is ValidationCode.MVCC_READ_CONFLICT

    def test_hot_key_rmw_not_rescued(self):
        """The paper's point versus [34]: reordering cannot eliminate
        conflicts among same-key read-modify-writes."""

        peer = build_peer()
        versions = seed_block(peer, {"K": {"v": 0}})
        txs = [
            endorsed_tx(
                peer, write_rwset(("K", {"v": i}), reads=(("K", versions["K"]),)), i
            )
            for i in range(5)
        ]
        committed_blocks, service = self._commit_through(peer, txs)
        valid = sum(block.metadata.valid_count for block in committed_blocks)
        assert valid == 1
        assert service.reorder_stats["victims"] == 4

    def test_early_abort_drops_victims_from_block(self):
        peer = build_peer()
        versions = seed_block(peer, {"K": {"v": 0}})
        txs = [
            endorsed_tx(
                peer, write_rwset(("K", {"v": i}), reads=(("K", versions["K"]),)), i
            )
            for i in range(5)
        ]
        committed_blocks, service = self._commit_through(peer, txs, early_abort=True)
        assert sum(len(block.block) for block in committed_blocks) == 1
        assert service.reorder_stats["early_aborted"] == 4
