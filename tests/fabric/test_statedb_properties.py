"""Property tests: the state DB against brute-force oracles.

Range scans are checked against sorted-key slicing, the Mango selector
subset against a naive re-evaluation, and write/delete sequences against a
plain dict — so the bisect-maintained key index can never drift from the
actual mapping.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.serialization import to_bytes
from repro.common.types import Version
from repro.fabric.statedb import StateDB

keys = st.text(alphabet="abcdxyz/0123", min_size=1, max_size=6)


@st.composite
def write_sequences(draw):
    """A mixed sequence of writes and deletes with increasing versions."""

    operations = draw(
        st.lists(
            st.tuples(keys, st.integers(0, 99), st.booleans()),
            min_size=1,
            max_size=30,
        )
    )
    return operations


def apply_all(operations):
    db = StateDB()
    oracle: dict[str, int] = {}
    for index, (key, value, is_delete) in enumerate(operations):
        if is_delete:
            db.apply_write(key, b"", Version(0, index), is_delete=True)
            oracle.pop(key, None)
        else:
            db.apply_write(key, to_bytes({"n": value}), Version(0, index))
            oracle[key] = value
    return db, oracle


@settings(max_examples=100, deadline=None)
@given(write_sequences())
def test_key_index_matches_mapping(operations):
    db, oracle = apply_all(operations)
    assert list(db.keys()) == sorted(oracle)
    assert len(db) == len(oracle)
    for key, value in oracle.items():
        assert db.get_value(key) == to_bytes({"n": value})


@settings(max_examples=100, deadline=None)
@given(write_sequences(), keys, keys)
def test_range_scan_matches_sorted_slice(operations, start, end):
    db, oracle = apply_all(operations)
    scanned = [key for key, _ in db.range_scan(start, end)]
    expected = [key for key in sorted(oracle) if key >= start and (not end or key < end)]
    assert scanned == expected


@settings(max_examples=100, deadline=None)
@given(write_sequences(), keys)
def test_open_ended_range(operations, start):
    db, oracle = apply_all(operations)
    scanned = [key for key, _ in db.range_scan(start, "")]
    assert scanned == [key for key in sorted(oracle) if key >= start]


@settings(max_examples=100, deadline=None)
@given(write_sequences(), st.integers(0, 99), st.sampled_from(["$gt", "$gte", "$lt", "$lte", "$eq", "$ne"]))
def test_mango_comparisons_match_oracle(operations, threshold, operator):
    db, oracle = apply_all(operations)
    results = {key for key, _ in db.rich_query({"n": {operator: threshold}})}
    compare = {
        "$gt": lambda v: v > threshold,
        "$gte": lambda v: v >= threshold,
        "$lt": lambda v: v < threshold,
        "$lte": lambda v: v <= threshold,
        "$eq": lambda v: v == threshold,
        "$ne": lambda v: v != threshold,
    }[operator]
    expected = {key for key, value in oracle.items() if compare(value)}
    assert results == expected


@settings(max_examples=60, deadline=None)
@given(write_sequences(), st.integers(0, 99), st.integers(0, 99))
def test_mango_or_matches_union(operations, a, b):
    db, oracle = apply_all(operations)
    results = {key for key, _ in db.rich_query({"$or": [{"n": a}, {"n": b}]})}
    expected = {key for key, value in oracle.items() if value in (a, b)}
    assert results == expected


@settings(max_examples=60, deadline=None)
@given(write_sequences())
def test_versions_reflect_last_write(operations):
    db, _ = apply_all(operations)
    last_write_index: dict[str, int] = {}
    for index, (key, _, is_delete) in enumerate(operations):
        if is_delete:
            last_write_index.pop(key, None)
        else:
            last_write_index[key] = index
    for key, index in last_write_index.items():
        assert db.get_version(key) == Version(0, index)
