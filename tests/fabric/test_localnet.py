"""End-to-end tests on the synchronous LocalNetwork."""

import json

import pytest

from repro.common.types import ValidationCode
from repro.workload.iot import encode_call, reading_payload

from ..conftest import small_config
from repro.core.network import vanilla_network


def populate(network, keys):
    network.invoke("iot", "populate", [json.dumps({"keys": keys})])
    network.flush()


def record(network, key, temperature, sequence, crdt=False, client=0):
    arg = encode_call([key], [key], reading_payload(key, temperature, sequence), crdt=crdt)
    return network.invoke("iot", "record", [arg], client_index=client)


class TestLifecycle:
    def test_single_transaction_commits(self, fabric_net):
        populate(fabric_net, ["d1"])
        tx_id = record(fabric_net, "d1", 20, 0)
        fabric_net.flush()
        assert fabric_net.status_of(tx_id) is ValidationCode.VALID
        state = fabric_net.state_of("d1")
        assert state["tempReadings"] == [{"temperature": "20", "ts": "0"}]

    def test_block_cut_at_max_count_commits_without_flush(self, fabric_net):
        # fabric_net uses max_message_count=10 (plus the populate flush).
        populate(fabric_net, [f"d{i}" for i in range(10)])
        tx_ids = [record(fabric_net, f"d{i}", 20, i) for i in range(10)]
        # Tenth submission filled the block: statuses already present.
        assert all(fabric_net.status_of(t) is ValidationCode.VALID for t in tx_ids)

    def test_conflicting_transactions_fail_on_vanilla(self, fabric_net):
        populate(fabric_net, ["hot"])
        tx_ids = [record(fabric_net, "hot", 20 + i, i) for i in range(5)]
        fabric_net.flush()
        codes = [fabric_net.status_of(t) for t in tx_ids]
        assert codes[0] is ValidationCode.VALID
        assert all(code is ValidationCode.MVCC_READ_CONFLICT for code in codes[1:])
        assert fabric_net.success_count() == 1 + 1  # populate + first record

    def test_read_only_query_not_ordered(self, fabric_net):
        populate(fabric_net, ["d1"])
        blocks_before = fabric_net.ledger_of().height
        result = fabric_net.query("iot", "read_device", [json.dumps({"key": "d1"})])
        assert result == {"deviceID": "d1", "tempReadings": []}
        fabric_net.flush()
        assert fabric_net.ledger_of().height == blocks_before

    def test_undeployed_chaincode_rejected(self, fabric_net):
        from repro.common.errors import FabricError

        with pytest.raises(FabricError):
            fabric_net.invoke("ghostcc", "fn", [])


class TestConvergence:
    def test_all_peers_identical_after_run(self, fabric_net):
        populate(fabric_net, ["a", "b"])
        for i in range(6):
            record(fabric_net, "a" if i % 2 else "b", 20 + i, i)
        fabric_net.flush()
        fabric_net.assert_states_converged()

    def test_every_peer_chain_verifies(self, fabric_net):
        populate(fabric_net, ["a"])
        record(fabric_net, "a", 21, 0)
        fabric_net.flush()
        for index in range(len(fabric_net.peers)):
            assert fabric_net.ledger_of(index).verify_chain()

    def test_replay_matches_live_state_on_all_peers(self, fabric_net):
        populate(fabric_net, ["a"])
        for i in range(4):
            record(fabric_net, "a", 20 + i, i)
        fabric_net.flush()
        for peer in fabric_net.peers:
            rebuilt = peer.ledger.rebuild_state()
            assert rebuilt.snapshot_versions() == peer.ledger.state.snapshot_versions()


class TestBackwardCompatibility:
    def test_vanilla_peer_treats_crdt_flag_as_plain_write(self):
        """The paper's compatibility requirement: Fabric applications (and
        networks) keep working — a put_crdt on a *vanilla* network is simply
        MVCC-validated like any write."""

        network = vanilla_network(small_config(max_message_count=10))
        from repro.workload.iot import IoTChaincode

        network.deploy(IoTChaincode())
        populate(network, ["hot"])
        tx_ids = [record(network, "hot", 20 + i, i, crdt=True) for i in range(3)]
        network.flush()
        codes = [network.status_of(t) for t in tx_ids]
        assert codes[0] is ValidationCode.VALID
        assert all(code is ValidationCode.MVCC_READ_CONFLICT for code in codes[1:])
