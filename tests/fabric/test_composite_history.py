"""Tests for composite keys and the GetHistoryForKey shim API."""

import pytest

from repro.common.errors import ChaincodeError
from repro.common.serialization import to_bytes
from repro.common.types import Version
from repro.fabric.chaincode import (
    ShimStub,
    create_composite_key,
    split_composite_key,
)
from repro.fabric.statedb import StateDB

from .helpers import build_peer, endorsed_tx, seed_block, write_rwset


class TestCompositeKeys:
    def test_roundtrip(self):
        key = create_composite_key("asset", ["color", "blue", "42"])
        assert split_composite_key(key) == ("asset", ["color", "blue", "42"])

    def test_no_attributes(self):
        key = create_composite_key("marker", [])
        assert split_composite_key(key) == ("marker", [])

    def test_empty_object_type_rejected(self):
        with pytest.raises(ChaincodeError):
            create_composite_key("", ["a"])

    def test_separator_in_component_rejected(self):
        with pytest.raises(ChaincodeError):
            create_composite_key("a\x00b", [])
        with pytest.raises(ChaincodeError):
            create_composite_key("t", ["bad\x00attr"])

    def test_split_non_composite_rejected(self):
        with pytest.raises(ChaincodeError):
            split_composite_key("ordinary-key")

    def test_partial_prefix_scan(self):
        db = StateDB()
        for owner, asset in [("alice", "a1"), ("alice", "a2"), ("bob", "b1")]:
            key = create_composite_key("owner~asset", [owner, asset])
            db.apply_write(key, to_bytes({"asset": asset}), Version(0, 0))
        stub = ShimStub(db, "tx")
        alice_assets = stub.get_state_by_partial_composite_key("owner~asset", ["alice"])
        assert [value["asset"] for _, value in alice_assets] == ["a1", "a2"]
        everything = stub.get_state_by_partial_composite_key("owner~asset")
        assert len(everything) == 3

    def test_prefix_scan_is_phantom_protected(self):
        db = StateDB()
        key = create_composite_key("t", ["x"])
        db.apply_write(key, to_bytes({}), Version(0, 0))
        stub = ShimStub(db, "tx")
        stub.get_state_by_partial_composite_key("t")
        assert len(stub.build_rwset().range_queries) == 1


class TestHistoryAPI:
    def test_history_through_endorsement(self):
        peer = build_peer()
        seed_block(peer, {"K": {"v": 0}})
        version = peer.ledger.state.get_version("K")
        update = endorsed_tx(peer, write_rwset(("K", {"v": 1}), reads=(("K", version),)), 1)
        from repro.fabric.block import Block

        peer.validate_and_commit(
            Block.build(peer.ledger.height, peer.ledger.last_hash, (update,))
        )

        class HistoryCC:
            name = "historycc"

            def invoke(self, stub, function, args):
                return stub.get_history_for_key(args[0])

        peer.chaincodes.deploy(HistoryCC())
        from repro.fabric.policy import EndorsementPolicy, or_policy
        from repro.fabric.transaction import Proposal

        proposal = Proposal.create(
            "ch", "historycc", "q", ("K",), "Org1.c",
            EndorsementPolicy(or_policy("Org1")), nonce=77,
        )
        response = peer.endorse(proposal)
        from repro.common.serialization import from_bytes

        history = from_bytes(response.chaincode_result)
        assert [entry["value"] for entry in history] == [{"v": 0}, {"v": 1}]
        assert history[0]["version"] == "0:0"

    def test_history_unavailable_without_provider(self):
        stub = ShimStub(StateDB(), "tx")
        with pytest.raises(ChaincodeError):
            stub.get_history_for_key("K")

    def test_history_not_recorded_in_read_set(self):
        peer = build_peer()
        seed_block(peer, {"K": {"v": 0}})
        stub = ShimStub(
            peer.ledger.state, "tx", history=peer.ledger.history_for_key
        )
        stub.get_history_for_key("K")
        rwset = stub.build_rwset()
        assert rwset.reads == () and rwset.range_queries == ()
