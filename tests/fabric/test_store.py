"""Backend-parametrized tests for the pluggable StateStore layer."""

import os

import pytest

from repro.common.config import NetworkConfig, TopologyConfig, fabriccrdt_config
from repro.common.errors import ConfigError, LedgerError
from repro.common.serialization import to_bytes
from repro.common.types import Version
from repro.fabric.ledger import Ledger
from repro.fabric.store import (
    EMPTY_FINGERPRINT,
    MemoryStore,
    SqliteStore,
    WriteBatch,
    create_store,
)
from repro.fabric.store.batch import BatchWrite


BACKENDS = ("memory", "sqlite")


@pytest.fixture(params=BACKENDS)
def store(request):
    built = create_store(request.param)
    yield built
    built.close()


def put(store, key, value, block=0, tx=0):
    store.apply_write(key, to_bytes(value), Version(block, tx))


class TestInterface:
    def test_point_and_versioned_reads(self, store):
        put(store, "k", {"a": 1}, block=2, tx=5)
        assert store.get("k").version == Version(2, 5)
        assert store.get_value("k") == to_bytes({"a": 1})
        assert store.get_version("k") == Version(2, 5)
        assert store.get("missing") is None
        assert "k" in store and "missing" not in store
        assert len(store) == 1

    def test_delete_and_sorted_keys(self, store):
        for key in ("b", "a", "c"):
            put(store, key, {})
        store.apply_write("b", b"", Version(1, 0), is_delete=True)
        assert store.keys() == ("a", "c")
        assert store.get("b") is None

    def test_range_scan_half_open_and_open_end(self, store):
        for key in ("a1", "a2", "a3", "b1"):
            put(store, key, {})
        assert [k for k, _ in store.range_scan("a1", "a3")] == ["a1", "a2"]
        assert [k for k, _ in store.range_scan("a3", "")] == ["a3", "b1"]

    def test_composite_style_nul_keys_order_first(self, store):
        put(store, "plain", {})
        put(store, "\x00obj\x00a\x00", {})
        assert store.keys()[0] == "\x00obj\x00a\x00"
        assert [k for k, _ in store.range_scan("\x00", "\x01")] == ["\x00obj\x00a\x00"]

    def test_write_batch_applies_in_block_order(self, store):
        batch = WriteBatch(block_number=3)
        batch.put("k", to_bytes({"v": 1}), Version(3, 0))
        batch.put("k", to_bytes({"v": 2}), Version(3, 4))
        batch.put("gone", to_bytes({}), Version(3, 1))
        batch.put("gone", b"", Version(3, 5), is_delete=True)
        store.apply_batch(batch)
        assert store.get_version("k") == Version(3, 4)
        assert store.get_value("k") == to_bytes({"v": 2})
        assert "gone" not in store

    def test_snapshot_versions(self, store):
        put(store, "a", {}, block=0, tx=0)
        put(store, "b", {}, block=1, tx=2)
        assert store.snapshot_versions() == {"a": Version(0, 0), "b": Version(1, 2)}


class TestFingerprint:
    def test_empty_store_fingerprint(self, store):
        assert store.fingerprint() == EMPTY_FINGERPRINT

    def test_incremental_matches_recompute(self, store):
        for i in range(50):
            put(store, f"k{i}", {"i": i}, block=0, tx=i)
        store.apply_write("k7", b"", Version(1, 0), is_delete=True)
        put(store, "k9", {"i": 999}, block=1, tx=1)
        assert store.fingerprint() == store.compute_fingerprint()

    def test_content_function_not_history_function(self):
        forward, backward = MemoryStore(), MemoryStore()
        writes = [(f"k{i}", {"i": i}, Version(0, i)) for i in range(10)]
        for key, value, version in writes:
            forward.apply_write(key, to_bytes(value), version)
        for key, value, version in reversed(writes):
            backward.apply_write(key, to_bytes(value), version)
        assert forward.fingerprint() == backward.fingerprint()

    def test_identical_across_backends(self):
        stores = [create_store(backend) for backend in BACKENDS]
        batch = WriteBatch(block_number=0)
        for i in range(20):
            batch.put(f"k{i}", to_bytes({"i": i}), Version(0, i))
        for s in stores:
            s.apply_batch(batch)
        assert len({s.fingerprint() for s in stores}) == 1
        for s in stores:
            s.close()

    def test_divergent_write_changes_fingerprint(self, store):
        put(store, "k", {"v": 1})
        before = store.fingerprint()
        put(store, "k", {"v": 2}, block=1, tx=0)
        assert store.fingerprint() != before

    def test_delete_returns_to_prior_fingerprint(self, store):
        put(store, "a", {"v": 1})
        before = store.fingerprint()
        put(store, "b", {"v": 2}, block=1, tx=0)
        store.apply_write("b", b"", Version(2, 0), is_delete=True)
        assert store.fingerprint() == before


class TestSqlitePersistence:
    def test_close_and_reopen_preserves_everything(self, tmp_path):
        path = os.path.join(tmp_path, "state.sqlite")
        first = SqliteStore(path)
        batch = WriteBatch(block_number=0)
        for i in range(200):
            batch.put(f"k{i:03d}", to_bytes({"i": i}), Version(0, i))
        first.apply_batch(batch)
        first.apply_write("k005", b"", Version(1, 0), is_delete=True)
        snapshot = first.snapshot_versions()
        fingerprint = first.fingerprint()
        first.close()

        reopened = SqliteStore(path)
        assert len(reopened) == 199
        assert reopened.snapshot_versions() == snapshot
        assert reopened.fingerprint() == fingerprint
        assert reopened.fingerprint() == reopened.compute_fingerprint()
        assert reopened.get("k042").value == to_bytes({"i": 42})
        reopened.close()

    def test_fingerprint_recomputed_for_pre_fingerprint_databases(self, tmp_path):
        path = os.path.join(tmp_path, "state.sqlite")
        first = SqliteStore(path)
        put(first, "k", {"v": 1})
        expected = first.fingerprint()
        # Simulate a database written before the meta fingerprint existed.
        first._conn.execute("DELETE FROM meta")
        first.close()
        reopened = SqliteStore(path)
        assert reopened.fingerprint() == expected
        reopened.close()

    def test_failed_batch_rolls_back_entirely(self, tmp_path):
        path = os.path.join(tmp_path, "state.sqlite")
        store = SqliteStore(path)
        put(store, "committed", {"v": 1})
        fingerprint = store.fingerprint()
        bad = WriteBatch(block_number=1)
        bad.put("new-key", to_bytes({"v": 2}), Version(1, 0))
        # An unbindable value type makes the second write explode mid-batch.
        bad.writes.append(BatchWrite("boom", {"not": "bytes"}, Version(1, 1), False))
        with pytest.raises(Exception):
            store.apply_batch(bad)
        assert "new-key" not in store
        assert len(store) == 1
        assert store.fingerprint() == fingerprint
        assert store.fingerprint() == store.compute_fingerprint()
        store.close()

    def test_closed_store_refuses_access(self):
        store = SqliteStore()
        store.close()
        from repro.common.errors import StateError

        with pytest.raises(StateError):
            store.get("k")

    def test_rich_query_matches_memory(self):
        docs = {
            "d1": {"type": "sensor", "temp": 20},
            "d2": {"type": "sensor", "temp": 30},
            "d3": {"type": "gateway", "temp": 25},
        }
        stores = [create_store(backend) for backend in BACKENDS]
        for s in stores:
            for key, doc in docs.items():
                put(s, key, doc)
        for selector in ({"type": "sensor"}, {"temp": {"$gt": 22}}, {"$not": {"type": "sensor"}}):
            results = [s.rich_query(selector) for s in stores]
            assert results[0] == results[1]
        for s in stores:
            s.close()


class TestFactoryAndConfig:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError):
            create_store("couchdb")

    def test_memory_takes_no_path(self):
        with pytest.raises(ConfigError):
            create_store("memory", "/tmp/x.sqlite")

    def test_network_config_validates_backend(self):
        with pytest.raises(ConfigError):
            NetworkConfig(state_backend="couchdb")
        with pytest.raises(ConfigError):
            NetworkConfig(state_dir="/tmp/x")  # memory backend takes no dir

    def test_with_state_backend_copies(self):
        config = fabriccrdt_config(25)
        moved = config.with_state_backend("sqlite")
        assert moved.state_backend == "sqlite"
        assert moved.orderer == config.orderer
        assert config.state_backend == "memory"


def make_tx(nonce, key="k", value=b"v"):
    from repro.common.types import ReadWriteSet, WriteItem
    from repro.fabric.policy import EndorsementPolicy, or_policy
    from repro.fabric.transaction import Proposal, TransactionEnvelope

    policy = EndorsementPolicy(or_policy("Org1"))
    proposal = Proposal.create("ch", "cc", "fn", (str(nonce),), "Org1.c", policy, nonce)
    return TransactionEnvelope(
        proposal=proposal,
        rwset=ReadWriteSet.build(writes=[WriteItem(key, value)]),
        endorsements=(),
    )


def committed_block(number, previous_hash, txs, codes):
    from repro.common.types import ValidationCode  # noqa: F401
    from repro.fabric.block import Block, BlockMetadata, CommittedBlock

    block = Block.build(number, previous_hash, tuple(txs))
    metadata = BlockMetadata(number)
    for index, code in enumerate(codes):
        metadata.mark(index, code)
    return CommittedBlock(block, metadata)


def _append_one_block(ledger):
    from repro.common.types import ValidationCode

    committed = committed_block(
        ledger.height, ledger.last_hash, [make_tx(1)], [ValidationCode.VALID]
    )
    batch = WriteBatch(block_number=committed.block.number)
    for tx_index, write in committed.writes_applied():
        batch.put(
            write.key,
            write.value,
            Version(committed.block.number, tx_index),
            write.is_delete,
        )
    ledger.state.apply_batch(batch)
    ledger.append_block(committed)


class TestLedgerIntegration:
    def test_ledger_defaults_to_memory(self):
        assert isinstance(Ledger().state, MemoryStore)

    def test_reset_store_only_before_genesis(self):
        ledger = Ledger()
        ledger.reset_store(MemoryStore())  # fine: nothing committed yet
        _append_one_block(ledger)
        with pytest.raises(LedgerError):
            ledger.reset_store(MemoryStore())

    def test_rebuild_state_into_sqlite_matches(self):
        ledger = Ledger()
        _append_one_block(ledger)
        rebuilt = ledger.rebuild_state()
        sqlite_rebuilt = ledger.rebuild_state(into=create_store("sqlite"))
        assert rebuilt.fingerprint() == ledger.state.fingerprint()
        assert sqlite_rebuilt.fingerprint() == ledger.state.fingerprint()
        sqlite_rebuilt.close()


def _run_iot_network(tmp_path, devices=4):
    from repro.core.network import crdt_network
    from repro.gateway import Gateway
    from repro.workload.iot import IOT_CHAINCODE_NAME, IoTChaincode, encode_call

    config = fabriccrdt_config(400, state_backend="sqlite", state_dir=str(tmp_path))
    network = crdt_network(config)
    network.deploy(IoTChaincode())
    contract = Gateway.connect(network).get_contract(IOT_CHAINCODE_NAME)
    submitted = []
    for n in range(devices):
        call = encode_call(
            read_keys=[f"device-{n}"],
            write_keys=[f"device-{n}"],
            payload={"deviceId": f"device-{n}", "t": str(n)},
            crdt=True,
        )
        submitted.append(contract.submit_async("record", call))
    network.flush()
    return network


class TestTopologyOnSqlite:
    def test_local_network_runs_on_sqlite_backend(self, tmp_path):
        network = _run_iot_network(tmp_path)
        assert network.world_states_converged()
        assert network.state_of("device-1")["deviceId"] == "device-1"
        # One database file per peer landed under state_dir.
        files = [name for name in os.listdir(tmp_path) if name.endswith(".sqlite")]
        assert len(files) == len(network.peers)

    def test_fresh_network_refuses_stale_state_dir(self, tmp_path):
        from repro.common.errors import FabricError

        _run_iot_network(tmp_path)  # leaves populated per-peer databases
        with pytest.raises(FabricError, match="previous run"):
            _run_iot_network(tmp_path)

    def test_sqlite_peer_state_survives_reopen(self, tmp_path):
        network = _run_iot_network(tmp_path)
        anchor = network.anchor_peer
        snapshot = anchor.ledger.state.snapshot_versions()
        fingerprint = anchor.ledger.state.fingerprint()
        height = anchor.ledger.height
        path = anchor.ledger.state.path
        anchor.ledger.state.close()

        reopened = SqliteStore(path)
        assert reopened.snapshot_versions() == snapshot
        assert reopened.fingerprint() == fingerprint
        # Height is recoverable from the max committed version in state.
        assert max(v.block_num for v in snapshot.values()) == height - 1
        reopened.close()
