"""Tests for the peer's commit pipeline: VSCC, duplicates, and MVCC.

Includes the paper's §3 worked example (transactions T1–T5 against world
state {K1, K2, K3}): T1 valid, T2 and T3 invalidated by T1's update of K2,
T4 and T5 valid.  (The paper's listing writes T4's read version of K3 as
"VN2"; from the stated outcome this denotes K3's *current* committed
version — a notation slip — so the test reads K3 at its live version.)
"""

import pytest

from repro.common.types import ReadItem, ReadWriteSet, ValidationCode, Version, WriteItem
from repro.common.serialization import to_bytes
from repro.fabric.block import GENESIS_PREVIOUS_HASH, Block
from repro.fabric.policy import EndorsementPolicy, and_policy, or_policy

from .helpers import build_peer, endorsed_tx, seed_block, seed_state, write_rwset


def make_block(peer, txs, number=None):
    return Block.build(
        number if number is not None else peer.ledger.height,
        peer.ledger.last_hash,
        tuple(txs),
    )


class TestSection3Example:
    def test_t1_valid_t2_t3_conflict_t4_t5_valid(self):
        peer = build_peer()
        versions = seed_block(
            peer, {"K1": {"v": "VL1"}, "K2": {"v": "VL2"}, "K3": {"v": "VL3"}}
        )
        vn1, vn2, vn3 = versions["K1"], versions["K2"], versions["K3"]

        t1 = endorsed_tx(peer, write_rwset(("K2", {"v": "VL1"}), reads=(("K2", vn2),)), 1)
        t2 = endorsed_tx(
            peer,
            write_rwset(("K3", {"v": "VL3"}), reads=(("K1", vn1), ("K2", vn2))),
            2,
        )
        t3 = endorsed_tx(peer, write_rwset(("K3", {"v": "VL1"}), reads=(("K2", vn2),)), 3)
        t4 = endorsed_tx(peer, write_rwset(("K2", {"v": "VL1"}), reads=(("K3", vn3),)), 4)
        t5 = endorsed_tx(peer, write_rwset(("K3", {"v": "VL2"})), 5)  # write-only

        committed = peer.validate_and_commit(make_block(peer, [t1, t2, t3, t4, t5]))
        codes = [committed.metadata.code_for(i) for i in range(5)]
        assert codes == [
            ValidationCode.VALID,
            ValidationCode.MVCC_READ_CONFLICT,
            ValidationCode.MVCC_READ_CONFLICT,
            ValidationCode.VALID,
            ValidationCode.VALID,
        ]

    def test_write_only_transactions_never_conflict(self):
        """§3: 'these transactions will not cause any read-write set
        conflict' — write transactions have an empty read set."""

        peer = build_peer()
        txs = [endorsed_tx(peer, write_rwset(("K", {"n": i})), nonce=i) for i in range(3)]
        committed = peer.validate_and_commit(make_block(peer, txs))
        assert committed.metadata.valid_count == 3
        # Last write wins in the world state.
        assert peer.ledger.state.get_value("K") == to_bytes({"n": 2})


class TestMVCC:
    def test_stale_read_from_previous_block(self):
        peer = build_peer()
        stale = seed_block(peer, {"K": {"v": 0}})["K"]
        first = endorsed_tx(peer, write_rwset(("K", {"v": 1}), reads=(("K", stale),)), 1)
        peer.validate_and_commit(make_block(peer, [first]))
        second = endorsed_tx(peer, write_rwset(("K", {"v": 2}), reads=(("K", stale),)), 2)
        committed = peer.validate_and_commit(make_block(peer, [second]))
        assert committed.metadata.code_for(0) is ValidationCode.MVCC_READ_CONFLICT

    def test_read_of_never_written_key_with_nil_version_valid(self):
        peer = build_peer()
        tx = endorsed_tx(peer, write_rwset(("K", {"v": 1}), reads=(("ghost", None),)), 1)
        committed = peer.validate_and_commit(make_block(peer, [tx]))
        assert committed.metadata.code_for(0) is ValidationCode.VALID

    def test_read_of_deleted_key_conflicts(self):
        peer = build_peer()
        version = seed_block(peer, {"K": {"v": 0}})["K"]
        delete = endorsed_tx(
            peer,
            ReadWriteSet.build(writes=[WriteItem("K", b"", is_delete=True)]),
            1,
        )
        peer.validate_and_commit(make_block(peer, [delete]))
        stale_reader = endorsed_tx(
            peer, write_rwset(("other", {"x": 1}), reads=(("K", version),)), 2
        )
        committed = peer.validate_and_commit(make_block(peer, [stale_reader]))
        assert committed.metadata.code_for(0) is ValidationCode.MVCC_READ_CONFLICT

    def test_in_block_dependency_detected(self):
        peer = build_peer()
        version = seed_block(peer, {"K": {"v": 0}})["K"]
        writer = endorsed_tx(peer, write_rwset(("K", {"v": 1}), reads=(("K", version),)), 1)
        reader = endorsed_tx(peer, write_rwset(("K", {"v": 2}), reads=(("K", version),)), 2)
        committed = peer.validate_and_commit(make_block(peer, [writer, reader]))
        assert committed.metadata.code_for(0) is ValidationCode.VALID
        assert committed.metadata.code_for(1) is ValidationCode.MVCC_READ_CONFLICT

    def test_versions_assigned_by_block_and_tx_index(self):
        peer = build_peer()
        tx_a = endorsed_tx(peer, write_rwset(("A", {})), 1)
        tx_b = endorsed_tx(peer, write_rwset(("B", {})), 2)
        peer.validate_and_commit(make_block(peer, [tx_a, tx_b]))
        assert peer.ledger.state.get_version("A") == Version(0, 0)
        assert peer.ledger.state.get_version("B") == Version(0, 1)


class TestVSCCAndDuplicates:
    def test_missing_endorsements_fail_policy(self):
        peer = build_peer()
        tx = endorsed_tx(peer, write_rwset(("K", {})), 1)
        bare = type(tx)(
            proposal=tx.proposal, rwset=tx.rwset, endorsements=(),
            chaincode_result=tx.chaincode_result,
        )
        committed = peer.validate_and_commit(make_block(peer, [bare]))
        assert committed.metadata.code_for(0) is ValidationCode.ENDORSEMENT_POLICY_FAILURE

    def test_unsatisfying_orgs_fail_policy(self):
        peer = build_peer()
        policy = EndorsementPolicy(and_policy("Org1", "Org2"))
        tx = endorsed_tx(peer, write_rwset(("K", {})), 1, policy=policy, endorser_orgs=["Org1"])
        committed = peer.validate_and_commit(make_block(peer, [tx]))
        assert committed.metadata.code_for(0) is ValidationCode.ENDORSEMENT_POLICY_FAILURE

    def test_multi_org_policy_satisfied(self):
        peer = build_peer()
        policy = EndorsementPolicy(and_policy("Org1", "Org2"))
        tx = endorsed_tx(
            peer, write_rwset(("K", {})), 1, policy=policy, endorser_orgs=["Org1", "Org2"]
        )
        committed = peer.validate_and_commit(make_block(peer, [tx]))
        assert committed.metadata.code_for(0) is ValidationCode.VALID

    def test_tampered_rwset_fails_vscc(self):
        peer = build_peer()
        tx = endorsed_tx(peer, write_rwset(("K", {"v": 1})), 1)
        tampered = tx.with_rwset(write_rwset(("K", {"v": 666})))
        committed = peer.validate_and_commit(make_block(peer, [tampered]))
        assert committed.metadata.code_for(0) is ValidationCode.ENDORSEMENT_POLICY_FAILURE

    def test_duplicate_txid_within_block(self):
        peer = build_peer()
        tx = endorsed_tx(peer, write_rwset(("K", {})), 1)
        committed = peer.validate_and_commit(make_block(peer, [tx, tx]))
        assert committed.metadata.code_for(0) is ValidationCode.VALID
        assert committed.metadata.code_for(1) is ValidationCode.DUPLICATE_TXID

    def test_duplicate_txid_across_blocks(self):
        peer = build_peer()
        tx = endorsed_tx(peer, write_rwset(("K", {})), 1)
        peer.validate_and_commit(make_block(peer, [tx]))
        committed = peer.validate_and_commit(make_block(peer, [tx]))
        assert committed.metadata.code_for(0) is ValidationCode.DUPLICATE_TXID


class TestPhantomReads:
    def _range_tx(self, peer, nonce, reads_hash_state):
        """A tx that recorded a range query over ['a', 'z') at endorse time."""

        from repro.fabric.chaincode import ShimStub

        stub = ShimStub(reads_hash_state, f"sim{nonce}")
        stub.get_state_by_range("a", "z")
        stub.put_state("out", {"n": nonce})
        return endorsed_tx(peer, stub.build_rwset(), nonce)

    def test_unchanged_range_passes(self):
        peer = build_peer()
        seed_state(peer, "apple", {"v": 1}, 0, 0)
        tx = self._range_tx(peer, 1, peer.ledger.state)
        committed = peer.validate_and_commit(make_block(peer, [tx]))
        assert committed.metadata.code_for(0) is ValidationCode.VALID

    def test_phantom_insert_detected(self):
        peer = build_peer()
        seed_state(peer, "apple", {"v": 1}, 0, 0)
        tx = self._range_tx(peer, 1, peer.ledger.state)
        # A key appears in the range after simulation, before commit.
        seed_state(peer, "banana", {"v": 2}, 0, 1)
        committed = peer.validate_and_commit(make_block(peer, [tx]))
        assert committed.metadata.code_for(0) is ValidationCode.PHANTOM_READ_CONFLICT

    def test_in_block_phantom_detected(self):
        peer = build_peer()
        seed_state(peer, "apple", {"v": 1}, 0, 0)
        range_tx = self._range_tx(peer, 1, peer.ledger.state)
        inserter = endorsed_tx(peer, write_rwset(("middle", {"v": 9})), 2)
        committed = peer.validate_and_commit(make_block(peer, [inserter, range_tx]))
        assert committed.metadata.code_for(0) is ValidationCode.VALID
        assert committed.metadata.code_for(1) is ValidationCode.PHANTOM_READ_CONFLICT


class TestCommitBookkeeping:
    def test_commit_work_counters(self):
        peer = build_peer()
        version = seed_block(peer, {"K": {"v": 0}})["K"]
        tx = endorsed_tx(peer, write_rwset(("K", {"v": 1}), reads=(("K", version),)), 1)
        prepared = peer.prepare_block(make_block(peer, [tx]))
        assert prepared.work.tx_count == 1
        assert prepared.work.vscc_checks == 1
        assert prepared.work.mvcc_reads == 1
        assert prepared.work.writes_applied == 1
        assert prepared.work.distinct_keys_written == 1

    def test_prepare_does_not_mutate_state(self):
        peer = build_peer()
        tx = endorsed_tx(peer, write_rwset(("K", {"v": 1})), 1)
        peer.prepare_block(make_block(peer, [tx]))
        assert peer.ledger.state.get_value("K") is None
        assert peer.ledger.height == 0

    def test_events_published_on_apply(self):
        peer = build_peer()
        seen = []
        peer.events.subscribe_internal(
            lambda committed, name: seen.append((name, committed.block.number))
        )
        tx = endorsed_tx(peer, write_rwset(("K", {})), 1)
        peer.validate_and_commit(make_block(peer, [tx]))
        assert seen == [(peer.name, 0)]
