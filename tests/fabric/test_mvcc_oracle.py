"""Property test: the peer's MVCC validation matches a serial oracle.

The oracle re-derives validity from first principles: walk the block in
order, track the latest version of every key (committed state + writes of
already-accepted transactions), accept a transaction iff every read matches.
The peer must mark exactly the same transactions valid.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.serialization import to_bytes
from repro.common.types import ReadItem, ReadWriteSet, ValidationCode, Version, WriteItem
from repro.fabric.block import Block

from .helpers import build_peer, endorsed_tx, seed_block

KEYS = ["k0", "k1", "k2"]


@st.composite
def rwset_specs(draw):
    """A list of abstract transactions: (read_keys, stale_flags, write_keys)."""

    n_txs = draw(st.integers(1, 8))
    specs = []
    for _ in range(n_txs):
        read_keys = draw(st.lists(st.sampled_from(KEYS), unique=True, max_size=3))
        stale = [draw(st.booleans()) for _ in read_keys]
        write_keys = draw(st.lists(st.sampled_from(KEYS), unique=True, min_size=1, max_size=3))
        specs.append((tuple(zip(read_keys, stale)), tuple(write_keys)))
    return specs


def oracle(specs, committed_versions):
    """Serial re-execution: which transaction indices must be valid?

    Every transaction *observed* the pre-block committed version (or a
    permanently-stale marker); it validates iff that observation still
    matches the current version after all earlier accepted writes.
    """

    current = dict(committed_versions)
    valid = []
    for index, (reads, writes) in enumerate(specs):
        ok = True
        for key, stale in reads:
            observed = "stale" if stale else committed_versions[key]
            if observed != current[key]:
                ok = False
                break
        if ok:
            valid.append(index)
            for key in writes:
                current[key] = ("block", index)
    return valid


@settings(max_examples=80, deadline=None)
@given(rwset_specs())
def test_peer_validation_matches_serial_oracle(specs):
    peer = build_peer()
    versions = seed_block(peer, {key: {"v": 0} for key in KEYS})
    stale_version = Version(99, 99)  # a version that can never match

    txs = []
    for index, (reads, writes) in enumerate(specs):
        rwset = ReadWriteSet.build(
            reads=[
                ReadItem(key, stale_version if stale else versions[key])
                for key, stale in reads
            ],
            writes=[WriteItem(key, to_bytes({"w": index})) for key in writes],
        )
        txs.append(endorsed_tx(peer, rwset, nonce=1000 + index))

    block = Block.build(peer.ledger.height, peer.ledger.last_hash, tuple(txs))
    committed = peer.validate_and_commit(block)

    # Oracle over the same abstract specs: committed state is version per key.
    expected_valid = oracle(specs, {key: versions[key] for key in KEYS})
    # Reinterpret: a read is correct iff not stale AND no earlier valid tx
    # wrote the key.  The oracle's "current" uses ('block', i) markers which
    # can never equal the seeded versions, matching MVCC's version bump.
    actual_valid = [
        index
        for index in range(len(specs))
        if committed.metadata.code_for(index) is ValidationCode.VALID
    ]
    assert actual_valid == expected_valid


@settings(max_examples=40, deadline=None)
@given(rwset_specs())
def test_state_reflects_exactly_the_oracle_valid_writes(specs):
    peer = build_peer()
    versions = seed_block(peer, {key: {"v": 0} for key in KEYS})
    stale_version = Version(99, 99)
    txs = []
    for index, (reads, writes) in enumerate(specs):
        rwset = ReadWriteSet.build(
            reads=[
                ReadItem(key, stale_version if stale else versions[key])
                for key, stale in reads
            ],
            writes=[WriteItem(key, to_bytes({"w": index})) for key in writes],
        )
        txs.append(endorsed_tx(peer, rwset, nonce=1000 + index))
    block = Block.build(peer.ledger.height, peer.ledger.last_hash, tuple(txs))
    peer.validate_and_commit(block)

    expected_valid = set(oracle(specs, {key: versions[key] for key in KEYS}))
    last_writer: dict[str, int] = {}
    for index, (_, writes) in enumerate(specs):
        if index in expected_valid:
            for key in writes:
                last_writer[key] = index
    for key in KEYS:
        value = peer.ledger.state.get_value(key)
        if key in last_writer:
            assert value == to_bytes({"w": last_writer[key]})
        else:
            assert value == to_bytes({"v": 0})  # untouched seed value

    # And the ledger replay invariant holds for arbitrary blocks too.
    rebuilt = peer.ledger.rebuild_state()
    assert rebuilt.snapshot_versions() == peer.ledger.state.snapshot_versions()
