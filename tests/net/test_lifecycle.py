"""Lifecycle: ``close()`` and context-manager support across the stack.

Every layer that owns resources — channel deliver sessions, state-store
handles, socket connections — must release them on ``close()``, support
``with``-statement usage, and tolerate double-close.  SQLite state
backends make leaks observable: an unclosed connection keeps the database
file locked.
"""

from __future__ import annotations

import json

from repro.common.config import fabric_config, fabriccrdt_config
from repro.core.network import crdt_network, vanilla_network
from repro.fabric.store.sqlite import SqliteStore
from repro.gateway.gateway import Gateway
from repro.workload.iot import IoTChaincode


def test_local_network_close_shuts_the_deliver_session():
    network = crdt_network()
    session = network.channel._deliver_session
    assert not session.closed
    network.close()
    assert session.closed
    network.close()  # double close is a no-op, not an error


def test_local_network_is_a_context_manager():
    with vanilla_network() as network:
        network.deploy(IoTChaincode())
        contract = Gateway.connect(network).get_contract("iot")
        contract.submit("populate", json.dumps({"keys": ["dev-ctx"]}))
        session = network.channel._deliver_session
        assert not session.closed
    assert session.closed


def test_gateway_is_a_context_manager_over_its_transport():
    network = crdt_network()
    network.deploy(IoTChaincode())
    with Gateway.connect(network) as gateway:
        contract = gateway.get_contract("iot")
        contract.submit("populate", json.dumps({"keys": ["dev-gw"]}))
    assert network.channel._deliver_session.closed
    network.close()  # already closed via the gateway; still a no-op


def test_close_releases_sqlite_state_stores(tmp_path):
    config = fabriccrdt_config(state_backend="sqlite", state_dir=str(tmp_path))
    with crdt_network(config) as network:
        network.deploy(IoTChaincode())
        contract = Gateway.connect(network).get_contract("iot")
        contract.submit("populate", json.dumps({"keys": ["dev-sql"]}))
        anchor = network.peers[0]
        db_path = anchor.ledger.state.path
        fingerprint = anchor.ledger.state.fingerprint()
    # After close, reopening the same file directly sees the committed
    # state — nothing was held open or lost in a dangling connection.
    reopened = SqliteStore(db_path)
    try:
        assert reopened.get("dev-sql") is not None
        assert reopened.fingerprint() == fingerprint
    finally:
        reopened.close()


def test_transport_context_manager_closes_channel():
    network = vanilla_network(fabric_config())
    transport = network.transport
    with transport:
        pass
    assert network.channel._deliver_session.closed
