"""Property tests: frame encode/decode is an exact, typed-failure codec.

A server's accept loop survives on two invariants: every well-formed byte
stream round-trips exactly (any chunking), and every malformed stream
raises a *typed* :class:`FrameError` — never a bare exception the loop
would have to guess about, never silent garbage.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.serialization import from_bytes
from repro.net.codec import (
    DEFAULT_MAX_FRAME_BYTES,
    HEADER_BYTES,
    MAGIC,
    FrameCorrupt,
    FrameDecoder,
    FrameError,
    FrameTooLarge,
    FrameTruncated,
    encode_frame,
    encode_message,
)

payloads = st.lists(st.binary(max_size=200), max_size=10)


@given(payloads=payloads, chunk_size=st.integers(1, 23))
@settings(max_examples=100, deadline=None)
def test_frames_round_trip_under_any_chunking(payloads, chunk_size):
    stream = b"".join(encode_frame(payload) for payload in payloads)
    decoder = FrameDecoder()
    decoded = []
    for start in range(0, len(stream), chunk_size):
        decoded.extend(decoder.feed(stream[start : start + chunk_size]))
    decoder.eof()
    assert decoded == payloads
    assert decoder.buffered == 0


@given(message=st.recursive(
    st.none() | st.booleans() | st.integers(-(10**9), 10**9)
    | st.text(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=12,
))
@settings(max_examples=100, deadline=None)
def test_encode_message_payload_is_canonical_json(message):
    frame = encode_message(message)
    assert frame[: len(MAGIC)] == MAGIC
    payload = frame[HEADER_BYTES:]
    assert len(payload) == int.from_bytes(frame[len(MAGIC) : HEADER_BYTES], "big")
    assert from_bytes(payload) == message


@given(garbage=st.binary(min_size=HEADER_BYTES, max_size=64))
@settings(max_examples=100, deadline=None)
def test_garbage_raises_typed_error_never_crashes(garbage):
    decoder = FrameDecoder(max_frame_bytes=1024)
    try:
        decoder.feed(garbage)
        decoder.eof()
    except FrameError:
        pass  # typed failure is the contract; anything else propagates


def test_bad_magic_is_corrupt():
    decoder = FrameDecoder()
    with pytest.raises(FrameCorrupt):
        decoder.feed(b"XX" + b"\x00\x00\x00\x01a")


def test_oversized_declaration_is_too_large():
    decoder = FrameDecoder(max_frame_bytes=16)
    with pytest.raises(FrameTooLarge):
        decoder.feed(MAGIC + (17).to_bytes(4, "big"))


def test_eof_mid_frame_is_truncated():
    decoder = FrameDecoder()
    frame = encode_frame(b"hello")
    decoder.feed(frame[:-2])
    with pytest.raises(FrameTruncated):
        decoder.eof()


def test_decoder_is_poisoned_after_an_error():
    decoder = FrameDecoder()
    with pytest.raises(FrameCorrupt):
        decoder.feed(b"ZZ\x00\x00\x00\x00")
    # The stream cannot be resynchronized: valid frames no longer help.
    with pytest.raises(FrameCorrupt):
        decoder.feed(encode_frame(b"fine"))


def test_partial_header_is_not_an_error_until_eof():
    decoder = FrameDecoder()
    assert decoder.feed(MAGIC) == []
    assert decoder.buffered == len(MAGIC)
    with pytest.raises(FrameTruncated):
        decoder.eof()


def test_payload_over_u32_is_rejected_at_encode_time():
    class HugeLen(bytes):
        def __len__(self):
            return 0x1_0000_0000

    with pytest.raises(FrameTooLarge):
        encode_frame(HugeLen())


def test_default_cap_is_generous_but_bounded():
    assert DEFAULT_MAX_FRAME_BYTES == 32 * 1024 * 1024
