"""The distributed runtime's correctness bar: fingerprint parity.

The same seeded workload runs twice — once on the in-process
:class:`LocalNetwork`, once against a multi-process cluster over sockets
— and every peer's committed world-state fingerprint, ledger height, and
per-transaction status must be *identical*.  This is what makes the
socket transport a faithful deployment of the protocol rather than a
lookalike.
"""

from __future__ import annotations

from repro.net.smoke import run_parity_smoke


def test_crdt_workload_has_fingerprint_parity_across_processes():
    report = run_parity_smoke(transactions=30, max_message_count=10)
    assert report.passed, report.format()
    assert report.local.fingerprints == report.remote.fingerprints
    assert report.local.heights == report.remote.heights
    assert report.local.statuses == report.remote.statuses


def test_vanilla_workload_parity_includes_mvcc_conflicts():
    # conflict-heavy + CRDT off: some transactions MVCC-fail, and the
    # *pattern* of failures must match the in-process run exactly too.
    report = run_parity_smoke(
        transactions=30, max_message_count=10, crdt_enabled=False
    )
    assert report.passed, report.format()
    codes = set(report.remote.statuses.values())
    assert len(codes) > 1, "expected a mix of VALID and MVCC conflicts"
