"""Property tests: every wire structure round-trips exactly.

``decode(encode(x)) == x`` per message type is load-bearing, not hygiene:
peers recompute block data hashes from *decoded* envelopes, so a codec
that loses one bit anywhere breaks the hash chain at the first committed
block.  Decoders must also fail typed (:class:`WireError`) on malformed
input, because servers answer a bad message with an error frame instead
of dying.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.types import (
    RangeQueryInfo,
    ReadItem,
    ReadWriteSet,
    ValidationCode,
    Version,
    WriteItem,
)
from repro.fabric.block import Block, BlockMetadata, CommittedBlock
from repro.fabric.identity import SignedPayload
from repro.fabric.policy import OutOf, Principal, or_policy
from repro.fabric.transaction import (
    ChaincodeEvent,
    EndorsementFailure,
    Proposal,
    ProposalResponse,
    TransactionEnvelope,
)
from repro.net.wire import (
    WireError,
    dec_block,
    dec_committed_block,
    dec_endorsement_failure,
    dec_envelope,
    dec_metadata,
    dec_policy,
    dec_proposal,
    dec_proposal_response,
    dec_rwset,
    dec_version,
    enc_block,
    enc_committed_block,
    enc_endorsement_failure,
    enc_envelope,
    enc_metadata,
    enc_policy,
    enc_proposal,
    enc_proposal_response,
    enc_rwset,
    enc_version,
    message_type,
)

# -- strategies ---------------------------------------------------------------

names = st.text(alphabet="OrgPeerclient0123456789._-", min_size=1, max_size=16)
keys = st.text(alphabet="abcdevice/0123456789-", min_size=1, max_size=20)
payload_bytes = st.binary(max_size=64)
versions = st.builds(Version, st.integers(0, 10**6), st.integers(0, 10**4))
finite_floats = st.floats(min_value=0.0, max_value=1e9, allow_nan=False)

policy_nodes = st.recursive(
    st.builds(Principal, names),
    lambda children: st.lists(children, min_size=1, max_size=3).flatmap(
        lambda rules: st.integers(1, len(rules)).map(
            lambda threshold: OutOf(threshold, tuple(rules))
        )
    ),
    max_leaves=6,
)

read_items = st.builds(ReadItem, key=keys, version=st.none() | versions)
write_items = st.one_of(
    # Regular or CRDT write: non-delete, any value.
    st.builds(
        WriteItem,
        key=keys,
        value=payload_bytes,
        is_delete=st.just(False),
        is_crdt=st.booleans(),
    ),
    # Delete: empty value, never CRDT (WriteItem's own invariants).
    st.builds(
        WriteItem,
        key=keys,
        value=st.just(b""),
        is_delete=st.just(True),
        is_crdt=st.just(False),
    ),
)
range_queries = st.builds(
    RangeQueryInfo, start_key=keys, end_key=keys, results_hash=st.binary(min_size=32, max_size=32)
)
rwsets = st.builds(
    ReadWriteSet,
    reads=st.lists(read_items, max_size=4).map(tuple),
    writes=st.lists(write_items, max_size=4).map(tuple),
    range_queries=st.lists(range_queries, max_size=2).map(tuple),
)

signed_payloads = st.builds(
    SignedPayload,
    payload_hash=st.binary(min_size=32, max_size=32),
    signer=names,
    signature=st.binary(min_size=32, max_size=32),
)

json_values = st.none() | st.booleans() | st.integers(-100, 100) | st.text(max_size=12)
events = st.none() | st.builds(
    ChaincodeEvent, name=names, payload=st.dictionaries(keys, json_values, max_size=3)
)

proposals = st.builds(
    Proposal,
    tx_id=names,
    channel=names,
    chaincode=names,
    function=names,
    args=st.lists(st.text(max_size=30), max_size=3).map(tuple),
    creator=names,
    policy=policy_nodes,
    submit_time=finite_floats,
)

proposal_responses = st.builds(
    ProposalResponse,
    tx_id=names,
    endorser=names,
    rwset=rwsets,
    chaincode_result=payload_bytes,
    endorsement=signed_payloads,
    event=events,
)

envelopes = st.builds(
    TransactionEnvelope,
    proposal=proposals,
    rwset=rwsets,
    endorsements=st.lists(signed_payloads, min_size=1, max_size=3).map(tuple),
    chaincode_result=payload_bytes,
    client_signature=st.none() | signed_payloads,
    event=events,
)


@st.composite
def blocks(draw):
    transactions = tuple(draw(st.lists(envelopes, max_size=3)))
    return Block.build(
        number=draw(st.integers(0, 10**6)),
        previous_hash=draw(st.binary(min_size=32, max_size=32)),
        transactions=transactions,
        cut_reason=draw(st.sampled_from(["count", "bytes", "timeout", "flush"])),
        cut_time=draw(finite_floats),
    )


@st.composite
def committed_blocks(draw):
    block = draw(blocks())
    flags = [
        draw(st.sampled_from(list(ValidationCode))) for _ in block.transactions
    ]
    effective = None
    if draw(st.booleans()):
        effective = tuple(
            (index, write)
            for index, tx in enumerate(block.transactions)
            for write in tx.rwset.writes
        )
    return CommittedBlock(
        block=block,
        metadata=BlockMetadata(block_num=block.number, flags=flags),
        commit_time=draw(finite_floats),
        effective_writes=effective,
    )


# -- round trips --------------------------------------------------------------


@given(version=st.none() | versions)
@settings(max_examples=100, deadline=None)
def test_version_round_trip(version):
    assert dec_version(enc_version(version)) == version


@given(node=policy_nodes)
@settings(max_examples=100, deadline=None)
def test_policy_round_trip(node):
    assert dec_policy(enc_policy(node)) == node


def test_wrapped_policy_canonicalizes_to_its_expression():
    from repro.fabric.policy import EndorsementPolicy

    wrapped = EndorsementPolicy(or_policy("Org1", "Org2"))
    assert dec_policy(enc_policy(wrapped)) == wrapped.expression


@given(rwset=rwsets)
@settings(max_examples=100, deadline=None)
def test_rwset_round_trip(rwset):
    assert dec_rwset(enc_rwset(rwset)) == rwset


@given(proposal=proposals)
@settings(max_examples=100, deadline=None)
def test_proposal_round_trip(proposal):
    assert dec_proposal(enc_proposal(proposal)) == proposal


@given(response=proposal_responses)
@settings(max_examples=100, deadline=None)
def test_proposal_response_round_trip(response):
    assert dec_proposal_response(enc_proposal_response(response)) == response


@given(
    failure=st.builds(
        EndorsementFailure,
        tx_id=names,
        endorser=names,
        reason=st.text(max_size=40),
        chaincode_error=st.none() | st.text(max_size=40),
    )
)
@settings(max_examples=100, deadline=None)
def test_endorsement_failure_round_trip(failure):
    assert dec_endorsement_failure(enc_endorsement_failure(failure)) == failure


@given(envelope=envelopes)
@settings(max_examples=50, deadline=None)
def test_envelope_round_trip(envelope):
    assert dec_envelope(enc_envelope(envelope)) == envelope


@given(block=blocks())
@settings(max_examples=25, deadline=None)
def test_block_round_trip_preserves_integrity(block):
    decoded = dec_block(enc_block(block))
    assert decoded == block
    # The far side recomputes the data hash from decoded envelopes: a
    # lossy codec would fail here even if equality somehow held.
    assert decoded.verify_integrity()


@given(metadata=st.builds(
    BlockMetadata,
    block_num=st.integers(0, 10**6),
    flags=st.lists(st.sampled_from(list(ValidationCode)), max_size=5),
))
@settings(max_examples=100, deadline=None)
def test_metadata_round_trip(metadata):
    decoded = dec_metadata(enc_metadata(metadata))
    assert decoded.block_num == metadata.block_num
    assert list(decoded.flags) == list(metadata.flags)


@given(committed=committed_blocks())
@settings(max_examples=25, deadline=None)
def test_committed_block_round_trip(committed):
    decoded = dec_committed_block(enc_committed_block(committed))
    assert decoded.block == committed.block
    assert list(decoded.metadata.flags) == list(committed.metadata.flags)
    assert decoded.commit_time == committed.commit_time
    assert decoded.writes_applied() == committed.writes_applied()


# -- strictness ---------------------------------------------------------------


@pytest.mark.parametrize(
    "decoder, bad",
    [
        (dec_proposal, {}),
        (dec_proposal, {"tx_id": "t"}),
        (dec_rwset, {"reads": []}),
        (dec_rwset, "not an object"),
        (dec_envelope, {"proposal": {}}),
        (dec_policy, {"neither": 1}),
        (dec_policy, {"out_of": {"threshold": "x", "rules": []}}),
        (dec_block, {"header": {}}),
        (dec_committed_block, {"block": {}}),
        (dec_metadata, {"block_num": 1, "flags": ["NOT_A_CODE"]}),
    ],
)
def test_malformed_input_raises_wire_error(decoder, bad):
    with pytest.raises(WireError):
        decoder(bad)


def test_proposal_args_must_be_strings():
    proposal = enc_proposal(
        Proposal(
            tx_id="t", channel="c", chaincode="cc", function="f",
            args=("a",), creator="cl", policy=Principal("Org1"),
        )
    )
    proposal["args"] = [1, 2]
    with pytest.raises(WireError):
        dec_proposal(proposal)


def test_message_type_rejects_unknown_tags():
    assert message_type({"type": "ping"}) == "ping"
    with pytest.raises(WireError):
        message_type({"type": "launch_missiles"})
    with pytest.raises(WireError):
        message_type({})
