"""Failure injection: dead or frozen processes surface as typed errors.

The robustness contract of the socket transport is "typed failure, never
a hang": a peer process that died mid-engagement turns into an
``EndorsementFailure`` inside the normal endorsement round (so
``commit_status()`` raises :class:`EndorseError`), a dead orderer turns a
broadcast into :class:`SubmitError`, and a *frozen* (SIGSTOPped) node
trips the per-request deadline as :class:`RequestTimeout` instead of
blocking the caller forever.
"""

from __future__ import annotations

import dataclasses
import json
import os
import signal

import pytest

from repro.common.config import TopologyConfig, fabriccrdt_config
from repro.gateway.errors import EndorseError, SubmitError
from repro.gateway.gateway import Gateway
from repro.net import Cluster, SocketTransport
from repro.net.errors import TransportError
from repro.workload.iot import encode_call, reading_payload


def small_config():
    base = fabriccrdt_config(max_message_count=4)
    return dataclasses.replace(
        base,
        topology=TopologyConfig(num_orgs=2, peers_per_org=1),
        orderer=dataclasses.replace(base.orderer, batch_timeout_s=3600.0),
    )


@pytest.fixture()
def cluster():
    with Cluster.spawn(
        small_config(), chaincodes=["repro.workload.iot:IoTChaincode"]
    ) as cluster:
        yield cluster


def record_call(device: str, sequence: int) -> str:
    return encode_call(
        read_keys=[device],
        write_keys=[device],
        payload=reading_payload(device, temperature=20, sequence=sequence),
        crdt=True,
    )


def kill_processes(cluster, prefix: str) -> None:
    victims = [p for p in cluster._processes if p.name.startswith(prefix)]
    assert victims, f"no process named {prefix}*"
    for proc in victims:
        proc.kill()
    for proc in victims:
        proc.join(10.0)


def test_dead_peers_fail_the_transaction_instead_of_hanging(cluster):
    with SocketTransport.connect(cluster.profile, request_timeout_s=2.0) as transport:
        contract = Gateway.connect(transport).get_contract("iot")
        kill_processes(cluster, "repro-peer-")

        tx = contract.submit_async("record", record_call("dev-dead", 0))
        assert tx.endorse_failure is not None
        assert any("transport:" in f.reason for f in tx.endorse_failure.failures)
        with pytest.raises(EndorseError):
            tx.commit_status()


def test_evaluate_against_dead_anchor_raises_endorse_error(cluster):
    with SocketTransport.connect(cluster.profile, request_timeout_s=2.0) as transport:
        contract = Gateway.connect(transport).get_contract("iot")
        kill_processes(cluster, "repro-peer-")

        with pytest.raises(EndorseError):
            contract.evaluate("read_device", json.dumps({"key": "dev-x"}))


def test_dead_orderer_turns_broadcast_into_submit_error(cluster):
    with SocketTransport.connect(cluster.profile, request_timeout_s=2.0) as transport:
        contract = Gateway.connect(transport).get_contract("iot")
        # Seed state while everything is up, so endorsement itself succeeds
        # after the orderer is gone.
        contract.submit("populate", json.dumps({"keys": ["dev-orderer"]}))
        kill_processes(cluster, "repro-orderer")

        with pytest.raises(SubmitError):
            contract.submit_async("record", record_call("dev-orderer", 0))
        with pytest.raises(TransportError):
            transport.flush()


def test_frozen_peer_trips_the_request_deadline(cluster):
    with SocketTransport.connect(cluster.profile, request_timeout_s=0.5) as transport:
        contract = Gateway.connect(transport).get_contract("iot")
        victims = [p for p in cluster._processes if p.name.startswith("repro-peer-")]
        for proc in victims:
            os.kill(proc.pid, signal.SIGSTOP)
        try:
            # A stopped process accepts bytes but never answers: only the
            # per-request deadline stands between the caller and a hang.
            with pytest.raises(EndorseError) as excinfo:
                contract.evaluate("read_device", json.dumps({"key": "dev-frozen"}))
            reasons = [f.reason for f in excinfo.value.failure.failures]
            assert any("timed out" in reason for reason in reasons)
        finally:
            for proc in victims:
                os.kill(proc.pid, signal.SIGCONT)
