"""End-to-end: real processes, real sockets, the full Gateway surface.

One module-scoped cluster (an orderer + two peers, each its own OS
process) serves every test: submission and commit statuses, CRDT merge
across process boundaries, evaluate, remote fingerprint convergence, and
the event service — block streams, contract events, checkpoint/resume —
running over deliver sockets.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.common.config import TopologyConfig, fabriccrdt_config
from repro.gateway.gateway import Gateway
from repro.net import Cluster, SocketTransport
from repro.workload.iot import encode_call, reading_payload

CHAINCODES = [
    "repro.workload.iot:IoTChaincode",
    "repro.core.counters:VotingChaincode",
]


def cluster_config(state_backend: str = "memory"):
    base = fabriccrdt_config(max_message_count=4, state_backend=state_backend)
    return dataclasses.replace(
        base,
        topology=TopologyConfig(num_orgs=2, peers_per_org=1),
        # No wall-clock cuts during tests: blocks cut on count or flush.
        orderer=dataclasses.replace(base.orderer, batch_timeout_s=3600.0),
    )


@pytest.fixture(scope="module")
def cluster():
    with Cluster.spawn(cluster_config(), chaincodes=CHAINCODES) as cluster:
        yield cluster


@pytest.fixture()
def transport(cluster):
    with SocketTransport.connect(cluster.profile) as transport:
        yield transport


def record_call(device: str, sequence: int, temperature: int = 20) -> str:
    return encode_call(
        read_keys=[device],
        write_keys=[device],
        payload=reading_payload(device, temperature=temperature, sequence=sequence),
        crdt=True,
    )


def test_every_node_answers_health_pings(cluster):
    pongs = cluster.health_check()
    assert set(pongs) == {"orderer", "Org1.peer0", "Org2.peer0"}
    assert cluster.alive()


def test_submit_commits_on_every_process_peer(cluster, transport):
    contract = Gateway.connect(transport).get_contract("iot")
    contract.submit("populate", json.dumps({"keys": ["dev-a"]}))

    submitted = [
        contract.submit_async("record", record_call("dev-a", i, 20 + i))
        for i in range(5)
    ]
    statuses = [tx.commit_status() for tx in submitted]
    assert all(status.succeeded for status in statuses)

    # Ground truth from the peer processes themselves, not the mirrors.
    height = transport.channel.anchor_peer.ledger.height
    transport.wait_for_height(height, timeout_s=10)
    infos = [transport.ledger_info(i) for i in range(2)]
    assert infos[0]["fingerprint"] == infos[1]["fingerprint"]

    # The client-side mirrors replayed the same chain byte-for-byte.
    assert transport.channel.world_states_converged()
    local = transport.channel.anchor_peer.ledger.state.fingerprint().hex()
    assert local == infos[0]["fingerprint"]


def test_crdt_merge_happens_across_process_boundaries(cluster, transport):
    contract = Gateway.connect(transport).get_contract("iot")
    contract.submit("populate", json.dumps({"keys": ["dev-merge"]}))

    # Four concurrent read-modify-writes of one key, all in one block
    # (max_message_count is 4): vanilla Fabric would MVCC-kill three; the
    # CRDT merge keeps every reading.
    submitted = [
        contract.submit_async("record", record_call("dev-merge", i, 30 + i))
        for i in range(4)
    ]
    assert all(tx.commit_status().succeeded for tx in submitted)

    state = transport.channel.state_of("dev-merge")
    temperatures = {r["temperature"] for r in state["tempReadings"]}
    assert temperatures == {str(30 + i) for i in range(4)}


def test_evaluate_reads_without_ordering(cluster, transport):
    contract = Gateway.connect(transport).get_contract("iot")
    contract.submit("populate", json.dumps({"keys": ["dev-read"]}))
    height_before = transport.ledger_info(0)["height"]

    result = contract.evaluate("read_device", json.dumps({"key": "dev-read"}))
    assert result["deviceID"] == "dev-read"
    # Reads are never ordered: no block was cut by the evaluation.
    assert transport.ledger_info(0)["height"] == height_before


def test_block_events_stream_over_sockets_with_resume(cluster, transport):
    gateway = Gateway.connect(transport)
    contract = gateway.get_contract("voting")

    live = gateway.block_events(start_block=0)
    for i in range(4):
        contract.submit_async("vote", "election", "apple", f"voter{i}")
    transport.flush()
    transport.wait_for_height(transport.channel.anchor_peer.ledger.height)
    transport.pump()

    seen = list(live)
    assert seen, "live stream saw no blocks"
    checkpoint = live.checkpoint()
    live.close()

    # More blocks commit while the consumer is down...
    for i in range(4):
        contract.submit_async("vote", "election", "banana", f"voter{4 + i}")
    transport.flush()
    transport.pump()

    # ...and the resumed stream replays exactly the missed ones.
    resumed = gateway.block_events(checkpoint=checkpoint)
    replayed = list(resumed)
    resumed.close()
    assert replayed
    first_new = replayed[0].block_number
    assert first_new == seen[-1].block_number + 1
    numbers = [event.block_number for event in replayed]
    assert numbers == sorted(numbers)


def test_contract_events_arrive_from_remote_commits(cluster, transport):
    gateway = Gateway.connect(transport)
    contract = gateway.get_contract("voting")

    stream = contract.contract_events(event_name="voted")
    submitted = [
        contract.submit_async("vote", "tally-test", option, f"cv{i}")
        for i, option in enumerate(["apple", "banana", "apple"])
    ]
    assert all(tx.commit_status().succeeded for tx in submitted)
    transport.pump()

    events = list(stream)
    stream.close()
    options = [event.payload["option"] for event in events]
    assert sorted(options) == ["apple", "apple", "banana"]

    tally = contract.evaluate("tally", "tally-test")
    assert tally == {"apple": 2, "banana": 1}


def test_sqlite_backend_cluster_converges():
    config = cluster_config(state_backend="sqlite")
    with Cluster.spawn(config, chaincodes=CHAINCODES[:1]) as cluster:
        with SocketTransport.connect(cluster.profile) as transport:
            contract = Gateway.connect(transport).get_contract("iot")
            contract.submit("populate", json.dumps({"keys": ["dev-sql"]}))
            tx = contract.submit_async("record", record_call("dev-sql", 0))
            assert tx.commit_status().succeeded
            transport.wait_for_height(transport.channel.anchor_peer.ledger.height)
            infos = [transport.ledger_info(i) for i in range(2)]
            assert infos[0]["fingerprint"] == infos[1]["fingerprint"]
            assert (
                transport.channel.anchor_peer.ledger.state.fingerprint().hex()
                == infos[0]["fingerprint"]
            )
