"""The Gateway event surface: block_events / contract_events on both
transports, filtering, and commit-instant delivery on the DES clock."""

import pytest

from repro.gateway.errors import GatewayError

from .conftest import submit_marks


class TestBlockEvents:
    def test_replay_then_live_local(self, local_gateway):
        submit_marks(local_gateway, 8)
        stream = local_gateway.block_events(start_block=0)
        replayed = [event.block_number for event in stream]
        assert replayed == [0, 1]
        submit_marks(local_gateway, 4, prefix="live")
        assert [event.block_number for event in stream] == [2]

    def test_default_is_live_only(self, local_gateway):
        submit_marks(local_gateway, 8)
        stream = local_gateway.block_events()
        assert list(stream) == []
        submit_marks(local_gateway, 4, prefix="live")
        assert [event.block_number for event in stream] == [2]

    def test_block_event_statuses(self, local_gateway):
        submit_marks(local_gateway, 4)
        stream = local_gateway.block_events(start_block=0)
        event = next(stream)
        statuses = event.statuses()
        assert len(statuses) == 4
        assert all(status.succeeded for status in statuses)

    def test_checkpoint_and_start_block_are_exclusive(self, local_gateway):
        from repro.events import Checkpoint

        with pytest.raises(GatewayError):
            local_gateway.block_events(start_block=0, checkpoint=Checkpoint(0))

    def test_peer_index_is_absolute_never_relative(self, local_gateway):
        """Same bug class as Ledger.block_at: -1 must not silently mean
        "last peer", and out-of-range must raise a Gateway error."""

        for bad_index in (-1, 99):
            with pytest.raises(GatewayError, match="out of range"):
                local_gateway.block_events(peer_index=bad_index)
            with pytest.raises(GatewayError, match="out of range"):
                local_gateway.get_contract("marking").contract_events(peer_index=bad_index)

    def test_replay_then_live_des(self, des_gateway, des_net):
        submit_marks(des_gateway, 8)
        stream = des_gateway.block_events(start_block=0)
        # Historical blocks stream synchronously — no sim driving needed.
        assert [event.block_number for event in stream] == [0, 1]
        submit_marks(des_gateway, 4, prefix="live")
        des_net.env.run()  # live deliveries run at commit instants
        assert [event.block_number for event in stream] == [2]

    def test_des_delivery_at_commit_instants(self, des_gateway, des_net):
        """Callbacks run at exactly the block's commit time on the sim clock."""

        observed = []
        des_gateway.block_events().on_event(
            lambda event: observed.append((des_net.env.now, event.commit_time))
        )
        submit_marks(des_gateway, 8)
        des_net.env.run()
        assert len(observed) == 2
        for now, commit_time in observed:
            assert now == commit_time


class TestContractEvents:
    def test_only_matching_committed_events(self, local_gateway):
        """The acceptance-criteria shape: matching chaincode, matching name,
        committed transactions only."""

        marking = local_gateway.get_contract("marking")
        rmw = local_gateway.get_contract("rmw")
        stream = marking.contract_events(start_block=0)

        marking.submit("mark", "a")
        marking.submit("tag", "b")
        marking.submit("quiet", "c")  # no event set
        rmw.submit("bump", "other-chaincode")

        events = list(stream)
        assert [(event.chaincode, event.event_name) for event in events] == [
            ("marking", "marked"),
            ("marking", "tagged"),
        ]
        assert all(event.is_valid for event in events)

    def test_event_name_filter(self, local_gateway):
        marking = local_gateway.get_contract("marking")
        stream = marking.contract_events(event_name="tagged", start_block=0)
        marking.submit("mark", "a")
        marking.submit("tag", "b")
        events = list(stream)
        assert [event.event_name for event in events] == ["tagged"]
        assert events[0].payload == {"key": "b"}

    def test_invalid_tx_events_suppressed_by_default(self, local_gateway):
        """Two conflicting read-modify-writes share a block on vanilla
        Fabric: one commits, one dies of MVCC — only the winner's event is
        delivered (valid_only=False surfaces the loser's too)."""

        rmw = local_gateway.get_contract("rmw")
        everything = rmw.contract_events(start_block=0, valid_only=False)
        committed_only = rmw.contract_events(start_block=0)

        first = rmw.submit_async("bump", "one")
        second = rmw.submit_async("bump", "two")
        codes = {tx.commit_status().code.name for tx in (first, second)}
        assert codes == {"VALID", "MVCC_READ_CONFLICT"}

        assert len(list(committed_only)) == 1
        both = list(everything)
        assert len(both) == 2
        assert {event.code.name for event in both} == {"VALID", "MVCC_READ_CONFLICT"}

    def test_contract_events_on_des(self, des_gateway, des_net):
        marking = des_gateway.get_contract("marking")
        stream = marking.contract_events(start_block=0)
        submit_marks(des_gateway, 8)
        des_net.env.run()
        events = list(stream)
        assert len(events) == 8
        # Ordering is *commit* order (network latencies shuffle submission
        # order within a block), but delivery is complete and gap-free.
        assert {event.payload["key"] for event in events} == {f"k{i}" for i in range(8)}
        positions = [(event.block_number, event.tx_index) for event in events]
        assert positions == sorted(positions) and len(set(positions)) == 8

    def test_checkpoint_resume_mid_block(self, local_gateway):
        marking = local_gateway.get_contract("marking")
        stream = marking.contract_events(start_block=0)
        submit_marks(local_gateway, 8)

        first_two = [next(stream), next(stream)]
        resumed = marking.contract_events(checkpoint=stream.checkpoint())
        rest = list(resumed)

        keys = [event.payload["key"] for event in first_two + rest]
        assert keys == [f"k{i}" for i in range(8)]

    def test_callback_style(self, local_gateway):
        marking = local_gateway.get_contract("marking")
        seen = []
        marking.contract_events().on_event(seen.append)
        marking.submit("mark", "x")
        assert [event.event_name for event in seen] == ["marked"]
