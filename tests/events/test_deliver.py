"""DeliverService / DeliverSession: replay, live handoff, exactly-once."""

import pytest

from repro.events.deliver import DeliverError, DeliverService

from .conftest import submit_marks


def numbers(seen):
    return [committed.block.number for committed in seen]


class TestReplay:
    def test_full_chain_replay(self, local_gateway, local_net):
        submit_marks(local_gateway, 8)
        seen = []
        DeliverService(local_net.anchor_peer).deliver(seen.append, start_block=0)
        assert numbers(seen) == [0, 1]
        assert sum(len(block.block) for block in seen) == 8

    def test_replay_from_mid_chain(self, local_gateway, local_net):
        submit_marks(local_gateway, 12)
        seen = []
        DeliverService(local_net.anchor_peer).deliver(seen.append, start_block=2)
        assert numbers(seen) == [2]

    def test_start_past_height_delivers_nothing_until_live(self, local_gateway, local_net):
        seen = []
        DeliverService(local_net.anchor_peer).deliver(seen.append, start_block=0)
        assert seen == []
        submit_marks(local_gateway, 4)
        assert numbers(seen) == [0]

    def test_negative_start_rejected(self, local_net):
        with pytest.raises(DeliverError):
            DeliverService(local_net.anchor_peer).deliver(lambda b: None, start_block=-1)


class TestLiveHandoff:
    def test_replay_then_live_no_gap_no_duplicate(self, local_gateway, local_net):
        submit_marks(local_gateway, 8)
        seen = []
        DeliverService(local_net.anchor_peer).deliver(seen.append, start_block=0)
        submit_marks(local_gateway, 8, prefix="live")
        assert numbers(seen) == [0, 1, 2, 3]

    def test_commits_triggered_by_consumer_delivered_once(self, local_gateway, local_net):
        """A consumer that itself submits transactions (synchronous
        transport) grows the chain mid-replay; every block still arrives
        exactly once, in order."""

        submit_marks(local_gateway, 8)
        contract = local_gateway.get_contract("marking")
        seen = []

        def reactive_consumer(committed):
            seen.append(committed)
            if committed.block.number == 0:
                contract.submit("mark", "reactive")

        DeliverService(local_net.anchor_peer).deliver(reactive_consumer, start_block=0)
        assert numbers(seen) == [0, 1, 2]

    def test_duplicate_publish_ignored(self, local_gateway, local_net):
        submit_marks(local_gateway, 4)
        seen = []
        DeliverService(local_net.anchor_peer).deliver(seen.append, start_block=0)
        # Redeliver an already-seen block straight through the hub.
        local_net.anchor_peer.events.publish(local_net.anchor_peer.ledger.block_at(0))
        assert numbers(seen) == [0]


class TestClose:
    def test_closed_session_stops_delivering(self, local_gateway, local_net):
        submit_marks(local_gateway, 4)
        seen = []
        session = DeliverService(local_net.anchor_peer).deliver(seen.append, start_block=0)
        session.close()
        submit_marks(local_gateway, 4, prefix="after")
        assert numbers(seen) == [0]
        assert session.closed

    def test_close_is_idempotent(self, local_net):
        session = DeliverService(local_net.anchor_peer).deliver(lambda b: None)
        session.close()
        session.close()

    def test_next_block_tracks_cursor(self, local_gateway, local_net):
        submit_marks(local_gateway, 8)
        session = DeliverService(local_net.anchor_peer).deliver(lambda b: None, start_block=0)
        assert session.next_block == 2
