"""Shared fixtures for the event-service tests.

``Marking`` is the canonical event-emitting contract: every ``mark`` writes
a distinct key (so vanilla MVCC never rejects it) and emits one ``marked``
event carrying the key; ``quiet`` writes without emitting.  ``Rmw`` does a
read-modify-write of one hot key, the classic MVCC-conflict shape, used to
test validity filtering.
"""

from __future__ import annotations

import pytest

from repro.common.config import NetworkConfig, OrdererConfig, TopologyConfig
from repro.contract import Contract, transaction
from repro.fabric.localnet import LocalNetwork
from repro.fabric.network import SimulatedNetwork
from repro.gateway import Gateway
from repro.sim.engine import Environment


class Marking(Contract):
    name = "marking"

    @transaction
    def mark(self, ctx, key: str):
        ctx.state.put(key, {"seen": True})
        ctx.events.set("marked", {"key": key})
        return {"key": key}

    @transaction
    def tag(self, ctx, key: str):
        ctx.state.put(key, {"tagged": True})
        ctx.events.set("tagged", {"key": key})
        return {"key": key}

    @transaction
    def quiet(self, ctx, key: str):
        ctx.state.put(key, {"quiet": True})
        return {"key": key}


class Rmw(Contract):
    name = "rmw"

    @transaction
    def bump(self, ctx, note: str):
        doc = ctx.state.get("hot") or {"count": 0}
        ctx.state.put("hot", {"count": doc["count"] + 1})
        ctx.events.set("bumped", {"note": note})
        return {}


def tiny_config(block_size: int = 4) -> NetworkConfig:
    return NetworkConfig(
        topology=TopologyConfig(num_orgs=1, peers_per_org=1),
        orderer=OrdererConfig(max_message_count=block_size),
    )


@pytest.fixture
def local_net():
    network = LocalNetwork(tiny_config())
    network.deploy(Marking())
    network.deploy(Rmw())
    return network


@pytest.fixture
def local_gateway(local_net):
    return Gateway.connect(local_net)


@pytest.fixture
def des_net():
    env = Environment()
    network = SimulatedNetwork(env, tiny_config())
    network.deploy(Marking())
    network.deploy(Rmw())
    return network


@pytest.fixture
def des_gateway(des_net):
    return Gateway.connect(des_net)


def submit_marks(gateway: Gateway, count: int, batch: int = 4, prefix: str = "k") -> None:
    """Submit ``count`` mark transactions in batches that share blocks."""

    contract = gateway.get_contract("marking")
    for base in range(0, count, batch):
        txs = [
            contract.submit_async("mark", f"{prefix}{index}")
            for index in range(base, min(base + batch, count))
        ]
        for tx in txs:
            assert tx.commit_status().succeeded
