"""Property tests: checkpoint-resumed streams see no gaps and no duplicates.

One committed chain is built per transport (sync and DES); hypothesis then
draws arbitrary start positions and split points, and every resumed stream
must reproduce exactly the reference suffix — block streams at block
granularity, contract streams at (block, tx) granularity, including resume
positions that land mid-block or on eventless transactions.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events import BlockEventStream, Checkpoint, ContractEventStream, EventFilter
from repro.fabric.localnet import LocalNetwork
from repro.fabric.network import SimulatedNetwork
from repro.gateway import Gateway
from repro.sim.engine import Environment

from .conftest import Marking, Rmw, tiny_config

#: Lazily built committed chains, one per transport (hypothesis examples
#: must not rebuild the network: they only open replay streams over it).
_CHAINS: dict = {}


def _build_chain(transport: str):
    if transport == "local":
        network = LocalNetwork(tiny_config(block_size=4))
    else:
        network = SimulatedNetwork(Environment(), tiny_config(block_size=4))
    network.deploy(Marking())
    network.deploy(Rmw())
    gateway = Gateway.connect(network)
    contract = gateway.get_contract("marking")
    # A mixed chain: events, differently named events, and eventless txs.
    pending = []
    for index in range(18):
        function = ("mark", "tag", "quiet")[index % 3]
        pending.append(contract.submit_async(function, f"k{index}"))
        if len(pending) == 4:
            for tx in pending:
                assert tx.commit_status().succeeded
            pending.clear()
    for tx in pending:
        assert tx.commit_status().succeeded
    if transport == "des":
        network.env.run()
    return network


def chain(transport: str):
    if transport not in _CHAINS:
        _CHAINS[transport] = _build_chain(transport)
    return _CHAINS[transport]


def anchor(transport: str):
    return chain(transport).channel.anchor_peer


def reference_events(transport: str):
    stream = ContractEventStream(
        anchor(transport), Checkpoint(0), EventFilter(chaincode="marking")
    )
    events = list(stream)
    stream.close()
    return events


@pytest.mark.parametrize("transport", ("local", "des"))
class TestBlockStreamResume:
    @given(data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_resume_is_gap_free_and_duplicate_free(self, transport, data):
        peer = anchor(transport)
        height = peer.ledger.height
        assert height >= 4
        start = data.draw(st.integers(min_value=0, max_value=height), label="start")
        split = data.draw(st.integers(min_value=0, max_value=height - start), label="split")

        first = BlockEventStream(peer, Checkpoint(start))
        head = [next(first) for _ in range(split)]
        resumed = BlockEventStream(peer, first.checkpoint())
        tail = list(resumed)
        first.close()
        resumed.close()

        assert [event.block_number for event in head + tail] == list(range(start, height))


@pytest.mark.parametrize("transport", ("local", "des"))
class TestContractStreamResume:
    @given(data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_split_resume_reproduces_reference(self, transport, data):
        peer = anchor(transport)
        reference = reference_events(transport)
        assert len(reference) >= 8
        split = data.draw(
            st.integers(min_value=0, max_value=len(reference)), label="split"
        )

        first = ContractEventStream(
            peer, Checkpoint(0), EventFilter(chaincode="marking")
        )
        head = [next(first) for _ in range(split)]
        resumed = ContractEventStream(
            peer, first.checkpoint(), EventFilter(chaincode="marking")
        )
        tail = list(resumed)
        first.close()
        resumed.close()

        assert head + tail == reference

    @given(data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_arbitrary_mid_block_start_positions(self, transport, data):
        """Starting from any (block, tx) coordinate — including eventless
        transactions and past-the-end offsets — delivers exactly the
        reference events at or after that position."""

        peer = anchor(transport)
        reference = reference_events(transport)
        height = peer.ledger.height
        block = data.draw(st.integers(min_value=0, max_value=height - 1), label="block")
        tx_index = data.draw(st.integers(min_value=0, max_value=6), label="tx_index")

        stream = ContractEventStream(
            peer, Checkpoint(block, tx_index), EventFilter(chaincode="marking")
        )
        events = list(stream)
        stream.close()

        expected = [
            event
            for event in reference
            if (event.block_number, event.tx_index) >= (block, tx_index)
        ]
        assert events == expected
