"""Stream mechanics: iteration, callbacks, bounded buffers, checkpoints."""

import pytest

from repro.events import (
    BlockEventStream,
    Checkpoint,
    ContractEventStream,
    EventFilter,
    StreamClosedError,
    StreamOverflowError,
)

from .conftest import submit_marks


def block_stream(net, **kwargs):
    return BlockEventStream(net.anchor_peer, Checkpoint(0), **kwargs)


def marked_stream(net, **kwargs):
    return ContractEventStream(
        net.anchor_peer, Checkpoint(0), EventFilter(chaincode="marking"), **kwargs
    )


class TestIteration:
    def test_iteration_drains_buffer(self, local_gateway, local_net):
        submit_marks(local_gateway, 8)
        stream = block_stream(local_net)
        assert [event.block_number for event in stream] == [0, 1]
        # Drained: a second pass yields nothing until new blocks commit.
        assert list(stream) == []
        submit_marks(local_gateway, 4, prefix="more")
        assert [event.block_number for event in stream] == [2]

    def test_pending_counts_buffered(self, local_gateway, local_net):
        submit_marks(local_gateway, 8)
        stream = block_stream(local_net)
        assert stream.pending == 2
        next(stream)
        assert stream.pending == 1


class TestCallbacks:
    def test_callback_receives_backlog_then_live(self, local_gateway, local_net):
        submit_marks(local_gateway, 4)
        stream = block_stream(local_net)
        seen = []
        stream.on_event(seen.append)
        submit_marks(local_gateway, 4, prefix="live")
        assert [event.block_number for event in seen] == [0, 1]

    def test_callback_on_closed_stream_rejected(self, local_net):
        stream = block_stream(local_net)
        stream.close()
        with pytest.raises(StreamClosedError):
            stream.on_event(lambda event: None)

    def test_raising_listener_does_not_advance_checkpoint(self, local_gateway, local_net):
        """A consumer that crashes mid-event and resumes from checkpoint()
        must see the failed event again — delivery is at-least-once."""

        stream = block_stream(local_net)
        stream.on_event(lambda event: (_ for _ in ()).throw(RuntimeError("boom")))
        with pytest.raises(RuntimeError):
            submit_marks(local_gateway, 4)
        assert stream.checkpoint() == Checkpoint(0)  # block 0 not consumed
        resumed = BlockEventStream(local_net.anchor_peer, stream.checkpoint())
        assert [event.block_number for event in resumed] == [0]

    def test_raising_listener_backlog_flush_keeps_event_buffered(
        self, local_gateway, local_net
    ):
        submit_marks(local_gateway, 4)
        stream = block_stream(local_net)

        def explode(event):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            stream.on_event(explode)
        # The event survived the failed flush: buffered, checkpoint intact.
        assert stream.pending == 1
        assert stream.checkpoint() == Checkpoint(0)


class TestBoundedBuffer:
    def test_overflow_raise_policy_fails_stream_not_publisher(self, local_gateway, local_net):
        """Overflow under "raise" never breaks the commit path: the submit
        succeeds, the stream detaches, drains its buffer, then raises."""

        stream = block_stream(local_net, buffer_limit=1, overflow="raise")
        submit_marks(local_gateway, 12)  # commits fine despite the overflow
        assert stream.closed
        assert next(stream).block_number == 0  # buffered events drain first
        with pytest.raises(StreamOverflowError):
            next(stream)
        # Recovery: everything undelivered is still on the ledger.
        resumed = BlockEventStream(local_net.anchor_peer, stream.checkpoint())
        assert [event.block_number for event in resumed] == [1, 2]

    def test_overflow_does_not_starve_co_subscribers(self, local_gateway, local_net):
        """A failing stream must not stop other streams on the same peer."""

        block_stream(local_net, buffer_limit=1, overflow="raise")
        healthy = block_stream(local_net)
        submit_marks(local_gateway, 12)
        assert [event.block_number for event in healthy] == [0, 1, 2]

    def test_overflow_drop_oldest(self, local_gateway, local_net):
        stream = block_stream(local_net, buffer_limit=1, overflow="drop_oldest")
        submit_marks(local_gateway, 12)
        assert stream.dropped == 2
        assert [event.block_number for event in stream] == [2]

    def test_overflow_drop_newest(self, local_gateway, local_net):
        stream = block_stream(local_net, buffer_limit=1, overflow="drop_newest")
        submit_marks(local_gateway, 12)
        assert stream.dropped == 2
        assert [event.block_number for event in stream] == [0]

    @pytest.mark.parametrize("policy", ("drop_oldest", "drop_newest"))
    def test_checkpoint_pinned_at_first_drop(self, local_gateway, local_net, policy):
        """Even after draining past the loss, the checkpoint stays pinned at
        the first dropped event, so a resumed stream recovers it from the
        ledger (at-least-once across overflow)."""

        stream = block_stream(local_net, buffer_limit=1, overflow=policy)
        submit_marks(local_gateway, 12)
        assert stream.dropped == 2
        drained = [event.block_number for event in stream]
        assert drained  # the consumer drained *past* the gap
        resumed = BlockEventStream(local_net.anchor_peer, stream.checkpoint())
        recovered = [event.block_number for event in resumed]
        assert sorted(set(drained) | set(recovered)) == [0, 1, 2]

    def test_bad_policy_and_limit_rejected(self, local_net):
        with pytest.raises(ValueError):
            block_stream(local_net, overflow="spill")
        with pytest.raises(ValueError):
            block_stream(local_net, buffer_limit=0)


class TestCheckpointing:
    def test_checkpoint_starts_at_origin(self, local_net):
        assert block_stream(local_net).checkpoint() == Checkpoint(0)

    def test_checkpoint_advances_only_on_delivery(self, local_gateway, local_net):
        submit_marks(local_gateway, 8)
        stream = block_stream(local_net)
        assert stream.checkpoint() == Checkpoint(0)  # buffered, not delivered
        next(stream)
        assert stream.checkpoint() == Checkpoint(1)
        next(stream)
        assert stream.checkpoint() == Checkpoint(2)

    def test_contract_checkpoint_is_tx_granular(self, local_gateway, local_net):
        submit_marks(local_gateway, 4)
        stream = marked_stream(local_net)
        first = next(stream)
        assert stream.checkpoint() == Checkpoint(first.block_number, first.tx_index + 1)

    def test_checkpoint_dict_roundtrip(self):
        checkpoint = Checkpoint(7, 3)
        assert Checkpoint.from_dict(checkpoint.to_dict()) == checkpoint


class TestClose:
    def test_close_keeps_buffer_drainable(self, local_gateway, local_net):
        submit_marks(local_gateway, 8)
        stream = block_stream(local_net)
        stream.close()
        submit_marks(local_gateway, 4, prefix="after")
        assert [event.block_number for event in stream] == [0, 1]

    def test_context_manager_closes(self, local_gateway, local_net):
        with block_stream(local_net) as stream:
            assert not stream.closed
        assert stream.closed

    def test_repr_mentions_state(self, local_net):
        stream = block_stream(local_net)
        assert "open" in repr(stream) and "@0.0" in repr(stream)
