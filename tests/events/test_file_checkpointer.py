"""Tests for the durable FileCheckpointer (atomic save / lossless load)."""

import json

import pytest

from repro import Gateway, crdt_network, fabriccrdt_config
from repro.core.counters import VotingChaincode
from repro.events import Checkpoint, CheckpointError, FileCheckpointer


class TestSaveLoad:
    def test_load_before_any_save_returns_none(self, tmp_path):
        assert FileCheckpointer(tmp_path / "cp.json").load() is None

    def test_round_trip(self, tmp_path):
        checkpointer = FileCheckpointer(tmp_path / "cp.json")
        checkpointer.save(Checkpoint(7, 3))
        assert checkpointer.load() == Checkpoint(7, 3)

    def test_save_overwrites(self, tmp_path):
        checkpointer = FileCheckpointer(tmp_path / "cp.json")
        checkpointer.save(Checkpoint(1))
        checkpointer.save(Checkpoint(2, 5))
        assert checkpointer.load() == Checkpoint(2, 5)

    def test_reopen_from_path(self, tmp_path):
        """A fresh checkpointer instance (a 'restarted consumer') sees the
        previously saved position."""

        path = tmp_path / "cp.json"
        FileCheckpointer(path).save(Checkpoint(4, 1))
        assert FileCheckpointer(path).load() == Checkpoint(4, 1)

    def test_clear(self, tmp_path):
        checkpointer = FileCheckpointer(tmp_path / "cp.json")
        checkpointer.save(Checkpoint(1))
        checkpointer.clear()
        assert checkpointer.load() is None
        checkpointer.clear()  # idempotent

    def test_file_is_plain_json(self, tmp_path):
        path = tmp_path / "cp.json"
        FileCheckpointer(path).save(Checkpoint(9, 2))
        assert json.loads(path.read_text()) == {"block_number": 9, "tx_index": 2}

    def test_no_temp_file_left_behind(self, tmp_path):
        checkpointer = FileCheckpointer(tmp_path / "cp.json")
        checkpointer.save(Checkpoint(1))
        assert [p.name for p in tmp_path.iterdir()] == ["cp.json"]


class TestCorruption:
    @pytest.mark.parametrize("content", ("not json", '"a string"', "[1, 2]", "{}"))
    def test_corrupt_file_raises(self, tmp_path, content):
        path = tmp_path / "cp.json"
        path.write_text(content)
        with pytest.raises(CheckpointError):
            FileCheckpointer(path).load()

    def test_saving_non_checkpoint_rejected(self, tmp_path):
        with pytest.raises(CheckpointError):
            FileCheckpointer(tmp_path / "cp.json").save({"block_number": 1})


class TestStreamIntegration:
    def test_resume_stream_from_file(self, tmp_path):
        """The example's crash/recover flow: checkpoint to disk, miss
        events, resume exactly after the last delivered one."""

        network = crdt_network(fabriccrdt_config(max_message_count=2))
        network.deploy(VotingChaincode())
        contract = Gateway.connect(network).get_contract("voting")
        checkpointer = FileCheckpointer(tmp_path / "listener.json")

        def vote(n, offset=0):
            txs = [
                contract.submit_async("vote", "e", "opt", f"v{offset + i}")
                for i in range(n)
            ]
            for tx in txs:
                assert tx.commit_status().succeeded

        live = contract.contract_events(event_name="voted")
        seen = []
        live.on_event(lambda event: seen.append(event))
        vote(2)
        checkpointer.save(live.checkpoint())
        live.close()

        vote(4, offset=2)  # missed while "down"

        resumed = contract.contract_events(
            event_name="voted", checkpoint=checkpointer.load()
        )
        replayed = list(resumed)
        resumed.close()
        assert len(seen) == 2
        assert len(replayed) == 4
