"""The legacy shims warn exactly once per process, however often they run."""

import warnings

import pytest

from repro.common.deprecation import reset_deprecation_warnings
from repro.core.network import crdt_network
from repro.fabric.chaincode import Chaincode, ShimStub
from repro.fabric.statedb import StateDB
from repro.workload.iot import IoTChaincode

from ..conftest import small_config


@pytest.fixture(autouse=True)
def rearm_latches():
    reset_deprecation_warnings()
    yield
    reset_deprecation_warnings()


def deprecations(caught):
    return [w for w in caught if issubclass(w.category, DeprecationWarning)]


class Legacy(Chaincode):
    name = "legacy"

    def fn_touch(self, stub, key):
        stub.put_state(key, {"seen": True})
        return {"ok": True}


class TestChaincodeShim:
    def test_fn_dispatch_warns_exactly_once(self):
        stub = ShimStub(StateDB(), "tx1")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            Legacy().invoke(stub, "touch", ("a",))
            Legacy().invoke(stub, "touch", ("b",))
            Legacy().invoke(stub, "touch", ("c",))
        assert len(deprecations(caught)) == 1
        assert "repro.contract.Contract" in str(deprecations(caught)[0].message)

    def test_contract_style_never_warns(self):
        import json

        stub = ShimStub(StateDB(), "tx1")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            IoTChaincode().invoke(stub, "populate", (json.dumps({"keys": ["k"]}),))
        assert deprecations(caught) == []


class TestNetworkShims:
    def test_invoke_and_query_warn_once_each(self):
        network = crdt_network(
            small_config(max_message_count=5, crdt_enabled=True, num_orgs=1, peers_per_org=1)
        )
        network.deploy(Legacy())
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            network.invoke("legacy", "touch", ["x"])
            network.invoke("legacy", "touch", ["y"])
            network.flush()
            network.query("legacy", "touch", ["z"])
            network.query("legacy", "touch", ["w"])
        messages = [str(w.message) for w in deprecations(caught)]
        assert sum("LocalNetwork.invoke" in m for m in messages) == 1
        assert sum("LocalNetwork.query" in m for m in messages) == 1
        # fn_ dispatch latched once too, however many endorsements ran.
        assert sum("fn_" in m for m in messages) == 1

    def test_submit_flow_warns_once(self):
        from repro.common.config import NetworkConfig, TopologyConfig
        from repro.fabric.network import SimulatedNetwork
        from repro.sim.engine import Environment

        env = Environment()
        network = SimulatedNetwork(
            env, NetworkConfig(topology=TopologyConfig(num_orgs=1, peers_per_org=1))
        )
        network.deploy(Legacy())
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            env.process(network.submit_flow(network.clients[0], "legacy", "touch", ("a",)))
            env.process(network.submit_flow(network.clients[0], "legacy", "touch", ("b",)))
            env.run()
        messages = [str(w.message) for w in deprecations(caught)]
        assert sum("submit_flow" in m for m in messages) == 1
