"""Tests for the Contract base class: registry, dispatch, coercion, context."""

import json

import pytest

from repro.common.errors import ChaincodeError
from repro.contract import Contract, query, transaction
from repro.fabric.chaincode import ChaincodeRegistry, ShimStub
from repro.fabric.statedb import StateDB
from repro.gateway import Gateway


class Typed(Contract):
    name = "typed"

    @transaction
    def mixed(self, ctx, a: str, n: int, x: float, flag: bool, obj: dict, items: list):
        return {"a": a, "n": n, "x": x, "flag": flag, "obj": obj, "items": items}

    @transaction
    def with_default(self, ctx, a: str, n: int = 7):
        return {"a": a, "n": n}

    @transaction(name="renamed")
    def internal_name(self, ctx):
        return {"ok": True}

    @query
    def lookup(self, ctx, key: str):
        return ctx.state.get(key)

    @query
    def bad_query(self, ctx, key: str):
        ctx.state.put(key, {"oops": True})
        return {}

    def not_registered(self, ctx):  # no decorator: unreachable from proposals
        raise AssertionError("must never dispatch")


@pytest.fixture
def stub():
    return ShimStub(StateDB(), "tx1")


class TestRegistry:
    def test_decorated_handlers_registered(self):
        names = Typed.transaction_names()
        assert names == ("bad_query", "lookup", "mixed", "renamed", "with_default")

    def test_specs_carry_kind_and_usage(self):
        specs = Typed.transactions()
        assert specs["lookup"].kind == "query"
        assert specs["mixed"].kind == "submit"
        assert specs["mixed"].usage() == (
            "mixed(a: str, n: int, x: float, flag: bool, obj: dict, items: list)"
        )

    def test_subclass_inherits_and_overrides(self):
        class Extended(Typed):
            @transaction
            def extra(self, ctx):
                return {}

            @transaction(name="lookup")
            def lookup_override(self, ctx, key: str):
                return {"overridden": True}

        assert "extra" in Extended.transaction_names()
        assert Extended.transactions()["lookup"].kind == "submit"
        # The base class registry is untouched.
        assert Typed.transactions()["lookup"].kind == "query"

    def test_undecorated_methods_not_dispatchable(self, stub):
        with pytest.raises(ChaincodeError, match="unknown function"):
            Typed().invoke(stub, "not_registered", ())

    def test_plain_python_override_of_decorated_handler_dispatches(self, stub):
        """Overriding a decorated handler without re-decorating must work."""

        class Base(Contract):
            name = "base"

            @transaction
            def greet(self, ctx):
                return {"who": "base"}

        class Sub(Base):
            def greet(self, ctx):  # ordinary override, no decorator
                return {"who": "sub"}

        assert Base().invoke(stub, "greet", ()) == {"who": "base"}
        assert Sub().invoke(stub, "greet", ()) == {"who": "sub"}

    def test_private_names_rejected_at_decoration(self):
        with pytest.raises(ChaincodeError, match="public identifier"):
            class Bad(Contract):  # noqa: F841
                @transaction(name="_sneaky")
                def handler(self, ctx):
                    return {}


class TestDispatch:
    def test_unknown_function_lists_available(self, stub):
        with pytest.raises(ChaincodeError) as excinfo:
            Typed().invoke(stub, "nope", ())
        message = str(excinfo.value)
        assert "unknown function 'nope'" in message
        assert "mixed" in message and "lookup" in message

    def test_renamed_handler_dispatches_under_public_name(self, stub):
        assert Typed().invoke(stub, "renamed", ()) == {"ok": True}
        with pytest.raises(ChaincodeError):
            Typed().invoke(stub, "internal_name", ())

    def test_query_cannot_write(self, stub):
        with pytest.raises(ChaincodeError, match="attempted to write"):
            Typed().invoke(stub, "bad_query", ("k",))

    def test_query_reads_state(self):
        from repro.common.serialization import to_bytes
        from repro.common.types import Version

        db = StateDB()
        db.apply_write("k", to_bytes({"v": 1}), Version(0, 0))
        assert Typed().invoke(ShimStub(db, "tx1"), "lookup", ("k",)) == {"v": 1}


class TestCoercion:
    def test_typed_arguments_coerced(self, stub):
        result = Typed().invoke(
            stub, "mixed", ("s", "3", "1.5", "true", '{"a": 1}', "[1, 2]")
        )
        assert result == {
            "a": "s", "n": 3, "x": 1.5, "flag": True, "obj": {"a": 1}, "items": [1, 2],
        }

    def test_defaults_fill_missing_arguments(self, stub):
        assert Typed().invoke(stub, "with_default", ("x",)) == {"a": "x", "n": 7}

    @pytest.mark.parametrize(
        "args",
        [
            ("s", "NaN-ish", "1.5", "true", "{}", "[]"),     # bad int
            ("s", "3", "xx", "true", "{}", "[]"),            # bad float
            ("s", "3", "1.5", "maybe", "{}", "[]"),          # bad bool
            ("s", "3", "1.5", "true", "{not json", "[]"),    # bad dict
            ("s", "3", "1.5", "true", "[]", "[]"),           # list where dict expected
            ("s", "3", "1.5", "true", "{}", "{}"),           # dict where list expected
        ],
    )
    def test_bad_arguments_fail_readably(self, stub, args):
        with pytest.raises(ChaincodeError, match="argument"):
            Typed().invoke(stub, "mixed", args)

    def test_wrong_arity_reports_usage(self, stub):
        with pytest.raises(ChaincodeError, match="usage: with_default"):
            Typed().invoke(stub, "with_default", ())
        with pytest.raises(ChaincodeError, match="usage"):
            Typed().invoke(stub, "with_default", ("a", "1", "extra"))


class TestDeployment:
    def test_registry_accepts_contract(self):
        registry = ChaincodeRegistry()
        contract = Typed()
        registry.deploy(contract)
        assert registry.get("typed") is contract

    def test_registry_rejects_nameless_objects(self):
        registry = ChaincodeRegistry()
        with pytest.raises(ChaincodeError):
            registry.deploy(object())

    def test_end_to_end_through_gateway(self, local_network):
        local_network.deploy(Typed())
        contract = Gateway.connect(local_network).get_contract("typed")
        result = contract.submit("mixed", "s", "3", "1.5", "false", "{}", "[]")
        assert result["n"] == 3 and result["flag"] is False

    def test_describe_surfaces_transaction_metadata(self, local_network):
        local_network.deploy(Typed())
        contract = Gateway.connect(local_network).get_contract("typed")
        described = contract.describe()
        assert described["style"] == "contract"
        assert described["transactions"]["lookup"]["kind"] == "query"
        parameters = described["transactions"]["mixed"]["parameters"]
        assert [p["type"] for p in parameters] == [
            "str", "int", "float", "bool", "dict", "list",
        ]

    def test_describe_legacy_chaincode(self, local_network):
        from repro.fabric.chaincode import Chaincode

        class Legacy(Chaincode):
            name = "legacy"

            def fn_touch(self, stub, key):
                stub.put_state(key, {})
                return {}

        local_network.deploy(Legacy())
        described = Gateway.connect(local_network).get_contract("legacy").describe()
        assert described["style"] == "chaincode"
        assert "touch" in described["transactions"]


class TestEvents:
    def test_chaincode_event_surfaced_on_submitted_transaction(self, local_network):
        class Emitting(Contract):
            name = "emitting"

            @transaction
            def touch(self, ctx, key: str):
                ctx.state.put(key, {"seen": True})
                ctx.events.set("touched", {"key": key})
                return {}

        local_network.deploy(Emitting())
        contract = Gateway.connect(local_network).get_contract("emitting")
        tx = contract.submit_async("touch", "k1")
        assert tx.chaincode == "emitting" and tx.function == "touch"
        assert tx.commit_status().succeeded
        assert tx.chaincode_event is not None
        assert tx.chaincode_event.name == "touched"
        assert tx.chaincode_event.payload == {"key": "k1"}

    def test_event_rides_through_des_transport(self):
        from repro.sim.engine import Environment
        from repro.common.config import NetworkConfig, TopologyConfig
        from repro.fabric.network import SimulatedNetwork

        class Emitting(Contract):
            name = "emitting"

            @transaction
            def touch(self, ctx, key: str):
                ctx.state.put(key, {"seen": True})
                ctx.events.set("touched", key)
                return {}

        env = Environment()
        network = SimulatedNetwork(
            env, NetworkConfig(topology=TopologyConfig(num_orgs=1, peers_per_org=1))
        )
        network.deploy(Emitting())
        contract = Gateway.connect(network).get_contract("emitting")
        tx = contract.submit_async("touch", "k1")
        assert tx.commit_status().succeeded
        assert tx.chaincode_event.name == "touched"
        assert tx.chaincode_event.payload == "k1"


def test_invoke_matches_legacy_signature(stub):
    """Old-style direct invocation (stub, function, string-args) still works."""

    from repro.workload.iot import IoTChaincode

    result = IoTChaincode().invoke(
        stub, "populate", (json.dumps({"keys": ["a", "b"]}),)
    )
    assert result == {"populated": 2}
