"""Fixtures for the contract-API tests."""

import pytest

from repro.core.network import crdt_network

from ..conftest import small_config


@pytest.fixture
def local_network():
    """A small synchronous FabricCRDT network with no chaincode deployed."""

    return crdt_network(
        small_config(max_message_count=10, crdt_enabled=True, num_orgs=2, peers_per_org=1)
    )
