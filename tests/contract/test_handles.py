"""Tests for ctx.crdt handles: plumbing, caching, and end-to-end merging."""

import pytest

from repro.common.errors import ChaincodeError
from repro.contract import Contract, query, transaction
from repro.crdt.gcounter import GCounter
from repro.crdt.registry import crdt_from_dict_envelope, crdt_to_dict_envelope
from repro.fabric.chaincode import ShimStub
from repro.fabric.statedb import StateDB
from repro.gateway import Gateway


class HandleContract(Contract):
    """One handler per handle kind, for end-to-end merge tests."""

    name = "handles"

    @transaction
    def bump(self, ctx, key: str, amount: int, actor: str):
        return {"total": ctx.crdt.counter(key).incr(amount, actor=actor)}

    @transaction
    def adjust(self, ctx, key: str, delta: int):
        return {"value": ctx.crdt.pn_counter(key).adjust(delta)}

    @transaction
    def add_member(self, ctx, key: str, member: str):
        ctx.crdt.set(key).add(member)
        return {}

    @transaction
    def drop_member(self, ctx, key: str, member: str):
        ctx.crdt.set(key).discard(member)
        return {}

    @transaction
    def set_status(self, ctx, key: str, status: str):
        ctx.crdt.register(key).assign(status)
        return {}

    @transaction
    def write_text(self, ctx, key: str, line: str):
        ctx.crdt.text(key).append(line)
        return {}

    @transaction
    def patch(self, ctx, key: str, fields: dict):
        ctx.crdt.doc(key).merge_patch(fields)
        return {}

    @query
    def counter_value(self, ctx, key: str):
        return {"value": ctx.crdt.counter(key).value()}

    @query
    def set_members(self, ctx, key: str):
        return {"members": ctx.crdt.set(key).elements()}

    @query
    def register_value(self, ctx, key: str):
        return {"value": ctx.crdt.register(key).value()}

    @query
    def read_text(self, ctx, key: str):
        return {"text": ctx.crdt.text(key).text()}


@pytest.fixture
def contract(local_network):
    local_network.deploy(HandleContract())
    return Gateway.connect(local_network).get_contract("handles")


class TestStubLevel:
    """Handle plumbing against a bare stub (no network)."""

    def test_mutations_compose_within_one_invocation(self):
        stub = ShimStub(StateDB(), "tx1")
        cc = HandleContract()
        ctx = cc.new_context(stub)
        handle = ctx.crdt.counter("hits")
        handle.incr(2, actor="a")
        handle.incr(3, actor="a")
        writes = stub.build_rwset().writes
        assert len(writes) == 1 and writes[0].is_crdt
        from repro.common.serialization import from_bytes

        merged = crdt_from_dict_envelope(from_bytes(writes[0].value))
        assert merged.value() == 5

    def test_factory_caches_handles_per_key(self):
        stub = ShimStub(StateDB(), "tx1")
        ctx = HandleContract().new_context(stub)
        assert ctx.crdt.counter("k") is ctx.crdt.counter("k")

    def test_kind_conflict_on_one_key_rejected(self):
        stub = ShimStub(StateDB(), "tx1")
        ctx = HandleContract().new_context(stub)
        ctx.crdt.counter("k")
        with pytest.raises(ChaincodeError, match="already opened"):
            ctx.crdt.set("k")

    def test_wrong_committed_type_rejected(self):
        from repro.common.serialization import to_bytes
        from repro.common.types import Version

        db = StateDB()
        db.apply_write(
            "k", to_bytes(crdt_to_dict_envelope(GCounter().increment("a"))), Version(0, 0)
        )
        ctx = HandleContract().new_context(ShimStub(db, "tx1"))
        with pytest.raises(ChaincodeError, match="holds a 'g-counter'"):
            ctx.crdt.pn_counter("k").adjust(1)

    def test_plain_json_key_rejected(self):
        from repro.common.serialization import to_bytes
        from repro.common.types import Version

        db = StateDB()
        db.apply_write("k", to_bytes({"plain": 1}), Version(0, 0))
        ctx = HandleContract().new_context(ShimStub(db, "tx1"))
        with pytest.raises(ChaincodeError, match="does not hold a CRDT envelope"):
            ctx.crdt.counter("k").incr()

    def test_negative_gcounter_increment_rejected(self):
        ctx = HandleContract().new_context(ShimStub(StateDB(), "tx1"))
        with pytest.raises(ChaincodeError, match="pn_counter"):
            ctx.crdt.counter("k").incr(-1)

    def test_doc_patches_deep_merge_locally(self):
        stub = ShimStub(StateDB(), "tx1")
        ctx = HandleContract().new_context(stub)
        doc = ctx.crdt.doc("d")
        doc.merge_patch({"a": {"x": 1}, "items": [1]})
        doc.merge_patch({"a": {"y": 2}, "items": [2]})
        from repro.common.serialization import from_bytes

        writes = stub.build_rwset().writes
        assert len(writes) == 1
        assert from_bytes(writes[0].value) == {"a": {"x": 1, "y": 2}, "items": [1, 2]}


class TestEndToEnd:
    """Concurrent handle mutations merged by the FabricCRDT committer."""

    def test_concurrent_counter_increments_all_count(self, contract, local_network):
        txs = [
            contract.submit_async("bump", "hits", "1", f"voter{i}", client_index=i % 4)
            for i in range(7)
        ]
        assert all(tx.commit_status().succeeded for tx in txs)
        assert contract.evaluate("counter_value", "hits")["value"] == 7
        local_network.assert_states_converged()

    def test_counter_accumulates_across_blocks(self, contract):
        for _ in range(3):
            contract.submit("bump", "again", "2", "actor-a")
        assert contract.evaluate("counter_value", "again")["value"] == 6

    def test_concurrent_pn_adjustments_conserve_sum(self, contract, local_network):
        txs = [
            contract.submit_async("adjust", "bal", str(delta), client_index=i % 4)
            for i, delta in enumerate([10, -4, 7, -3])
        ]
        assert all(tx.commit_status().succeeded for tx in txs)
        state = local_network.state_of("bal")
        assert crdt_from_dict_envelope(state).value() == 10

    def test_concurrent_set_adds_union(self, contract, local_network):
        txs = [
            contract.submit_async("add_member", "team", member, client_index=i % 4)
            for i, member in enumerate(["ana", "bo", "cy"])
        ]
        assert all(tx.commit_status().succeeded for tx in txs)
        assert sorted(contract.evaluate("set_members", "team")["members"]) == [
            "ana", "bo", "cy",
        ]

    def test_set_discard_then_concurrent_add_wins(self, contract):
        contract.submit("add_member", "team", "dax")
        drop = contract.submit_async("drop_member", "team", "dax")
        re_add = contract.submit_async("add_member", "team", "dax")
        assert drop.commit_status().succeeded and re_add.commit_status().succeeded
        # Add-wins: the concurrent add used a tag the remove never observed.
        assert contract.evaluate("set_members", "team")["members"] == ["dax"]

    def test_concurrent_register_assigns_resolve_deterministically(
        self, contract, local_network
    ):
        txs = [
            contract.submit_async("set_status", "phase", status, client_index=i % 4)
            for i, status in enumerate(["alpha", "beta", "gamma"])
        ]
        assert all(tx.commit_status().succeeded for tx in txs)
        winner = contract.evaluate("register_value", "phase")["value"]
        assert winner in {"alpha", "beta", "gamma"}
        local_network.assert_states_converged()

    def test_concurrent_text_appends_all_survive(self, contract, local_network):
        txs = [
            contract.submit_async("write_text", "pad", line, client_index=i % 4)
            for i, line in enumerate(["one;", "two;", "three;"])
        ]
        assert all(tx.commit_status().succeeded for tx in txs)
        text = contract.evaluate("read_text", "pad")["text"]
        for line in ["one;", "two;", "three;"]:
            assert line in text
        local_network.assert_states_converged()

    def test_concurrent_doc_patches_merge_fieldwise(self, contract, local_network):
        contract.submit("patch", "cfg", '{"base": {"v": "1"}}')
        txs = [
            contract.submit_async("patch", "cfg", '{"a": {"x": "1"}}', client_index=0),
            contract.submit_async("patch", "cfg", '{"a": {"y": "2"}}', client_index=1),
        ]
        assert all(tx.commit_status().succeeded for tx in txs)
        state = local_network.state_of("cfg")
        assert state["a"] == {"x": "1", "y": "2"}
