"""Property tests: every handle round-trips its envelope; every registered
CRDT type merges commutatively and idempotently through the envelope path.

These run the exact byte path the committer uses — handle mutation →
``put_crdt`` envelope → :func:`merge_envelopes` — rather than calling
``merge`` on in-memory objects, so serialization bugs cannot hide behind
object identity.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.serialization import from_bytes, to_bytes
from repro.contract import Contract
from repro.crdt.base import StateCRDT
from repro.crdt.gcounter import GCounter
from repro.crdt.gset import GSet
from repro.crdt.lwwregister import LWWRegister
from repro.crdt.mvregister import MVRegister
from repro.crdt.ormap import ORMap
from repro.crdt.orset import ORSet
from repro.crdt.pncounter import PNCounter
from repro.crdt.registry import (
    crdt_from_dict_envelope,
    merge_envelopes,
    registered_types,
)
from repro.crdt.rga import HEAD, RGA
from repro.crdt.text import TextDocument
from repro.crdt.twophase import TwoPhaseSet
from repro.common.clock import LamportTimestamp
from repro.fabric.chaincode import ShimStub
from repro.fabric.statedb import StateDB


class AnyHandles(Contract):
    name = "any"


def fresh_ctx(tx_id: str = "tx1"):
    return AnyHandles().new_context(ShimStub(StateDB(), tx_id))


actors = st.sampled_from(["a", "b", "c", "d"])
amounts = st.integers(min_value=0, max_value=50)
deltas = st.integers(min_value=-50, max_value=50)
elements = st.one_of(st.text(max_size=6), st.integers(min_value=-9, max_value=9))
texts = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=8
)


# ---------------------------------------------------------------------------
# Round-trip: handle mutations → envelope bytes → decoded CRDT with the
# same user-facing value.
# ---------------------------------------------------------------------------


def _written_envelope(stub: ShimStub, key: str) -> dict:
    writes = [w for w in stub.build_rwset().writes if w.key == key]
    assert len(writes) == 1 and writes[0].is_crdt
    return from_bytes(writes[0].value)


@settings(max_examples=40, deadline=None)
@given(ops=st.lists(st.tuples(actors, amounts), min_size=1, max_size=8))
def test_counter_handle_roundtrip(ops):
    ctx = fresh_ctx()
    handle = ctx.crdt.counter("k")
    for actor, amount in ops:
        handle.incr(amount, actor=actor)
    decoded = crdt_from_dict_envelope(_written_envelope(ctx.stub, "k"))
    assert decoded.value() == handle.value() == sum(a for _, a in ops)


@settings(max_examples=40, deadline=None)
@given(ops=st.lists(st.tuples(actors, deltas), min_size=1, max_size=8))
def test_pn_counter_handle_roundtrip(ops):
    ctx = fresh_ctx()
    handle = ctx.crdt.pn_counter("k")
    for actor, delta in ops:
        handle.adjust(delta, actor=actor)
    decoded = crdt_from_dict_envelope(_written_envelope(ctx.stub, "k"))
    assert decoded.value() == handle.value() == sum(d for _, d in ops)


@settings(max_examples=40, deadline=None)
@given(ops=st.lists(st.tuples(st.booleans(), elements), min_size=1, max_size=8))
def test_set_handle_roundtrip(ops):
    ctx = fresh_ctx()
    handle = ctx.crdt.set("k")
    reference: set = set()
    for is_add, element in ops:
        if is_add:
            handle.add(element)
            reference.add(element)
        else:
            handle.discard(element)
            reference.discard(element)
    decoded = crdt_from_dict_envelope(_written_envelope(ctx.stub, "k"))
    assert sorted(map(str, decoded.value())) == sorted(map(str, reference))
    assert sorted(map(str, handle.elements())) == sorted(map(str, reference))


@settings(max_examples=40, deadline=None)
@given(values=st.lists(texts, min_size=1, max_size=6))
def test_register_handle_roundtrip(values):
    ctx = fresh_ctx()
    handle = ctx.crdt.register("k")
    for value in values:
        handle.assign(value)
    decoded = crdt_from_dict_envelope(_written_envelope(ctx.stub, "k"))
    assert decoded.value() == handle.value() == values[-1]


@settings(max_examples=30, deadline=None)
@given(lines=st.lists(texts, min_size=1, max_size=5))
def test_text_handle_roundtrip(lines):
    ctx = fresh_ctx()
    handle = ctx.crdt.text("k")
    for line in lines:
        handle.append(line)
    decoded = crdt_from_dict_envelope(_written_envelope(ctx.stub, "k"))
    assert decoded.text() == handle.text() == "".join(lines)


# ---------------------------------------------------------------------------
# Merge laws through envelope bytes, for every registered CRDT type.
# ---------------------------------------------------------------------------


# Builders take (ops, salt): ``salt`` namespaces actors/tags/element IDs per
# replica, honouring the CRDT contract that IDs are globally unique — two
# replicas never mint the same (RGA element / OR tag / Lamport stamp) for
# different content.  Element *values* stay shared so merges genuinely
# overlap.


def _gcounter(rng_ops, salt) -> StateCRDT:
    crdt = GCounter()
    for actor, amount in rng_ops:
        crdt = crdt.increment(actor, amount)
    return crdt


def _pncounter(rng_ops, salt) -> StateCRDT:
    crdt = PNCounter()
    for actor, amount in rng_ops:
        crdt = crdt.increment(actor, amount) if amount >= 0 else crdt.decrement(actor, -amount)
    return crdt


def _gset(rng_ops, salt) -> StateCRDT:
    crdt = GSet()
    for actor, amount in rng_ops:
        crdt = crdt.add(f"{actor}{amount}")
    return crdt


def _twophase(rng_ops, salt) -> StateCRDT:
    crdt = TwoPhaseSet()
    for index, (actor, amount) in enumerate(rng_ops):
        crdt = crdt.add(f"{actor}{amount}")
        if index % 3 == 2:
            crdt = crdt.remove(f"{actor}{amount}")
    return crdt


def _orset(rng_ops, salt) -> StateCRDT:
    crdt = ORSet()
    for index, (actor, amount) in enumerate(rng_ops):
        crdt = crdt.add(f"e{amount}", f"{salt}{actor}-{index}")
        if index % 3 == 2:
            crdt = crdt.remove(f"e{amount}")
    return crdt


def _lww(rng_ops, salt) -> StateCRDT:
    crdt = LWWRegister()
    for index, (actor, amount) in enumerate(rng_ops):
        crdt = crdt.assign(f"v{amount}", LamportTimestamp(index + 1, f"{salt}{actor}"))
    return crdt


def _mv(rng_ops, salt) -> StateCRDT:
    crdt = MVRegister()
    for actor, amount in rng_ops:
        crdt = crdt.assign(f"v{amount}", f"{salt}{actor}")
    return crdt


def _rga(rng_ops, salt) -> StateCRDT:
    crdt = RGA()
    anchor = HEAD
    for index, (actor, amount) in enumerate(rng_ops):
        element_id = LamportTimestamp(index + 1, f"{salt}{actor}")
        crdt = crdt.insert_after(anchor, element_id, f"c{amount}")
        anchor = element_id
    return crdt


def _text(rng_ops, salt) -> StateCRDT:
    document = TextDocument(salt)
    for actor, amount in rng_ops:
        document = document.fork(f"{salt}{actor}").append(chr(97 + amount % 26))
    return document


def _ormap(rng_ops, salt) -> StateCRDT:
    crdt = ORMap()
    for index, (actor, amount) in enumerate(rng_ops):
        crdt = crdt.update(
            f"k{amount % 3}", GCounter().increment(actor, amount), f"{salt}{actor}-{index}"
        )
    return crdt


BUILDERS = {
    "g-counter": _gcounter,
    "pn-counter": _pncounter,
    "g-set": _gset,
    "2p-set": _twophase,
    "or-set": _orset,
    "lww-register": _lww,
    "mv-register": _mv,
    "rga": _rga,
    "text-document": _text,
    "or-map": _ormap,
}


def test_every_registered_type_has_a_builder():
    """If a new CRDT type registers, this suite must learn to exercise it."""

    assert set(BUILDERS) == set(registered_types())


@settings(max_examples=25, deadline=None)
@given(
    type_name=st.sampled_from(sorted(BUILDERS)),
    ops_a=st.lists(st.tuples(actors, amounts), min_size=1, max_size=6),
    ops_b=st.lists(st.tuples(actors, amounts), min_size=1, max_size=6),
)
def test_envelope_merge_commutative_and_idempotent(type_name, ops_a, ops_b):
    build = BUILDERS[type_name]
    left = to_bytes(
        {"$fabriccrdt": 1, "crdt": type_name, "state": build(ops_a, "L").to_dict()}
    )
    right = to_bytes(
        {"$fabriccrdt": 1, "crdt": type_name, "state": build(ops_b, "R").to_dict()}
    )

    ab = merge_envelopes(left, right)
    ba = merge_envelopes(right, left)
    decoded_ab = crdt_from_dict_envelope(from_bytes(ab))
    decoded_ba = crdt_from_dict_envelope(from_bytes(ba))
    # Commutative on the user-facing value (internal layout may order-differ).
    assert to_bytes(_normalized(decoded_ab)) == to_bytes(_normalized(decoded_ba))
    # Idempotent: merging the merge with either input changes nothing.
    assert _normalized(crdt_from_dict_envelope(from_bytes(merge_envelopes(ab, left)))) == (
        _normalized(decoded_ab)
    )


def _normalized(crdt: StateCRDT):
    payload = crdt.to_dict()
    # A text document records which replica holds it; merge(a, b) keeps a's
    # actor and merge(b, a) keeps b's.  The merged *content* must agree.
    payload.pop("actor", None)
    return payload
