"""Shared fixtures: small networks, specs, and deterministic configs."""

from __future__ import annotations

import pytest

from repro.common.config import (
    CRDTConfig,
    NetworkConfig,
    OrdererConfig,
    TopologyConfig,
)
from repro.core.network import crdt_network, vanilla_network
from repro.workload.iot import IoTChaincode


def small_config(
    max_message_count: int = 10,
    crdt_enabled: bool = False,
    num_orgs: int = 3,
    peers_per_org: int = 2,
    crdt: CRDTConfig | None = None,
) -> NetworkConfig:
    return NetworkConfig(
        topology=TopologyConfig(num_orgs=num_orgs, peers_per_org=peers_per_org),
        orderer=OrdererConfig(max_message_count=max_message_count),
        crdt=crdt if crdt is not None else CRDTConfig(),
        crdt_enabled=crdt_enabled,
    )


@pytest.fixture
def fabric_net():
    """A small synchronous vanilla Fabric network with the IoT chaincode."""

    network = vanilla_network(small_config(max_message_count=10))
    network.deploy(IoTChaincode())
    return network


@pytest.fixture
def crdt_net():
    """A small synchronous FabricCRDT network with the IoT chaincode."""

    network = crdt_network(small_config(max_message_count=10, crdt_enabled=True))
    network.deploy(IoTChaincode())
    return network


@pytest.fixture
def light_crdt_net():
    """Single-org single-peer FabricCRDT network (fast paths)."""

    network = crdt_network(
        small_config(max_message_count=10, crdt_enabled=True, num_orgs=1, peers_per_org=1)
    )
    network.deploy(IoTChaincode())
    return network
