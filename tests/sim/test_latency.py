"""Tests for latency distributions."""

import random

import pytest

from repro.sim import Empirical, Exponential, Fixed, LogNormal, Shifted, Uniform


@pytest.fixture
def rng():
    return random.Random(1234)


class TestFixed:
    def test_constant(self, rng):
        model = Fixed(0.25)
        assert model.sample(rng) == 0.25
        assert model.mean() == 0.25

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Fixed(-1.0)


class TestUniform:
    def test_bounds(self, rng):
        model = Uniform(0.1, 0.2)
        samples = [model.sample(rng) for _ in range(200)]
        assert all(0.1 <= s <= 0.2 for s in samples)
        assert model.mean() == pytest.approx(0.15)

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            Uniform(0.5, 0.1)


class TestExponential:
    def test_mean_statistically(self, rng):
        model = Exponential(0.5)
        samples = [model.sample(rng) for _ in range(20000)]
        assert sum(samples) / len(samples) == pytest.approx(0.5, rel=0.05)

    def test_positive_mean_required(self):
        with pytest.raises(ValueError):
            Exponential(0.0)


class TestLogNormal:
    def test_mean_statistically(self, rng):
        model = LogNormal(0.1, sigma=0.5)
        samples = [model.sample(rng) for _ in range(20000)]
        assert sum(samples) / len(samples) == pytest.approx(0.1, rel=0.05)

    def test_all_positive(self, rng):
        model = LogNormal(0.01, sigma=1.0)
        assert all(model.sample(rng) > 0 for _ in range(100))

    def test_invalid(self):
        with pytest.raises(ValueError):
            LogNormal(0.0)
        with pytest.raises(ValueError):
            LogNormal(1.0, sigma=0.0)


class TestEmpirical:
    def test_resamples_observations(self, rng):
        model = Empirical([0.1, 0.2, 0.3])
        assert all(model.sample(rng) in (0.1, 0.2, 0.3) for _ in range(50))
        assert model.mean() == pytest.approx(0.2)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Empirical([])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Empirical([0.1, -0.1])


class TestShifted:
    def test_offset_added(self, rng):
        model = Shifted(Fixed(0.1), offset=0.05)
        assert model.sample(rng) == pytest.approx(0.15)
        assert model.mean() == pytest.approx(0.15)

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            Shifted(Fixed(0.1), offset=-0.01)
