"""Tests for event primitives and condition events."""

import pytest

from repro.common.errors import EventAlreadyTriggered
from repro.sim import AllOf, AnyOf, Environment


def test_succeed_delivers_value():
    env = Environment()
    event = env.event()
    seen = []
    event.callbacks.append(lambda e: seen.append(e.value))
    event.succeed("payload")
    env.run()
    assert seen == ["payload"]
    assert event.processed and event.ok


def test_double_trigger_rejected():
    env = Environment()
    event = env.event()
    event.succeed()
    with pytest.raises(EventAlreadyTriggered):
        event.succeed()
    with pytest.raises(EventAlreadyTriggered):
        event.fail(RuntimeError())


def test_fail_requires_exception():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_value_unavailable_before_trigger():
    env = Environment()
    with pytest.raises(AttributeError):
        _ = env.event().value


def test_timeout_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-0.5)


def test_all_of_waits_for_all():
    env = Environment()

    def proc():
        t1 = env.timeout(1.0, "a")
        t2 = env.timeout(3.0, "b")
        values = yield AllOf(env, [t1, t2])
        return (env.now, sorted(values.values()))

    process = env.process(proc())
    assert env.run(until=process) == (3.0, ["a", "b"])


def test_any_of_fires_on_first():
    env = Environment()

    def proc():
        t1 = env.timeout(1.0, "fast")
        t2 = env.timeout(5.0, "slow")
        values = yield AnyOf(env, [t1, t2])
        return (env.now, list(values.values()))

    process = env.process(proc())
    assert env.run(until=process) == (1.0, ["fast"])


def test_empty_all_of_fires_immediately():
    env = Environment()

    def proc():
        yield AllOf(env, [])
        return env.now

    process = env.process(proc())
    assert env.run(until=process) == 0.0


def test_condition_fails_fast():
    env = Environment()

    def failer():
        yield env.timeout(1.0)
        raise RuntimeError("child failed")

    def waiter():
        child = env.process(failer())
        slow = env.timeout(10.0)
        try:
            yield AllOf(env, [child, slow])
        except RuntimeError:
            return env.now
        return None

    process = env.process(waiter())
    assert env.run(until=process) == 1.0


def test_operator_sugar():
    env = Environment()

    def proc():
        yield env.timeout(1.0) & env.timeout(2.0)
        first = env.now
        yield env.timeout(1.0) | env.timeout(9.0)
        return (first, env.now)

    process = env.process(proc())
    assert env.run(until=process) == (2.0, 3.0)


def test_mixed_environments_rejected():
    env1, env2 = Environment(), Environment()
    with pytest.raises(ValueError):
        AllOf(env1, [env1.event(), env2.event()])
