"""Tests for measurement helpers."""

import pytest

from repro.sim import GaugeSeries, TimeSeries, summarize


class TestTimeSeries:
    def test_basic_stats(self):
        series = TimeSeries("lat")
        for t, v in [(0.0, 1.0), (1.0, 3.0), (2.0, 2.0)]:
            series.record(t, v)
        assert len(series) == 3
        assert series.total == 6.0
        assert series.mean == pytest.approx(2.0)
        assert series.maximum == 3.0
        assert series.minimum == 1.0

    def test_out_of_order_rejected(self):
        series = TimeSeries()
        series.record(5.0, 1.0)
        with pytest.raises(ValueError):
            series.record(4.0, 1.0)

    def test_percentile(self):
        series = TimeSeries()
        for i in range(100):
            series.record(float(i), float(i + 1))
        assert series.percentile(50) == 50.0
        assert series.percentile(95) == 95.0
        assert series.percentile(100) == 100.0

    def test_rate_between(self):
        series = TimeSeries()
        for i in range(10):
            series.record(i * 0.5, 1.0)  # 2 events per second
        assert series.rate_between(0.0, 4.5) == pytest.approx(2.0)

    def test_window_counts(self):
        series = TimeSeries()
        for t in (0.1, 0.2, 1.5, 2.9):
            series.record(t, 1.0)
        assert series.window_counts(1.0) == [(0.0, 2), (1.0, 1), (2.0, 1)]

    def test_empty_stats_are_none(self):
        series = TimeSeries()
        assert series.mean is None
        assert series.percentile(50) is None
        assert series.std() is None


class TestGaugeSeries:
    def test_time_average(self):
        gauge = GaugeSeries()
        gauge.record(0.0, 0.0)
        gauge.record(2.0, 10.0)  # level 0 for 2s, then 10 for 2s
        assert gauge.time_average(until=4.0) == pytest.approx(5.0)

    def test_empty_is_none(self):
        assert GaugeSeries().time_average() is None


class TestSummarize:
    def test_summary_fields(self):
        summary = summarize([3.0, 1.0, 2.0])
        assert summary["count"] == 3
        assert summary["mean"] == pytest.approx(2.0)
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0
        assert summary["p50"] == 2.0

    def test_empty(self):
        assert summarize([]) == {"count": 0}
