"""Tests for simulated links, broadcast, and partitions."""

import random

from repro.sim import Broadcast, Environment, Fixed, Link, PartitionController, Store, Uniform


def test_link_delivers_after_latency():
    env = Environment()
    box = Store(env)
    link = Link(env, box, latency=Fixed(2.5))
    link.send("hello")
    received = []

    def consumer():
        item = yield box.get()
        received.append((env.now, item))

    env.process(consumer())
    env.run()
    assert received == [(2.5, "hello")]
    assert link.stats.sent == 1 and link.stats.delivered == 1


def test_random_latency_can_reorder_messages():
    env = Environment()
    box = Store(env)
    link = Link(env, box, latency=Uniform(0.0, 1.0), rng=random.Random(3))
    for i in range(20):
        link.send(i)
    order = []

    def consumer():
        for _ in range(20):
            order.append((yield box.get()))

    env.process(consumer())
    env.run()
    assert sorted(order) == list(range(20))
    assert order != list(range(20))  # the asynchrony the paper assumes (§4.1)


def test_loss_probability_drops_messages():
    env = Environment()
    box = Store(env)
    link = Link(env, box, rng=random.Random(0), loss_probability=0.5)
    for _ in range(200):
        link.send("m")
    env.run()
    assert link.stats.dropped > 50
    assert link.stats.delivered == 200 - link.stats.dropped
    assert len(box) == link.stats.delivered


def test_broadcast_fans_out():
    env = Environment()
    boxes = [Store(env) for _ in range(3)]
    broadcast = Broadcast()
    for box in boxes:
        broadcast.attach(Link(env, box))
    broadcast.send("blk")
    env.run()
    assert all(len(box) == 1 for box in boxes)


def test_partition_cut_and_heal():
    env = Environment()
    box = Store(env)
    link = Link(env, box, rng=random.Random(0))
    controller = PartitionController(links=[link])

    controller.cut()
    for _ in range(50):
        link.send("lost")
    env.run()
    assert len(box) == 0

    controller.heal()
    link.send("delivered")
    env.run()
    assert len(box) == 1
    assert link.loss_probability == 0.0
