"""Tests for stores and capacity resources."""

import pytest

from repro.sim import Environment, FilterStore, PriorityStore, Resource, Store


class TestStore:
    def test_fifo_order(self):
        env = Environment()
        store = Store(env)
        received = []

        def producer():
            for item in ("a", "b", "c"):
                yield store.put(item)

        def consumer():
            for _ in range(3):
                item = yield store.get()
                received.append(item)

        env.process(producer())
        env.process(consumer())
        env.run()
        assert received == ["a", "b", "c"]

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)
        times = []

        def consumer():
            item = yield store.get()
            times.append((env.now, item))

        def producer():
            yield env.timeout(5.0)
            yield store.put("late")

        env.process(consumer())
        env.process(producer())
        env.run()
        assert times == [(5.0, "late")]

    def test_capacity_blocks_put(self):
        env = Environment()
        store = Store(env, capacity=1)
        progress = []

        def producer():
            yield store.put("first")
            progress.append(("first stored", env.now))
            yield store.put("second")
            progress.append(("second stored", env.now))

        def consumer():
            yield env.timeout(3.0)
            yield store.get()

        env.process(producer())
        env.process(consumer())
        env.run()
        assert progress == [("first stored", 0.0), ("second stored", 3.0)]

    def test_try_get(self):
        env = Environment()
        store = Store(env)
        assert store.try_get() is None
        store.put("x")
        env.run()
        assert store.try_get() == "x"

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Store(Environment(), capacity=0)

    def test_len_and_items(self):
        env = Environment()
        store = Store(env)
        store.put(1)
        store.put(2)
        env.run()
        assert len(store) == 2
        assert store.items == (1, 2)


class TestPriorityStore:
    def test_smallest_first(self):
        env = Environment()
        store = PriorityStore(env)
        received = []

        def producer():
            for item in (5, 1, 3):
                yield store.put(item)

        def consumer():
            yield env.timeout(1.0)
            for _ in range(3):
                received.append((yield store.get()))

        env.process(producer())
        env.process(consumer())
        env.run()
        assert received == [1, 3, 5]


class TestFilterStore:
    def test_predicate_get(self):
        env = Environment()
        store = FilterStore(env)
        received = []

        def producer():
            yield store.put("apple")
            yield store.put("banana")

        def consumer():
            item = yield store.get(lambda x: x.startswith("b"))
            received.append(item)

        env.process(producer())
        env.process(consumer())
        env.run()
        assert received == ["banana"]
        assert store.items == ("apple",)


class TestResource:
    def test_serializes_users(self):
        env = Environment()
        resource = Resource(env, capacity=1)
        log = []

        def worker(name, duration):
            request = resource.request()
            yield request
            log.append((env.now, name, "start"))
            yield env.timeout(duration)
            resource.release(request)

        env.process(worker("a", 2.0))
        env.process(worker("b", 1.0))
        env.run()
        assert log == [(0.0, "a", "start"), (2.0, "b", "start")]

    def test_capacity_two_runs_concurrently(self):
        env = Environment()
        resource = Resource(env, capacity=2)
        starts = []

        def worker(name):
            request = resource.request()
            yield request
            starts.append((env.now, name))
            yield env.timeout(1.0)
            resource.release(request)

        for name in ("a", "b", "c"):
            env.process(worker(name))
        env.run()
        assert starts == [(0.0, "a"), (0.0, "b"), (1.0, "c")]

    def test_context_manager_releases(self):
        env = Environment()
        resource = Resource(env, capacity=1)
        order = []

        def worker(name):
            with (yield resource.request()):
                order.append((env.now, name))
                yield env.timeout(1.0)

        env.process(worker("a"))
        env.process(worker("b"))
        env.run()
        assert order == [(0.0, "a"), (1.0, "b")]
        assert resource.in_use == 0

    def test_queue_length(self):
        env = Environment()
        resource = Resource(env, capacity=1)

        def holder():
            request = resource.request()
            yield request
            yield env.timeout(10.0)
            resource.release(request)

        def waiter():
            yield resource.request()

        env.process(holder())
        env.process(waiter())
        env.run(until=1.0)
        assert resource.in_use == 1
        assert resource.queue_length == 1

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Resource(Environment(), capacity=0)
