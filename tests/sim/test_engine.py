"""Tests for the simulation engine's run loop."""

import pytest

from repro.common.errors import SimulationError
from repro.sim import Environment


def test_time_starts_at_zero():
    assert Environment().now == 0.0


def test_run_until_time_advances_clock():
    env = Environment()
    env.run(until=10.0)
    assert env.now == 10.0


def test_run_until_past_raises():
    env = Environment(initial_time=5.0)
    with pytest.raises(SimulationError):
        env.run(until=1.0)


def test_timeouts_fire_in_order():
    env = Environment()
    fired = []
    for delay in (3.0, 1.0, 2.0):
        event = env.timeout(delay, value=delay)
        event.callbacks.append(lambda e: fired.append((env.now, e.value)))
    env.run()
    assert fired == [(1.0, 1.0), (2.0, 2.0), (3.0, 3.0)]


def test_simultaneous_events_fifo():
    env = Environment()
    fired = []
    for tag in ("first", "second", "third"):
        event = env.timeout(1.0, value=tag)
        event.callbacks.append(lambda e: fired.append(e.value))
    env.run()
    assert fired == ["first", "second", "third"]


def test_run_until_event_returns_value():
    env = Environment()

    def proc():
        yield env.timeout(2.0)
        return "done"

    process = env.process(proc())
    assert env.run(until=process) == "done"
    assert env.now == 2.0


def test_run_until_event_propagates_failure():
    env = Environment()

    def proc():
        yield env.timeout(1.0)
        raise RuntimeError("boom")

    process = env.process(proc())
    with pytest.raises(RuntimeError, match="boom"):
        env.run(until=process)


def test_run_out_of_events_before_until_event_raises():
    env = Environment()
    never = env.event()
    env.timeout(1.0)
    with pytest.raises(SimulationError):
        env.run(until=never)


def test_unhandled_process_failure_crashes_run():
    env = Environment()

    def proc():
        yield env.timeout(1.0)
        raise ValueError("unhandled")

    env.process(proc())
    with pytest.raises(ValueError, match="unhandled"):
        env.run()


def test_step_on_empty_schedule_raises():
    with pytest.raises(SimulationError):
        Environment().step()


def test_negative_schedule_delay_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.schedule(env.event(), delay=-1.0)


def test_events_processed_counter():
    env = Environment()
    env.timeout(1.0)
    env.timeout(2.0)
    env.run()
    assert env.events_processed == 2


def test_determinism_same_program_same_trace():
    def run_once():
        env = Environment()
        trace = []

        def worker(name, delay):
            yield env.timeout(delay)
            trace.append((env.now, name))

        for i in range(10):
            env.process(worker(f"w{i}", (i * 7) % 5 + 0.5))
        env.run()
        return trace

    assert run_once() == run_once()
