"""Tests for generator-based processes."""

import pytest

from repro.sim import Environment, Interrupt


def test_process_is_event_fires_on_return():
    env = Environment()

    def child():
        yield env.timeout(2.0)
        return 42

    def parent():
        result = yield env.process(child())
        return (env.now, result)

    process = env.process(parent())
    assert env.run(until=process) == (2.0, 42)


def test_process_receives_event_values():
    env = Environment()

    def proc():
        value = yield env.timeout(1.0, value="hello")
        return value

    assert env.run(until=env.process(proc())) == "hello"


def test_child_exception_propagates_to_waiter():
    env = Environment()

    def child():
        yield env.timeout(1.0)
        raise KeyError("oops")

    def parent():
        try:
            yield env.process(child())
        except KeyError:
            return "caught"
        return "missed"

    assert env.run(until=env.process(parent())) == "caught"


def test_yielding_non_event_raises_inside_process():
    env = Environment()

    def proc():
        try:
            yield "not an event"
        except TypeError:
            return "typed"

    assert env.run(until=env.process(proc())) == "typed"


def test_non_generator_rejected():
    env = Environment()
    with pytest.raises(TypeError):
        env.process(lambda: None)


def test_interrupt_delivers_cause():
    env = Environment()
    outcome = {}

    def sleeper():
        try:
            yield env.timeout(100.0)
        except Interrupt as interrupt:
            outcome["cause"] = interrupt.cause
            outcome["time"] = env.now

    def killer(victim):
        yield env.timeout(4.0)
        victim.interrupt("reason")

    victim = env.process(sleeper())
    env.process(killer(victim))
    env.run()
    assert outcome == {"cause": "reason", "time": 4.0}


def test_interrupt_finished_process_is_noop():
    env = Environment()

    def quick():
        yield env.timeout(1.0)
        return "done"

    process = env.process(quick())
    env.run()
    process.interrupt("too late")  # must not raise
    env.run()
    assert process.value == "done"


def test_interrupted_process_can_continue():
    env = Environment()

    def stubborn():
        try:
            yield env.timeout(100.0)
        except Interrupt:
            pass
        yield env.timeout(1.0)
        return env.now

    process = env.process(stubborn())

    def killer():
        yield env.timeout(2.0)
        process.interrupt()

    env.process(killer())
    assert env.run(until=process) == 3.0


def test_already_processed_event_resumes_immediately():
    env = Environment()
    stale = env.timeout(1.0, value="old")

    def late_waiter():
        yield env.timeout(5.0)
        value = yield stale  # already processed; resume without waiting
        return (env.now, value)

    assert env.run(until=env.process(late_waiter())) == (5.0, "old")


def test_is_alive():
    env = Environment()

    def proc():
        yield env.timeout(1.0)

    process = env.process(proc())
    assert process.is_alive
    env.run()
    assert not process.is_alive
