"""Tests for sim."""
