#!/usr/bin/env python3
"""Listening for events: contract-event streams with checkpoint/resume.

FabricCRDT clients learn transaction outcomes from *commit* events — every
CRDT transaction commits, so the interesting facts (merged values, which
vanilla transactions died of MVCC) surface when blocks land, not when
endorsements return.  This example shows the event service doing that job:

1. a live ``contract_events`` stream delivers each committed ``voted``
   event to a callback, at the instant its block commits;
2. the consumer "crashes" after durably recording a checkpoint with
   ``FileCheckpointer`` (atomic write, crash-safe load), more votes commit
   while it is down, and a resumed stream replays exactly the missed
   events from the ledger — no gaps, no duplicates;
3. a ``block_events(start_block=0)`` stream replays the whole chain, the
   deliver-service view a fresh auditor would use.

Run:  python examples/event_listening.py
"""

import tempfile
from pathlib import Path

from repro import FileCheckpointer, Gateway, crdt_network, fabriccrdt_config
from repro.core.counters import VotingChaincode


def cast_votes(contract, votes):
    """Submit concurrent votes; they share blocks and merge at commit."""

    submitted = [
        contract.submit_async("vote", "election", option, f"voter{i}")
        for i, option in enumerate(votes)
    ]
    for tx in submitted:
        assert tx.commit_status().succeeded


def main() -> None:
    network = crdt_network(fabriccrdt_config(max_message_count=4))
    network.deploy(VotingChaincode())
    # The gateway is a context manager: closing it releases the transport
    # and channel (deliver session, peer state stores) deterministically.
    with Gateway.connect(network) as gateway:
        run_demo(gateway)


def run_demo(gateway) -> None:
    contract = gateway.get_contract("voting")

    # -- 1. live callback stream -------------------------------------------------
    print("--- live contract events ---")
    live = contract.contract_events(event_name="voted")
    live.on_event(
        lambda event: print(
            f"  block {event.block_number} tx {event.tx_index}: "
            f"vote for {event.payload['option']!r}"
        )
    )
    cast_votes(contract, ["apple", "banana", "apple", "apple"])

    # -- 2. durable checkpoint, miss some events, resume -------------------------
    checkpointer = FileCheckpointer(
        Path(tempfile.mkdtemp(prefix="repro-events-")) / "listener.checkpoint.json"
    )
    checkpointer.save(live.checkpoint())  # atomic write: crash-safe
    live.close()
    print(f"\nconsumer stops; checkpoint saved to {checkpointer.path}")

    cast_votes(contract, ["banana", "apple", "banana", "apple"])
    print("…4 more votes commit while the consumer is down…\n")

    print("--- resumed from the file checkpoint ---")
    resumed = contract.contract_events(
        event_name="voted", checkpoint=checkpointer.load()
    )
    missed = list(resumed)
    for event in missed:
        print(
            f"  block {event.block_number} tx {event.tx_index}: "
            f"vote for {event.payload['option']!r}  (replayed)"
        )
    assert len(missed) == 4, "exactly the missed events, no duplicates"
    resumed.close()

    # -- 3. full-chain audit via block events ------------------------------------
    audit = gateway.block_events(start_block=0)
    blocks = list(audit)
    audit.close()
    total_txs = sum(event.transaction_count for event in blocks)
    print(f"\nauditor replayed {len(blocks)} blocks, {total_txs} transactions")

    tally = contract.evaluate("tally", "election")
    print(f"final tally (CRDT-merged): {tally}")
    assert tally == {"apple": 5, "banana": 3}


if __name__ == "__main__":
    main()
