#!/usr/bin/env python3
"""Quickstart: FabricCRDT vs vanilla Fabric in sixty lines.

Builds both networks, submits five *conflicting* transactions (all reading
and writing the same key before any block commits), and shows:

* vanilla Fabric commits exactly one and rejects the rest (MVCC conflicts);
* FabricCRDT merges all five into one converged JSON value, zero failures.

Both networks are driven through the same Gateway API — the client code is
identical; only the peer validation behaviour differs.

Run:  python examples/quickstart.py
"""

import json

from repro import Gateway, ValidationCode, crdt_network, fabric_config, fabriccrdt_config, vanilla_network
from repro.workload.iot import IoTChaincode, encode_call, reading_payload


def submit_conflicting_batch(contract, crdt: bool) -> list:
    """Populate one device key, then submit 5 concurrent read-modify-writes."""

    contract.submit("populate", json.dumps({"keys": ["device-1"]}))

    submitted = []
    for i in range(5):
        call = encode_call(
            read_keys=["device-1"],
            write_keys=["device-1"],
            payload=reading_payload("device-1", temperature=20 + i, sequence=i),
            crdt=crdt,
        )
        submitted.append(contract.submit_async("record", call))
    # The first commit_status() cuts the block holding all five.
    return [tx.commit_status() for tx in submitted]


def show(network, statuses, title):
    print(f"--- {title} ---")
    for status in statuses:
        print(f"  tx {status.tx_id[:8]}…  {status.code.name}")
    state = network.state_of("device-1")
    readings = state["tempReadings"]
    print(f"  committed readings: {[r['temperature'] for r in readings]}")
    valid = sum(1 for s in statuses if s.code is ValidationCode.VALID)
    print(f"  {valid}/5 transactions committed successfully\n")


def main() -> None:
    # Networks are context managers: peer state stores and the commit
    # deliver session are released deterministically on exit.
    with vanilla_network(fabric_config(max_message_count=400)) as fabric:
        fabric.deploy(IoTChaincode())
        contract = Gateway.connect(fabric).get_contract("iot")
        statuses = submit_conflicting_batch(contract, crdt=False)
        show(fabric, statuses, "vanilla Fabric (MVCC validation)")

    with crdt_network(fabriccrdt_config(max_message_count=25)) as fabriccrdt:
        fabriccrdt.deploy(IoTChaincode())
        contract = Gateway.connect(fabriccrdt).get_contract("iot")
        statuses = submit_conflicting_batch(contract, crdt=True)
        show(fabriccrdt, statuses, "FabricCRDT (CRDT merge)")

        fabriccrdt.assert_states_converged()
        print("all FabricCRDT peers hold byte-identical world states ✔")
    print("next: regenerate the paper's figures with  python -m repro.bench fig3")


if __name__ == "__main__":
    main()
