#!/usr/bin/env python3
"""Quickstart: FabricCRDT vs vanilla Fabric in sixty lines.

Builds both networks, submits five *conflicting* transactions (all reading
and writing the same key before any block commits), and shows:

* vanilla Fabric commits exactly one and rejects the rest (MVCC conflicts);
* FabricCRDT merges all five into one converged JSON value, zero failures.

Run:  python examples/quickstart.py
"""

import json

from repro import ValidationCode, crdt_network, fabric_config, fabriccrdt_config, vanilla_network
from repro.workload.iot import IoTChaincode, encode_call, reading_payload


def submit_conflicting_batch(network, crdt: bool) -> list[str]:
    """Populate one device key, then submit 5 concurrent read-modify-writes."""

    network.invoke("iot", "populate", [json.dumps({"keys": ["device-1"]})])
    network.flush()  # commit the populate block

    tx_ids = []
    for i in range(5):
        call = encode_call(
            read_keys=["device-1"],
            write_keys=["device-1"],
            payload=reading_payload("device-1", temperature=20 + i, sequence=i),
            crdt=crdt,
        )
        tx_ids.append(network.invoke("iot", "record", [call]))
    network.flush()  # cut and commit the block holding all five
    return tx_ids


def show(network, tx_ids, title):
    print(f"--- {title} ---")
    for tx_id in tx_ids:
        code = network.status_of(tx_id)
        print(f"  tx {tx_id[:8]}…  {code.name}")
    state = network.state_of("device-1")
    readings = state["tempReadings"]
    print(f"  committed readings: {[r['temperature'] for r in readings]}")
    valid = sum(1 for t in tx_ids if network.status_of(t) is ValidationCode.VALID)
    print(f"  {valid}/5 transactions committed successfully\n")


def main() -> None:
    fabric = vanilla_network(fabric_config(max_message_count=400))
    fabric.deploy(IoTChaincode())
    fabric_txs = submit_conflicting_batch(fabric, crdt=False)
    show(fabric, fabric_txs, "vanilla Fabric (MVCC validation)")

    fabriccrdt = crdt_network(fabriccrdt_config(max_message_count=25))
    fabriccrdt.deploy(IoTChaincode())
    crdt_txs = submit_conflicting_batch(fabriccrdt, crdt=True)
    show(fabriccrdt, crdt_txs, "FabricCRDT (CRDT merge)")

    fabriccrdt.assert_states_converged()
    print("all FabricCRDT peers hold byte-identical world states ✔")
    print("next: regenerate the paper's figures with  python -m repro.bench fig3")


if __name__ == "__main__":
    main()
