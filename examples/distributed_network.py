#!/usr/bin/env python3
"""Distributed deployment: the Gateway over real processes and sockets.

Everything in the other examples runs one Python process.  This one runs
the *same protocol* as a real deployment: ``Cluster.spawn`` starts an
orderer and four peers as separate OS processes (asyncio socket servers
speaking a length-prefixed JSON wire protocol), and ``SocketTransport``
gives the unchanged Gateway API a client seat at that network —

1. concurrent CRDT submissions endorse on remote peers, order over a
   real orderer socket, and merge at commit exactly as in-process;
2. every peer process reports its own ledger height and 32-byte state
   fingerprint, so convergence is checked against ground truth;
3. the client keeps verified *mirror* ledgers fed by deliver streams —
   ``gateway.block_events()`` / checkpoint / resume work over sockets;
4. shutdown is deterministic: context managers close sockets and
   SIGTERM the node processes.

Run:  python examples/distributed_network.py
"""

import dataclasses
import json

from repro import Gateway, fabriccrdt_config
from repro.common.config import TopologyConfig
from repro.net import Cluster, SocketTransport
from repro.workload.iot import encode_call, reading_payload


def cluster_config():
    base = fabriccrdt_config(max_message_count=4)
    return dataclasses.replace(
        base, topology=TopologyConfig(num_orgs=2, peers_per_org=2)
    )


def record(device: str, sequence: int, temperature: int) -> str:
    return encode_call(
        read_keys=[device],
        write_keys=[device],
        payload=reading_payload(device, temperature=temperature, sequence=sequence),
        crdt=True,
    )


def main() -> None:
    config = cluster_config()
    print("--- spawning the cluster (1 orderer + 4 peers, each its own process) ---")
    with Cluster.spawn(
        config, chaincodes=["repro.workload.iot:IoTChaincode"]
    ) as cluster:
        for name in cluster.health_check():
            print(f"  {name:<12} answered ping")

        with SocketTransport.connect(cluster.profile) as transport:
            gateway = Gateway.connect(transport)
            contract = gateway.get_contract("iot")
            stream = gateway.block_events(start_block=0)

            print("--- concurrent CRDT writes to one key, across processes ---")
            contract.submit("populate", json.dumps({"keys": ["sensor-1"]}))
            submitted = [
                contract.submit_async("record", record("sensor-1", i, 20 + i))
                for i in range(4)
            ]
            for tx in submitted:
                status = tx.commit_status()
                print(f"  {tx.tx_id[:12]}… -> {status.code.name}")

            state = transport.channel.state_of("sensor-1")
            readings = sorted(r["temperature"] for r in state["tempReadings"])
            print(f"  merged tempReadings: {readings} (no MVCC casualties)")

            print("--- ground truth from the peer processes themselves ---")
            transport.wait_for_height(transport.channel.anchor_peer.ledger.height)
            for index in range(len(cluster.profile.peers)):
                info = transport.ledger_info(index)
                print(
                    f"  {info['peer']:<12} height {info['height']}  "
                    f"fingerprint {info['fingerprint'][:16]}…"
                )
            assert transport.channel.world_states_converged()
            print("  client-side mirrors converged with all peer processes")

            print("--- block events, streamed over deliver sockets ---")
            transport.pump()
            for event in stream:
                kinds = [
                    tx.proposal.function for tx in event.committed.block.transactions
                ]
                print(f"  block {event.block_number}: {kinds}")
            stream.close()
    print("--- cluster terminated (SIGTERM, bounded join) ---")


if __name__ == "__main__":
    main()
