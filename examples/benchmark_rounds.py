#!/usr/bin/env python3
"""Declarative benchmarks: rounds, rate controllers, and closed-loop clients.

The paper runs every experiment through Hyperledger Caliper; this example
shows the reproduction's Caliper-style API doing the same job in a few
declarations instead of a hand-rolled driver loop:

1. a two-round ``Benchmark`` — the same Table-1 workload on FabricCRDT (25
   txs/block) and vanilla Fabric (400) at their §7.3 best configurations —
   reproduces the paper's headline: FabricCRDT commits everything, Fabric
   loses almost every conflicting transaction;
2. rate controllers swap the arrival process without touching the
   workload: fixed-rate (the paper), Poisson arrivals, and a linear ramp;
3. a closed-loop ``MaxRate`` round discovers the system's capacity with no
   offered-rate guess: an event-driven client reacts to Gateway commit
   events and refills its in-flight window with coalesced
   ``Contract.submit_batch`` bursts.

Run:  python examples/benchmark_rounds.py
"""

from repro.common.config import fabric_config, fabriccrdt_config
from repro.workload.clients import ClosedLoopClient
from repro.workload.rate import FixedRate, LinearRamp, MaxRate, PoissonArrival
from repro.workload.runner import Benchmark, Round
from repro.workload.spec import table1_spec

TRANSACTIONS = 150


def main() -> None:
    spec = table1_spec(total_transactions=TRANSACTIONS, seed=7)

    # -- 1. the paper's comparison, declared ------------------------------------
    print("--- two rounds: FabricCRDT vs Fabric (Table 1 workload) ---")
    report = Benchmark(
        rounds=[
            Round(spec, fabriccrdt_config(25), label="FabricCRDT"),
            Round(spec.with_crdt(False), fabric_config(400), label="Fabric"),
        ]
    ).run()
    for row in report.rows():
        print(
            f"  {row['label']:<12} {row['successful']:>4}/{TRANSACTIONS} committed, "
            f"{row['throughput_tps']:>6} tx/s, {row['avg_latency_s']:.2f}s latency"
        )
    crdt, fabric = report.results
    assert crdt.successful == TRANSACTIONS and fabric.successful < TRANSACTIONS

    # -- 2. swap the arrival process, keep the workload --------------------------
    print("\n--- rate controllers over the same workload ---")
    controllers = [
        FixedRate(300.0),
        PoissonArrival(300.0, seed=1),
        LinearRamp(100.0, 500.0, TRANSACTIONS),
    ]
    report = Benchmark(
        rounds=[
            Round(spec, fabriccrdt_config(25), rate=controller,
                  label=controller.describe())
            for controller in controllers
        ]
    ).run()
    for row in report.rows():
        print(f"  {row['label']:<18} -> {row['throughput_tps']:>6} tx/s")
    assert all(result.successful == TRANSACTIONS for result in report.results)

    # -- 3. closed loop: capacity discovery via commit events --------------------
    print("\n--- closed-loop MaxRate round (event-driven, batched) ---")
    client = ClosedLoopClient()
    result = (
        Benchmark(
            rounds=[
                Round(
                    spec,
                    fabriccrdt_config(25),
                    rate=MaxRate(in_flight=50, batch_size=25),
                    client=client,
                    label="MaxRate",
                )
            ]
        )
        .run()
        .results[0]
    )
    print(
        f"  committed {result.successful}/{TRANSACTIONS} at "
        f"{result.throughput_tps:.1f} tx/s with at most "
        f"{client.max_in_flight_observed} transactions in flight"
    )
    assert result.successful == TRANSACTIONS
    assert client.max_in_flight_observed <= 50


if __name__ == "__main__":
    main()
