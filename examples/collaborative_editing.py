#!/usr/bin/env python3
"""Collaborative document editing on FabricCRDT (paper §6, use case 1).

A shared document lives under one ledger key as a JSON object.  Authors
edit *concurrently* — their transactions are endorsed against the same
committed snapshot, so on vanilla Fabric all but one edit per block would
fail.  On FabricCRDT every edit commits and the JSON CRDT merges them:
nobody redoes work, no edit is lost.

Data-modelling note (the JSON-CRDT idiom): *named* collections are maps —
map keys merge recursively, so two authors touching the section "Intro"
land in the *same* section.  *Streams* of contributions are lists — list
items accumulate.  Here ``sections`` is a map keyed by heading, and each
section's ``paragraphs`` is a list.

The chaincode is written in the ``repro.contract`` style: decorated
handlers, and partial updates buffered through a ``ctx.crdt.doc`` handle
(``merge_patch``) instead of hand-built ``put_crdt`` payloads.

Run:  python examples/collaborative_editing.py
"""

from repro import Gateway
from repro.common.config import CRDTConfig, NetworkConfig, OrdererConfig
from repro.common.types import Json
from repro.contract import Context, Contract, query, transaction
from repro.core.network import crdt_network


class DocsChaincode(Contract):
    name = "docs"

    @transaction
    def create(self, ctx: Context, doc_id: str, title: str) -> Json:
        ctx.state.put(f"doc/{doc_id}", {"title": title, "sections": {}})
        return {"created": doc_id}

    @transaction
    def add_section(self, ctx: Context, doc_id: str, section: str,
                    author: str) -> Json:
        document = ctx.crdt.doc(f"doc/{doc_id}")
        document.get()  # record the read; merging ignores the version
        document.merge_patch(
            {"sections": {section: {"by": author, "paragraphs": []}}}
        )
        return {"added": section}

    @transaction
    def write_paragraph(self, ctx: Context, doc_id: str, section: str,
                        text: str, author: str) -> Json:
        document = ctx.crdt.doc(f"doc/{doc_id}")
        document.get()
        document.merge_patch(
            {"sections": {section: {"paragraphs": [f"{text} —{author}"]}}}
        )
        return {"wrote": section}

    @query
    def read(self, ctx: Context, doc_id: str) -> Json:
        return ctx.state.get(f"doc/{doc_id}")


def main() -> None:
    config = NetworkConfig(
        orderer=OrdererConfig(max_message_count=50),
        crdt=CRDTConfig(seed_from_state=True),  # edits accumulate across blocks
        crdt_enabled=True,
    )
    network = crdt_network(config)
    network.deploy(DocsChaincode())
    contract = Gateway.connect(network).get_contract("docs")

    contract.submit("create", "paper", "FabricCRDT, Reproduced")

    # Round 1: two authors add sections *concurrently* (same block).
    round1 = [
        contract.submit_async("add_section", "paper", "Introduction", "alice", client_index=0),
        contract.submit_async("add_section", "paper", "Evaluation", "bob", client_index=1),
    ]
    assert all(tx.commit_status().succeeded for tx in round1)

    # Round 2: three concurrent paragraph edits, two to the same section.
    round2 = [
        contract.submit_async(
            "write_paragraph",
            "paper", "Introduction", "Blockchains conflict under concurrency.", "alice",
            client_index=0,
        ),
        contract.submit_async(
            "write_paragraph",
            "paper", "Introduction", "CRDTs merge concurrent updates.", "carol",
            client_index=2,
        ),
        contract.submit_async(
            "write_paragraph",
            "paper", "Evaluation", "All transactions commit successfully.", "bob",
            client_index=1,
        ),
    ]
    assert all(tx.commit_status().succeeded for tx in round2)

    assert network.failure_count() == 0, "no author ever has to resubmit"

    document = contract.evaluate("read", "paper")
    print(f"# {document['title']}\n")
    total_paragraphs = 0
    for heading in sorted(document["sections"]):
        section = document["sections"][heading]
        print(f"## {heading}  (created by {section.get('by', '?')})")
        for paragraph in section.get("paragraphs", []):
            print(f"   {paragraph}")
            total_paragraphs += 1
        print()
    assert set(document["sections"]) == {"Introduction", "Evaluation"}
    assert len(document["sections"]["Introduction"]["paragraphs"]) == 2
    assert total_paragraphs == 3, "every concurrent edit survived the merge"
    network.assert_states_converged()
    print("zero failed transactions; all edits merged; peers converged ✔")


if __name__ == "__main__":
    main()
