#!/usr/bin/env python3
"""SmallBank on FabricCRDT: what money CAN and CANNOT tolerate (paper §6).

Runs the same three concurrent payments under three storage disciplines:

* ``plain``      — put_state: conflicts fail, money safe (Fabric semantics);
* ``naive-crdt`` — put_crdt on JSON balances: everything commits, money
  evaporates (the §6 anti-pattern, quantified);
* ``pn-counter`` — put_crdt on PN-Counter envelopes: everything commits AND
  money is conserved, but nothing can stop an overdraft.

Run:  python examples/smallbank.py
"""

from repro import ValidationCode, crdt_network, fabriccrdt_config
from repro.workload.smallbank import SmallBankChaincode, total_money

ACCOUNTS = ("alice", "bob", "carol")
PAYMENTS = [("alice", "bob", 60), ("alice", "carol", 70), ("bob", "carol", 10)]


def run_mode(mode: str) -> None:
    network = crdt_network(fabriccrdt_config(max_message_count=20))
    network.deploy(SmallBankChaincode())
    for account in ACCOUNTS:
        network.invoke("smallbank", "create_account", [account, "100", "100", mode])
    network.flush()
    initial_total = total_money(network, ACCOUNTS)

    tx_ids = [
        network.invoke("smallbank", "send_payment", [src, dst, str(amount), mode])
        for src, dst, amount in PAYMENTS
    ]
    network.flush()

    committed = sum(
        1 for tx in tx_ids if network.status_of(tx) is ValidationCode.VALID
    )
    final_total = total_money(network, ACCOUNTS)
    balances = {
        account: network.query("smallbank", "balance", [account])["checking"]
        for account in ACCOUNTS
    }
    conserved = "yes" if final_total == initial_total else f"NO ({final_total})"
    overdrawn = [a for a, b in balances.items() if b < 0]
    print(f"mode={mode:<11} committed={committed}/3  money conserved: {conserved:<9} "
          f"checking={balances}"
          + (f"  OVERDRAWN: {overdrawn}" if overdrawn else ""))


def main() -> None:
    print(f"three concurrent payments {PAYMENTS} from 100/100/100 checking:\n")
    for mode in ("plain", "naive-crdt", "pn-counter"):
        run_mode(mode)
    print(
        "\nplain:       MVCC protects invariants by failing conflicts (resubmit needed)\n"
        "naive-crdt:  the §6 anti-pattern — merged balances lose debits\n"
        "pn-counter:  commutative money — all commit, totals conserved,\n"
        "             but non-negativity is unenforceable (overdraft risk)"
    )


if __name__ == "__main__":
    main()
