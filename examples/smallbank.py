#!/usr/bin/env python3
"""SmallBank on FabricCRDT: what money CAN and CANNOT tolerate (paper §6).

Runs the same three concurrent payments under three storage disciplines:

* ``plain``      — put_state: conflicts fail, money safe (Fabric semantics);
* ``naive-crdt`` — put_crdt on JSON balances: everything commits, money
  evaporates (the §6 anti-pattern, quantified);
* ``pn-counter`` — put_crdt on PN-Counter envelopes: everything commits AND
  money is conserved, but nothing can stop an overdraft.

Run:  python examples/smallbank.py
"""

from repro import Gateway, crdt_network, fabriccrdt_config
from repro.workload.smallbank import SmallBankChaincode, total_money

ACCOUNTS = ("alice", "bob", "carol")
PAYMENTS = [("alice", "bob", 60), ("alice", "carol", 70), ("bob", "carol", 10)]


def run_mode(mode: str) -> None:
    network = crdt_network(fabriccrdt_config(max_message_count=20))
    network.deploy(SmallBankChaincode())
    contract = Gateway.connect(network).get_contract("smallbank")

    created = [
        contract.submit_async("create_account", account, "100", "100", mode)
        for account in ACCOUNTS
    ]
    assert all(tx.commit_status().succeeded for tx in created)
    initial_total = total_money(contract, ACCOUNTS)

    in_flight = [
        contract.submit_async("send_payment", src, dst, str(amount), mode)
        for src, dst, amount in PAYMENTS
    ]
    statuses = [tx.commit_status() for tx in in_flight]

    committed = sum(1 for status in statuses if status.succeeded)
    final_total = total_money(contract, ACCOUNTS)
    balances = {
        account: contract.evaluate("balance", account)["checking"]
        for account in ACCOUNTS
    }
    conserved = "yes" if final_total == initial_total else f"NO ({final_total})"
    overdrawn = [a for a, b in balances.items() if b < 0]
    print(f"mode={mode:<11} committed={committed}/3  money conserved: {conserved:<9} "
          f"checking={balances}"
          + (f"  OVERDRAWN: {overdrawn}" if overdrawn else ""))


def main() -> None:
    print(f"three concurrent payments {PAYMENTS} from 100/100/100 checking:\n")
    for mode in ("plain", "naive-crdt", "pn-counter"):
        run_mode(mode)
    print(
        "\nplain:       MVCC protects invariants by failing conflicts (resubmit needed)\n"
        "naive-crdt:  the §6 anti-pattern — merged balances lose debits\n"
        "pn-counter:  commutative money — all commit, totals conserved,\n"
        "             but non-negativity is unenforceable (overdraft risk)"
    )


if __name__ == "__main__":
    main()
