#!/usr/bin/env python3
"""Global voting with counter CRDTs — the paper's future-work extension (§9).

Votes are G-Counter increments written through ``put_crdt`` as serialized
CRDT envelopes.  The FabricCRDT committer recognizes envelopes and merges
them with the counter's own join (per-actor maximum), so any number of
concurrent votes in one block commit without conflicts and without losing a
single ballot — the built-in-counters behaviour Fabric's FAB-10711 proposal
sketched but never shipped.

Run:  python examples/voting.py
"""

from repro.common.config import NetworkConfig, OrdererConfig
from repro.core import VotingChaincode
from repro.core.network import crdt_network


def main() -> None:
    network = crdt_network(
        NetworkConfig(orderer=OrdererConfig(max_message_count=100), crdt_enabled=True)
    )
    network.deploy(VotingChaincode())

    ballots = {"mergers": ["approve", "reject"], "logo": ["hexagon", "ouroboros"]}
    votes = [
        ("mergers", "approve", 7),
        ("mergers", "reject", 4),
        ("logo", "hexagon", 5),
        ("logo", "ouroboros", 6),
    ]

    total = 0
    for ballot, option, count in votes:
        for voter_index in range(count):
            network.invoke(
                "voting",
                "vote",
                [ballot, option, f"{option}-voter-{voter_index}"],
                client_index=total % 4,
            )
            total += 1
    network.flush()  # every vote in flight lands in this block and merges

    print(f"submitted {total} concurrent votes; failures: {network.failure_count()}")
    assert network.failure_count() == 0

    for ballot, options in ballots.items():
        tally = network.query("voting", "tally", [ballot])
        print(f"ballot {ballot!r}: {tally}")
        for option in options:
            expected = next(c for b, o, c in votes if b == ballot and o == option)
            assert tally[option] == expected, "no vote was lost or double-counted"

    network.assert_states_converged()
    print("all peers agree on every tally ✔")


if __name__ == "__main__":
    main()
