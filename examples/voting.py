#!/usr/bin/env python3
"""Global voting with counter CRDTs — the paper's future-work extension (§9).

Each vote is one line of chaincode — ``ctx.crdt.counter(key).incr(actor=
voter)`` — and the handle does the rest: it reads the committed G-Counter
envelope, applies the increment, and buffers the result through
``put_crdt``.  The FabricCRDT committer recognizes envelopes and merges
them with the counter's own join (per-actor maximum), so any number of
concurrent votes in one block commit without conflicts and without losing a
single ballot — the built-in-counters behaviour Fabric's FAB-10711 proposal
sketched but never shipped.

Run:  python examples/voting.py
"""

from repro import Gateway
from repro.common.config import NetworkConfig, OrdererConfig
from repro.core import VotingChaincode
from repro.core.network import crdt_network


def main() -> None:
    network = crdt_network(
        NetworkConfig(orderer=OrdererConfig(max_message_count=100), crdt_enabled=True)
    )
    network.deploy(VotingChaincode())
    contract = Gateway.connect(network).get_contract("voting")

    ballots = {"mergers": ["approve", "reject"], "logo": ["hexagon", "ouroboros"]}
    votes = [
        ("mergers", "approve", 7),
        ("mergers", "reject", 4),
        ("logo", "hexagon", 5),
        ("logo", "ouroboros", 6),
    ]

    submitted = []
    for ballot, option, count in votes:
        for voter_index in range(count):
            submitted.append(
                contract.submit_async(
                    "vote",
                    ballot,
                    option,
                    f"{option}-voter-{voter_index}",
                    client_index=len(submitted) % 4,
                )
            )
    # Every vote in flight lands in one block and merges; the first
    # commit_status() cuts it, the rest read the recorded statuses.
    statuses = [tx.commit_status() for tx in submitted]

    failures = sum(1 for status in statuses if not status.succeeded)
    print(f"submitted {len(submitted)} concurrent votes; failures: {failures}")
    assert failures == 0

    for ballot, options in ballots.items():
        tally = contract.evaluate("tally", ballot)
        print(f"ballot {ballot!r}: {tally}")
        for option in options:
            expected = next(c for b, o, c in votes if b == ballot and o == option)
            assert tally[option] == expected, "no vote was lost or double-counted"

    network.assert_states_converged()
    print("all peers agree on every tally ✔")


if __name__ == "__main__":
    main()
