#!/usr/bin/env python3
"""Text CRDTs, off-chain and on-chain.

Part 1 is the standalone demo: two editors fork a shared document, type
concurrently (including edits at the same position), exchange states, and
converge — the RGA guarantees that each author's run stays contiguous and
nothing is lost.  This is the character-level machinery behind the paper's
collaborative-editing use case (§6) and its future-work list CRDTs (§9).

Part 2 puts the same machinery on the ledger through the contract API: a
wiki chaincode edits pages through ``ctx.crdt.text`` handles, so concurrent
transactions appending to one page in the same block all commit and merge —
no envelope dicts, no MVCC conflicts, no lost lines.

Run:  python examples/text_editing.py
"""

from repro import Gateway, crdt_network, fabriccrdt_config
from repro.contract import Context, Contract, query, transaction
from repro.crdt import TextDocument


def standalone_demo() -> None:
    origin = TextDocument("origin").insert(0, "CRDTs merge concurrent edits.")
    print(f"shared:   {origin.text()!r}")

    # Fork two replicas; both edit *the same* document state concurrently.
    alice = origin.fork("alice")
    bob = origin.fork("bob")

    alice = alice.insert(0, "Fact: ")                     # prepend
    alice = alice.delete(len(alice) - 1, 1).append("!")   # change punctuation
    bob = bob.insert(len("CRDTs"), " provably")           # edit mid-sentence

    print(f"alice:    {alice.text()!r}")
    print(f"bob:      {bob.text()!r}")

    merged_ab = alice.merge(bob)
    merged_ba = bob.merge(alice)
    assert merged_ab.text() == merged_ba.text(), "merge is commutative"
    print(f"merged:   {merged_ab.text()!r}")

    # Serialization: documents travel as CRDT envelopes (the same bytes the
    # wiki chaincode below commits to the ledger).
    restored = TextDocument.from_bytes(merged_ab.to_bytes())
    assert restored.text() == merged_ab.text()
    print("state roundtrips through canonical bytes ✔")

    # A third editor joins late, applies both histories at once, keeps typing.
    carol = restored.fork("carol").append(" Ask me how.")
    final = carol.merge(merged_ab)
    print(f"final:    {final.text()!r}")


class WikiChaincode(Contract):
    """Ledger-backed collaborative text editing via ``ctx.crdt.text``."""

    name = "wiki"

    @transaction
    def append_line(self, ctx: Context, page: str, line: str) -> dict:
        handle = ctx.crdt.text(f"page/{page}")
        handle.append(line + "\n")
        return {"length": len(handle)}

    @query
    def read(self, ctx: Context, page: str) -> dict:
        return {"text": ctx.crdt.text(f"page/{page}").text()}


def onchain_demo() -> None:
    network = crdt_network(fabriccrdt_config(max_message_count=25))
    network.deploy(WikiChaincode())
    contract = Gateway.connect(network).get_contract("wiki")

    lines = [
        "= Release notes =",
        "- CRDT merges keep every concurrent edit",
        "- nobody ever resubmits a transaction",
    ]
    # All three writers endorse against the same (empty) committed page and
    # land in one block; the committer merges their RGA states.
    in_flight = [
        contract.submit_async("append_line", "release-notes", line, client_index=i)
        for i, line in enumerate(lines)
    ]
    statuses = [tx.commit_status() for tx in in_flight]
    assert all(status.succeeded for status in statuses)

    page = contract.evaluate("read", "release-notes")["text"]
    print("\non-chain page after 3 concurrent appends (1 block):")
    print(page, end="")
    for line in lines:
        assert line + "\n" in page, "no concurrent append was lost"
    network.assert_states_converged()
    print("all peers hold the identical merged page ✔")


def main() -> None:
    standalone_demo()
    onchain_demo()


if __name__ == "__main__":
    main()
