#!/usr/bin/env python3
"""Standalone text-CRDT demo: the CRDT library works without the blockchain.

Two editors fork a shared document, type concurrently (including edits at
the same position), exchange states, and converge — the RGA guarantees that
each author's run stays contiguous and nothing is lost.  This is the
character-level machinery behind the paper's collaborative-editing use case
(§6) and its future-work list CRDTs (§9).

Run:  python examples/text_editing.py
"""

from repro.crdt import TextDocument


def main() -> None:
    origin = TextDocument("origin").insert(0, "CRDTs merge concurrent edits.")
    print(f"shared:   {origin.text()!r}")

    # Fork two replicas; both edit *the same* document state concurrently.
    alice = origin.fork("alice")
    bob = origin.fork("bob")

    alice = alice.insert(0, "Fact: ")                     # prepend
    alice = alice.delete(len(alice) - 1, 1).append("!")   # change punctuation
    bob = bob.insert(len("CRDTs"), " provably")           # edit mid-sentence

    print(f"alice:    {alice.text()!r}")
    print(f"bob:      {bob.text()!r}")

    merged_ab = alice.merge(bob)
    merged_ba = bob.merge(alice)
    assert merged_ab.text() == merged_ba.text(), "merge is commutative"
    print(f"merged:   {merged_ab.text()!r}")

    # Serialization: documents travel as CRDT envelopes (e.g. through the
    # FabricCRDT counters extension, or any transport).
    restored = TextDocument.from_bytes(merged_ab.to_bytes())
    assert restored.text() == merged_ab.text()
    print("state roundtrips through canonical bytes ✔")

    # A third editor joins late, applies both histories at once, keeps typing.
    carol = restored.fork("carol").append(" Ask me how.")
    final = carol.merge(merged_ab)
    print(f"final:    {final.text()!r}")


if __name__ == "__main__":
    main()
