#!/usr/bin/env python3
"""Supply-chain cold-chain monitoring on FabricCRDT (paper §6, use case 2).

A pharma shipment is monitored by independent sensors (temperature,
humidity) on resource-constrained IoT devices.  Sensors submit readings
concurrently and must never resubmit (no-failure requirement) nor lose data
(no-update-loss requirement).  A compliance auditor then runs a CouchDB-
style rich query over the world state to find shipments that violated their
temperature range.

Run:  python examples/iot_supply_chain.py
"""

import random

from repro import Gateway
from repro.common.types import Json
from repro.contract import Context, Contract, query, transaction


class ColdChainChaincode(Contract):
    """Shipment registry + CRDT-merged sensor readings."""

    name = "coldchain"

    @transaction
    def register(self, ctx: Context, shipment_id: str, product: str,
                 max_temp: str) -> Json:
        ctx.state.put(
            f"shipment/{shipment_id}",
            {"product": product, "maxTemp": max_temp, "readings": []},
        )
        return {"registered": shipment_id}

    @transaction
    def sense(self, ctx: Context, shipment_id: str, sensor: str,
              kind: str, value: str, timestamp: str) -> Json:
        """One sensor reading.  The doc handle means concurrent sensors merge."""

        shipment = ctx.crdt.doc(f"shipment/{shipment_id}")
        current = shipment.get()  # recorded read; the CRDT path ignores versions
        if current is None:
            raise ValueError(f"unknown shipment {shipment_id}")
        shipment.merge_patch(
            {
                "product": current["product"],
                "maxTemp": current["maxTemp"],
                "readings": [
                    {"sensor": sensor, "kind": kind, "value": value, "ts": timestamp}
                ],
            }
        )
        return {"recorded": True}

    @query
    def audit(self, ctx: Context, max_temp: str) -> Json:
        """Rich query: shipments whose limit is below the given threshold."""

        rows = ctx.state.query({"maxTemp": {"$lte": max_temp}})
        return {"matches": [key for key, _ in rows]}


def main() -> None:
    # Algorithm 1 seeds each block's CRDT from committed state so readings
    # accumulate across blocks (DESIGN.md §3, decision 1).
    from repro.common.config import CRDTConfig, NetworkConfig, OrdererConfig
    from repro.core.network import crdt_network

    config = NetworkConfig(
        orderer=OrdererConfig(max_message_count=25),
        crdt=CRDTConfig(seed_from_state=True),
        crdt_enabled=True,
    )
    network = crdt_network(config)
    network.deploy(ColdChainChaincode())
    contract = Gateway.connect(network).get_contract("coldchain")

    registered = [
        contract.submit_async("register", "SHIP-7", "vaccine", "08"),
        contract.submit_async("register", "SHIP-9", "produce", "12"),
    ]
    assert all(tx.commit_status().succeeded for tx in registered)

    # Two sensors per shipment submit concurrently over three rounds; each
    # round's readings land in the same block and merge.
    rng = random.Random(42)
    total = 0
    for round_number in range(3):
        in_flight = []
        for shipment in ("SHIP-7", "SHIP-9"):
            for sensor, kind in (("t-probe", "temperature"), ("h-probe", "humidity")):
                value = str(rng.randint(2, 14))
                in_flight.append(
                    contract.submit_async(
                        "sense",
                        shipment, sensor, kind, value, f"r{round_number}.{sensor}",
                        client_index=total % 4,
                    )
                )
                total += 1
        for tx in in_flight:  # first call cuts the round's block
            tx.commit_status()

    print(f"submitted {total} sensor readings; "
          f"failures: {network.failure_count()}")

    for shipment in ("SHIP-7", "SHIP-9"):
        state = network.state_of(f"shipment/{shipment}")
        readings = state["readings"]
        temps = [r["value"] for r in readings if r["kind"] == "temperature"]
        print(f"{shipment}: {len(readings)} readings merged "
              f"(temperatures: {temps})")
        assert len(readings) == 6, "no update loss: every reading survived"

    audit = contract.evaluate("audit", "09")
    print(f"audit (maxTemp <= 09): {audit['matches']}")
    network.assert_states_converged()
    print("all peers converged ✔")


if __name__ == "__main__":
    main()
