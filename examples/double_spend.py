#!/usr/bin/env python3
"""When NOT to use FabricCRDT: the double-spend limitation (paper §6).

Asset transfers need the transactional isolation MVCC provides.  Modelling
them as CRDT writes lets an attacker transfer one asset to two buyers in the
same block — FabricCRDT merges both transfers and commits both.  This script
runs the attack against both systems and shows Fabric stopping it while
FabricCRDT (by design) does not.

Run:  python examples/double_spend.py
"""

from repro import Gateway, ValidationCode, crdt_network, fabric_config, fabriccrdt_config, vanilla_network
from repro.common.types import Json
from repro.contract import Context, Contract, transaction


class NaiveAssetChaincode(Contract):
    """An asset registry that (unwisely) allows CRDT-mode transfers."""

    name = "assets"

    @transaction
    def mint(self, ctx: Context, asset_id: str, owner: str) -> Json:
        ctx.state.put(asset_id, {"owner": owner})
        return {"minted": asset_id}

    @transaction
    def transfer(self, ctx: Context, asset_id: str, seller: str,
                 buyer: str, mode: str) -> Json:
        asset = ctx.state.get(asset_id)
        if asset is None or asset["owner"] != seller:
            raise ValueError(f"{seller} does not own {asset_id}")
        if mode == "crdt":
            ctx.crdt.doc(asset_id).merge_patch({"owner": buyer})
        else:
            ctx.state.put(asset_id, {"owner": buyer})
        return {"to": buyer}


def attack(network, mode: str) -> tuple:
    network.deploy(NaiveAssetChaincode())
    contract = Gateway.connect(network).get_contract("assets")
    contract.submit("mint", "coin-1", "mallory")
    # Both transfers endorse against the same snapshot — same block.
    to_alice = contract.submit_async("transfer", "coin-1", "mallory", "alice", mode)
    to_bob = contract.submit_async("transfer", "coin-1", "mallory", "bob", mode)
    alice_code = to_alice.commit_status().code
    bob_code = to_bob.commit_status().code
    return alice_code, bob_code, network.state_of("coin-1")


def main() -> None:
    fabric = vanilla_network(fabric_config())
    alice, bob, final = attack(fabric, mode="plain")
    print("vanilla Fabric:")
    print(f"  transfer→alice: {alice.name}")
    print(f"  transfer→bob:   {bob.name}")
    print(f"  final owner:    {final['owner']}   (double-spend PREVENTED)\n")
    assert {alice, bob} == {ValidationCode.VALID, ValidationCode.MVCC_READ_CONFLICT}

    fabriccrdt = crdt_network(fabriccrdt_config())
    alice, bob, final = attack(fabriccrdt, mode="crdt")
    print("FabricCRDT with CRDT-modelled assets (the §6 anti-pattern):")
    print(f"  transfer→alice: {alice.name}")
    print(f"  transfer→bob:   {bob.name}")
    print(f"  final owner:    {final['owner']}   (both 'succeeded' — double-spend!)")
    assert alice is ValidationCode.VALID and bob is ValidationCode.VALID
    print("\nlesson: use put_state for assets — even on FabricCRDT, plain writes")
    print("keep full MVCC protection (compatibility requirement, §4.2).")


if __name__ == "__main__":
    main()
