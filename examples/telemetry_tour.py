#!/usr/bin/env python3
"""Telemetry tour: lifecycle tracing + node metrics on both runtimes.

Telemetry is opt-in and out-of-band — a run produces byte-identical
deterministic metrics with or without it (CI enforces this against the
golden smoke fingerprint).  This tour shows what you get when it is on:

1. a discrete-event benchmark round records a span for every lifecycle
   phase of every sampled transaction — submit, endorse, order, deliver,
   validate, apply — on the *simulation* clock, and a metrics registry of
   peer/orderer/store counters and histograms;
2. the span tree of one transaction shows exactly where its latency went;
3. the per-phase breakdown aggregates the same spans across the run;
4. a multi-process cluster exposes each node's registry over the wire
   ``metrics`` request — fetched here from live peer/orderer processes
   and rendered as a Prometheus text page.

Run:  python examples/telemetry_tour.py
"""

import dataclasses
import json

from repro.common.config import TopologyConfig, fabriccrdt_config
from repro.telemetry import (
    Span,
    Telemetry,
    complete_traces,
    format_breakdown,
    format_span_tree,
    merge_snapshots,
    phase_breakdown,
)
from repro.telemetry.export import render_prometheus
from repro.workload.runner import Benchmark, Round
from repro.workload.spec import WorkloadSpec


def des_tour() -> None:
    print("--- DES round with telemetry (spans on the simulation clock) ---")
    spec = WorkloadSpec(total_transactions=40, rate_tps=150.0, seed=11)
    report = Benchmark(
        rounds=[Round(spec, fabriccrdt_config(max_message_count=10))],
        telemetry=True,
    ).run()
    entry = report.telemetry[0]
    spans = [Span.from_dict(data) for data in entry["spans"]]
    complete = complete_traces(spans)
    print(f"  {len(spans)} spans recorded, {len(complete)} transactions with "
          f"all six phases\n")

    print("--- one transaction's span tree (where did the latency go?) ---")
    print(format_span_tree(spans, sorted(complete)[0]))
    print()

    print("--- per-phase latency breakdown over the whole round ---")
    print(format_breakdown(phase_breakdown(spans)))
    print()

    print("--- a slice of the round's metrics registry, Prometheus-rendered ---")
    page = render_prometheus(entry["metrics"])
    wanted = ("repro_peer_mvcc_conflicts_total", "repro_orderer_blocks_cut_total")
    for line in page.splitlines():
        if line.startswith(wanted):
            print(f"  {line}")
    print()


def socket_tour() -> None:
    from repro.gateway import Gateway
    from repro.net import Cluster, SocketTransport
    from repro.workload.iot import encode_call, reading_payload

    print("--- multi-process cluster with telemetry_enabled ---")
    config = dataclasses.replace(
        fabriccrdt_config(max_message_count=4),
        topology=TopologyConfig(num_orgs=2, peers_per_org=1),
        telemetry_enabled=True,
    )
    client_telemetry = Telemetry()
    with Cluster.spawn(
        config, chaincodes=["repro.workload.iot:IoTChaincode"]
    ) as cluster:
        with SocketTransport.connect(
            cluster.profile, telemetry=client_telemetry
        ) as transport:
            contract = Gateway.connect(transport).get_contract("iot")
            contract.submit("populate", json.dumps({"keys": ["sensor-1"]}))
            for i in range(4):
                contract.submit(
                    "record",
                    encode_call(
                        read_keys=["sensor-1"],
                        write_keys=["sensor-1"],
                        payload=reading_payload("sensor-1", temperature=20 + i, sequence=i),
                        crdt=True,
                    ),
                )

            results = transport.cluster_metrics()
            for node in sorted(results):
                names = len(results[node]["snapshot"]["metrics"])
                print(f"  {node:<12} telemetry enabled={results[node]['enabled']}, "
                      f"{names} metric families over the wire")
            merged = merge_snapshots(r["snapshot"] for r in results.values())
            page = render_prometheus(merged)
            wanted = ("repro_net_frames_total", "repro_store_batch_writes_total")
            print("  cluster-wide merged registry (excerpt):")
            for line in page.splitlines():
                if line.startswith(wanted):
                    print(f"    {line}")


def main() -> None:
    des_tour()
    socket_tour()


if __name__ == "__main__":
    main()
