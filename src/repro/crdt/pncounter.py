"""Positive-negative counter (PN-Counter): two G-Counters, P minus N."""

from __future__ import annotations

from .base import StateCRDT
from .gcounter import GCounter


class PNCounter(StateCRDT):
    """State-based counter supporting increment and decrement."""

    type_name = "pn-counter"

    __slots__ = ("_positive", "_negative")

    def __init__(self, positive: GCounter | None = None, negative: GCounter | None = None) -> None:
        self._positive = positive if positive is not None else GCounter()
        self._negative = negative if negative is not None else GCounter()

    def increment(self, actor: str, amount: int = 1) -> "PNCounter":
        if amount < 0:
            return self.decrement(actor, -amount)
        return PNCounter(self._positive.increment(actor, amount), self._negative)

    def decrement(self, actor: str, amount: int = 1) -> "PNCounter":
        if amount < 0:
            return self.increment(actor, -amount)
        return PNCounter(self._positive, self._negative.increment(actor, amount))

    def merge(self, other: "PNCounter") -> "PNCounter":
        self._require_same_type(other)
        return PNCounter(
            self._positive.merge(other._positive),
            self._negative.merge(other._negative),
        )

    def value(self) -> int:
        return self._positive.value() - self._negative.value()

    def to_dict(self) -> dict:
        return {"p": self._positive.to_dict(), "n": self._negative.to_dict()}

    @classmethod
    def from_dict(cls, payload: dict) -> "PNCounter":
        return cls(
            GCounter.from_dict(payload["p"]),
            GCounter.from_dict(payload["n"]),
        )
