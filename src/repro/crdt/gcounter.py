"""Grow-only counter (G-Counter).

The paper's §2.2 walk-through example: one entry per actor, increments only;
merge takes the per-actor maximum; the value is the sum.
"""

from __future__ import annotations

from .base import StateCRDT


class GCounter(StateCRDT):
    """State-based grow-only counter."""

    type_name = "g-counter"

    __slots__ = ("_entries",)

    def __init__(self, entries: dict[str, int] | None = None) -> None:
        self._entries: dict[str, int] = {}
        for actor, count in (entries or {}).items():
            if count < 0:
                raise ValueError(f"negative count for {actor!r}: {count}")
            if count:
                self._entries[actor] = int(count)

    def increment(self, actor: str, amount: int = 1) -> "GCounter":
        """Return a new counter with ``actor`` incremented by ``amount``."""

        if amount < 0:
            raise ValueError("G-Counter cannot decrement; use PNCounter")
        entries = dict(self._entries)
        entries[actor] = entries.get(actor, 0) + amount
        return GCounter(entries)

    def actor_count(self, actor: str) -> int:
        return self._entries.get(actor, 0)

    def merge(self, other: "GCounter") -> "GCounter":
        self._require_same_type(other)
        merged = dict(self._entries)
        for actor, count in other._entries.items():
            merged[actor] = max(merged.get(actor, 0), count)
        return GCounter(merged)

    def value(self) -> int:
        return sum(self._entries.values())

    def to_dict(self) -> dict:
        return {"entries": dict(sorted(self._entries.items()))}

    @classmethod
    def from_dict(cls, payload: dict) -> "GCounter":
        return cls(dict(payload["entries"]))
