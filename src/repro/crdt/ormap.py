"""Observed-remove map (OR-Map), the Riak-DT-style composable dictionary.

Values are themselves state-based CRDTs; updating a key merges into the
nested CRDT, removing a key tombstones the *observed* causal context so that
a concurrent update resurrects the entry (observed-remove semantics).  This
is the "map CRDT" the paper lists as future work (§9).
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..common.errors import MergeTypeError
from .base import StateCRDT
from .registry import crdt_from_dict_envelope, crdt_to_dict_envelope


class ORMap(StateCRDT):
    """State-based map from string keys to nested CRDT values.

    Per-key add-tags mirror the OR-Set construction: each ``put`` under a
    fresh tag, ``remove`` tombstones observed tags.  A key is visible while
    it has at least one live tag; its value is the merge of all live tags'
    values (plus surviving nested state).
    """

    type_name = "or-map"

    __slots__ = ("_entries", "_tombstones")

    def __init__(
        self,
        entries: dict[str, dict[str, StateCRDT]] | None = None,
        tombstones: dict[str, set[str]] | None = None,
    ) -> None:
        self._entries: dict[str, dict[str, StateCRDT]] = {
            key: dict(tagged) for key, tagged in (entries or {}).items()
        }
        self._tombstones: dict[str, set[str]] = {
            key: set(tags) for key, tags in (tombstones or {}).items()
        }

    # -- mutation (functional) ---------------------------------------------------

    def put(self, key: str, value: StateCRDT, tag: str) -> "ORMap":
        """Bind ``key`` to ``value`` under unique ``tag``."""

        if not tag:
            raise ValueError("tag must be non-empty")
        new = ORMap(self._entries, self._tombstones)
        new._entries.setdefault(key, {})[tag] = value
        return new

    def update(self, key: str, value: StateCRDT, tag: str) -> "ORMap":
        """Merge ``value`` into the key's current value under a fresh tag."""

        current = self.get(key)
        if current is not None:
            value = current.merge(value)  # type: ignore[arg-type]
        return self.put(key, value, tag)

    def remove(self, key: str) -> "ORMap":
        new = ORMap(self._entries, self._tombstones)
        observed = set(new._entries.get(key, {}))
        if observed:
            new._tombstones.setdefault(key, set()).update(observed)
        return new

    # -- queries ---------------------------------------------------------------

    def _live_tags(self, key: str) -> dict[str, StateCRDT]:
        dead = self._tombstones.get(key, set())
        return {
            tag: value
            for tag, value in self._entries.get(key, {}).items()
            if tag not in dead
        }

    def get(self, key: str) -> Optional[StateCRDT]:
        live = self._live_tags(key)
        if not live:
            return None
        result: Optional[StateCRDT] = None
        for _, value in sorted(live.items()):
            result = value if result is None else result.merge(value)
        return result

    def __contains__(self, key: str) -> bool:
        return bool(self._live_tags(key))

    def keys(self) -> list[str]:
        return [key for key in sorted(self._entries) if key in self]

    def __iter__(self) -> Iterator[str]:
        return iter(self.keys())

    def __len__(self) -> int:
        return len(self.keys())

    # -- lattice -------------------------------------------------------------------

    def merge(self, other: "ORMap") -> "ORMap":
        self._require_same_type(other)
        entries: dict[str, dict[str, StateCRDT]] = {}
        for source in (self._entries, other._entries):
            for key, tagged in source.items():
                bucket = entries.setdefault(key, {})
                for tag, value in tagged.items():
                    if tag in bucket:
                        if type(bucket[tag]) is not type(value):
                            raise MergeTypeError(
                                f"tag {tag!r} bound to different CRDT types"
                            )
                        bucket[tag] = bucket[tag].merge(value)
                    else:
                        bucket[tag] = value
        tombstones: dict[str, set[str]] = {}
        for source in (self._tombstones, other._tombstones):
            for key, tags in source.items():
                tombstones.setdefault(key, set()).update(tags)
        return ORMap(entries, tombstones)

    def value(self) -> dict:
        return {key: value.value() for key in self.keys() if (value := self.get(key))}

    # -- serialization ----------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "entries": {
                key: {tag: crdt_to_dict_envelope(value) for tag, value in sorted(tagged.items())}
                for key, tagged in sorted(self._entries.items())
            },
            "tombstones": {
                key: sorted(tags) for key, tags in sorted(self._tombstones.items()) if tags
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ORMap":
        entries = {
            key: {tag: crdt_from_dict_envelope(raw) for tag, raw in tagged.items()}
            for key, tagged in payload["entries"].items()
        }
        tombstones = {key: set(tags) for key, tags in payload["tombstones"].items()}
        return cls(entries, tombstones)
