"""Two-phase set (2P-Set): a G-Set of additions and a G-Set of tombstones.

An element can be added and removed, but never re-added — the tombstone wins
forever.  Included because it is the simplest set with removal and a good
teaching counterpoint to :class:`~repro.crdt.orset.ORSet` in the examples.
"""

from __future__ import annotations

from typing import Any, Iterator

from ..common.serialization import canonical_json
from .base import StateCRDT
from .gset import GSet


class TwoPhaseSet(StateCRDT):
    """State-based add/remove set with permanent tombstones."""

    type_name = "2p-set"

    __slots__ = ("_added", "_removed")

    def __init__(self, added: GSet | None = None, removed: GSet | None = None) -> None:
        self._added = added if added is not None else GSet()
        self._removed = removed if removed is not None else GSet()

    def add(self, element: Any) -> "TwoPhaseSet":
        return TwoPhaseSet(self._added.add(element), self._removed)

    def remove(self, element: Any) -> "TwoPhaseSet":
        """Tombstone ``element``.  Removing a never-added element is legal
        (it just pre-blocks any future add), matching the classic semantics."""

        return TwoPhaseSet(self._added, self._removed.add(element))

    def __contains__(self, element: Any) -> bool:
        return element in self._added and element not in self._removed

    def __iter__(self) -> Iterator[Any]:
        removed_keys = {canonical_json(e) for e in self._removed}
        for element in self._added:
            if canonical_json(element) not in removed_keys:
                yield element

    def __len__(self) -> int:
        return sum(1 for _ in self)

    def merge(self, other: "TwoPhaseSet") -> "TwoPhaseSet":
        self._require_same_type(other)
        return TwoPhaseSet(
            self._added.merge(other._added),
            self._removed.merge(other._removed),
        )

    def value(self) -> list:
        return sorted(self, key=canonical_json)

    def to_dict(self) -> dict:
        return {"added": self._added.to_dict(), "removed": self._removed.to_dict()}

    @classmethod
    def from_dict(cls, payload: dict) -> "TwoPhaseSet":
        return cls(GSet.from_dict(payload["added"]), GSet.from_dict(payload["removed"]))
