"""Registry mapping CRDT type tags to classes, plus envelope (de)serialization.

The world state stores CRDT values as canonical-JSON envelopes
``{"$fabriccrdt": 1, "crdt": <type_name>, "state": <payload>}``.  The
``$fabriccrdt`` key is an explicit marker: committers and shims recognise an
envelope by its presence (plus validation) instead of sniffing the exact
key set, so ordinary user JSON that happens to carry ``crdt``/``state`` keys
is never mistaken for CRDT machinery.  Envelopes written before the marker
existed (exactly ``{"crdt": ..., "state": ...}``) are still read, provided
the type name is actually registered.

The registry restores the right class from an envelope without callers
having to know the type up front — which is exactly what FabricCRDT's commit
path needs when it meets a flagged CRDT key-value of unknown type
(Algorithm 1, line 9).
"""

from __future__ import annotations

from typing import Callable

from ..common.errors import MergeTypeError
from ..common.serialization import from_bytes, to_bytes
from .base import ENVELOPE_MARKER, ENVELOPE_VERSION, StateCRDT

_REGISTRY: dict[str, type[StateCRDT]] = {}


def register_crdt(cls: type[StateCRDT]) -> type[StateCRDT]:
    """Register a CRDT class under its ``type_name`` (idempotent).

    Usable as a decorator on new user-defined CRDT types.
    """

    existing = _REGISTRY.get(cls.type_name)
    if existing is not None and existing is not cls:
        raise MergeTypeError(
            f"type name {cls.type_name!r} already registered to {existing.__name__}"
        )
    _REGISTRY[cls.type_name] = cls
    return cls


def registered_types() -> dict[str, type[StateCRDT]]:
    """Snapshot of the registry (type tag -> class)."""

    _ensure_builtins()
    return dict(_REGISTRY)


def is_dict_envelope(value: object) -> bool:
    """True if ``value`` is a serialized state-CRDT envelope.

    New-format envelopes are recognised by the explicit ``$fabriccrdt``
    marker; legacy envelopes (written before the marker existed) by the
    exact ``{"crdt", "state"}`` key set *and* a registered type name, so
    arbitrary user JSON shaped like an envelope is treated as plain data.
    """

    if not isinstance(value, dict):
        return False
    if ENVELOPE_MARKER in value:
        return "crdt" in value and "state" in value
    # Legacy (pre-marker) envelopes: strict shape + a known type tag.
    if set(value.keys()) != {"crdt", "state"}:
        return False
    type_name = value["crdt"]
    if not isinstance(type_name, str):
        return False
    _ensure_builtins()
    return type_name in _REGISTRY


def crdt_to_dict_envelope(value: StateCRDT) -> dict:
    return {ENVELOPE_MARKER: ENVELOPE_VERSION, "crdt": value.type_name, "state": value.to_dict()}


def crdt_from_dict_envelope(envelope: dict) -> StateCRDT:
    _ensure_builtins()
    if not isinstance(envelope, dict) or "crdt" not in envelope:
        raise MergeTypeError(f"not a CRDT envelope: {envelope!r:.120}")
    marker = envelope.get(ENVELOPE_MARKER)
    if marker is not None and marker != ENVELOPE_VERSION:
        raise MergeTypeError(f"unsupported envelope version: {marker!r}")
    if "state" not in envelope:
        raise MergeTypeError(f"envelope missing state payload: {envelope!r:.120}")
    type_name = envelope["crdt"]
    cls = _REGISTRY.get(type_name)
    if cls is None:
        raise MergeTypeError(f"unknown CRDT type: {type_name!r}")
    return cls.from_dict(envelope["state"])


def crdt_to_bytes(value: StateCRDT) -> bytes:
    return to_bytes(crdt_to_dict_envelope(value))


def crdt_from_bytes(data: bytes) -> StateCRDT:
    return crdt_from_dict_envelope(from_bytes(data))


def _ensure_builtins() -> None:
    """Populate the registry with the built-in types, lazily to avoid cycles."""

    if "g-counter" in _REGISTRY:
        return
    from .gcounter import GCounter
    from .gset import GSet
    from .lwwregister import LWWRegister
    from .mvregister import MVRegister
    from .orset import ORSet
    from .pncounter import PNCounter
    from .rga import RGA
    from .twophase import TwoPhaseSet

    for cls in (GCounter, PNCounter, GSet, TwoPhaseSet, ORSet, LWWRegister, MVRegister, RGA):
        register_crdt(cls)
    # ORMap and TextDocument import this module; register them late.
    from .ormap import ORMap
    from .text import TextDocument

    register_crdt(ORMap)
    register_crdt(TextDocument)


MergeFunction = Callable[[StateCRDT, StateCRDT], StateCRDT]


def merge_envelopes(left: bytes, right: bytes) -> bytes:
    """Merge two serialized CRDT envelopes of the same type.

    Convenience for storage layers that only hold bytes.
    """

    a = crdt_from_bytes(left)
    b = crdt_from_bytes(right)
    if type(a) is not type(b):
        raise MergeTypeError(
            f"cannot merge envelopes of {a.type_name!r} and {b.type_name!r}"
        )
    return crdt_to_bytes(a.merge(b))
