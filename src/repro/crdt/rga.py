"""Replicated growable array (RGA) — a list CRDT.

Elements are identified by unique Lamport timestamps.  Insertion is
*insert-after*: a new element names its left neighbour's ID; concurrent
inserts after the same neighbour are ordered by descending element ID, the
classic RGA rule, so all replicas converge to the same sequence.  Deletion
tombstones the element.

This is the machinery behind the JSON CRDT's list nodes; it is exposed as a
standalone type because the paper's future work (§9) calls for list CRDTs
and the collaborative-editing example uses it directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Optional

from ..common.clock import LamportTimestamp
from .base import StateCRDT

#: Sentinel ID for the virtual head element.
HEAD = LamportTimestamp(0, "")


@dataclass(frozen=True)
class RGAEntry:
    """One element cell: identity, payload, left-neighbour and liveness."""

    element_id: LamportTimestamp
    value: Any
    after: LamportTimestamp
    deleted: bool = False


class RGA(StateCRDT):
    """State-based formulation of RGA: the state is the set of all cells.

    Merging unions the cells (by element ID) and ORs the tombstones; the
    linear order is recomputed deterministically from the cell graph, so
    merge remains commutative/associative/idempotent.
    """

    type_name = "rga"

    __slots__ = ("_cells",)

    def __init__(self, cells: dict[LamportTimestamp, RGAEntry] | None = None) -> None:
        self._cells: dict[LamportTimestamp, RGAEntry] = dict(cells or {})

    # -- mutation (functional) -------------------------------------------------

    def insert_after(
        self,
        after: LamportTimestamp,
        element_id: LamportTimestamp,
        value: Any,
    ) -> "RGA":
        """Insert ``value`` with identity ``element_id`` after ``after``.

        ``after`` is :data:`HEAD` for a front insertion.  Inserting an ID that
        already exists is idempotent if the payload matches and an error
        otherwise (IDs must be globally unique).
        """

        existing = self._cells.get(element_id)
        if existing is not None:
            if existing.after == after and existing.value == value:
                return RGA(self._cells)
            raise ValueError(f"element id reused with different content: {element_id}")
        if after != HEAD and after not in self._cells:
            raise ValueError(f"unknown anchor element: {after}")
        cells = dict(self._cells)
        cells[element_id] = RGAEntry(element_id, value, after)
        return RGA(cells)

    def append(self, element_id: LamportTimestamp, value: Any) -> "RGA":
        """Insert at the end of the current visible sequence."""

        last = HEAD
        for entry in self._ordered_entries():
            last = entry.element_id
        return self.insert_after(last, element_id, value)

    def delete(self, element_id: LamportTimestamp) -> "RGA":
        entry = self._cells.get(element_id)
        if entry is None:
            raise ValueError(f"cannot delete unknown element: {element_id}")
        if entry.deleted:
            return RGA(self._cells)
        cells = dict(self._cells)
        cells[element_id] = RGAEntry(entry.element_id, entry.value, entry.after, True)
        return RGA(cells)

    # -- order ------------------------------------------------------------------

    def _ordered_entries(self) -> Iterator[RGAEntry]:
        """All cells (including tombstones) in converged document order."""

        children: dict[LamportTimestamp, list[RGAEntry]] = {}
        for entry in self._cells.values():
            children.setdefault(entry.after, []).append(entry)
        for siblings in children.values():
            # Concurrent inserts after the same anchor: newest ID first.
            siblings.sort(key=lambda e: e.element_id, reverse=True)

        # Depth-first emission: an element is followed by everything anchored
        # to it, which realises the RGA order.  Iterative to avoid recursion
        # limits on long documents.
        ordering: list[RGAEntry] = []
        stack: list[RGAEntry] = list(reversed(children.get(HEAD, [])))
        while stack:
            entry = stack.pop()
            ordering.append(entry)
            for child in reversed(children.get(entry.element_id, [])):
                stack.append(child)
        return iter(ordering)

    def __iter__(self) -> Iterator[Any]:
        for entry in self._ordered_entries():
            if not entry.deleted:
                yield entry.value

    def __len__(self) -> int:
        return sum(1 for _ in self)

    def element_ids(self, include_deleted: bool = False) -> list[LamportTimestamp]:
        return [
            entry.element_id
            for entry in self._ordered_entries()
            if include_deleted or not entry.deleted
        ]

    def last_visible_id(self) -> Optional[LamportTimestamp]:
        last = None
        for entry in self._ordered_entries():
            if not entry.deleted:
                last = entry.element_id
        return last

    # -- lattice ------------------------------------------------------------------

    def merge(self, other: "RGA") -> "RGA":
        self._require_same_type(other)
        from ..common.errors import MergeTypeError

        cells = dict(self._cells)
        for element_id, entry in other._cells.items():
            mine = cells.get(element_id)
            if mine is None:
                cells[element_id] = entry
                continue
            if mine.value != entry.value or mine.after != entry.after:
                # Element IDs are globally unique by contract; two different
                # cells under one ID is a protocol violation, not a conflict
                # to resolve silently.
                raise MergeTypeError(f"element ID reused with different content: {element_id}")
            if entry.deleted and not mine.deleted:
                cells[element_id] = RGAEntry(mine.element_id, mine.value, mine.after, True)
        return RGA(cells)

    def value(self) -> list:
        return list(self)

    # -- serialization ---------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "cells": [
                {
                    "id": str(entry.element_id),
                    "value": entry.value,
                    "after": str(entry.after),
                    "deleted": entry.deleted,
                }
                for entry in sorted(self._cells.values(), key=lambda e: e.element_id)
            ]
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RGA":
        cells = {}
        for raw in payload["cells"]:
            element_id = LamportTimestamp.parse(raw["id"])
            cells[element_id] = RGAEntry(
                element_id,
                raw["value"],
                LamportTimestamp.parse(raw["after"]),
                bool(raw["deleted"]),
            )
        return cls(cells)
