"""Multi-value register: keeps *all* concurrent writes, like Dynamo siblings.

A write supersedes every value it has observed; merge keeps the union of
non-superseded writes.  Concurrency is tracked with version vectors.
"""

from __future__ import annotations

from typing import Any, Iterable

from .base import StateCRDT

VersionVector = dict[str, int]


def _dominates(a: VersionVector, b: VersionVector) -> bool:
    """True if vector ``a`` is causally >= ``b`` (componentwise)."""

    return all(a.get(actor, 0) >= count for actor, count in b.items())


class MVRegister(StateCRDT):
    """State-based multi-value register over JSON values."""

    type_name = "mv-register"

    __slots__ = ("_entries",)

    def __init__(self, entries: Iterable[tuple[Any, VersionVector]] = ()) -> None:
        self._entries: list[tuple[Any, VersionVector]] = [
            (value, dict(vv)) for value, vv in entries
        ]

    def assign(self, value: Any, actor: str) -> "MVRegister":
        """Write ``value``, superseding all currently visible entries."""

        merged_vv: VersionVector = {}
        for _, vv in self._entries:
            for a, count in vv.items():
                merged_vv[a] = max(merged_vv.get(a, 0), count)
        merged_vv[actor] = merged_vv.get(actor, 0) + 1
        return MVRegister([(value, merged_vv)])

    def merge(self, other: "MVRegister") -> "MVRegister":
        self._require_same_type(other)
        candidates = self._entries + other._entries
        kept: list[tuple[Any, VersionVector]] = []
        seen: set = set()
        for i, (value, vv) in enumerate(candidates):
            superseded = False
            for j, (other_value, other_vv) in enumerate(candidates):
                if i == j:
                    continue
                if _dominates(other_vv, vv) and other_vv != vv:
                    superseded = True
                    break
            if superseded:
                continue
            # Drop exact structural duplicates only; two *different* values
            # under equal vectors stay as siblings (keeps merge commutative
            # even for states violating actor-uniqueness).
            from ..common.serialization import canonical_json

            fingerprint = canonical_json({"v": value, "vv": dict(sorted(vv.items()))})
            if fingerprint in seen:
                continue
            seen.add(fingerprint)
            kept.append((value, dict(vv)))
        return MVRegister(kept)

    def value(self) -> list:
        """All concurrent values, deterministically ordered."""

        from ..common.serialization import canonical_json

        return sorted((v for v, _ in self._entries), key=canonical_json)

    def to_dict(self) -> dict:
        from ..common.serialization import canonical_json

        entries = sorted(
            ({"value": v, "vv": dict(sorted(vv.items()))} for v, vv in self._entries),
            key=canonical_json,
        )
        return {"entries": entries}

    @classmethod
    def from_dict(cls, payload: dict) -> "MVRegister":
        return cls((e["value"], e["vv"]) for e in payload["entries"])
