"""CRDT interfaces and merge laws.

Two families, as in the paper's background section (§2.2):

* **State-based** (:class:`StateCRDT`): replicas exchange full states and
  ``merge`` them; merge must be commutative, associative, and idempotent —
  i.e. a join-semilattice.  The property-based tests in
  ``tests/crdt/test_merge_laws.py`` check these laws for every concrete type.
* **Operation-based** (:class:`OpCRDT`): replicas exchange operations;
  applying the same causally-ordered set of operations in any
  causality-respecting order converges.  The JSON CRDT
  (:mod:`repro.crdt.json`) is operation-based.

Every CRDT serializes to/from canonical JSON so values can live in the
Fabric world state as bytes.
"""

from __future__ import annotations

from typing import Any, TypeVar

from ..common.errors import MergeTypeError
from ..common.serialization import from_bytes, to_bytes

S = TypeVar("S", bound="StateCRDT")

#: Explicit envelope marker key: its presence (not the exact key set)
#: identifies a serialized state-CRDT envelope in the world state.
ENVELOPE_MARKER = "$fabriccrdt"
#: Envelope format version written by this codebase.
ENVELOPE_VERSION = 1


class StateCRDT:
    """Abstract state-based CRDT."""

    #: Short type tag written into the serialization envelope.
    type_name: str = "state-crdt"

    def merge(self: S, other: S) -> S:
        """Return the least upper bound of ``self`` and ``other``.

        Must not mutate either operand.
        """

        raise NotImplementedError

    def value(self) -> Any:
        """The user-facing value (e.g. an ``int`` for counters)."""

        raise NotImplementedError

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-compatible state payload (without the envelope)."""

        raise NotImplementedError

    @classmethod
    def from_dict(cls: type[S], payload: dict) -> S:
        raise NotImplementedError

    def to_bytes(self) -> bytes:
        """Canonical envelope bytes (marker + type tag + state payload)."""

        return to_bytes(
            {ENVELOPE_MARKER: ENVELOPE_VERSION, "crdt": self.type_name, "state": self.to_dict()}
        )

    @classmethod
    def from_bytes(cls: type[S], data: bytes) -> S:
        envelope = from_bytes(data)
        if not isinstance(envelope, dict) or envelope.get("crdt") != cls.type_name:
            raise MergeTypeError(
                f"expected a {cls.type_name} envelope, got {envelope!r:.120}"
            )
        return cls.from_dict(envelope["state"])

    # -- helpers -------------------------------------------------------------

    def _require_same_type(self, other: "StateCRDT") -> None:
        if type(other) is not type(self):
            raise MergeTypeError(
                f"cannot merge {type(self).__name__} with {type(other).__name__}"
            )

    def __eq__(self, other: object) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return self.to_dict() == other.to_dict()  # type: ignore[attr-defined]

    def __hash__(self) -> int:  # frozen-by-convention; states compare by content
        return hash(to_bytes(self.to_dict()))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.value()!r})"


class OpCRDT:
    """Abstract operation-based CRDT.

    Implementations expose ``apply(operation)`` with at-most-once,
    causal-order delivery assumed (our Fabric substrate provides exactly-once
    total order per block, which is strictly stronger).
    """

    type_name: str = "op-crdt"

    def apply(self, operation: Any) -> None:
        raise NotImplementedError

    def value(self) -> Any:
        raise NotImplementedError
