"""Observed-remove set (OR-Set) with add-wins semantics.

Each ``add`` creates a unique tag; ``remove`` tombstones exactly the tags it
has *observed*.  A concurrent add therefore survives a concurrent remove
(add-wins), which is the behaviour Riak's sets and the paper's JSON-CRDT list
semantics build on.
"""

from __future__ import annotations

from typing import Any, Iterator

from ..common.serialization import canonical_json
from .base import StateCRDT


class ORSet(StateCRDT):
    """State-based observed-remove set of JSON values."""

    type_name = "or-set"

    __slots__ = ("_adds", "_tombstones")

    def __init__(
        self,
        adds: dict[str, dict[str, Any]] | None = None,
        tombstones: dict[str, set[str]] | None = None,
    ) -> None:
        # element-key -> {tag: element}; tombstones: element-key -> {tag,...}
        self._adds: dict[str, dict[str, Any]] = {
            key: dict(tags) for key, tags in (adds or {}).items()
        }
        self._tombstones: dict[str, set[str]] = {
            key: set(tags) for key, tags in (tombstones or {}).items()
        }

    # -- mutation (functional) ------------------------------------------------

    def add(self, element: Any, tag: str) -> "ORSet":
        """Add ``element`` under a globally unique ``tag``.

        Callers supply the tag (e.g. a Lamport timestamp string) so that the
        type itself stays deterministic and easy to test.
        """

        if not tag:
            raise ValueError("tag must be non-empty")
        key = canonical_json(element)
        new = ORSet(self._adds, self._tombstones)
        new._adds.setdefault(key, {})[tag] = element
        return new

    def remove(self, element: Any) -> "ORSet":
        """Remove every currently-observed tag of ``element``."""

        key = canonical_json(element)
        new = ORSet(self._adds, self._tombstones)
        observed = set(new._adds.get(key, {}))
        if observed:
            new._tombstones.setdefault(key, set()).update(observed)
        return new

    # -- queries -------------------------------------------------------------

    def _live_tags(self, key: str) -> dict[str, Any]:
        dead = self._tombstones.get(key, set())
        return {tag: el for tag, el in self._adds.get(key, {}).items() if tag not in dead}

    def __contains__(self, element: Any) -> bool:
        return bool(self._live_tags(canonical_json(element)))

    def __iter__(self) -> Iterator[Any]:
        for key in sorted(self._adds):
            live = self._live_tags(key)
            if live:
                # All tags map to structurally identical elements.
                yield next(iter(live.values()))

    def __len__(self) -> int:
        return sum(1 for _ in self)

    # -- lattice -------------------------------------------------------------

    def merge(self, other: "ORSet") -> "ORSet":
        self._require_same_type(other)
        merged_adds: dict[str, dict[str, Any]] = {}
        for source in (self._adds, other._adds):
            for key, tags in source.items():
                merged_adds.setdefault(key, {}).update(tags)
        merged_tombs: dict[str, set[str]] = {}
        for source in (self._tombstones, other._tombstones):
            for key, tags in source.items():
                merged_tombs.setdefault(key, set()).update(tags)
        return ORSet(merged_adds, merged_tombs)

    def value(self) -> list:
        return list(self)

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "adds": {
                key: {tag: el for tag, el in sorted(tags.items())}
                for key, tags in sorted(self._adds.items())
            },
            "tombstones": {
                key: sorted(tags) for key, tags in sorted(self._tombstones.items()) if tags
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ORSet":
        return cls(
            {k: dict(v) for k, v in payload["adds"].items()},
            {k: set(v) for k, v in payload["tombstones"].items()},
        )
