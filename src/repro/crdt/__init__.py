"""CRDT library: state-based types, an op-based JSON CRDT, and a registry."""

from .base import OpCRDT, StateCRDT
from .gcounter import GCounter
from .gset import GSet
from .lwwregister import LWWRegister
from .mvregister import MVRegister
from .ormap import ORMap
from .orset import ORSet
from .pncounter import PNCounter
from .registry import (
    crdt_from_bytes,
    crdt_from_dict_envelope,
    crdt_to_bytes,
    crdt_to_dict_envelope,
    merge_envelopes,
    register_crdt,
    registered_types,
)
from .rga import HEAD, RGA, RGAEntry
from .text import TextDocument
from .twophase import TwoPhaseSet

__all__ = [
    "StateCRDT",
    "OpCRDT",
    "GCounter",
    "PNCounter",
    "GSet",
    "TwoPhaseSet",
    "ORSet",
    "LWWRegister",
    "MVRegister",
    "RGA",
    "RGAEntry",
    "HEAD",
    "TextDocument",
    "ORMap",
    "register_crdt",
    "registered_types",
    "crdt_to_bytes",
    "crdt_from_bytes",
    "crdt_to_dict_envelope",
    "crdt_from_dict_envelope",
    "merge_envelopes",
]
