"""Operation identifiers for the JSON CRDT.

Two ID schemes coexist (see DESIGN.md §3, decision 2):

* **Clock IDs** — ``(counter, actor)`` Lamport timestamps ticked from the
  document's clock, exactly as the paper describes (§5.2: "we ensure that the
  operation identifiers are globally unique by using an instance of a Lamport
  clock for each JSON CRDT instantiation").
* **Content IDs** — for list-item inserts in dedup mode: the actor part is a
  hash of (path, canonical content, occurrence index), so the *same* item
  submitted by two concurrent read-modify-write transactions produces the
  *same* operation ID, and the second application is a no-op.  This is what
  makes the paper's Listing 1 → Listing 2 merge hold without duplicating
  items that both transactions carried over from their common read snapshot.
"""

from __future__ import annotations

from typing import Any

from ...common.clock import LamportTimestamp
from ...common.hashing import sha256_hex
from ...common.serialization import canonical_json

#: Operation identifier: reuse Lamport timestamps, ordered by (counter, actor).
OpId = LamportTimestamp

#: Counter value used by all content-addressed IDs.  Using a constant keeps
#: content IDs mutually ordered by their hash only (deterministic, arbitrary),
#: while clock IDs from live editing always dominate or interleave by counter.
CONTENT_COUNTER = 1


def content_id(path_repr: str, content: Any, occurrence: int) -> OpId:
    """Deterministic, content-addressed operation ID for a list item.

    ``path_repr``   textual form of the cursor path to the containing list;
    ``content``     the JSON value of the item;
    ``occurrence``  0-based index among *identical* items within one incoming
                    value, so ``["a", "a"]`` yields two distinct IDs.
    """

    if occurrence < 0:
        raise ValueError("occurrence must be non-negative")
    material = f"{path_repr}\x00{canonical_json(content)}\x00{occurrence}"
    return OpId(CONTENT_COUNTER, "h:" + sha256_hex(material.encode("utf-8"))[:24])


def is_content_id(op_id: OpId) -> bool:
    """True if this ID came from :func:`content_id`."""

    return op_id.actor.startswith("h:")
