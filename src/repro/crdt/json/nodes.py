"""Document tree nodes: maps, lists, slots, and their metadata.

Structure follows Kleppmann & Beresford:

* A **map node** binds string keys to *slots*.
* A **list node** is an RGA sequence of *cells*; each cell owns a slot.
* A **slot** is where values live.  It can simultaneously hold a multi-value
  register of leaf strings, a child map, and a child list (concurrent
  operations may have written different types); conversion resolves the
  winning branch deterministically.  The slot's *presence set* records the
  IDs of all operations that asserted its existence — a slot (or cell) is
  visible while its presence set is non-empty, which gives observed-remove /
  add-wins deletion semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from .ids import OpId


@dataclass
class DocumentStats:
    """Work counters used by the benchmark cost model.

    * ``ops_applied`` — operations executed against the document.
    * ``ops_buffered`` — operations that had to wait for dependencies.
    * ``nodes_created`` — slots/cells materialized.
    * ``list_scan_steps`` — list cells traversed while resolving anchors and
      orders; this is the term that grows with document size and makes
      per-block merge cost superlinear (the effect behind Figure 3).
    """

    ops_applied: int = 0
    ops_buffered: int = 0
    nodes_created: int = 0
    list_scan_steps: int = 0

    def snapshot(self) -> dict:
        return {
            "ops_applied": self.ops_applied,
            "ops_buffered": self.ops_buffered,
            "nodes_created": self.nodes_created,
            "list_scan_steps": self.list_scan_steps,
        }


@dataclass
class Slot:
    """A value container: MVR leaf values + optional child map / child list."""

    presence: set[OpId] = field(default_factory=set)
    leaf_values: dict[OpId, str] = field(default_factory=dict)
    map_child: Optional["MapNode"] = None
    list_child: Optional["ListNode"] = None
    #: Highest op ID that wrote each branch — used to pick the winning branch
    #: at conversion time when concurrent ops assigned different types.
    branch_ops: dict[str, OpId] = field(default_factory=dict)

    @property
    def visible(self) -> bool:
        return bool(self.presence)

    def touch(self, op_id: OpId) -> None:
        """Record that ``op_id`` asserted this slot on its cursor path."""

        self.presence.add(op_id)

    def note_branch(self, branch: str, op_id: OpId) -> None:
        current = self.branch_ops.get(branch)
        if current is None or op_id > current:
            self.branch_ops[branch] = op_id

    def winning_branch(self) -> Optional[str]:
        """The branch written by the highest op ID, or ``None`` if empty."""

        candidates = {
            branch: op_id
            for branch, op_id in self.branch_ops.items()
            if (branch == "leaf" and self.leaf_values)
            or (branch == "map" and self.map_child is not None)
            or (branch == "list" and self.list_child is not None)
        }
        if not candidates:
            return None
        return max(candidates.items(), key=lambda item: item[1])[0]

    def winning_leaf(self) -> Optional[str]:
        """Deterministic resolution of the multi-value register: highest ID."""

        if not self.leaf_values:
            return None
        winner = max(self.leaf_values)
        return self.leaf_values[winner]


@dataclass
class MapNode:
    """An unordered mapping of string keys to slots."""

    slots: dict[str, Slot] = field(default_factory=dict)

    def slot(self, key: str) -> Optional[Slot]:
        return self.slots.get(key)

    def ensure_slot(self, key: str, stats: DocumentStats) -> Slot:
        slot = self.slots.get(key)
        if slot is None:
            slot = Slot()
            self.slots[key] = slot
            stats.nodes_created += 1
        return slot

    def visible_keys(self) -> list[str]:
        return sorted(key for key, slot in self.slots.items() if slot.visible)


@dataclass
class Cell:
    """One RGA list element: identity, left anchor, and a slot of content."""

    element_id: OpId
    anchor: Optional[OpId]  # None anchors at the virtual head
    slot: Slot = field(default_factory=Slot)

    @property
    def visible(self) -> bool:
        return self.slot.visible


class ListNode:
    """An RGA-ordered sequence of cells.

    The converged order is: depth-first over the "inserted-after" forest,
    with concurrent siblings ordered by descending element ID — the classic
    RGA rule.  The order is cached and invalidated on insert, since blocks
    repeatedly convert documents after merging many values.
    """

    __slots__ = ("cells", "_order_cache")

    def __init__(self) -> None:
        self.cells: dict[OpId, Cell] = {}
        self._order_cache: Optional[list[OpId]] = None

    def __contains__(self, element_id: OpId) -> bool:
        return element_id in self.cells

    def get(self, element_id: OpId) -> Optional[Cell]:
        return self.cells.get(element_id)

    def insert(self, cell: Cell, stats: DocumentStats) -> None:
        """Insert a new cell.  Re-inserting the same ID is the caller's
        idempotence responsibility (checked in the document layer)."""

        if cell.element_id in self.cells:
            raise ValueError(f"duplicate list element ID: {cell.element_id}")
        if cell.anchor is not None and cell.anchor not in self.cells:
            raise ValueError(f"unknown anchor: {cell.anchor}")
        self.cells[cell.element_id] = cell
        self._order_cache = None
        stats.nodes_created += 1

    def ordered_ids(self, stats: Optional[DocumentStats] = None) -> list[OpId]:
        """All element IDs (visible or not) in converged order."""

        if self._order_cache is None:
            children: dict[Optional[OpId], list[OpId]] = {}
            for cell in self.cells.values():
                children.setdefault(cell.anchor, []).append(cell.element_id)
            for siblings in children.values():
                siblings.sort(reverse=True)
            order: list[OpId] = []
            stack: list[OpId] = list(reversed(children.get(None, [])))
            while stack:
                element_id = stack.pop()
                order.append(element_id)
                for child in reversed(children.get(element_id, [])):
                    stack.append(child)
            self._order_cache = order
            if stats is not None:
                stats.list_scan_steps += len(order)
        return self._order_cache

    def visible_cells(self, stats: Optional[DocumentStats] = None) -> Iterator[Cell]:
        for element_id in self.ordered_ids(stats):
            cell = self.cells[element_id]
            if cell.visible:
                yield cell

    def last_visible_id(self, stats: Optional[DocumentStats] = None) -> Optional[OpId]:
        """Element ID of the last visible cell (the append anchor).

        Scanning to the end is what real RGA appends pay; the scan length is
        charged to ``stats.list_scan_steps`` and drives the superlinear
        per-block merge cost (Figure 3's mechanism).
        """

        last: Optional[OpId] = None
        steps = 0
        for element_id in self.ordered_ids(stats):
            steps += 1
            if self.cells[element_id].visible:
                last = element_id
        if stats is not None:
            stats.list_scan_steps += steps
        return last

    def __len__(self) -> int:
        return sum(1 for _ in self.visible_cells())
