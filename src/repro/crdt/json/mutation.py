"""Mutations: the modification an operation applies at its cursor target.

The supported JSON subset follows the paper (§5.2): map values are strings,
maps, or lists; list items are strings, maps, or lists.  Numbers/booleans
must be stringified by callers (the merge layer can do this automatically —
see ``CRDTConfig.stringify_scalars``).

Deletions carry the set of presence IDs they *observed* at generation time,
which makes application commutative with concurrent inserts/assigns
(add-wins, observed-remove — the standard Kleppmann semantics).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Union

from .ids import OpId


class PayloadKind(enum.Enum):
    """What a newly written slot contains."""

    LEAF = "leaf"          # a string value
    EMPTY_MAP = "map"      # a fresh empty map node (children added by later ops)
    EMPTY_LIST = "list"    # a fresh empty list node


@dataclass(frozen=True)
class Payload:
    """The content carried by an assign/insert mutation."""

    kind: PayloadKind
    leaf: str = ""

    def __post_init__(self) -> None:
        if self.kind is not PayloadKind.LEAF and self.leaf:
            raise ValueError("only LEAF payloads carry a value")

    @classmethod
    def string(cls, value: str) -> "Payload":
        if not isinstance(value, str):
            raise TypeError(f"leaf payloads must be strings, got {type(value).__name__}")
        return cls(PayloadKind.LEAF, value)

    @classmethod
    def empty_map(cls) -> "Payload":
        return cls(PayloadKind.EMPTY_MAP)

    @classmethod
    def empty_list(cls) -> "Payload":
        return cls(PayloadKind.EMPTY_LIST)


@dataclass(frozen=True)
class AssignKey:
    """Assign ``payload`` to ``key`` of the map node at the cursor.

    ``overwrites`` lists the value-op IDs this assign supersedes (its causal
    past); concurrent assigns survive side by side in the multi-value
    register and are resolved at conversion time.
    """

    key: str
    payload: Payload
    overwrites: frozenset[OpId] = field(default_factory=frozenset)


@dataclass(frozen=True)
class InsertAfter:
    """Insert a new element into the list node at the cursor.

    ``anchor`` is the element ID of the left neighbour (or ``None`` for a
    front insertion).  The new element's ID is the operation's own ID.
    """

    anchor: Union[OpId, None]
    payload: Payload


@dataclass(frozen=True)
class DeleteKey:
    """Delete ``key`` from the map node at the cursor (observed-remove)."""

    key: str
    observed: frozenset[OpId]


@dataclass(frozen=True)
class DeleteElem:
    """Delete the list element at the cursor's final list step."""

    element_id: OpId
    observed: frozenset[OpId]


Mutation = Union[AssignKey, InsertAfter, DeleteKey, DeleteElem]
