"""Operations: uniquely identified, causally ordered document mutations.

An operation is the unit of replication (the JSON CRDT is operation-based):
``id`` is globally unique, ``deps`` are the IDs that must be applied first
(the paper's "dependency list"), ``cursor`` locates the target node, and
``mutation`` says what to do there.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .cursor import Cursor
from .ids import OpId
from .mutation import Mutation


@dataclass(frozen=True)
class Operation:
    """One uniquely identified mutation of a JSON document."""

    id: OpId
    deps: frozenset[OpId] = field(default_factory=frozenset)
    cursor: Cursor = field(default_factory=Cursor)
    mutation: Mutation = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.mutation is None:
            raise ValueError("operation requires a mutation")
        if self.id in self.deps:
            raise ValueError("operation cannot depend on itself")

    def __str__(self) -> str:
        kind = type(self.mutation).__name__
        return f"op {self.id} {kind}@{self.cursor}"
