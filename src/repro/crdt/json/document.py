"""The JSON CRDT document: operation application, buffering, local edits.

:class:`JsonDocument` is an operation-based CRDT.  ``apply()`` is:

* **idempotent** — re-applying an operation ID is a no-op;
* **causal** — operations whose dependencies are missing are buffered and
  drained once the dependencies arrive (the paper: "we queue the operation
  until all dependencies are applied");
* **commutative for concurrent operations** — deletions carry their observed
  presence IDs, assignments carry the value IDs they overwrite, so arrival
  order of concurrent operations does not affect the converged state.

Local editing (``assign`` / ``insert_at`` / ``delete_at`` / ...) generates
operations against the current state and applies them immediately; callers
replicate the returned operations to other documents.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from ...common.clock import LamportClock
from ...common.errors import CausalityError, CursorError
from .cursor import Cursor, ListStep, MapStep, Step
from .ids import OpId
from .mutation import (
    AssignKey,
    DeleteElem,
    DeleteKey,
    InsertAfter,
    Mutation,
    Payload,
    PayloadKind,
)
from .nodes import Cell, DocumentStats, ListNode, MapNode, Slot
from .operation import Operation


class JsonDocument:
    """A replicated JSON document (op-based CRDT)."""

    def __init__(self, actor: str = "doc") -> None:
        self.root = MapNode()
        self.clock = LamportClock(actor)
        self.stats = DocumentStats()
        self._applied: set[OpId] = set()
        #: op buffered -> missing dependencies
        self._buffer: dict[OpId, Operation] = {}
        self._op_log: list[Operation] = []

    # -- introspection -------------------------------------------------------

    @property
    def applied_ids(self) -> frozenset[OpId]:
        return frozenset(self._applied)

    @property
    def pending_count(self) -> int:
        return len(self._buffer)

    @property
    def op_log(self) -> tuple[Operation, ...]:
        """All operations applied, in application order."""

        return tuple(self._op_log)

    def has_applied(self, op_id: OpId) -> bool:
        return op_id in self._applied

    # -- replication: applying remote operations ---------------------------------

    def apply(self, operation: Operation) -> bool:
        """Apply (or buffer) one operation.

        Returns ``True`` if the operation executed now, ``False`` if it was a
        duplicate or went to the causal buffer.
        """

        if operation.id in self._applied:
            return False  # idempotence: exactly-once effect
        if not operation.deps <= self._applied:
            self._buffer[operation.id] = operation
            self.stats.ops_buffered += 1
            return False
        self._execute(operation)
        self._drain_buffer()
        return True

    def apply_all(self, operations: Iterable[Operation]) -> int:
        """Apply many operations; returns how many executed (now or drained)."""

        before = len(self._applied)
        for operation in operations:
            self.apply(operation)
        return len(self._applied) - before

    def require_quiescent(self) -> None:
        """Raise :class:`CausalityError` if buffered operations remain."""

        if self._buffer:
            missing = {
                str(op.id): sorted(str(d) for d in op.deps - self._applied)
                for op in self._buffer.values()
            }
            raise CausalityError(f"operations stuck on missing deps: {missing}")

    def _drain_buffer(self) -> None:
        progressed = True
        while progressed and self._buffer:
            progressed = False
            for op_id in list(self._buffer):
                operation = self._buffer[op_id]
                if operation.deps <= self._applied:
                    del self._buffer[op_id]
                    self._execute(operation)
                    progressed = True

    # -- execution ------------------------------------------------------------

    def _execute(self, operation: Operation) -> None:
        mutation = operation.mutation
        container = self._resolve_container(operation.cursor, mutation, operation.id)
        if isinstance(mutation, AssignKey):
            self._do_assign(container, mutation, operation.id)
        elif isinstance(mutation, InsertAfter):
            self._do_insert(container, mutation, operation.id)
        elif isinstance(mutation, DeleteKey):
            self._do_delete_key(container, mutation)
        elif isinstance(mutation, DeleteElem):
            self._do_delete_elem(container, mutation)
        else:  # pragma: no cover - exhaustive over Mutation union
            raise TypeError(f"unknown mutation: {mutation!r}")
        self._applied.add(operation.id)
        self._op_log.append(operation)
        self.clock.merge(operation.id)
        self.stats.ops_applied += 1

    def _resolve_container(self, cursor: Cursor, mutation: Mutation, op_id: OpId):
        """Walk the cursor from the root, creating missing nodes.

        Per the paper: "for every node in the cursor, if the node already
        exists, we add the identifier of the current operation to the node;
        if the node ... is missing, we add the node."
        """

        node: Any = self.root
        steps = cursor.steps
        for index, step in enumerate(steps):
            next_branch = self._branch_after(steps, index, mutation)
            if isinstance(step, MapStep):
                if not isinstance(node, MapNode):
                    raise CursorError(f"{cursor}: step {step} expects a map")
                slot = node.ensure_slot(step.key, self.stats)
                slot.touch(op_id)
                node = self._descend_slot(slot, next_branch, op_id)
            else:  # ListStep
                if not isinstance(node, ListNode):
                    raise CursorError(f"{cursor}: step {step} expects a list")
                cell = node.get(step.element_id)
                if cell is None:
                    raise CursorError(f"{cursor}: unknown list element {step.element_id}")
                cell.slot.touch(op_id)
                node = self._descend_slot(cell.slot, next_branch, op_id)
        expected = MapNode if isinstance(mutation, (AssignKey, DeleteKey)) else ListNode
        if not isinstance(node, expected):
            raise CursorError(
                f"{cursor}: mutation {type(mutation).__name__} targets a "
                f"{expected.__name__}, found {type(node).__name__}"
            )
        return node

    @staticmethod
    def _branch_after(steps: tuple[Step, ...], index: int, mutation: Mutation) -> str:
        """Which branch (map/list) to descend into after ``steps[index]``."""

        if index + 1 < len(steps):
            return "map" if isinstance(steps[index + 1], MapStep) else "list"
        return "map" if isinstance(mutation, (AssignKey, DeleteKey)) else "list"

    def _descend_slot(self, slot: Slot, branch: str, op_id: OpId):
        if branch == "map":
            if slot.map_child is None:
                slot.map_child = MapNode()
                self.stats.nodes_created += 1
            slot.note_branch("map", op_id)
            return slot.map_child
        if slot.list_child is None:
            slot.list_child = ListNode()
            self.stats.nodes_created += 1
        slot.note_branch("list", op_id)
        return slot.list_child

    # -- mutation handlers ---------------------------------------------------------

    def _do_assign(self, node: MapNode, mutation: AssignKey, op_id: OpId) -> None:
        slot = node.ensure_slot(mutation.key, self.stats)
        slot.touch(op_id)
        for overwritten in mutation.overwrites:
            slot.leaf_values.pop(overwritten, None)
        self._write_payload(slot, mutation.payload, op_id)

    def _do_insert(self, node: ListNode, mutation: InsertAfter, op_id: OpId) -> None:
        if op_id in node.cells:
            return  # content-addressed duplicate: idempotent by construction
        if mutation.anchor is not None and mutation.anchor not in node.cells:
            raise CursorError(f"insert anchor {mutation.anchor} missing")
        cell = Cell(element_id=op_id, anchor=mutation.anchor)
        cell.slot.touch(op_id)
        self._write_payload(cell.slot, mutation.payload, op_id)
        node.insert(cell, self.stats)

    def _write_payload(self, slot: Slot, payload: Payload, op_id: OpId) -> None:
        if payload.kind is PayloadKind.LEAF:
            slot.leaf_values[op_id] = payload.leaf
            slot.note_branch("leaf", op_id)
        elif payload.kind is PayloadKind.EMPTY_MAP:
            if slot.map_child is None:
                slot.map_child = MapNode()
                self.stats.nodes_created += 1
            slot.note_branch("map", op_id)
        else:
            if slot.list_child is None:
                slot.list_child = ListNode()
                self.stats.nodes_created += 1
            slot.note_branch("list", op_id)

    def _do_delete_key(self, node: MapNode, mutation: DeleteKey) -> None:
        slot = node.slot(mutation.key)
        if slot is None:
            return  # deleting a never-seen key is a no-op
        slot.presence -= mutation.observed
        for observed in mutation.observed:
            slot.leaf_values.pop(observed, None)

    def _do_delete_elem(self, node: ListNode, mutation: DeleteElem) -> None:
        cell = node.get(mutation.element_id)
        if cell is None:
            return
        cell.slot.presence -= mutation.observed
        for observed in mutation.observed:
            cell.slot.leaf_values.pop(observed, None)

    # -- local editing API ------------------------------------------------------------

    def assign(
        self, cursor: Cursor, key: str, value: str,
        deps: Optional[frozenset[OpId]] = None,
    ) -> Operation:
        """Assign string ``value`` at ``key`` of the map at ``cursor``."""

        node = self._peek_container(cursor, expect=MapNode)
        slot = node.slot(key) if node is not None else None
        overwrites = frozenset(slot.leaf_values) if slot is not None else frozenset()
        return self._emit(
            cursor,
            AssignKey(key, Payload.string(value), overwrites),
            deps=deps,
        )

    def assign_container(
        self, cursor: Cursor, key: str, kind: str,
        deps: Optional[frozenset[OpId]] = None,
    ) -> Operation:
        """Create an empty map (``kind='map'``) or list (``'list'``) at key."""

        payload = Payload.empty_map() if kind == "map" else Payload.empty_list()
        return self._emit(cursor, AssignKey(key, payload), deps=deps)

    def insert_after(
        self, cursor: Cursor, anchor: Optional[OpId], payload: Payload,
        op_id: Optional[OpId] = None,
        deps: Optional[frozenset[OpId]] = None,
    ) -> Operation:
        """Insert into the list at ``cursor`` after ``anchor`` (None = head).

        ``op_id`` overrides the clock-generated ID (used by content-addressed
        merging); the clock is still ticked so later IDs dominate.
        """

        return self._emit(cursor, InsertAfter(anchor, payload), op_id=op_id, deps=deps)

    def append(
        self, cursor: Cursor, payload: Payload,
        op_id: Optional[OpId] = None,
        deps: Optional[frozenset[OpId]] = None,
    ) -> Operation:
        """Insert at the end of the visible list at ``cursor``."""

        node = self._peek_container(cursor, expect=ListNode)
        anchor = node.last_visible_id(self.stats) if node is not None else None
        return self.insert_after(cursor, anchor, payload, op_id=op_id, deps=deps)

    def delete_key(
        self, cursor: Cursor, key: str, deps: Optional[frozenset[OpId]] = None,
    ) -> Operation:
        node = self._peek_container(cursor, expect=MapNode)
        slot = node.slot(key) if node is not None else None
        observed = frozenset(slot.presence) if slot is not None else frozenset()
        return self._emit(cursor, DeleteKey(key, observed), deps=deps)

    def delete_elem(
        self, cursor: Cursor, element_id: OpId, deps: Optional[frozenset[OpId]] = None,
    ) -> Operation:
        node = self._peek_container(cursor, expect=ListNode)
        cell = node.get(element_id) if node is not None else None
        observed = frozenset(cell.slot.presence) if cell is not None else frozenset()
        return self._emit(cursor, DeleteElem(element_id, observed), deps=deps)

    @staticmethod
    def _referenced_ids(cursor: Cursor, mutation: Mutation) -> set[OpId]:
        """Every operation ID this op structurally depends on.

        An operation cannot execute before the cells its cursor traverses
        exist, before its insert anchor exists, or before the values it
        overwrites / the presence IDs it observed were written.  Declaring
        these as dependencies makes out-of-order delivery safe.
        """

        referenced: set[OpId] = {
            step.element_id for step in cursor.steps if isinstance(step, ListStep)
        }
        if isinstance(mutation, InsertAfter):
            if mutation.anchor is not None:
                referenced.add(mutation.anchor)
        elif isinstance(mutation, AssignKey):
            referenced.update(mutation.overwrites)
        elif isinstance(mutation, DeleteKey):
            referenced.update(mutation.observed)
        elif isinstance(mutation, DeleteElem):
            referenced.add(mutation.element_id)
            referenced.update(mutation.observed)
        return referenced

    def _emit(
        self,
        cursor: Cursor,
        mutation: Mutation,
        op_id: Optional[OpId] = None,
        deps: Optional[frozenset[OpId]] = None,
    ) -> Operation:
        new_id = op_id if op_id is not None else self.clock.tick()
        if op_id is not None:
            self.clock.tick()  # keep clock ahead even for externally named ops
        full_deps = self._referenced_ids(cursor, mutation)
        if deps:
            full_deps |= deps
        full_deps.discard(new_id)
        operation = Operation(
            id=new_id,
            deps=frozenset(full_deps),
            cursor=cursor,
            mutation=mutation,
        )
        if operation.id in self._applied:
            return operation  # already present (content-addressed duplicate)
        self._execute(operation)
        self._drain_buffer()
        return operation

    def _peek_container(self, cursor: Cursor, expect: type):
        """Resolve a cursor read-only; ``None`` if the path does not exist."""

        node: Any = self.root
        steps = cursor.steps
        for index, step in enumerate(steps):
            if isinstance(step, MapStep):
                if not isinstance(node, MapNode):
                    return None
                slot = node.slot(step.key)
                if slot is None:
                    return None
                branch = self._peek_branch(steps, index, expect)
                node = slot.map_child if branch == "map" else slot.list_child
            else:
                if not isinstance(node, ListNode):
                    return None
                cell = node.get(step.element_id)
                if cell is None:
                    return None
                branch = self._peek_branch(steps, index, expect)
                node = cell.slot.map_child if branch == "map" else cell.slot.list_child
            if node is None:
                return None
        return node if isinstance(node, expect) else None

    @staticmethod
    def _peek_branch(steps: tuple[Step, ...], index: int, expect: type) -> str:
        if index + 1 < len(steps):
            return "map" if isinstance(steps[index + 1], MapStep) else "list"
        return "map" if expect is MapNode else "list"

    # -- reading ------------------------------------------------------------------

    def to_plain(self) -> dict:
        """Convert to a plain JSON object, all CRDT metadata stripped.

        This is the paper's ``ConvertCRDTToDataType`` (Algorithm 1, line 20);
        the full conversion rules live in :mod:`repro.crdt.json.convert`.
        """

        from .convert import document_to_plain

        return document_to_plain(self)

    def __repr__(self) -> str:
        return (
            f"JsonDocument(actor={self.clock.actor!r}, "
            f"ops={len(self._applied)}, pending={len(self._buffer)})"
        )


def replicate(source: JsonDocument, actor: str) -> JsonDocument:
    """A new document with the source's op log applied (a fresh replica)."""

    replica = JsonDocument(actor)
    replica.apply_all(source.op_log)
    replica.require_quiescent()
    return replica
