"""Conversion of a JSON CRDT document to plain JSON.

This is the paper's ``ConvertCRDTToDataType`` step (Algorithm 1, line 20):
"a representation of the datatype with all the CRDT-related metadata cleaned
up and removed".  Conversion must be deterministic — every peer converts the
same merged document and must commit byte-identical values — so the two
places where the CRDT holds more than JSON can express are resolved by fixed
rules:

* a multi-value register (concurrent assigns to one key) resolves to the
  value written by the **highest operation ID**;
* a slot holding branches of different types (concurrent assign of a string
  vs. a map, say) resolves to the branch last written by the **highest
  operation ID**.

Both rules only depend on the converged CRDT state, never on arrival order.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from .nodes import DocumentStats, ListNode, MapNode, Slot

if TYPE_CHECKING:  # pragma: no cover
    from .document import JsonDocument

#: Returned by slot conversion when a slot has no renderable content.
_EMPTY = object()


def document_to_plain(document: "JsonDocument") -> dict:
    """Plain JSON object for the whole document."""

    return map_to_plain(document.root, document.stats)


def map_to_plain(node: MapNode, stats: Optional[DocumentStats] = None) -> dict:
    result: dict[str, Any] = {}
    for key in node.visible_keys():
        rendered = slot_to_plain(node.slots[key], stats)
        if rendered is not _EMPTY:
            result[key] = rendered
    return result


def list_to_plain(node: ListNode, stats: Optional[DocumentStats] = None) -> list:
    result: list[Any] = []
    for cell in node.visible_cells(stats):
        rendered = slot_to_plain(cell.slot, stats)
        if rendered is not _EMPTY:
            result.append(rendered)
    return result


def slot_to_plain(slot: Slot, stats: Optional[DocumentStats] = None) -> Any:
    branch = slot.winning_branch()
    if branch is None:
        return _EMPTY
    if branch == "leaf":
        return slot.winning_leaf()
    if branch == "map":
        assert slot.map_child is not None
        return map_to_plain(slot.map_child, stats)
    assert slot.list_child is not None
    return list_to_plain(slot.list_child, stats)
