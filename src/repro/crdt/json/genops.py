"""Merging a plain JSON object into a document — the paper's Algorithm 2.

``merge_json(document, value)`` walks the incoming JSON object exactly as
Algorithm 2 does: for each key, extend the cursor; strings become assign
operations, lists and maps recurse.  Every generated operation chains its
dependency list to the previous one (the algorithm's ``dependencies.Add``
after each operation), is applied immediately, and is also returned so tests
can replicate the op stream to other documents.

Two behaviours are configurable (DESIGN.md §3):

* ``dedup_identical`` — list-item operation IDs are content-addressed, so an
  item that is byte-identical *at the same path with the same occurrence
  index* merges idempotently.  This reproduces Listing 1 → Listing 2 and
  prevents duplicate amplification when concurrent read-modify-write
  transactions both carry items from a common read snapshot.
* ``stringify_scalars`` — numbers/booleans/None in the incoming JSON are
  converted to canonical strings (the paper: "when users require to use
  other datatypes, such as numbers or Boolean, they should convert the
  desired datatype to strings"); with the option off we raise
  :class:`UnsupportedValueError` instead, enforcing the paper's restriction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional, Sequence

from ...common.errors import UnsupportedValueError
from ...common.serialization import canonical_json
from .cursor import Cursor, ListStep, MapStep
from .document import JsonDocument
from .ids import OpId, content_id
from .mutation import Payload
from .operation import Operation


@dataclass(frozen=True)
class MergeOptions:
    """Tunable semantics for JSON merging (see module docstring)."""

    dedup_identical: bool = True
    stringify_scalars: bool = True


def merge_json(
    document: JsonDocument,
    value: Mapping[str, Any],
    options: MergeOptions = MergeOptions(),
) -> list[Operation]:
    """Merge a JSON object into ``document``; returns the operations applied.

    The paper's ``MergeCRDT(JsonCRDT, Json)``.  The top-level value must be a
    JSON object, as in Fabric chaincode values stored through CouchDB.
    """

    if not isinstance(value, Mapping):
        raise UnsupportedValueError(
            f"top-level CRDT values must be JSON objects, got {type(value).__name__}"
        )
    ops: list[Operation] = []
    _merge_map(document, Cursor(), value, ops, options)
    return ops


def _chain_deps(ops: list[Operation]) -> frozenset[OpId]:
    """Dependency set for the next operation: the previously emitted op."""

    return frozenset({ops[-1].id}) if ops else frozenset()


def _coerce_leaf(value: Any, options: MergeOptions) -> str:
    if isinstance(value, str):
        return value
    if value is None or isinstance(value, (bool, int, float)):
        if options.stringify_scalars:
            return canonical_json(value)
        raise UnsupportedValueError(
            f"non-string scalar {value!r} (enable stringify_scalars or pre-convert)"
        )
    raise UnsupportedValueError(f"unsupported JSON leaf: {type(value).__name__}")


def _merge_map(
    document: JsonDocument,
    cursor: Cursor,
    mapping: Mapping[str, Any],
    ops: list[Operation],
    options: MergeOptions,
) -> None:
    for key, value in mapping.items():
        if not isinstance(key, str):
            raise UnsupportedValueError(f"map keys must be strings, got {key!r}")
        if isinstance(value, Mapping):
            ops.append(
                document.assign_container(cursor, key, "map", deps=_chain_deps(ops))
            )
            _merge_map(document, cursor.extended(MapStep(key)), value, ops, options)
        elif isinstance(value, Sequence) and not isinstance(value, (str, bytes)):
            ops.append(
                document.assign_container(cursor, key, "list", deps=_chain_deps(ops))
            )
            _merge_list(document, cursor.extended(MapStep(key)), value, ops, options)
        else:
            leaf = _coerce_leaf(value, options)
            ops.append(document.assign(cursor, key, leaf, deps=_chain_deps(ops)))


def _merge_list(
    document: JsonDocument,
    cursor: Cursor,
    items: Sequence[Any],
    ops: list[Operation],
    options: MergeOptions,
) -> None:
    occurrences: dict[str, int] = {}
    for item in items:
        if isinstance(item, Mapping):
            payload = Payload.empty_map()
            normalized: Any = item
        elif isinstance(item, Sequence) and not isinstance(item, (str, bytes)):
            payload = Payload.empty_list()
            normalized = item
        else:
            normalized = _coerce_leaf(item, options)
            payload = Payload.string(normalized)

        content_key = canonical_json(normalized)
        occurrence = occurrences.get(content_key, 0)
        occurrences[content_key] = occurrence + 1

        elem_id: Optional[OpId] = None
        if options.dedup_identical:
            elem_id = content_id(cursor.path_repr(), normalized, occurrence)
            if document.has_applied(elem_id):
                # Identical item already merged at this path: idempotent skip,
                # including its entire subtree (identical by construction).
                continue

        operation = document.append(cursor, payload, op_id=elem_id, deps=_chain_deps(ops))
        ops.append(operation)
        item_cursor = cursor.extended(ListStep(operation.id))
        if isinstance(item, Mapping):
            _merge_map(document, item_cursor, item, ops, options)
        elif isinstance(item, Sequence) and not isinstance(item, (str, bytes)):
            _merge_list(document, item_cursor, item, ops, options)
