"""Cursors: paths from the document head to a mutation target.

A cursor is a tuple of steps.  :class:`MapStep` descends through a map key,
:class:`ListStep` through a list element (named by its element ID).  The
paper's Algorithm 2 builds cursors incrementally with
``AddCursorElement`` / ``RemoveCursorElement``; :class:`CursorBuilder`
reproduces that API for a literal transcription of the algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from .ids import OpId


@dataclass(frozen=True)
class MapStep:
    """Descend into the value bound to ``key`` of a map node."""

    key: str

    def __str__(self) -> str:
        return f".{self.key}"


@dataclass(frozen=True)
class ListStep:
    """Descend into the list element identified by ``element_id``."""

    element_id: OpId

    def __str__(self) -> str:
        return f"[{self.element_id}]"


Step = Union[MapStep, ListStep]


@dataclass(frozen=True)
class Cursor:
    """An immutable path of steps from the document root."""

    steps: tuple[Step, ...] = ()

    def extended(self, step: Step) -> "Cursor":
        return Cursor(self.steps + (step,))

    def parent(self) -> "Cursor":
        if not self.steps:
            raise ValueError("root cursor has no parent")
        return Cursor(self.steps[:-1])

    def __len__(self) -> int:
        return len(self.steps)

    def __str__(self) -> str:
        return "$" + "".join(str(step) for step in self.steps)

    def path_repr(self) -> str:
        """Stable textual form used for content-addressed IDs."""

        return str(self)


class CursorBuilder:
    """Mutable cursor used while walking a JSON value (Algorithm 2 style).

    Mirrors the paper's ``AddCursorElement`` / ``RemoveCursorElement`` calls:
    elements are pushed entering a container and popped when leaving it.
    """

    def __init__(self) -> None:
        self._steps: list[Step] = []

    def add_key(self, key: str) -> None:
        self._steps.append(MapStep(key))

    def add_element(self, element_id: OpId) -> None:
        self._steps.append(ListStep(element_id))

    def remove_last(self) -> None:
        if not self._steps:
            raise ValueError("cursor is already empty")
        self._steps.pop()

    def snapshot(self) -> Cursor:
        return Cursor(tuple(self._steps))

    def __len__(self) -> int:
        return len(self._steps)
