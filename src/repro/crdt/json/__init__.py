"""JSON CRDT (Kleppmann & Beresford, TPDS'17) — the paper's merge engine."""

from .convert import document_to_plain, list_to_plain, map_to_plain, slot_to_plain
from .cursor import Cursor, CursorBuilder, ListStep, MapStep, Step
from .document import JsonDocument, replicate
from .genops import MergeOptions, merge_json
from .ids import CONTENT_COUNTER, OpId, content_id, is_content_id
from .mutation import (
    AssignKey,
    DeleteElem,
    DeleteKey,
    InsertAfter,
    Mutation,
    Payload,
    PayloadKind,
)
from .nodes import Cell, DocumentStats, ListNode, MapNode, Slot
from .operation import Operation
from .serde import (
    operation_from_dict,
    operation_to_dict,
    operations_from_bytes,
    operations_to_bytes,
)

__all__ = [
    "JsonDocument",
    "replicate",
    "merge_json",
    "MergeOptions",
    "Operation",
    "OpId",
    "content_id",
    "is_content_id",
    "CONTENT_COUNTER",
    "Cursor",
    "CursorBuilder",
    "MapStep",
    "ListStep",
    "Step",
    "AssignKey",
    "InsertAfter",
    "DeleteKey",
    "DeleteElem",
    "Mutation",
    "Payload",
    "PayloadKind",
    "MapNode",
    "ListNode",
    "Slot",
    "Cell",
    "DocumentStats",
    "document_to_plain",
    "map_to_plain",
    "list_to_plain",
    "slot_to_plain",
    "operation_to_dict",
    "operation_from_dict",
    "operations_to_bytes",
    "operations_from_bytes",
]
