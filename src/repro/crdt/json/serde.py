"""Wire serialization for JSON-CRDT operations.

Operation-based CRDTs replicate by shipping operations; this module gives
:class:`~repro.crdt.json.operation.Operation` (with its cursor and mutation)
a canonical JSON form, so op logs can be persisted, exchanged between
processes, or embedded in transactions.  Round-tripping is exact:
``operation_from_dict(operation_to_dict(op)) == op``.
"""

from __future__ import annotations

from typing import Any

from ...common.clock import LamportTimestamp
from ...common.errors import SerializationError
from ...common.serialization import from_bytes, to_bytes
from .cursor import Cursor, ListStep, MapStep, Step
from .mutation import (
    AssignKey,
    DeleteElem,
    DeleteKey,
    InsertAfter,
    Mutation,
    Payload,
    PayloadKind,
)
from .operation import Operation


def _step_to_dict(step: Step) -> dict:
    if isinstance(step, MapStep):
        return {"map": step.key}
    return {"list": str(step.element_id)}


def _step_from_dict(raw: dict) -> Step:
    if "map" in raw:
        return MapStep(raw["map"])
    if "list" in raw:
        return ListStep(LamportTimestamp.parse(raw["list"]))
    raise SerializationError(f"unknown cursor step: {raw!r}")


def cursor_to_dict(cursor: Cursor) -> list:
    return [_step_to_dict(step) for step in cursor.steps]


def cursor_from_dict(raw: list) -> Cursor:
    return Cursor(tuple(_step_from_dict(step) for step in raw))


def _payload_to_dict(payload: Payload) -> dict:
    result: dict[str, Any] = {"kind": payload.kind.value}
    if payload.kind is PayloadKind.LEAF:
        result["leaf"] = payload.leaf
    return result


def _payload_from_dict(raw: dict) -> Payload:
    kind = PayloadKind(raw["kind"])
    if kind is PayloadKind.LEAF:
        return Payload.string(raw["leaf"])
    return Payload(kind)


def mutation_to_dict(mutation: Mutation) -> dict:
    if isinstance(mutation, AssignKey):
        return {
            "type": "assign",
            "key": mutation.key,
            "payload": _payload_to_dict(mutation.payload),
            "overwrites": sorted(str(op_id) for op_id in mutation.overwrites),
        }
    if isinstance(mutation, InsertAfter):
        return {
            "type": "insert",
            "anchor": str(mutation.anchor) if mutation.anchor is not None else None,
            "payload": _payload_to_dict(mutation.payload),
        }
    if isinstance(mutation, DeleteKey):
        return {
            "type": "delete-key",
            "key": mutation.key,
            "observed": sorted(str(op_id) for op_id in mutation.observed),
        }
    if isinstance(mutation, DeleteElem):
        return {
            "type": "delete-elem",
            "element": str(mutation.element_id),
            "observed": sorted(str(op_id) for op_id in mutation.observed),
        }
    raise SerializationError(f"unknown mutation type: {type(mutation).__name__}")


def mutation_from_dict(raw: dict) -> Mutation:
    mutation_type = raw.get("type")
    if mutation_type == "assign":
        return AssignKey(
            key=raw["key"],
            payload=_payload_from_dict(raw["payload"]),
            overwrites=frozenset(
                LamportTimestamp.parse(text) for text in raw["overwrites"]
            ),
        )
    if mutation_type == "insert":
        anchor = raw.get("anchor")
        return InsertAfter(
            anchor=LamportTimestamp.parse(anchor) if anchor is not None else None,
            payload=_payload_from_dict(raw["payload"]),
        )
    if mutation_type == "delete-key":
        return DeleteKey(
            key=raw["key"],
            observed=frozenset(LamportTimestamp.parse(t) for t in raw["observed"]),
        )
    if mutation_type == "delete-elem":
        return DeleteElem(
            element_id=LamportTimestamp.parse(raw["element"]),
            observed=frozenset(LamportTimestamp.parse(t) for t in raw["observed"]),
        )
    raise SerializationError(f"unknown mutation type: {mutation_type!r}")


def operation_to_dict(operation: Operation) -> dict:
    """Canonical JSON form of one operation."""

    return {
        "id": str(operation.id),
        "deps": sorted(str(dep) for dep in operation.deps),
        "cursor": cursor_to_dict(operation.cursor),
        "mutation": mutation_to_dict(operation.mutation),
    }


def operation_from_dict(raw: dict) -> Operation:
    try:
        return Operation(
            id=LamportTimestamp.parse(raw["id"]),
            deps=frozenset(LamportTimestamp.parse(dep) for dep in raw["deps"]),
            cursor=cursor_from_dict(raw["cursor"]),
            mutation=mutation_from_dict(raw["mutation"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed operation: {exc}") from exc


def operations_to_bytes(operations: list[Operation]) -> bytes:
    """Serialize an op log to canonical bytes."""

    return to_bytes([operation_to_dict(op) for op in operations])


def operations_from_bytes(data: bytes) -> list[Operation]:
    raw = from_bytes(data)
    if not isinstance(raw, list):
        raise SerializationError("op log bytes must decode to a list")
    return [operation_from_dict(entry) for entry in raw]
