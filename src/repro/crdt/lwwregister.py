"""Last-writer-wins register, with (timestamp, actor) tie-breaking."""

from __future__ import annotations

from typing import Any, Optional

from ..common.clock import LamportTimestamp
from .base import StateCRDT


class LWWRegister(StateCRDT):
    """State-based register where the highest Lamport timestamp wins.

    Ties on the counter are broken by actor ID, so merge stays deterministic
    and commutative even for genuinely concurrent writes.
    """

    type_name = "lww-register"

    __slots__ = ("_value", "_stamp")

    def __init__(self, value: Any = None, stamp: Optional[LamportTimestamp] = None) -> None:
        self._value = value
        self._stamp = stamp

    def assign(self, value: Any, stamp: LamportTimestamp) -> "LWWRegister":
        """Write ``value`` at ``stamp``.  Stale stamps are kept but will lose
        every merge, mirroring how a late replica's write is absorbed."""

        return LWWRegister(value, stamp)

    @property
    def stamp(self) -> Optional[LamportTimestamp]:
        return self._stamp

    def merge(self, other: "LWWRegister") -> "LWWRegister":
        self._require_same_type(other)
        if other._stamp is None:
            return LWWRegister(self._value, self._stamp)
        if self._stamp is None or other._stamp > self._stamp:
            return LWWRegister(other._value, other._stamp)
        if other._stamp == self._stamp and other._value != self._value:
            # Equal stamps should not happen under actor-unique clocks, but
            # merge must stay commutative even then: highest canonical value.
            from ..common.serialization import canonical_json

            if canonical_json(other._value) > canonical_json(self._value):
                return LWWRegister(other._value, other._stamp)
        return LWWRegister(self._value, self._stamp)

    def value(self) -> Any:
        return self._value

    def to_dict(self) -> dict:
        return {
            "value": self._value,
            "stamp": str(self._stamp) if self._stamp is not None else None,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "LWWRegister":
        stamp = payload.get("stamp")
        return cls(
            payload.get("value"),
            LamportTimestamp.parse(stamp) if stamp is not None else None,
        )
