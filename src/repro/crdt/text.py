"""A collaborative plain-text CRDT on top of RGA.

Ref [23] (Kleppmann & Beresford) discusses representing text documents with
the JSON CRDT's list type; this module provides the direct form: a character
sequence as an RGA, with index-based ``insert``/``delete`` editing and
state-based ``merge``.  It backs the collaborative-editing story the paper
motivates (§6) and exercises the RGA under realistic editing patterns.

Concurrent insertions at the same spot resolve by the RGA sibling rule
(higher ID first), so runs typed concurrently by two authors never
interleave character-by-character: each author's run stays contiguous
because every character anchors on its predecessor.
"""

from __future__ import annotations

from typing import Optional

from ..common.clock import LamportClock
from .base import StateCRDT
from .rga import HEAD, RGA


class TextDocument(StateCRDT):
    """A replicated editable string."""

    type_name = "text-document"

    __slots__ = ("_rga", "_clock")

    def __init__(self, actor: str = "editor", rga: Optional[RGA] = None,
                 clock: Optional[LamportClock] = None) -> None:
        self._rga = rga if rga is not None else RGA()
        self._clock = clock if clock is not None else LamportClock(actor)
        for element_id in self._rga.element_ids(include_deleted=True):
            self._clock.merge(element_id)

    @property
    def actor(self) -> str:
        return self._clock.actor

    # -- reading -------------------------------------------------------------

    def text(self) -> str:
        return "".join(self._rga)

    def __len__(self) -> int:
        return len(self._rga)

    def value(self) -> str:
        return self.text()

    # -- editing (functional: returns the new document) ------------------------

    def insert(self, index: int, text: str) -> "TextDocument":
        """Insert ``text`` before position ``index`` (``len`` appends)."""

        visible = self._rga.element_ids()
        if not 0 <= index <= len(visible):
            raise IndexError(f"insert position {index} out of range 0..{len(visible)}")
        anchor = HEAD if index == 0 else visible[index - 1]
        rga = self._rga
        clock = LamportClock(self._clock.actor, start=self._clock.time)
        for character in text:
            element_id = clock.tick()
            rga = rga.insert_after(anchor, element_id, character)
            anchor = element_id
        return TextDocument(self._clock.actor, rga, clock)

    def delete(self, index: int, length: int = 1) -> "TextDocument":
        """Delete ``length`` characters starting at ``index``."""

        visible = self._rga.element_ids()
        if length < 0:
            raise ValueError("length must be non-negative")
        if index < 0 or index + length > len(visible):
            raise IndexError(
                f"delete range {index}:{index + length} out of range (len={len(visible)})"
            )
        rga = self._rga
        for element_id in visible[index : index + length]:
            rga = rga.delete(element_id)
        clock = LamportClock(self._clock.actor, start=self._clock.time)
        return TextDocument(self._clock.actor, rga, clock)

    def append(self, text: str) -> "TextDocument":
        return self.insert(len(self), text)

    # -- replication -----------------------------------------------------------

    def merge(self, other: "TextDocument") -> "TextDocument":
        self._require_same_type(other)
        return TextDocument(self._clock.actor, self._rga.merge(other._rga))

    def fork(self, actor: str) -> "TextDocument":
        """A new replica of the current state editing under ``actor``.

        Forks share history; their clocks advance independently but both
        start past every existing element ID, so fresh edits never collide.
        """

        return TextDocument(actor, self._rga)

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> dict:
        return {"actor": self._clock.actor, "rga": self._rga.to_dict()}

    @classmethod
    def from_dict(cls, payload: dict) -> "TextDocument":
        return cls(payload["actor"], RGA.from_dict(payload["rga"]))

    def __repr__(self) -> str:
        preview = self.text()
        if len(preview) > 24:
            preview = preview[:21] + "..."
        return f"TextDocument(actor={self.actor!r}, text={preview!r})"
