"""Grow-only set (G-Set): merge is set union; removal is impossible."""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from ..common.serialization import canonical_json, deep_freeze, from_bytes
from .base import StateCRDT


class GSet(StateCRDT):
    """State-based grow-only set of JSON values.

    Elements are arbitrary JSON values, stored keyed by their canonical
    encoding so unhashable values (dicts, lists) work.
    """

    type_name = "g-set"

    __slots__ = ("_elements",)

    def __init__(self, elements: Iterable[Any] = ()) -> None:
        self._elements: dict[str, Any] = {}
        for element in elements:
            self._elements[canonical_json(element)] = element

    def add(self, element: Any) -> "GSet":
        new = GSet()
        new._elements = dict(self._elements)
        new._elements[canonical_json(element)] = element
        return new

    def __contains__(self, element: Any) -> bool:
        return canonical_json(element) in self._elements

    def __len__(self) -> int:
        return len(self._elements)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._elements.values())

    def merge(self, other: "GSet") -> "GSet":
        self._require_same_type(other)
        new = GSet()
        new._elements = {**self._elements, **other._elements}
        return new

    def value(self) -> list:
        """Deterministically ordered list of elements."""

        return [self._elements[key] for key in sorted(self._elements)]

    def to_dict(self) -> dict:
        return {"elements": self.value()}

    @classmethod
    def from_dict(cls, payload: dict) -> "GSet":
        return cls(payload["elements"])

    def freeze(self) -> frozenset:
        """Hashable snapshot of the element set (for property tests)."""

        return frozenset(deep_freeze(from_bytes(canonical_json(e).encode())) for e in self)
