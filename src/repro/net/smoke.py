"""Fingerprint-parity smoke: the distributed runtime vs the in-process one.

The distributed runtime's correctness argument is end-to-end: run the *same
seeded workload* once on an in-process :class:`~repro.fabric.localnet.
LocalNetwork` and once against a real multi-process :class:`~repro.net.
cluster.Cluster` over the socket transport, then compare per-peer state
fingerprints.  If every remote peer's fingerprint equals every local
peer's, the sockets, the wire codec, the process supervision, and the
cross-process identity scheme all preserved the protocol bit-for-bit —
including the CRDT merge, whose output depends on exactly which
transactions share a block.

Determinism requires the two runs to cut identical blocks:

* **Identical envelopes.**  Enrollment secrets are a pure function of
  identity names, transaction IDs a pure function of (channel, chaincode,
  call, creator, nonce) — so constructing the same clients and submitting
  the same calls in the same order yields byte-identical envelopes in both
  runs.
* **Identical block boundaries.**  The in-process run cuts a block
  inline on every ``max_message_count``-th ordered transaction.  The
  socket run reproduces that boundary by submitting in *waves* of
  ``max_message_count`` with a height barrier between waves (every peer
  must commit the cut block before the next wave endorses), and disables
  the wall-clock batch timeout in both runs so no timer can cut early.
  Byte-triggered cuts land identically by the first bullet.

``python -m repro.bench smoke --transport socket`` runs this and exits
non-zero on any divergence.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Optional

from ..common.config import NetworkConfig, TopologyConfig, fabric_config, fabriccrdt_config
from ..core.network import crdt_network, vanilla_network
from ..workload.generator import generate_plan, keys_to_populate
from ..workload.iot import IOT_CHAINCODE_NAME, IoTChaincode
from ..workload.runner import POPULATE_CHUNK
from ..workload.spec import WorkloadSpec
from .cluster import Cluster
from .transport import SocketTransport

#: Import spec of the workload chaincode every node instantiates.
IOT_CHAINCODE_SPEC = "repro.workload.iot:IoTChaincode"

#: A batch timeout no smoke run can reach: only count/byte cuts fire.
NO_TIMEOUT_S = 3600.0


@dataclass(frozen=True)
class Call:
    """One submission: which client sends which invocation."""

    client: int
    function: str
    args: tuple


@dataclass
class RunResult:
    """What one run of the workload committed.

    ``telemetry`` (socket runs with telemetry enabled only) maps node name
    -> ``metrics_result`` payload fetched over the wire — each node's
    registry snapshot plus its lifecycle spans.
    """

    heights: dict  # peer name -> chain height
    fingerprints: dict  # peer name -> state fingerprint (hex)
    statuses: dict  # tx_id -> validation code name
    telemetry: Optional[dict] = None


@dataclass
class ParityReport:
    """The comparison between the local and the distributed run."""

    backend: str
    transactions: int
    local: RunResult
    remote: RunResult
    problems: list = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.problems

    def format(self) -> str:
        lines = [
            f"fingerprint parity [{self.backend} backend, "
            f"{self.transactions} txs, {len(self.remote.heights)} remote peers]"
        ]
        reference = next(iter(self.local.fingerprints.values()))
        lines.append(f"  local : height {max(self.local.heights.values())}, "
                     f"fingerprint {reference[:16]}…")
        for name in sorted(self.remote.fingerprints):
            mark = "==" if self.remote.fingerprints[name] == reference else "!="
            lines.append(
                f"  remote: {name:<12} height {self.remote.heights[name]}, "
                f"fingerprint {self.remote.fingerprints[name][:16]}… {mark} local"
            )
        if self.passed:
            lines.append(
                f"  PARITY: all {len(self.remote.heights)} process peers match the "
                f"in-process run ({len(self.local.statuses)} statuses identical)"
            )
        else:
            for problem in self.problems:
                lines.append(f"  DIVERGENCE: {problem}")
        return "\n".join(lines)


def parity_config(
    state_backend: str = "memory",
    crdt_enabled: bool = True,
    max_message_count: int = 20,
    num_orgs: int = 2,
    peers_per_org: int = 1,
) -> NetworkConfig:
    """The smoke network: small topology, batch timeout disabled."""

    base = (
        fabriccrdt_config(max_message_count=max_message_count, state_backend=state_backend)
        if crdt_enabled
        else fabric_config(max_message_count=max_message_count, state_backend=state_backend)
    )
    return dataclasses.replace(
        base,
        topology=TopologyConfig(num_orgs=num_orgs, peers_per_org=peers_per_org),
        orderer=dataclasses.replace(base.orderer, batch_timeout_s=NO_TIMEOUT_S),
    )


def build_calls(spec: WorkloadSpec) -> list[Call]:
    """The full submission sequence: populate chunks, then the plan."""

    plan = generate_plan(spec)
    keys = keys_to_populate(spec, plan)
    calls = [
        Call(0, "populate", (json.dumps({"keys": keys[i : i + POPULATE_CHUNK]}),))
        for i in range(0, len(keys), POPULATE_CHUNK)
    ]
    calls.extend(Call(tx.client, tx.function, (tx.call_argument(),)) for tx in plan)
    return calls


def run_local(config: NetworkConfig, calls: list[Call]) -> RunResult:
    """The reference run: the whole workload on an in-process network."""

    build = crdt_network if config.crdt_enabled else vanilla_network
    with build(config) as network:
        network.deploy(IoTChaincode())
        submitted = [
            network.transport.submit_async(
                IOT_CHAINCODE_NAME, call.function, call.args, client_index=call.client
            )
            for call in calls
        ]
        network.flush()
        statuses = {tx.tx_id: tx.commit_status().code.name for tx in submitted}
        return RunResult(
            heights={peer.name: peer.ledger.height for peer in network.peers},
            fingerprints={
                peer.name: peer.ledger.state.fingerprint().hex()
                for peer in network.peers
            },
            statuses=statuses,
        )


def run_socket(
    config: NetworkConfig, calls: list[Call], telemetry: bool = False
) -> RunResult:
    """The same workload against real processes, wave-synchronized.

    ``telemetry`` spawns the cluster with ``telemetry_enabled`` and gives
    the client transport its own Telemetry; every node's registry + spans
    are fetched over the wire (the ``metrics`` request) before teardown
    and returned on the result.  Fingerprint parity must hold either way —
    that equality is the proof the instrumentation is out-of-band.
    """

    max_count = config.orderer.max_message_count
    client_telemetry = None
    if telemetry:
        from ..telemetry import Telemetry

        config = dataclasses.replace(config, telemetry_enabled=True)
        client_telemetry = Telemetry()
    with Cluster.spawn(config, chaincodes=[IOT_CHAINCODE_SPEC]) as cluster:
        with SocketTransport.connect(
            cluster.profile, telemetry=client_telemetry
        ) as transport:
            submitted = []
            ordered = 0
            expected_height = 0
            for call in calls:
                tx = transport.submit_async(
                    IOT_CHAINCODE_NAME, call.function, call.args,
                    client_index=call.client,
                )
                submitted.append(tx)
                if tx.ordered:
                    ordered += 1
                    if ordered % max_count == 0:
                        # The wave's last broadcast cut a block; every peer
                        # must commit it before the next wave endorses, or
                        # endorsement read-versions would diverge from the
                        # sequential in-process run.
                        expected_height += 1
                        transport.wait_for_height(expected_height)
            if ordered % max_count:
                transport.flush()
                expected_height += 1
                transport.wait_for_height(expected_height)
            statuses = {tx.tx_id: tx.commit_status().code.name for tx in submitted}
            infos = [
                transport.ledger_info(index)
                for index in range(len(cluster.profile.peers))
            ]
            node_telemetry = (
                transport.cluster_metrics(include_spans=True) if telemetry else None
            )
            return RunResult(
                heights={info["peer"]: info["height"] for info in infos},
                fingerprints={info["peer"]: info["fingerprint"] for info in infos},
                statuses=statuses,
                telemetry=node_telemetry,
            )


def compare(backend: str, transactions: int, local: RunResult, remote: RunResult) -> ParityReport:
    report = ParityReport(backend, transactions, local, remote)
    reference = next(iter(local.fingerprints.values()))
    for name, fingerprint in local.fingerprints.items():
        if fingerprint != reference:
            report.problems.append(f"local peers diverged at {name}")
    local_height = max(local.heights.values())
    for name in remote.fingerprints:
        if remote.heights[name] != local_height:
            report.problems.append(
                f"{name} height {remote.heights[name]} != local {local_height}"
            )
        if remote.fingerprints[name] != reference:
            report.problems.append(
                f"{name} fingerprint {remote.fingerprints[name][:16]}… != "
                f"local {reference[:16]}…"
            )
    if remote.statuses != local.statuses:
        missing = set(local.statuses) ^ set(remote.statuses)
        changed = {
            tx_id
            for tx_id in set(local.statuses) & set(remote.statuses)
            if local.statuses[tx_id] != remote.statuses[tx_id]
        }
        report.problems.append(
            f"statuses differ: {len(missing)} missing/extra, {len(changed)} changed"
        )
    return report


def run_parity_smoke(
    state_backend: str = "memory",
    transactions: int = 60,
    seed: int = 7,
    crdt_enabled: bool = True,
    max_message_count: int = 20,
    spec: Optional[WorkloadSpec] = None,
    telemetry: bool = False,
) -> ParityReport:
    """Run the workload both ways and compare committed state.

    ``telemetry`` instruments the *socket* run only (cluster processes +
    client); the local reference run stays bare.  Parity must still hold —
    the report's remote result then carries per-node registries and spans.
    """

    config = parity_config(
        state_backend=state_backend,
        crdt_enabled=crdt_enabled,
        max_message_count=max_message_count,
    )
    resolved_spec = spec if spec is not None else WorkloadSpec(
        total_transactions=transactions,
        conflict_pct=100.0,
        use_crdt=crdt_enabled,
        seed=seed,
    )
    calls = build_calls(resolved_spec)
    local = run_local(config, calls)
    remote = run_socket(config, calls, telemetry=telemetry)
    return compare(state_backend, resolved_spec.total_transactions, local, remote)
