"""The ordering-service process: an asyncio server around ``OrderingService``.

The ordering logic is reused unchanged — this module only moves messages.
One process serves one channel:

* ``broadcast`` appends an envelope to the total order (Fabric's
  ``Broadcast`` RPC); any blocks the submission cuts are fanned out to
  every open deliver stream.
* ``deliver`` turns the connection into a block stream (Fabric's
  ``Deliver`` RPC): cut blocks are replayed from ``start_block``, then the
  stream stays live.  Peers follow this stream from block 0 and commit
  each block themselves — the orderer never validates.
* ``flush`` force-cuts the pending batch (the in-process transports'
  ``flush`` made remote), and a background task enforces
  ``batch_timeout_s`` against the wall clock, exactly the third of
  Fabric's three cut triggers.

Block ``cut_time`` is wall-clock seconds since the process started, so
cut provenance stays inspectable without making block *content* depend on
absolute time (block hashes never cover cut_time).
"""

from __future__ import annotations

import asyncio
import signal
import time
from typing import Optional

from ..fabric.block import Block
from ..fabric.orderer import OrderingService
from ..telemetry.lifecycle import record_phase
from .codec import FrameError, install_codec_metrics, read_message, write_message
from .errors import ConnectionClosed
from .profile import config_from_dict
from .wire import (
    WireError,
    dec_envelope,
    enc_block,
    error_message,
    message_type,
    metrics_result_message,
)

#: How often the batch-timeout watchdog checks the deadline.
TIMEOUT_TICK_S = 0.05


class OrdererState:
    """The server's mutable state: the ordering service plus fan-out."""

    def __init__(self, service: OrderingService) -> None:
        self.service = service
        self.started = time.monotonic()
        #: Every block ever cut, for deliver replay.
        self.blocks: list[Block] = []
        #: Live deliver subscribers (queues of block numbers to send).
        self.subscribers: list[asyncio.Queue] = []
        #: Telemetry (set when the config enables it) + envelope arrival
        #: times of sampled transactions awaiting their block cut.
        self.telemetry = None
        self._arrivals: dict[str, float] = {}

    def now(self) -> float:
        return time.monotonic() - self.started

    def enable_telemetry(self) -> None:
        from ..telemetry import Telemetry

        self.telemetry = Telemetry(clock=self.now)
        self.service.enable_telemetry(self.telemetry)
        install_codec_metrics(self.telemetry.metrics, node="orderer")

    def note_arrival(self, tx_id: str) -> None:
        if self.telemetry is not None and self.telemetry.tracer.sampled(tx_id):
            self._arrivals[tx_id] = self.now()

    def publish(self, blocks: list[Block]) -> None:
        for block in blocks:
            self.blocks.append(block)
            if self.telemetry is not None:
                for tx in block.transactions:
                    arrived = self._arrivals.pop(tx.tx_id, None)
                    if arrived is not None:
                        record_phase(
                            self.telemetry, "order", tx.tx_id, arrived, self.now(),
                            block=block.number, cut_reason=block.cut_reason,
                        )
            for queue in list(self.subscribers):
                queue.put_nowait(block.number)


async def _handle_deliver(
    state: OrdererState, writer: asyncio.StreamWriter, start_block: int
) -> None:
    """Serve one deliver stream: replay, then live fan-out.

    The subscriber queue is registered *before* replay so no block cut
    mid-replay can be missed; the cursor guard drops queue entries the
    replay already covered.
    """

    queue: asyncio.Queue = asyncio.Queue()
    state.subscribers.append(queue)
    cursor = start_block
    try:
        while cursor < len(state.blocks):
            await write_message(
                writer, {"type": "raw_block", "block": enc_block(state.blocks[cursor])}
            )
            cursor += 1
        while True:
            number = await queue.get()
            if number < cursor:
                continue  # replay already delivered it
            while cursor <= number:
                await write_message(
                    writer,
                    {"type": "raw_block", "block": enc_block(state.blocks[cursor])},
                )
                cursor += 1
    finally:
        state.subscribers.remove(queue)


async def _handle_connection(
    state: OrdererState, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
) -> None:
    try:
        while True:
            try:
                message = await read_message(reader)
                kind = message_type(message)
            except ConnectionClosed:
                return
            except (FrameError, WireError) as exc:
                # A bad frame poisons only this connection; report and drop.
                try:
                    await write_message(writer, error_message(str(exc)))
                except (ConnectionError, OSError):
                    pass
                return

            if kind == "ping":
                await write_message(
                    writer,
                    {
                        "type": "pong",
                        "node": "orderer",
                        "next_block": state.service.next_block_number,
                    },
                )
            elif kind == "broadcast":
                try:
                    envelope = dec_envelope(message.get("envelope"))
                except WireError as exc:
                    await write_message(writer, error_message(str(exc)))
                    continue
                state.note_arrival(envelope.tx_id)
                cut = state.service.submit(envelope, now=state.now())
                state.publish(cut)
                await write_message(
                    writer,
                    {
                        "type": "broadcast_ack",
                        "tx_id": envelope.tx_id,
                        "blocks_cut": len(cut),
                        "pending": state.service.pending_count,
                    },
                )
            elif kind == "flush":
                block = state.service.flush(now=state.now())
                if block is not None:
                    state.publish([block])
                await write_message(
                    writer,
                    {
                        "type": "flush_ack",
                        "blocks_cut": 0 if block is None else 1,
                        "next_block": state.service.next_block_number,
                    },
                )
            elif kind == "metrics":
                await write_message(
                    writer, metrics_result_message(state.telemetry, "orderer", message)
                )
            elif kind == "deliver":
                start = message.get("start_block", 0)
                if not isinstance(start, int) or start < 0:
                    await write_message(
                        writer, error_message(f"bad deliver start_block {start!r}")
                    )
                    return
                await _handle_deliver(state, writer, start)
                return
            else:
                await write_message(
                    writer, error_message(f"orderer cannot handle {kind!r}")
                )
    except (ConnectionError, OSError, asyncio.CancelledError):
        return
    finally:
        writer.close()


async def _timeout_watchdog(state: OrdererState) -> None:
    """Enforce ``batch_timeout_s``: Fabric's third cut trigger, wall-clock."""

    while True:
        await asyncio.sleep(TIMEOUT_TICK_S)
        deadline = state.service.timeout_deadline()
        if deadline is not None and state.now() >= deadline:
            block = state.service.cut_on_timeout(state.now(), state.service.batch_epoch)
            if block is not None:
                state.publish([block])


async def _serve(state: OrdererState, port_conn) -> None:
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, stop.set)

    server = await asyncio.start_server(
        lambda r, w: _handle_connection(state, r, w), "127.0.0.1", 0
    )
    port = server.sockets[0].getsockname()[1]
    port_conn.send(port)
    port_conn.close()

    watchdog = asyncio.create_task(_timeout_watchdog(state))
    try:
        async with server:
            await stop.wait()
    finally:
        watchdog.cancel()


def orderer_process_main(config_dict: dict, port_conn) -> None:
    """Entry point of the spawned orderer process.

    ``config_dict`` is the serialized :class:`~repro.common.config.
    NetworkConfig`; the actual bound port is reported back through
    ``port_conn`` (a ``multiprocessing`` pipe end).
    """

    config = config_from_dict(config_dict)
    state = OrdererState(OrderingService(config.orderer))
    if config.telemetry_enabled:
        state.enable_telemetry()
    asyncio.run(_serve(state, port_conn))
