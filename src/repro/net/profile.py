"""The cluster connection profile: everything a process needs to join.

Fabric deployments hand applications a *connection profile* — a document
naming the channel, the orderer endpoint, the peer endpoints per org, and
the deployed chaincodes.  :class:`ClusterProfile` is that document here.
It is fully serializable (``to_dict``/``from_dict``) because it crosses
process boundaries twice: the supervisor sends a partial profile to each
spawned node (``multiprocessing`` spawn pickles plain dicts cheaply and
safely), and hands the completed one to clients for
:meth:`~repro.net.transport.SocketTransport.connect`.

Chaincodes are named by *import spec* (``"repro.workload.iot:IoTChaincode"``)
rather than pickled: every process instantiates its own copy from the
spec, exactly like peers in a real network each run their own chaincode
container.  Identities never travel at all — the membership registry
derives per-identity secrets deterministically
(:meth:`~repro.fabric.identity.MembershipRegistry.enroll`), so every
process rebuilds an identical registry from the topology alone and HMAC
signatures verify across process boundaries without key distribution.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from ..common.config import (
    CRDTConfig,
    NetworkConfig,
    OrdererConfig,
    TopologyConfig,
)
from ..fabric.chaincode import ChaincodeRegistry
from ..fabric.identity import MembershipRegistry
from ..fabric.policy import PolicyNode, or_policy
from .wire import WireError, dec_policy, enc_policy


@dataclass(frozen=True)
class Endpoint:
    """One TCP endpoint."""

    host: str
    port: int

    def to_dict(self) -> dict:
        return {"host": self.host, "port": self.port}

    @classmethod
    def from_dict(cls, data: dict) -> "Endpoint":
        return cls(host=data["host"], port=data["port"])


@dataclass(frozen=True)
class PeerEndpoint:
    """One peer's qualified identity and where to reach it."""

    name: str  # qualified identity, e.g. "Org1.peer0"
    org: str
    host: str
    port: int

    def to_dict(self) -> dict:
        return {"name": self.name, "org": self.org, "host": self.host, "port": self.port}

    @classmethod
    def from_dict(cls, data: dict) -> "PeerEndpoint":
        return cls(
            name=data["name"], org=data["org"], host=data["host"], port=data["port"]
        )


@dataclass(frozen=True)
class ChaincodeRef:
    """A chaincode named by import spec, plus its endorsement policy.

    ``policy`` is a bare policy node (``OutOf`` / ``Principal``), matching
    how :meth:`~repro.gateway.channel.Channel.deploy` stores policies;
    ``None`` means the channel default (``OR`` over all orgs).
    """

    spec: str  # "package.module:ClassName"
    policy: Optional[PolicyNode] = None

    def instantiate(self):
        """A fresh chaincode instance from the import spec."""

        module_name, _, class_name = self.spec.partition(":")
        if not module_name or not class_name:
            raise WireError(
                f"chaincode spec {self.spec!r} must look like 'package.module:ClassName'"
            )
        try:
            module = importlib.import_module(module_name)
            factory = getattr(module, class_name)
        except (ImportError, AttributeError) as exc:
            raise WireError(f"cannot load chaincode {self.spec!r}: {exc}") from exc
        return factory()

    def to_dict(self) -> dict:
        return {
            "spec": self.spec,
            "policy": enc_policy(self.policy) if self.policy is not None else None,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ChaincodeRef":
        policy = data.get("policy")
        return cls(
            spec=data["spec"],
            policy=dec_policy(policy) if policy is not None else None,
        )


# -- NetworkConfig serialization ---------------------------------------------


def config_to_dict(config: NetworkConfig) -> dict:
    return {
        "topology": {
            "num_orgs": config.topology.num_orgs,
            "peers_per_org": config.topology.peers_per_org,
            "channel": config.topology.channel,
        },
        "orderer": {
            "max_message_count": config.orderer.max_message_count,
            "preferred_max_bytes": config.orderer.preferred_max_bytes,
            "batch_timeout_s": config.orderer.batch_timeout_s,
        },
        "crdt": {
            "seed_from_state": config.crdt.seed_from_state,
            "dedup_identical": config.crdt.dedup_identical,
            "stringify_scalars": config.crdt.stringify_scalars,
        },
        "crdt_enabled": config.crdt_enabled,
        "seed": config.seed,
        "state_backend": config.state_backend,
        "state_dir": config.state_dir,
        "telemetry_enabled": config.telemetry_enabled,
    }


def config_from_dict(data: dict) -> NetworkConfig:
    try:
        return NetworkConfig(
            topology=TopologyConfig(**data["topology"]),
            orderer=OrdererConfig(**data["orderer"]),
            crdt=CRDTConfig(**data["crdt"]),
            crdt_enabled=data["crdt_enabled"],
            seed=data["seed"],
            state_backend=data["state_backend"],
            state_dir=data.get("state_dir"),
            telemetry_enabled=data.get("telemetry_enabled", False),
        )
    except (KeyError, TypeError) as exc:
        raise WireError(f"malformed network config: {exc}") from exc


# -- the profile --------------------------------------------------------------


@dataclass(frozen=True)
class ClusterProfile:
    """Connection profile of one running cluster."""

    config: NetworkConfig
    orderer: Endpoint
    peers: tuple[PeerEndpoint, ...]
    chaincodes: tuple[ChaincodeRef, ...] = field(default_factory=tuple)

    @property
    def org_names(self) -> tuple[str, ...]:
        return self.config.topology.org_names

    def peers_of(self, org_name: str) -> tuple[PeerEndpoint, ...]:
        return tuple(peer for peer in self.peers if peer.org == org_name)

    @property
    def anchor_peer(self) -> PeerEndpoint:
        return self.peers[0]

    def to_dict(self) -> dict:
        return {
            "config": config_to_dict(self.config),
            "orderer": self.orderer.to_dict(),
            "peers": [peer.to_dict() for peer in self.peers],
            "chaincodes": [ref.to_dict() for ref in self.chaincodes],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ClusterProfile":
        try:
            return cls(
                config=config_from_dict(data["config"]),
                orderer=Endpoint.from_dict(data["orderer"]),
                peers=tuple(PeerEndpoint.from_dict(item) for item in data["peers"]),
                chaincodes=tuple(
                    ChaincodeRef.from_dict(item) for item in data.get("chaincodes", ())
                ),
            )
        except (KeyError, TypeError) as exc:
            raise WireError(f"malformed cluster profile: {exc}") from exc


# -- shared construction helpers ----------------------------------------------


def peer_identity_names(topology: TopologyConfig) -> list[tuple[str, str]]:
    """``(org, identity)`` pairs in the channel's canonical enrollment order.

    Must match :class:`~repro.gateway.channel.Channel` exactly — peers per
    org, ``peer{i}`` within each — so peer indices mean the same thing on
    every process and on the in-process networks.
    """

    return [
        (org_name, f"peer{index}")
        for org_name in topology.org_names
        for index in range(topology.peers_per_org)
    ]


def build_membership(topology: TopologyConfig, num_clients: int) -> MembershipRegistry:
    """Rebuild the network's membership registry from the topology.

    Enrollment secrets are a pure function of the qualified name, so every
    process that runs this gets signature-compatible identities.
    """

    membership = MembershipRegistry()
    for org_name, identity_name in peer_identity_names(topology):
        membership.enroll(org_name, identity_name)
    for index in range(num_clients):
        membership.enroll(
            topology.org_names[index % topology.num_orgs], f"client{index}"
        )
    return membership


def build_chaincode_registry(
    refs: Sequence[ChaincodeRef],
) -> tuple[ChaincodeRegistry, dict[str, PolicyNode]]:
    """Instantiate and deploy every referenced chaincode; return policies.

    Only explicitly-set policies appear in the returned map — the caller
    applies the topology-wide default for the rest.
    """

    registry = ChaincodeRegistry()
    policies: dict[str, PolicyNode] = {}
    for ref in refs:
        chaincode = ref.instantiate()
        registry.deploy(chaincode)
        if ref.policy is not None:
            policies[chaincode.name] = ref.policy
    return registry, policies


def default_policy(topology: TopologyConfig) -> PolicyNode:
    """The channel default: ``OR`` over all organizations (as Channel.deploy)."""

    return or_policy(*topology.org_names)


def resolve_chaincode_refs(
    chaincodes: Sequence["ChaincodeRef | str"],
) -> tuple[ChaincodeRef, ...]:
    """Normalize a mixed list of refs and bare import-spec strings."""

    resolved: list[ChaincodeRef] = []
    for item in chaincodes:
        resolved.append(item if isinstance(item, ChaincodeRef) else ChaincodeRef(item))
    return tuple(resolved)
