"""The distributed runtime: real processes, real sockets, one wire protocol.

Every other front-end in this reproduction — :class:`~repro.fabric.localnet.
LocalNetwork` and the discrete-event :class:`~repro.fabric.network.
SimulatedNetwork` — runs peers, orderer, and clients inside one Python
process.  ``repro.net`` runs the *same* protocol logic as an actual
deployment: each :class:`~repro.fabric.peer.Peer` (or CRDT peer) and the
:class:`~repro.fabric.orderer.OrderingService` lives in its own OS process
behind an asyncio TCP server, and clients reach them through a
length-prefixed JSON wire protocol.  Endorsement, ordering, CRDT block
merge, and the block-scoped ``WriteBatch`` commit path are reused
unchanged — only the message passing is new, which is the Fabric
architecture's own separation of endorse/order/validate made literal
(Androulaki et al., 2018).

Layers, bottom up:

* :mod:`repro.net.codec` — length-prefixed frames over a byte stream;
* :mod:`repro.net.wire` — the typed message schema (proposals, proposal
  responses, envelopes, blocks, deliver subscriptions);
* :mod:`repro.net.profile` — the serializable cluster connection profile;
* :mod:`repro.net.peerserver` / :mod:`repro.net.ordererserver` — asyncio
  servers wrapping the existing node logic;
* :mod:`repro.net.cluster` — the ``multiprocessing`` supervisor that
  spawns, health-checks, and terminates a cluster;
* :mod:`repro.net.transport` — :class:`SocketTransport`, the client side:
  a full :class:`~repro.gateway.transport.Transport` so the Gateway API,
  event streams, and the benchmark runner work against the cluster
  unchanged.

Quickstart::

    from repro.common.config import fabriccrdt_config
    from repro.net import Cluster, SocketTransport
    from repro import Gateway

    with Cluster.spawn(fabriccrdt_config(max_message_count=25),
                       chaincodes=["repro.workload.iot:IoTChaincode"]) as cluster:
        with SocketTransport.connect(cluster.profile) as transport:
            contract = Gateway.connect(transport).get_contract("iot")
            contract.submit("populate", json.dumps({"keys": ["device-1"]}))
"""

from .codec import (
    DEFAULT_MAX_FRAME_BYTES,
    FrameCorrupt,
    FrameDecoder,
    FrameError,
    FrameTooLarge,
    FrameTruncated,
    encode_frame,
)
from .cluster import Cluster
from .errors import (
    CommitTimeoutError,
    ConnectionClosed,
    PeerUnreachableError,
    RequestTimeout,
    TransportError,
)
from .profile import ChaincodeRef, ClusterProfile, Endpoint, PeerEndpoint
from .transport import MirrorPeer, RemoteChannel, SocketTransport
from .wire import WireError

__all__ = [
    "Cluster",
    "ClusterProfile",
    "ChaincodeRef",
    "Endpoint",
    "PeerEndpoint",
    "SocketTransport",
    "RemoteChannel",
    "MirrorPeer",
    "TransportError",
    "RequestTimeout",
    "PeerUnreachableError",
    "CommitTimeoutError",
    "ConnectionClosed",
    "WireError",
    "FrameError",
    "FrameCorrupt",
    "FrameTooLarge",
    "FrameTruncated",
    "FrameDecoder",
    "encode_frame",
    "DEFAULT_MAX_FRAME_BYTES",
]
