"""Length-prefixed framing over a byte stream.

Every message of the wire protocol travels as one *frame*::

    +----------+----------------------+------------------+
    | magic    | length (4 bytes, BE) | payload (JSON)   |
    | b"FC"    | of the payload only  | canonical UTF-8  |
    +----------+----------------------+------------------+

The 2-byte magic makes accidental cross-protocol connections (or a
desynchronized stream) fail fast with :class:`FrameCorrupt` instead of
interpreting garbage lengths; the explicit length cap bounds memory per
connection (:class:`FrameTooLarge`) so a malicious or broken sender cannot
make a server buffer gigabytes.  All three failure modes are typed so
server accept-loops can drop the one bad connection and keep serving.

Two consumption styles are provided:

* :class:`FrameDecoder` — an incremental push parser (``feed(bytes) ->
  list[payload]``) for tests and non-asyncio consumers;
* :func:`read_frame` / :func:`write_frame` — asyncio stream helpers used
  by the servers and the :class:`~repro.net.transport.SocketTransport`.
"""

from __future__ import annotations

import asyncio
from typing import Any

from ..common.errors import FabricError
from ..common.serialization import from_bytes, to_bytes
from .errors import ConnectionClosed

#: Frame preamble; a connection speaking anything else fails fast.
MAGIC = b"FC"

#: Header size: magic + 4-byte big-endian payload length.
HEADER_BYTES = len(MAGIC) + 4

#: Default cap on one frame's payload.  Generous for blocks of hundreds of
#: transactions, far below anything a runaway length field could claim.
DEFAULT_MAX_FRAME_BYTES = 32 * 1024 * 1024


# ---------------------------------------------------------------------------
# Optional codec metrics (telemetry, opt-in)
# ---------------------------------------------------------------------------

#: Installed ``(frames_counter, bytes_counter, labels)`` sinks.  Empty —
#: the default — means counting is a single falsy check per frame.
_metric_sinks: list[tuple[Any, Any, dict]] = []


def install_codec_metrics(registry, node: str = "") -> tuple:
    """Count frames/bytes through this process's codec into ``registry``.

    ``registry`` is a :class:`~repro.telemetry.metrics.MetricsRegistry`
    (duck-typed to keep this module free of telemetry imports).  Returns
    an opaque handle for :func:`uninstall_codec_metrics`.  Counting is
    out-of-band: frame content and flush behaviour are untouched.
    """

    frames = registry.counter(
        "repro_net_frames_total", "Wire frames moved, by direction"
    )
    total_bytes = registry.counter(
        "repro_net_bytes_total", "Wire bytes moved (headers included), by direction"
    )
    sink = (frames, total_bytes, {"node": node} if node else {})
    _metric_sinks.append(sink)
    return sink


def uninstall_codec_metrics(handle: tuple) -> None:
    """Remove a sink installed by :func:`install_codec_metrics`."""

    try:
        _metric_sinks.remove(handle)
    except ValueError:
        pass


def _count_frame(direction: str, payload_bytes: int) -> None:
    for frames, total_bytes, labels in _metric_sinks:
        frames.inc(direction=direction, **labels)
        total_bytes.inc(HEADER_BYTES + payload_bytes, direction=direction, **labels)


class FrameError(FabricError):
    """Base class for framing failures."""


class FrameCorrupt(FrameError):
    """The stream does not look like this protocol (bad magic)."""


class FrameTooLarge(FrameError):
    """A frame declared a payload above the configured cap."""


class FrameTruncated(FrameError):
    """The stream ended in the middle of a frame."""


def encode_frame(payload: bytes) -> bytes:
    """Wrap ``payload`` in a frame header."""

    if len(payload) > 0xFFFFFFFF:
        raise FrameTooLarge(f"payload of {len(payload)} bytes exceeds the frame format")
    return MAGIC + len(payload).to_bytes(4, "big") + payload


def encode_message(message: Any) -> bytes:
    """One canonical-JSON message as a complete frame."""

    return encode_frame(to_bytes(message))


class FrameDecoder:
    """Incremental frame parser: push bytes in, get complete payloads out.

    Raises a typed :class:`FrameError` as soon as the stream is provably
    bad; after an error the decoder is poisoned (the stream cannot be
    resynchronized) and every further ``feed`` re-raises.
    """

    def __init__(self, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> None:
        if max_frame_bytes < 1:
            raise ValueError("max_frame_bytes must be positive")
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()
        self._error: FrameError | None = None

    @property
    def buffered(self) -> int:
        """Bytes held waiting for the rest of a frame."""

        return len(self._buffer)

    def feed(self, data: bytes) -> list[bytes]:
        """Consume ``data``; return every payload completed by it, in order."""

        if self._error is not None:
            raise self._error
        self._buffer.extend(data)
        payloads: list[bytes] = []
        while True:
            if len(self._buffer) < HEADER_BYTES:
                return payloads
            if self._buffer[: len(MAGIC)] != MAGIC:
                self._error = FrameCorrupt(
                    f"bad frame magic {bytes(self._buffer[:len(MAGIC)])!r}"
                )
                raise self._error
            length = int.from_bytes(
                self._buffer[len(MAGIC) : HEADER_BYTES], "big"
            )
            if length > self.max_frame_bytes:
                self._error = FrameTooLarge(
                    f"frame declares {length} bytes (cap {self.max_frame_bytes})"
                )
                raise self._error
            if len(self._buffer) < HEADER_BYTES + length:
                return payloads
            payloads.append(bytes(self._buffer[HEADER_BYTES : HEADER_BYTES + length]))
            del self._buffer[: HEADER_BYTES + length]

    def eof(self) -> None:
        """Signal end of stream; raises :class:`FrameTruncated` mid-frame."""

        if self._error is not None:
            raise self._error
        if self._buffer:
            self._error = FrameTruncated(
                f"stream ended with {len(self._buffer)} bytes of a partial frame"
            )
            raise self._error


# ---------------------------------------------------------------------------
# asyncio stream helpers
# ---------------------------------------------------------------------------


async def read_frame(
    reader: asyncio.StreamReader, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> bytes:
    """Read one complete frame payload from ``reader``.

    Raises :class:`~repro.net.errors.ConnectionClosed` on a clean EOF at a
    frame boundary, :class:`FrameTruncated` on EOF mid-frame, and
    :class:`FrameCorrupt` / :class:`FrameTooLarge` on a bad header.
    """

    try:
        header = await reader.readexactly(HEADER_BYTES)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            raise ConnectionClosed("connection closed") from None
        raise FrameTruncated(
            f"stream ended inside a frame header ({len(exc.partial)} bytes)"
        ) from None
    if header[: len(MAGIC)] != MAGIC:
        raise FrameCorrupt(f"bad frame magic {header[:len(MAGIC)]!r}")
    length = int.from_bytes(header[len(MAGIC) :], "big")
    if length > max_frame_bytes:
        raise FrameTooLarge(f"frame declares {length} bytes (cap {max_frame_bytes})")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FrameTruncated(
            f"stream ended inside a {length}-byte payload ({len(exc.partial)} read)"
        ) from None
    if _metric_sinks:
        _count_frame("in", length)
    return payload


async def read_message(
    reader: asyncio.StreamReader, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> Any:
    """Read one frame and decode its canonical-JSON payload."""

    return from_bytes(await read_frame(reader, max_frame_bytes))


async def write_message(writer: asyncio.StreamWriter, message: Any) -> None:
    """Frame and send one message, draining the transport buffer."""

    data = encode_message(message)
    if _metric_sinks:
        _count_frame("out", len(data) - HEADER_BYTES)
    writer.write(data)
    await writer.drain()
