"""The typed message schema: protocol structures <-> JSON wire form.

One encoder/decoder pair per protocol structure (proposals, read-write
sets, proposal responses, envelopes, blocks, committed blocks) plus the
top-level request/response messages the servers speak.  Encoding rules:

* ``bytes`` fields travel base64 (signatures, hashes, chaincode values);
* :class:`~repro.common.types.Version` travels as its compact ``"b:t"``
  string (``None`` for never-committed keys);
* :class:`~repro.common.types.ValidationCode` travels by name;
* endorsement-policy trees travel as tagged dicts
  (``{"principal": org}`` / ``{"out_of": {...}}``).

Every decoder is *strict*: unknown validation codes, malformed versions,
missing fields, or the wrong JSON shape raise :class:`WireError` — never a
bare ``KeyError`` a server loop would have to guess about.  Round-tripping
is exact (``decode(encode(x)) == x``), which the hypothesis property tests
in ``tests/net`` pin down per message type; exactness matters beyond
hygiene because block data hashes are recomputed from decoded envelopes on
the far side — a lossy codec would break the hash chain, not just a field.
"""

from __future__ import annotations

import base64
import binascii
from typing import Any, Optional

from ..common.errors import FabricError
from ..common.types import (
    RangeQueryInfo,
    ReadItem,
    ReadWriteSet,
    ValidationCode,
    Version,
    WriteItem,
)
from ..fabric.block import Block, BlockHeader, BlockMetadata, CommittedBlock
from ..fabric.identity import SignedPayload
from ..fabric.policy import EndorsementPolicy, OutOf, Principal
from ..fabric.transaction import (
    ChaincodeEvent,
    EndorsementFailure,
    Proposal,
    ProposalResponse,
    TransactionEnvelope,
)


class WireError(FabricError):
    """A message failed to decode against the schema."""


def _require(mapping: Any, key: str, context: str) -> Any:
    if not isinstance(mapping, dict):
        raise WireError(f"{context}: expected an object, got {type(mapping).__name__}")
    try:
        return mapping[key]
    except KeyError:
        raise WireError(f"{context}: missing field {key!r}") from None


# -- scalars ----------------------------------------------------------------


def enc_bytes(data: bytes) -> str:
    return base64.b64encode(data).decode("ascii")


def dec_bytes(text: Any, context: str = "bytes") -> bytes:
    if not isinstance(text, str):
        raise WireError(f"{context}: expected a base64 string")
    try:
        return base64.b64decode(text.encode("ascii"), validate=True)
    except (binascii.Error, ValueError) as exc:
        raise WireError(f"{context}: invalid base64: {exc}") from None


def enc_version(version: Optional[Version]) -> Optional[str]:
    return str(version) if version is not None else None


def dec_version(text: Any, context: str = "version") -> Optional[Version]:
    if text is None:
        return None
    if not isinstance(text, str):
        raise WireError(f"{context}: expected a 'b:t' string")
    try:
        return Version.parse(text)
    except (ValueError, TypeError) as exc:
        raise WireError(f"{context}: malformed version {text!r}: {exc}") from None


def dec_validation_code(name: Any, context: str = "validation code") -> ValidationCode:
    try:
        return ValidationCode[name]
    except (KeyError, TypeError):
        raise WireError(f"{context}: unknown validation code {name!r}") from None


# -- endorsement policies -----------------------------------------------------


def enc_policy_node(node) -> dict:
    if isinstance(node, Principal):
        return {"principal": node.org_name}
    if isinstance(node, OutOf):
        return {
            "out_of": {
                "threshold": node.threshold,
                "rules": [enc_policy_node(rule) for rule in node.rules],
            }
        }
    raise WireError(f"unencodable policy node {type(node).__name__}")


def dec_policy_node(data: Any, context: str = "policy"):
    if not isinstance(data, dict):
        raise WireError(f"{context}: expected a tagged policy object")
    if "principal" in data:
        org = data["principal"]
        if not isinstance(org, str):
            raise WireError(f"{context}: principal must name an org")
        return Principal(org)
    if "out_of" in data:
        body = data["out_of"]
        threshold = _require(body, "threshold", context)
        rules = _require(body, "rules", context)
        if not isinstance(threshold, int) or not isinstance(rules, list):
            raise WireError(f"{context}: malformed out_of node")
        try:
            return OutOf(
                threshold,
                tuple(dec_policy_node(rule, context) for rule in rules),
            )
        except FabricError:
            raise
        except Exception as exc:
            raise WireError(f"{context}: invalid out_of node: {exc}") from None
    raise WireError(f"{context}: unknown policy tag in {sorted(data)}")


def enc_policy(policy) -> dict:
    """Encode a policy: a bare node, or an :class:`EndorsementPolicy` wrapper.

    The channel stores policies as bare ``OutOf``/``Principal`` nodes (see
    ``Channel.deploy``); the wire canonicalizes to the node form, so a
    wrapped policy decodes back as its expression node.
    """

    if isinstance(policy, EndorsementPolicy):
        return enc_policy_node(policy.expression)
    return enc_policy_node(policy)


def dec_policy(data: Any, context: str = "policy"):
    return dec_policy_node(data, context)


# -- read-write sets ----------------------------------------------------------


def enc_rwset(rwset: ReadWriteSet) -> dict:
    return {
        "reads": [
            {"key": read.key, "version": enc_version(read.version)}
            for read in rwset.reads
        ],
        "writes": [
            {
                "key": write.key,
                "value": enc_bytes(write.value),
                "is_delete": write.is_delete,
                "is_crdt": write.is_crdt,
            }
            for write in rwset.writes
        ],
        "range_queries": [
            {
                "start_key": rq.start_key,
                "end_key": rq.end_key,
                "results_hash": enc_bytes(rq.results_hash),
            }
            for rq in rwset.range_queries
        ],
    }


def dec_rwset(data: Any, context: str = "rwset") -> ReadWriteSet:
    reads = tuple(
        ReadItem(
            key=_require(item, "key", f"{context}.reads"),
            version=dec_version(item.get("version"), f"{context}.reads"),
        )
        for item in _require(data, "reads", context)
    )
    writes = tuple(
        WriteItem(
            key=_require(item, "key", f"{context}.writes"),
            value=dec_bytes(_require(item, "value", f"{context}.writes")),
            is_delete=bool(item.get("is_delete", False)),
            is_crdt=bool(item.get("is_crdt", False)),
        )
        for item in _require(data, "writes", context)
    )
    range_queries = tuple(
        RangeQueryInfo(
            start_key=_require(item, "start_key", f"{context}.range_queries"),
            end_key=_require(item, "end_key", f"{context}.range_queries"),
            results_hash=dec_bytes(_require(item, "results_hash", f"{context}.range_queries")),
        )
        for item in _require(data, "range_queries", context)
    )
    return ReadWriteSet(reads, writes, range_queries)


# -- identities and events ----------------------------------------------------


def enc_signed(signed: SignedPayload) -> dict:
    return {
        "payload_hash": enc_bytes(signed.payload_hash),
        "signer": signed.signer,
        "signature": enc_bytes(signed.signature),
    }


def dec_signed(data: Any, context: str = "signed payload") -> SignedPayload:
    return SignedPayload(
        payload_hash=dec_bytes(_require(data, "payload_hash", context), context),
        signer=_require(data, "signer", context),
        signature=dec_bytes(_require(data, "signature", context), context),
    )


def enc_event(event: Optional[ChaincodeEvent]) -> Optional[dict]:
    if event is None:
        return None
    return {"name": event.name, "payload": event.payload}


def dec_event(data: Any, context: str = "event") -> Optional[ChaincodeEvent]:
    if data is None:
        return None
    return ChaincodeEvent(
        name=_require(data, "name", context), payload=data.get("payload")
    )


# -- proposals / responses / envelopes ---------------------------------------


def enc_proposal(proposal: Proposal) -> dict:
    return {
        "tx_id": proposal.tx_id,
        "channel": proposal.channel,
        "chaincode": proposal.chaincode,
        "function": proposal.function,
        "args": list(proposal.args),
        "creator": proposal.creator,
        "policy": enc_policy(proposal.policy),
        "submit_time": proposal.submit_time,
    }


def dec_proposal(data: Any, context: str = "proposal") -> Proposal:
    args = _require(data, "args", context)
    if not isinstance(args, list) or not all(isinstance(arg, str) for arg in args):
        raise WireError(f"{context}: args must be a list of strings")
    return Proposal(
        tx_id=_require(data, "tx_id", context),
        channel=_require(data, "channel", context),
        chaincode=_require(data, "chaincode", context),
        function=_require(data, "function", context),
        args=tuple(args),
        creator=_require(data, "creator", context),
        policy=dec_policy(_require(data, "policy", context), f"{context}.policy"),
        submit_time=float(_require(data, "submit_time", context)),
    )


def enc_proposal_response(response: ProposalResponse) -> dict:
    return {
        "tx_id": response.tx_id,
        "endorser": response.endorser,
        "rwset": enc_rwset(response.rwset),
        "chaincode_result": enc_bytes(response.chaincode_result),
        "endorsement": enc_signed(response.endorsement),
        "event": enc_event(response.event),
    }


def dec_proposal_response(data: Any, context: str = "proposal response") -> ProposalResponse:
    return ProposalResponse(
        tx_id=_require(data, "tx_id", context),
        endorser=_require(data, "endorser", context),
        rwset=dec_rwset(_require(data, "rwset", context), f"{context}.rwset"),
        chaincode_result=dec_bytes(_require(data, "chaincode_result", context), context),
        endorsement=dec_signed(_require(data, "endorsement", context), context),
        event=dec_event(data.get("event"), f"{context}.event"),
    )


def enc_endorsement_failure(failure: EndorsementFailure) -> dict:
    return {
        "tx_id": failure.tx_id,
        "endorser": failure.endorser,
        "reason": failure.reason,
        "chaincode_error": failure.chaincode_error,
    }


def dec_endorsement_failure(data: Any, context: str = "endorsement failure") -> EndorsementFailure:
    return EndorsementFailure(
        tx_id=_require(data, "tx_id", context),
        endorser=_require(data, "endorser", context),
        reason=_require(data, "reason", context),
        chaincode_error=data.get("chaincode_error"),
    )


def enc_envelope(envelope: TransactionEnvelope) -> dict:
    return {
        "proposal": enc_proposal(envelope.proposal),
        "rwset": enc_rwset(envelope.rwset),
        "endorsements": [enc_signed(signed) for signed in envelope.endorsements],
        "chaincode_result": enc_bytes(envelope.chaincode_result),
        "client_signature": (
            enc_signed(envelope.client_signature)
            if envelope.client_signature is not None
            else None
        ),
        "event": enc_event(envelope.event),
    }


def dec_envelope(data: Any, context: str = "envelope") -> TransactionEnvelope:
    client_signature = data.get("client_signature")
    return TransactionEnvelope(
        proposal=dec_proposal(_require(data, "proposal", context), f"{context}.proposal"),
        rwset=dec_rwset(_require(data, "rwset", context), f"{context}.rwset"),
        endorsements=tuple(
            dec_signed(item, f"{context}.endorsements")
            for item in _require(data, "endorsements", context)
        ),
        chaincode_result=dec_bytes(_require(data, "chaincode_result", context), context),
        client_signature=(
            dec_signed(client_signature, f"{context}.client_signature")
            if client_signature is not None
            else None
        ),
        event=dec_event(data.get("event"), f"{context}.event"),
    )


# -- blocks ------------------------------------------------------------------


def enc_block(block: Block) -> dict:
    return {
        "header": {
            "number": block.header.number,
            "previous_hash": enc_bytes(block.header.previous_hash),
            "data_hash": enc_bytes(block.header.data_hash),
        },
        "transactions": [enc_envelope(tx) for tx in block.transactions],
        "cut_reason": block.cut_reason,
        "cut_time": block.cut_time,
    }


def dec_block(data: Any, context: str = "block") -> Block:
    header = _require(data, "header", context)
    return Block(
        header=BlockHeader(
            number=_require(header, "number", f"{context}.header"),
            previous_hash=dec_bytes(_require(header, "previous_hash", f"{context}.header")),
            data_hash=dec_bytes(_require(header, "data_hash", f"{context}.header")),
        ),
        transactions=tuple(
            dec_envelope(item, f"{context}.transactions")
            for item in _require(data, "transactions", context)
        ),
        cut_reason=_require(data, "cut_reason", context),
        cut_time=float(_require(data, "cut_time", context)),
    )


def enc_metadata(metadata: BlockMetadata) -> dict:
    return {
        "block_num": metadata.block_num,
        "flags": [code.name for code in metadata.flags],
    }


def dec_metadata(data: Any, context: str = "metadata") -> BlockMetadata:
    return BlockMetadata(
        block_num=_require(data, "block_num", context),
        flags=[
            dec_validation_code(name, context)
            for name in _require(data, "flags", context)
        ],
    )


def enc_committed_block(committed: CommittedBlock) -> dict:
    effective = None
    if committed.effective_writes is not None:
        effective = [
            {
                "tx_index": tx_index,
                "key": write.key,
                "value": enc_bytes(write.value),
                "is_delete": write.is_delete,
                "is_crdt": write.is_crdt,
            }
            for tx_index, write in committed.effective_writes
        ]
    return {
        "block": enc_block(committed.block),
        "metadata": enc_metadata(committed.metadata),
        "commit_time": committed.commit_time,
        "effective_writes": effective,
    }


def dec_committed_block(data: Any, context: str = "committed block") -> CommittedBlock:
    effective_raw = data.get("effective_writes")
    effective = None
    if effective_raw is not None:
        effective = tuple(
            (
                _require(item, "tx_index", f"{context}.effective_writes"),
                WriteItem(
                    key=_require(item, "key", f"{context}.effective_writes"),
                    value=dec_bytes(_require(item, "value", f"{context}.effective_writes")),
                    is_delete=bool(item.get("is_delete", False)),
                    is_crdt=bool(item.get("is_crdt", False)),
                ),
            )
            for item in effective_raw
        )
    return CommittedBlock(
        block=dec_block(_require(data, "block", context), f"{context}.block"),
        metadata=dec_metadata(_require(data, "metadata", context), f"{context}.metadata"),
        commit_time=float(_require(data, "commit_time", context)),
        effective_writes=effective,
    )


# ---------------------------------------------------------------------------
# Top-level messages
# ---------------------------------------------------------------------------

#: Every message type a peer or orderer server understands or emits.
MESSAGE_TYPES = frozenset(
    {
        "ping",
        "pong",
        "endorse",
        "endorse_result",
        "broadcast",
        "broadcast_ack",
        "flush",
        "flush_ack",
        "deliver",
        "block",
        "raw_block",
        "ledger_info",
        "ledger_info_result",
        "metrics",
        "metrics_result",
        "error",
    }
)


def message_type(message: Any) -> str:
    """The validated ``type`` tag of a decoded message."""

    kind = _require(message, "type", "message")
    if kind not in MESSAGE_TYPES:
        raise WireError(f"unknown message type {kind!r}")
    return kind


def error_message(detail: str) -> dict:
    return {"type": "error", "error": detail}


def metrics_result_message(telemetry: Any, node: str, request: dict) -> dict:
    """The ``metrics_result`` reply for a node's (possibly absent) telemetry.

    ``telemetry`` is the node's :class:`~repro.telemetry.Telemetry` or
    ``None`` when the cluster ran without ``telemetry_enabled`` — the reply
    then carries ``enabled: false`` and an empty snapshot rather than an
    error, so clients can probe.  ``include_spans`` in the request adds the
    node's recorded lifecycle spans (process-local clock).
    """

    payload: dict = {
        "type": "metrics_result",
        "node": node,
        "enabled": telemetry is not None,
        "snapshot": telemetry.metrics.snapshot() if telemetry else {"metrics": []},
    }
    if telemetry is not None and request.get("include_spans"):
        payload["spans"] = [span.to_dict() for span in telemetry.spans]
    return payload
