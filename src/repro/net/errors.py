"""Typed errors of the socket transport and wire protocol.

The hierarchy plugs into the Gateway's existing exception model
(:mod:`repro.gateway.errors`) so that code written against the in-process
transports keeps working over sockets:

* :class:`TransportError` is a :class:`~repro.gateway.errors.GatewayError` —
  the umbrella for everything that went wrong *moving bytes* rather than
  validating transactions.
* A dead endorsing peer becomes an
  :class:`~repro.fabric.transaction.EndorsementFailure` inside the normal
  endorsement round, so it surfaces as
  :class:`~repro.gateway.errors.EndorseError` at ``commit_status()`` — a
  failed transaction, never a hang.
* :class:`CommitTimeoutError` is *also* a
  :class:`~repro.gateway.errors.CommitError`, so ``except CommitError``
  handlers see a commit that never arrived the same way they see one that
  failed validation.
"""

from __future__ import annotations

from typing import Optional

from ..gateway.errors import CommitError, GatewayError, SubmitError


class TransportError(GatewayError):
    """A socket-transport operation failed at the messaging layer."""


class ConnectionClosed(TransportError):
    """The remote end closed the connection (cleanly, between frames)."""


class RequestTimeout(TransportError):
    """A request did not receive its response within the deadline."""


class PeerUnreachableError(TransportError):
    """A node could not be reached (connect refused / reset / DNS)."""


class ClusterStartupError(TransportError):
    """A spawned node process failed to come up within the deadline."""


class CommitTimeoutError(CommitError, TransportError):
    """A submitted transaction's commit status never arrived in time.

    Both a :class:`~repro.gateway.errors.CommitError` (existing handlers
    catch it) and a :class:`TransportError` (callers can distinguish
    "network went quiet" from "validation rejected it").
    """

    def __init__(self, tx_id: str, timeout_s: float, detail: Optional[str] = None) -> None:
        message = (
            f"transaction {tx_id} did not resolve within {timeout_s:g}s"
            + (f" ({detail})" if detail else "")
        )
        CommitError.__init__(self, tx_id, message)
        self.timeout_s = timeout_s


__all__ = [
    "TransportError",
    "ConnectionClosed",
    "RequestTimeout",
    "PeerUnreachableError",
    "ClusterStartupError",
    "CommitTimeoutError",
    "SubmitError",
]
