"""The peer process: an asyncio server around the existing ``Peer``.

All protocol logic is reused unchanged — endorsement, VSCC/MVCC
validation, the CRDT block merge (when the config enables it), and the
block-scoped ``WriteBatch`` commit path on either state backend.  This
module contributes only the deployment shell:

* an asyncio TCP server answering ``endorse`` / ``ledger_info`` / ``ping``
  requests and serving ``deliver`` streams of committed blocks;
* a follower task that subscribes to the orderer's deliver stream from
  block 0 and runs ``validate_and_commit`` on each block — the peer's
  committer, fed over a socket instead of a method call.

Everything runs on one event loop, so commits and endorsements interleave
atomically exactly as they do on the in-process networks: an endorsement
observes either all of a block's writes or none.

Identities are rebuilt deterministically from the topology (see
:mod:`repro.net.profile`), so endorsement signatures produced here verify
on clients and other peers without any key exchange.
"""

from __future__ import annotations

import asyncio
import signal
import time
from typing import Optional

from ..core.network import crdt_peer_factory
from ..fabric.peer import Peer
from ..fabric.store import StateStore, create_store
from ..fabric.transaction import ProposalResponse
from ..gateway.channel import NUM_CLIENTS
from ..telemetry.lifecycle import record_phase
from .codec import FrameError, install_codec_metrics, read_message, write_message
from .errors import ConnectionClosed, PeerUnreachableError
from .profile import ClusterProfile, build_chaincode_registry, build_membership
from .wire import (
    WireError,
    dec_block,
    dec_proposal,
    enc_committed_block,
    enc_endorsement_failure,
    enc_proposal_response,
    error_message,
    message_type,
    metrics_result_message,
)

#: How long the follower keeps retrying the orderer before giving up.
ORDERER_CONNECT_TIMEOUT_S = 30.0


def build_peer(profile: ClusterProfile, qualified_name: str) -> Peer:
    """Construct this process's peer exactly as the in-process channel would.

    Same membership enrollment order, same chaincode deployment, same
    state-backend selection (``memory``, or one sqlite database per peer
    under ``state_dir`` — private in-memory sqlite when no directory is
    configured).  That sameness is what makes per-peer state fingerprints
    comparable against a :class:`~repro.fabric.localnet.LocalNetwork` run.
    """

    config = profile.config
    membership = build_membership(config.topology, NUM_CLIENTS)
    chaincodes, _ = build_chaincode_registry(profile.chaincodes)
    identity = membership.identity(qualified_name)

    store: Optional[StateStore] = None
    if config.state_backend != "memory":
        path = None
        if config.state_dir is not None:
            import os

            os.makedirs(config.state_dir, exist_ok=True)
            path = os.path.join(config.state_dir, f"{qualified_name}.sqlite")
        store = create_store(config.state_backend, path)

    if config.crdt_enabled:
        factory = crdt_peer_factory(config.crdt)
        return factory(identity, membership, chaincodes, store=store)
    return Peer(identity, membership, chaincodes, store=store)


class PeerState:
    """The server's handle on its peer plus the process clock.

    ``telemetry`` (set when the profile's config enables it) holds this
    process's :class:`~repro.telemetry.Telemetry` bound to the same
    monotonic-since-start clock as commit timestamps; the ``metrics`` wire
    request exposes it to remote clients.
    """

    def __init__(self, peer: Peer) -> None:
        self.peer = peer
        self.started = time.monotonic()
        self.telemetry = None

    def now(self) -> float:
        return time.monotonic() - self.started

    def enable_telemetry(self) -> None:
        from ..telemetry import Telemetry

        self.telemetry = Telemetry(clock=self.now)
        self.peer.enable_telemetry(self.telemetry)
        install_codec_metrics(self.telemetry.metrics, node=self.peer.name)


async def _follow_orderer(state: PeerState, host: str, port: int) -> None:
    """Subscribe to the orderer's block stream and commit every block.

    Reconnects (resuming from the current ledger height) if the stream
    drops; gives up only if the orderer stays unreachable past the
    connection deadline, which terminates the process — a peer that cannot
    reach ordering is not serving anything useful.
    """

    deadline = time.monotonic() + ORDERER_CONNECT_TIMEOUT_S
    while True:
        try:
            reader, writer = await asyncio.open_connection(host, port)
        except (ConnectionError, OSError):
            if time.monotonic() >= deadline:
                raise PeerUnreachableError(
                    f"orderer at {host}:{port} unreachable for "
                    f"{ORDERER_CONNECT_TIMEOUT_S:g}s"
                )
            await asyncio.sleep(0.05)
            continue
        deadline = time.monotonic() + ORDERER_CONNECT_TIMEOUT_S
        try:
            await write_message(
                writer,
                {"type": "deliver", "start_block": state.peer.ledger.height},
            )
            while True:
                message = await read_message(reader)
                if message_type(message) != "raw_block":
                    raise WireError(
                        f"orderer deliver stream sent {message.get('type')!r}"
                    )
                block = dec_block(message.get("block"))
                if state.telemetry is None:
                    state.peer.validate_and_commit(block, commit_time=state.now())
                else:
                    # Same pipeline, split so each stage's window is spanned:
                    # deliver = socket receipt -> committer pickup (immediate
                    # here — one event loop), validate = prepare_block,
                    # apply = the WriteBatch commit.
                    received = state.now()
                    prepared = state.peer.prepare_block(block)
                    validated = state.now()
                    state.peer.apply_prepared(prepared, commit_time=validated)
                    applied = state.now()
                    name = state.peer.name
                    for tx_index, tx in enumerate(block.transactions):
                        record_phase(
                            state.telemetry, "deliver", tx.tx_id,
                            received, received, node=name, block=block.number,
                        )
                        record_phase(
                            state.telemetry, "validate", tx.tx_id,
                            received, validated, node=name,
                            code=prepared.metadata.code_for(tx_index).name,
                        )
                        record_phase(
                            state.telemetry, "apply", tx.tx_id,
                            validated, applied, node=name, block=block.number,
                        )
        except (ConnectionClosed, ConnectionError, OSError):
            writer.close()
            continue  # reconnect from the new height


async def _handle_deliver(
    state: PeerState, writer: asyncio.StreamWriter, start_block: int
) -> None:
    """Stream committed blocks: ledger replay, then live commits.

    The hub subscription is installed *before* replay (the deliver-service
    pattern from :mod:`repro.events.deliver`): blocks committed mid-replay
    land in the queue and the cursor guard drops the ones replay already
    sent, so the consumer sees every block exactly once, in order.
    """

    queue: asyncio.Queue = asyncio.Queue()
    unsubscribe = state.peer.events.subscribe_internal(
        lambda committed, _name: queue.put_nowait(committed)
    )
    cursor = start_block
    try:
        while cursor < state.peer.ledger.height:
            committed = state.peer.ledger.block_at(cursor)
            await write_message(
                writer, {"type": "block", "committed": enc_committed_block(committed)}
            )
            cursor += 1
        while True:
            committed = await queue.get()
            if committed.block.number < cursor:
                continue
            await write_message(
                writer, {"type": "block", "committed": enc_committed_block(committed)}
            )
            cursor = committed.block.number + 1
    finally:
        unsubscribe()


async def _handle_connection(
    state: PeerState, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
) -> None:
    peer = state.peer
    try:
        while True:
            try:
                message = await read_message(reader)
                kind = message_type(message)
            except ConnectionClosed:
                return
            except (FrameError, WireError) as exc:
                try:
                    await write_message(writer, error_message(str(exc)))
                except (ConnectionError, OSError):
                    pass
                return

            if kind == "ping":
                await write_message(
                    writer,
                    {"type": "pong", "node": peer.name, "height": peer.ledger.height},
                )
            elif kind == "endorse":
                try:
                    proposal = dec_proposal(message.get("proposal"))
                except WireError as exc:
                    await write_message(writer, error_message(str(exc)))
                    continue
                timestamp = float(message.get("timestamp", 0.0))
                arrived = state.now()
                outcome = peer.endorse(proposal, timestamp)
                record_phase(
                    state.telemetry, "endorse", proposal.tx_id,
                    arrived, state.now(), node=peer.name,
                    ok=isinstance(outcome, ProposalResponse),
                )
                if isinstance(outcome, ProposalResponse):
                    await write_message(
                        writer,
                        {
                            "type": "endorse_result",
                            "ok": True,
                            "response": enc_proposal_response(outcome),
                        },
                    )
                else:
                    await write_message(
                        writer,
                        {
                            "type": "endorse_result",
                            "ok": False,
                            "failure": enc_endorsement_failure(outcome),
                        },
                    )
            elif kind == "ledger_info":
                await write_message(
                    writer,
                    {
                        "type": "ledger_info_result",
                        "peer": peer.name,
                        "height": peer.ledger.height,
                        "fingerprint": peer.ledger.state.fingerprint().hex(),
                    },
                )
            elif kind == "metrics":
                await write_message(
                    writer, metrics_result_message(state.telemetry, peer.name, message)
                )
            elif kind == "deliver":
                start = message.get("start_block", 0)
                if not isinstance(start, int) or start < 0:
                    await write_message(
                        writer, error_message(f"bad deliver start_block {start!r}")
                    )
                    return
                await _handle_deliver(state, writer, start)
                return
            else:
                await write_message(
                    writer, error_message(f"peer cannot handle {kind!r}")
                )
    except (ConnectionError, OSError, asyncio.CancelledError):
        return
    finally:
        writer.close()


async def _serve(
    state: PeerState, orderer_host: str, orderer_port: int, port_conn
) -> None:
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, stop.set)

    server = await asyncio.start_server(
        lambda r, w: _handle_connection(state, r, w), "127.0.0.1", 0
    )
    port = server.sockets[0].getsockname()[1]
    port_conn.send(port)
    port_conn.close()

    follower = asyncio.create_task(_follow_orderer(state, orderer_host, orderer_port))
    try:
        async with server:
            stop_wait = asyncio.create_task(stop.wait())
            done, _pending = await asyncio.wait(
                {stop_wait, follower}, return_when=asyncio.FIRST_COMPLETED
            )
            if follower in done:
                follower.result()  # surface the follower's failure
    finally:
        follower.cancel()
        state.peer.ledger.state.close()


def peer_process_main(
    profile_dict: dict, qualified_name: str, orderer_host: str, orderer_port: int, port_conn
) -> None:
    """Entry point of a spawned peer process."""

    profile = ClusterProfile.from_dict(profile_dict)
    state = PeerState(build_peer(profile, qualified_name))
    if profile.config.telemetry_enabled:
        state.enable_telemetry()
    asyncio.run(_serve(state, orderer_host, orderer_port, port_conn))
