"""The socket transport: the full Gateway programming model over TCP.

:class:`SocketTransport` is the client side of the distributed runtime — a
complete :class:`~repro.gateway.transport.Transport`, so every Gateway
feature works against a :class:`~repro.net.cluster.Cluster` unchanged:
``submit`` / ``submit_async`` / ``submit_batch`` / ``evaluate``,
``gateway.block_events()`` and ``contract.contract_events()`` with
checkpoint/resume, and the channel's commit-status tracking.

The design mirrors how a real Fabric Gateway client is structured:

* **Mirror peers.**  For each remote peer the transport keeps a
  :class:`MirrorPeer` — a real :class:`~repro.fabric.ledger.Ledger` plus
  :class:`~repro.fabric.events.EventHub` — fed by that peer's deliver
  stream.  Absorbing a block re-verifies its integrity and hash chain
  (``Ledger.append_block``), so every streamed block is cryptographically
  checked against what the orderer cut; applying its effective writes
  rebuilds the peer's world state client-side.  All existing event-service
  machinery (deliver sessions, block/contract streams, checkpoints) then
  runs unmodified on the mirrors — the streams cannot tell a mirror from
  an in-process peer.
* **One private event loop**, driven synchronously.  Public methods run
  ``loop.run_until_complete(...)``; the per-peer deliver readers are
  long-lived tasks on the same loop, so they make progress during *any*
  transport call (and during :meth:`pump`, for pure event consumers).
  No background threads, no locks beyond per-connection request ordering.
* **Typed failure, never a hang.**  Every request carries a deadline; an
  endorsement that times out or hits a dead peer becomes an
  :class:`~repro.fabric.transaction.EndorsementFailure` inside the normal
  endorsement round (surfacing as ``EndorseError`` at ``commit_status()``),
  a failed broadcast raises :class:`~repro.gateway.errors.SubmitError`,
  and a commit that never arrives raises
  :class:`~repro.net.errors.CommitTimeoutError`.
"""

from __future__ import annotations

import asyncio
from typing import Optional, Sequence

from ..common.serialization import from_bytes
from ..common.types import TxStatus, Version
from ..events.deliver import DeliverService
from ..fabric.client import Client, EndorsementRoundFailure, select_endorsing_orgs
from ..fabric.events import EventHub
from ..fabric.ledger import Ledger
from ..fabric.store import WriteBatch
from ..fabric.transaction import EndorsementFailure, Proposal, TransactionEnvelope
from ..gateway.channel import NUM_CLIENTS, Channel
from ..gateway.errors import EndorseError, SubmitError
from ..gateway.transport import (
    EndorsementFailureHook,
    SubmittedTransaction,
    Transport,
)
from ..telemetry.lifecycle import record_phase
from .codec import install_codec_metrics, read_message, uninstall_codec_metrics, write_message
from .errors import (
    CommitTimeoutError,
    ConnectionClosed,
    PeerUnreachableError,
    RequestTimeout,
    TransportError,
)
from .profile import (
    ClusterProfile,
    build_chaincode_registry,
    build_membership,
    default_policy,
)
from .wire import (
    dec_committed_block,
    dec_endorsement_failure,
    dec_proposal_response,
    enc_envelope,
    enc_proposal,
    message_type,
)

#: Default per-request deadline (endorse, broadcast, ledger_info).
DEFAULT_REQUEST_TIMEOUT_S = 10.0

#: Default deadline for a submitted transaction's commit status.
DEFAULT_COMMIT_TIMEOUT_S = 60.0


class MirrorPeer:
    """A client-side replica of one remote peer's ledger and event hub.

    Quacks like :class:`~repro.fabric.peer.Peer` for everything the event
    service needs — ``ledger``, ``events``, ``name`` — so deliver sessions
    and Gateway streams attach to it unchanged.  It cannot endorse; the
    transport routes endorsements to the real peer over its socket.
    """

    def __init__(self, name: str, org_name: str) -> None:
        self.name = name
        self.org_name = org_name
        self.ledger = Ledger()
        self.events = EventHub(name)

    def absorb(self, committed) -> None:
        """Apply one streamed block: state, chain (verified), then publish.

        Same order as :meth:`Peer.apply_prepared`; ``append_block``
        re-checks the block's data hash and chain link, so a corrupted or
        tampered stream fails loudly here instead of silently skewing the
        mirror.
        """

        block = committed.block
        batch = WriteBatch(block_number=block.number)
        for tx_index, write in committed.writes_applied():
            batch.put(
                write.key, write.value, Version(block.number, tx_index), write.is_delete
            )
        self.ledger.state.apply_batch(batch)
        self.ledger.append_block(committed)
        self.events.publish(committed)

    def __repr__(self) -> str:
        return f"<MirrorPeer {self.name} height={self.ledger.height}>"


class RemoteChannel(Channel):
    """A client-side :class:`Channel` view of a remote cluster.

    Shares the real Channel's *surface* — clients, policies, chaincode
    registry, status tracking, convergence checks — but its peers are
    :class:`MirrorPeer` replicas fed by deliver streams instead of live
    protocol engines.  Membership is rebuilt deterministically from the
    topology, so this channel's clients produce signatures (and, with the
    same submission order, transaction IDs) identical to an in-process
    channel's.
    """

    def __init__(self, profile: ClusterProfile) -> None:
        # Deliberately no super().__init__: the base constructor builds
        # live peers; this channel mirrors remote ones.
        self.config = profile.config
        self.profile = profile
        self.membership = build_membership(profile.config.topology, NUM_CLIENTS)
        self.chaincodes, explicit = build_chaincode_registry(profile.chaincodes)
        fallback = default_policy(profile.config.topology)
        self._policies = {
            name: explicit.get(name, fallback) for name in self.chaincodes.names()
        }
        self.peers = [
            MirrorPeer(endpoint.name, endpoint.org) for endpoint in profile.peers
        ]
        topology = profile.config.topology
        self.clients = [
            Client(
                self.membership.enroll(
                    topology.org_names[i % topology.num_orgs], f"client{i}"
                ),
                self.membership,
            )
            for i in range(NUM_CLIENTS)
        ]
        self.statuses: dict[str, TxStatus] = {}
        # Commit tracking rides the anchor mirror's deliver session, the
        # same pattern the base channel uses on its anchor peer.
        self._deliver_session = DeliverService(self.anchor_peer).deliver(
            self._on_commit, start_block=0
        )


class _NodeConnection:
    """One request/response connection, with FIFO request ordering."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self.reader = reader
        self.writer = writer
        self.lock = asyncio.Lock()


class SocketTransport(Transport):
    """A :class:`Transport` speaking the wire protocol to a live cluster."""

    def __init__(
        self,
        profile: ClusterProfile,
        request_timeout_s: float = DEFAULT_REQUEST_TIMEOUT_S,
        commit_timeout_s: float = DEFAULT_COMMIT_TIMEOUT_S,
        telemetry=None,
    ) -> None:
        self.profile = profile
        self.channel = RemoteChannel(profile)
        self.request_timeout_s = request_timeout_s
        self.commit_timeout_s = commit_timeout_s
        #: Client-side :class:`~repro.telemetry.Telemetry` (optional):
        #: ``submit`` lifecycle spans on its own wall clock, plus frame
        #: codec counters labelled ``node="client"``.
        self.telemetry = telemetry
        self._codec_handle = (
            install_codec_metrics(telemetry.metrics, node="client")
            if telemetry is not None
            else None
        )
        self._loop = asyncio.new_event_loop()
        self._conns: dict[str, _NodeConnection] = {}
        self._deliver_tasks: list[asyncio.Task] = []
        self._closed = False

    # -- construction -------------------------------------------------------------

    @classmethod
    def connect(
        cls,
        profile: ClusterProfile,
        request_timeout_s: float = DEFAULT_REQUEST_TIMEOUT_S,
        commit_timeout_s: float = DEFAULT_COMMIT_TIMEOUT_S,
        telemetry=None,
    ) -> "SocketTransport":
        """Open request connections to every node and start deliver streams."""

        transport = cls(profile, request_timeout_s, commit_timeout_s, telemetry=telemetry)
        try:
            transport._run(transport._open_all())
        except BaseException:
            transport.close()
            raise
        return transport

    async def _open_all(self) -> None:
        orderer = self.profile.orderer
        self._conns["orderer"] = await self._open(orderer.host, orderer.port, "orderer")
        for endpoint, mirror in zip(self.profile.peers, self.channel.peers):
            self._conns[endpoint.name] = await self._open(
                endpoint.host, endpoint.port, endpoint.name
            )
            self._deliver_tasks.append(
                asyncio.get_running_loop().create_task(
                    self._deliver_reader(endpoint, mirror)
                )
            )

    async def _open(self, host: str, port: int, label: str) -> _NodeConnection:
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port), self.request_timeout_s
            )
        except asyncio.TimeoutError:
            raise RequestTimeout(f"connecting to {label} at {host}:{port} timed out")
        except (ConnectionError, OSError) as exc:
            raise PeerUnreachableError(f"cannot reach {label} at {host}:{port}: {exc}")
        return _NodeConnection(reader, writer)

    async def _deliver_reader(self, endpoint, mirror: MirrorPeer) -> None:
        """Feed one mirror from its peer's deliver stream, forever."""

        try:
            reader, writer = await asyncio.open_connection(endpoint.host, endpoint.port)
        except (ConnectionError, OSError):
            return
        try:
            await write_message(writer, {"type": "deliver", "start_block": 0})
            while True:
                message = await read_message(reader)
                if message_type(message) != "block":
                    raise TransportError(
                        f"deliver stream from {endpoint.name} sent "
                        f"{message.get('type')!r}"
                    )
                mirror.absorb(dec_committed_block(message.get("committed")))
        except (ConnectionClosed, ConnectionError, OSError, asyncio.CancelledError):
            return
        finally:
            writer.close()

    # -- plumbing -----------------------------------------------------------------

    def _run(self, coro):
        if self._closed:
            raise TransportError("transport is closed")
        return self._loop.run_until_complete(coro)

    async def _request(self, node: str, message: dict, label: str) -> dict:
        conn = self._conns[node]
        try:
            async with conn.lock:
                await asyncio.wait_for(
                    write_message(conn.writer, message), self.request_timeout_s
                )
                reply = await asyncio.wait_for(
                    read_message(conn.reader), self.request_timeout_s
                )
        except asyncio.TimeoutError:
            raise RequestTimeout(
                f"{label} to {node} timed out after {self.request_timeout_s:g}s"
            )
        except (ConnectionClosed, ConnectionError, OSError) as exc:
            raise PeerUnreachableError(f"{label} to {node} failed: {exc}")
        if message_type(reply) == "error":
            raise TransportError(f"{label} to {node} rejected: {reply.get('error')}")
        return reply

    def pump(self, seconds: float = 0.05) -> None:
        """Run the event loop briefly so deliver streams make progress.

        Event-stream consumers that are not otherwise calling the
        transport use this to let blocks arrive (the loop only runs inside
        transport calls — there is no background thread).
        """

        self._run(asyncio.sleep(seconds))

    # -- endorsement --------------------------------------------------------------

    async def _endorse_one(
        self, peer_name: str, proposal: Proposal, timestamp: float
    ):
        try:
            reply = await self._request(
                peer_name,
                {
                    "type": "endorse",
                    "proposal": enc_proposal(proposal),
                    "timestamp": timestamp,
                },
                "endorse",
            )
        except TransportError as exc:
            # A dead or slow peer is an endorsement failure, not a crash:
            # the round continues and the policy decides if it still passes.
            return EndorsementFailure(
                proposal.tx_id, peer_name, f"transport: {exc}"
            )
        if reply.get("ok"):
            return dec_proposal_response(reply.get("response"))
        return dec_endorsement_failure(reply.get("failure"))

    async def _endorse(
        self, proposal: Proposal, peer_names: Sequence[str], timestamp: float
    ):
        outcomes = await asyncio.gather(
            *(self._endorse_one(name, proposal, timestamp) for name in peer_names)
        )
        responses = [o for o in outcomes if not isinstance(o, EndorsementFailure)]
        failures = [o for o in outcomes if isinstance(o, EndorsementFailure)]
        return responses, failures

    # -- the Transport ABC --------------------------------------------------------

    def submit_async(
        self,
        chaincode: str,
        function: str,
        args: Sequence[str],
        client_index: int = 0,
        on_endorsement_failure: Optional[EndorsementFailureHook] = None,
    ) -> SubmittedTransaction:
        channel = self.channel
        client = channel.client(client_index)
        policy = channel.policy_for(chaincode)
        now = self.now
        # Submit spans run on the client Telemetry's own wall clock (the
        # transport's protocol ``now`` is a constant zero by design).
        started = self.telemetry.now() if self.telemetry is not None else 0.0
        proposal = client.new_proposal(channel.name, chaincode, function, args, policy, now)
        endorsing_orgs = select_endorsing_orgs(policy, channel.org_names)
        peer_names = [self.profile.peers_of(org)[0].name for org in endorsing_orgs]
        responses, failures = self._run(self._endorse(proposal, peer_names, now))
        outcome = client.assemble(proposal, responses, failures)
        if isinstance(outcome, EndorsementRoundFailure):
            if on_endorsement_failure is not None:
                on_endorsement_failure(proposal.tx_id, now)
            self._record_submit(proposal.tx_id, started, "endorse_failed")
            return SubmittedTransaction(
                self, proposal.tx_id, now, ordered=False, endorse_failure=outcome,
                chaincode=chaincode, function=function,
            )
        envelope = outcome.envelope
        result_bytes = envelope.chaincode_result
        if envelope.rwset.is_read_only:
            self._record_submit(proposal.tx_id, started, "read_only")
            return SubmittedTransaction(
                self, proposal.tx_id, now, ordered=False, result_bytes=result_bytes,
                chaincode=chaincode, function=function,
                chaincode_event=envelope.event,
            )
        self._run(self._broadcast(envelope))
        self._record_submit(proposal.tx_id, started, "ordered")
        return SubmittedTransaction(
            self, proposal.tx_id, now, result_bytes=result_bytes,
            chaincode=chaincode, function=function,
            chaincode_event=envelope.event,
        )

    def _record_submit(self, tx_id: str, started: float, outcome: str) -> None:
        if self.telemetry is not None:
            record_phase(
                self.telemetry, "submit", tx_id, started, self.telemetry.now(),
                node="client", outcome=outcome,
            )

    async def _broadcast(self, envelope: TransactionEnvelope) -> dict:
        try:
            return await self._request(
                "orderer",
                {"type": "broadcast", "envelope": enc_envelope(envelope)},
                "broadcast",
            )
        except TransportError as exc:
            raise SubmitError(
                envelope.tx_id, f"could not hand {envelope.tx_id} to the orderer: {exc}"
            ) from exc

    def evaluate(self, chaincode, function, args, client_index: int = 0):
        """Read-only invocation, endorsed by the remote anchor peer."""

        channel = self.channel
        client = channel.client(client_index)
        policy = channel.policy_for(chaincode)
        now = self.now
        proposal = client.new_proposal(channel.name, chaincode, function, args, policy, now)
        anchor = self.profile.anchor_peer.name
        responses, failures = self._run(self._endorse(proposal, [anchor], now))
        outcome = client.assemble(proposal, responses, failures)
        if isinstance(outcome, EndorsementRoundFailure):
            raise EndorseError(outcome)
        return from_bytes(outcome.envelope.chaincode_result)

    def wait_for(self, tx: SubmittedTransaction) -> TxStatus:
        status = self.channel.statuses.get(tx.tx_id)
        if status is None:
            # Drain anything already on the wire before forcing a cut.
            self.pump(0.01)
            status = self.channel.statuses.get(tx.tx_id)
        if status is None:
            # Same semantics as SyncTransport.wait_for: an unresolved
            # transaction is (presumably) sitting in the pending batch.
            self.flush()
            status = self._run(self._await_status(tx.tx_id))
        return status

    async def _await_status(self, tx_id: str) -> TxStatus:
        deadline = self._loop.time() + self.commit_timeout_s
        while True:
            status = self.channel.statuses.get(tx_id)
            if status is not None:
                return status
            if self._loop.time() >= deadline:
                raise CommitTimeoutError(tx_id, self.commit_timeout_s)
            await asyncio.sleep(0.005)

    def flush(self) -> dict:
        """Force-cut the orderer's pending batch (remote ``flush``)."""

        return self._run(self._request("orderer", {"type": "flush"}, "flush"))

    # -- cluster inspection -------------------------------------------------------

    def ledger_info(self, peer_index: int = 0) -> dict:
        """The *remote* peer's height and state fingerprint (hex).

        This asks the actual peer process — not the local mirror — so it is
        the ground truth for convergence/parity checks.
        """

        name = self.profile.peers[peer_index].name
        return self._run(self._request(name, {"type": "ledger_info"}, "ledger_info"))

    def node_metrics(self, node: str, include_spans: bool = False) -> dict:
        """One node's telemetry over the wire (``"orderer"`` or a peer name).

        Returns the ``metrics_result`` payload: ``enabled`` (whether the
        process runs with ``telemetry_enabled``), ``snapshot`` (its
        registry, empty when disabled), and — with ``include_spans`` —
        ``spans``, the node's recorded lifecycle spans.
        """

        request = {"type": "metrics"}
        if include_spans:
            request["include_spans"] = True
        return self._run(self._request(node, request, "metrics"))

    def cluster_metrics(self, include_spans: bool = False) -> dict[str, dict]:
        """Every node's ``metrics_result``, keyed by node name.

        The client's own registry (codec counters, when this transport was
        given a Telemetry) rides along under ``"client"`` so one call
        yields the whole cluster's observability state; merge the
        snapshots with :func:`repro.telemetry.merge_snapshots` for a
        cluster-wide registry view.
        """

        results = {"orderer": self.node_metrics("orderer", include_spans)}
        for endpoint in self.profile.peers:
            results[endpoint.name] = self.node_metrics(endpoint.name, include_spans)
        if self.telemetry is not None:
            payload = {
                "type": "metrics_result",
                "node": "client",
                "enabled": True,
                "snapshot": self.telemetry.metrics.snapshot(),
            }
            if include_spans:
                payload["spans"] = [span.to_dict() for span in self.telemetry.spans]
            results["client"] = payload
        return results

    def wait_for_height(self, height: int, timeout_s: float = 30.0) -> None:
        """Block until every remote peer's ledger reaches ``height``."""

        self._run(self._await_height(height, timeout_s))

    async def _await_height(self, height: int, timeout_s: float) -> None:
        deadline = self._loop.time() + timeout_s
        pending = list(range(len(self.profile.peers)))
        while pending:
            still: list[int] = []
            for index in pending:
                name = self.profile.peers[index].name
                info = await self._request(name, {"type": "ledger_info"}, "ledger_info")
                if info.get("height", 0) < height:
                    still.append(index)
            pending = still
            if pending:
                if self._loop.time() >= deadline:
                    names = [self.profile.peers[i].name for i in pending]
                    raise CommitTimeoutError(
                        "<height barrier>", timeout_s,
                        f"peers {names} below height {height}",
                    )
                await asyncio.sleep(0.01)

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        """Tear down every connection and the private loop.  Idempotent."""

        if self._closed:
            return
        if self._codec_handle is not None:
            uninstall_codec_metrics(self._codec_handle)
            self._codec_handle = None
        for task in self._deliver_tasks:
            task.cancel()
        if self._deliver_tasks:
            self._loop.run_until_complete(
                asyncio.gather(*self._deliver_tasks, return_exceptions=True)
            )
        for conn in self._conns.values():
            conn.writer.close()
        # One settling pass so transports flush their close frames.
        self._loop.run_until_complete(asyncio.sleep(0))
        self.channel.close()
        self._loop.close()
        self._closed = True

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"SocketTransport({len(self.profile.peers)} peers + orderer, {state})"
        )
