"""The process supervisor: spawn, health-check, and terminate a cluster.

:class:`Cluster` turns one :class:`~repro.common.config.NetworkConfig`
into real OS processes: one orderer plus ``num_orgs × peers_per_org``
peers, each an asyncio server from :mod:`repro.net.ordererserver` /
:mod:`repro.net.peerserver`.  The ``multiprocessing`` *spawn* context is
used deliberately — children import the package fresh, exactly like
independently deployed nodes, instead of inheriting a forked copy of the
parent's interpreter state.

Port allocation is race-free: every child binds ``127.0.0.1:0`` itself
and reports the kernel-assigned port back through a pipe, so two clusters
can run side by side (CI shards, tests) without coordination.  Startup is
fail-fast — a child that does not report its port within the deadline
takes the whole cluster down with a :class:`ClusterStartupError` rather
than leaving half a network running.

Shutdown is deterministic: SIGTERM first (the servers close their state
stores on it), a bounded join, then SIGKILL for stragglers.  The class is
a context manager; see ``examples/distributed_network.py``.
"""

from __future__ import annotations

import multiprocessing
import socket
import struct
from typing import Optional, Sequence

from ..common.config import NetworkConfig
from .codec import HEADER_BYTES, MAGIC, encode_message
from .errors import ClusterStartupError, PeerUnreachableError
from .ordererserver import orderer_process_main
from .peerserver import peer_process_main
from .profile import (
    ChaincodeRef,
    ClusterProfile,
    Endpoint,
    PeerEndpoint,
    config_to_dict,
    peer_identity_names,
    resolve_chaincode_refs,
)
from .wire import WireError, message_type

#: Seconds a spawned node gets to bind its port and report it.
DEFAULT_STARTUP_TIMEOUT_S = 30.0

#: Seconds a node gets to exit after SIGTERM before SIGKILL.
TERMINATE_GRACE_S = 5.0

HOST = "127.0.0.1"


def _ping_blocking(host: str, port: int, timeout_s: float) -> dict:
    """Synchronous ping round-trip (supervisor-side health check).

    Uses a plain blocking socket instead of the client event loop: the
    supervisor has no loop of its own, and a health check must not depend
    on the machinery it is checking.
    """

    try:
        with socket.create_connection((host, port), timeout=timeout_s) as sock:
            sock.settimeout(timeout_s)
            sock.sendall(encode_message({"type": "ping"}))
            header = _recv_exact(sock, HEADER_BYTES)
            if header[: len(MAGIC)] != MAGIC:
                raise PeerUnreachableError(
                    f"{host}:{port} answered with a non-protocol byte stream"
                )
            (length,) = struct.unpack(">I", header[len(MAGIC) :])
            payload = _recv_exact(sock, length)
    except (ConnectionError, OSError, TimeoutError) as exc:
        raise PeerUnreachableError(f"cannot ping {host}:{port}: {exc}") from exc
    from ..common.serialization import from_bytes

    message = from_bytes(payload)
    if message_type(message) != "pong":
        raise WireError(f"ping answered with {message.get('type')!r}")
    return message


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    data = b""
    while len(data) < count:
        chunk = sock.recv(count - len(data))
        if not chunk:
            raise PeerUnreachableError("connection closed mid-message")
        data += chunk
    return data


class Cluster:
    """A running multi-process network: one orderer + the configured peers."""

    def __init__(
        self,
        profile: ClusterProfile,
        processes: "list[multiprocessing.process.BaseProcess]",
    ) -> None:
        self.profile = profile
        self._processes = processes
        self._terminated = False

    # -- construction -------------------------------------------------------------

    @classmethod
    def spawn(
        cls,
        config: Optional[NetworkConfig] = None,
        chaincodes: Sequence["ChaincodeRef | str"] = (),
        startup_timeout_s: float = DEFAULT_STARTUP_TIMEOUT_S,
    ) -> "Cluster":
        """Start every node as its own OS process and wait until all answer.

        ``chaincodes`` lists import specs (``"module:Class"``) or
        :class:`~repro.net.profile.ChaincodeRef` objects; each node
        instantiates its own copy.  Returns only after every node has
        reported its port *and* answered a ping.
        """

        resolved_config = config if config is not None else NetworkConfig()
        refs = resolve_chaincode_refs(chaincodes)
        config_dict = config_to_dict(resolved_config)
        ctx = multiprocessing.get_context("spawn")
        processes: list[multiprocessing.process.BaseProcess] = []

        def fail(detail: str) -> ClusterStartupError:
            _stop_processes(processes)
            return ClusterStartupError(detail)

        # Orderer first: peers connect to its deliver stream on startup.
        orderer_recv, orderer_send = ctx.Pipe(duplex=False)
        orderer_proc = ctx.Process(
            target=orderer_process_main,
            args=(config_dict, orderer_send),
            name="repro-orderer",
            daemon=True,
        )
        orderer_proc.start()
        orderer_send.close()
        processes.append(orderer_proc)
        if not orderer_recv.poll(startup_timeout_s):
            raise fail(f"orderer did not report a port within {startup_timeout_s:g}s")
        orderer_port = orderer_recv.recv()
        orderer_recv.close()

        # The partial profile the peers boot from (no peer ports yet —
        # peers only need the config, the chaincodes, and the orderer).
        boot_profile = ClusterProfile(
            config=resolved_config,
            orderer=Endpoint(HOST, orderer_port),
            peers=(),
            chaincodes=refs,
        ).to_dict()

        peer_endpoints: list[PeerEndpoint] = []
        pending: list[tuple[str, str, object]] = []
        for org_name, identity_name in peer_identity_names(resolved_config.topology):
            qualified = f"{org_name}.{identity_name}"
            recv_end, send_end = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=peer_process_main,
                args=(boot_profile, qualified, HOST, orderer_port, send_end),
                name=f"repro-peer-{qualified}",
                daemon=True,
            )
            proc.start()
            send_end.close()
            processes.append(proc)
            pending.append((qualified, org_name, recv_end))

        for qualified, org_name, recv_end in pending:
            if not recv_end.poll(startup_timeout_s):
                raise fail(
                    f"peer {qualified} did not report a port within "
                    f"{startup_timeout_s:g}s"
                )
            port = recv_end.recv()
            recv_end.close()
            peer_endpoints.append(PeerEndpoint(qualified, org_name, HOST, port))

        profile = ClusterProfile(
            config=resolved_config,
            orderer=Endpoint(HOST, orderer_port),
            peers=tuple(peer_endpoints),
            chaincodes=refs,
        )
        cluster = cls(profile, processes)
        try:
            cluster.health_check(timeout_s=startup_timeout_s)
        except (PeerUnreachableError, WireError) as exc:
            cluster.terminate()
            raise ClusterStartupError(f"cluster failed its startup health check: {exc}")
        return cluster

    # -- health -------------------------------------------------------------------

    def health_check(self, timeout_s: float = 5.0) -> dict[str, dict]:
        """Ping every node; returns per-node pong payloads, raises on failure."""

        results: dict[str, dict] = {}
        results["orderer"] = _ping_blocking(
            self.profile.orderer.host, self.profile.orderer.port, timeout_s
        )
        for peer in self.profile.peers:
            results[peer.name] = _ping_blocking(peer.host, peer.port, timeout_s)
        return results

    def alive(self) -> bool:
        """Whether every node process is still running."""

        return all(proc.is_alive() for proc in self._processes)

    # -- shutdown -----------------------------------------------------------------

    def terminate(self) -> None:
        """Stop every node: SIGTERM, bounded join, SIGKILL stragglers."""

        if self._terminated:
            return
        self._terminated = True
        _stop_processes(self._processes)

    def __enter__(self) -> "Cluster":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.terminate()

    def __repr__(self) -> str:
        state = "terminated" if self._terminated else ("up" if self.alive() else "degraded")
        return (
            f"Cluster({len(self.profile.peers)} peers + orderer on {HOST}, {state})"
        )


def _stop_processes(processes: "list[multiprocessing.process.BaseProcess]") -> None:
    for proc in processes:
        if proc.is_alive():
            proc.terminate()
    for proc in processes:
        proc.join(TERMINATE_GRACE_S)
        if proc.is_alive():
            proc.kill()
            proc.join(TERMINATE_GRACE_S)
