"""Telemetry artifacts + console summaries for the bench CLI.

``python -m repro.bench smoke --telemetry`` collects one
``{"label", "metrics", "spans"}`` entry per round (see
:class:`~repro.workload.runner.BenchmarkReport`); this module turns those
entries into the on-disk artifacts CI uploads (span/metric JSONL dumps and
a Prometheus text page) and the per-phase latency breakdown printed to the
console.  Everything here runs *after* the measured run, on plain data —
the instrumented pipeline never touches this module.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Mapping, Optional

from ..telemetry import (
    PHASES,
    Span,
    complete_traces,
    format_breakdown,
    format_span_tree,
    phase_breakdown,
)
from ..telemetry.export import (
    render_prometheus_nodes,
    write_metrics_jsonl,
    write_spans_jsonl,
)


def _slug(label: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "_", label)


def dump_round_telemetry(
    entry: dict,
    out_dir: "str | Path",
    transport: str = "des",
    node_snapshots: Optional[Mapping[str, dict]] = None,
) -> list[Path]:
    """Write one round's artifacts; returns the paths written.

    ``entry`` is a BenchmarkReport telemetry entry.  For socket runs pass
    ``node_snapshots`` (per-process registries fetched over the wire) so
    the Prometheus page carries a ``node`` label per process; DES rounds
    have one in-process registry, exported under the ``sim`` node.
    """

    out = Path(out_dir)
    prefix = f"{transport}_{_slug(entry['label'])}"
    snapshots = dict(node_snapshots) if node_snapshots else {"sim": entry["metrics"]}
    spans = [Span.from_dict(data) for data in entry["spans"]]
    paths = [
        write_spans_jsonl(out / f"{prefix}_spans.jsonl", spans),
        write_metrics_jsonl(out / f"{prefix}_metrics.jsonl", snapshots),
    ]
    prom_path = out / f"{prefix}.prom"
    prom_path.parent.mkdir(parents=True, exist_ok=True)
    prom_path.write_text(render_prometheus_nodes(snapshots), encoding="utf-8")
    paths.append(prom_path)
    return paths


def summarize_round_telemetry(entry: dict, show_tree: bool = True) -> bool:
    """Print the round's phase breakdown (+ one sampled span tree).

    Returns True when at least one trace covers all six lifecycle phases —
    the smoke acceptance check for span completeness.
    """

    spans = [Span.from_dict(data) for data in entry["spans"]]
    complete = complete_traces(spans)
    print(f"telemetry[{entry['label']}]: {len(spans)} spans, "
          f"{len(complete)} complete traces ({'/'.join(PHASES)})")
    if spans:
        print(format_breakdown(phase_breakdown(spans)))
    if complete and show_tree:
        print(format_span_tree(spans, sorted(complete)[0]))
    return bool(complete)
