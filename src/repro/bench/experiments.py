"""One experiment definition per figure of the paper's evaluation (§7).

Each ``figureN`` function declares the paper's sweep as a
:class:`~repro.workload.runner.Benchmark` — one FabricCRDT round and one
vanilla-Fabric round per sweep point, on the calibrated cost model — and
returns a :class:`FigureResult` whose ``format()`` mirrors the figure's
three panels.  ``PAPER_*`` dictionaries hold the published numbers
(the *revised* arXiv figures) so EXPERIMENTS.md can print paper-vs-measured
tables.

Scaling: the paper submits 10,000 transactions per run.  All functions take
``transactions`` so CI-scale runs stay fast; `python -m repro.bench` defaults
to full scale.  ``light_topology`` collapses the network to one org / one
peer — metrics are taken from a single peer either way (§7.2 studies peer
internals; every peer does identical work), so this only saves wall-clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..common.config import (
    CRDTConfig,
    NetworkConfig,
    OrdererConfig,
    TopologyConfig,
)
from ..fabric.costmodel import CostModel
from ..workload.metrics import BenchmarkResult
from ..workload.report import format_figure
from ..workload.runner import Benchmark, Round, run_round
from ..workload.spec import (
    WorkloadSpec,
    table1_spec,
    table2_spec,
    table3_spec,
    table4_spec,
    table5_spec,
)
from .calibration import calibrated_cost_model

#: The paper's "best configuration" block sizes fixed after Figure 3 (§7.3).
CRDT_BLOCK_SIZE = 25
FABRIC_BLOCK_SIZE = 400

FIG3_BLOCK_SIZES = (25, 50, 100, 200, 300, 400, 600, 800, 1000)
FIG4_READ_WRITE = ((1, 1), (3, 1), (3, 3), (5, 1), (5, 3), (5, 5))
FIG5_COMPLEXITY = ((2, 2), (3, 3), (4, 4), (5, 5), (6, 6))
FIG6_RATES = (100, 200, 300, 400, 500)
FIG7_CONFLICT_PCT = (0, 20, 40, 60, 80)

# -- published numbers (revised arXiv version), for paper-vs-measured tables --

PAPER_FIG3_CRDT_TPS = {25: 267, 50: 246, 100: 217, 200: 106, 300: 58,
                       400: 41.5, 600: 20, 800: 19, 1000: 20}
PAPER_FIG3_FABRIC_TPS = {25: 0.6, 50: 0.7, 100: 0.4, 200: 0.9, 300: 1.4,
                         400: 1.4, 600: 1.1, 800: 1.5, 1000: 1.1}
PAPER_FIG3_CRDT_LATENCY = {25: 2.8, 50: 4.8, 100: 8.3, 200: 34, 300: 75,
                           400: 111, 600: 257, 800: 265, 1000: 264}
PAPER_FIG4_CRDT_TPS = {(1, 1): 264, (3, 1): 205, (3, 3): 157,
                       (5, 1): 189, (5, 3): 135, (5, 5): 106}
PAPER_FIG5_CRDT_TPS = {(2, 2): 219, (3, 3): 198, (4, 4): 152,
                       (5, 5): 120, (6, 6): 100}
PAPER_FIG6_CRDT_TPS = {100: 100, 200: 200, 300: 241, 400: 264, 500: 250}
PAPER_FIG7_CRDT_TPS = {0: 240, 20: 240, 40: 234, 60: 240, 80: 215}
PAPER_FIG7_FABRIC_TPS = {0: 222.6, 20: 229.3, 40: 160, 60: 110.2, 80: 52.4}
PAPER_FIG7_FABRIC_SUCCESS = {0: 10000, 20: 8065, 40: 5973, 60: 4051, 80: 2085}


@dataclass(frozen=True)
class ExperimentScale:
    """How big to run: transaction count, topology, and state backend.

    ``state_backend`` selects the peers' world-state store ("memory" or
    "sqlite") — deterministic metrics are identical on either, so CI runs
    the smoke benchmark on both to prove it.
    """

    transactions: int = 10000
    light_topology: bool = True
    seed: int = 0
    state_backend: str = "memory"

    def topology(self) -> TopologyConfig:
        if self.light_topology:
            return TopologyConfig(num_orgs=1, peers_per_org=1)
        return TopologyConfig()


@dataclass
class FigureResult:
    """Results of one figure's sweep, plus the paper's reference numbers."""

    figure: str
    sweep_label: str
    sweep_values: tuple
    crdt: dict = field(default_factory=dict)
    fabric: dict = field(default_factory=dict)
    paper_crdt_tps: dict = field(default_factory=dict)
    paper_fabric_tps: dict = field(default_factory=dict)

    def format(self) -> str:
        return format_figure(
            self.figure, self.sweep_label, self.sweep_values, self.crdt, self.fabric
        )

    def comparison_rows(self) -> list[dict]:
        """Paper-vs-measured throughput rows for EXPERIMENTS.md."""

        rows = []
        for value in self.sweep_values:
            crdt = self.crdt.get(value)
            fabric = self.fabric.get(value)
            rows.append(
                {
                    "sweep": value,
                    "crdt_paper_tps": self.paper_crdt_tps.get(value),
                    "crdt_measured_tps": round(crdt.throughput_tps, 1) if crdt else None,
                    "crdt_measured_latency_s": round(crdt.avg_latency_s, 1) if crdt else None,
                    "crdt_successful": crdt.successful if crdt else None,
                    "fabric_paper_tps": self.paper_fabric_tps.get(value),
                    "fabric_measured_tps": round(fabric.throughput_tps, 1) if fabric else None,
                    "fabric_successful": fabric.successful if fabric else None,
                }
            )
        return rows


def _network_config(
    scale: ExperimentScale, block_size: int, crdt_enabled: bool
) -> NetworkConfig:
    return NetworkConfig(
        topology=scale.topology(),
        orderer=OrdererConfig(max_message_count=block_size),
        crdt=CRDTConfig(),
        crdt_enabled=crdt_enabled,
        seed=scale.seed,
        state_backend=scale.state_backend,
    )


def _pair_rounds(
    spec: WorkloadSpec,
    scale: ExperimentScale,
    crdt_block: int = CRDT_BLOCK_SIZE,
    fabric_block: int = FABRIC_BLOCK_SIZE,
) -> tuple[Round, Round]:
    """The FabricCRDT/Fabric round pair every sweep point declares."""

    return (
        Round(
            spec.scaled(scale.transactions).with_crdt(True),
            _network_config(scale, crdt_block, True),
        ),
        Round(
            spec.scaled(scale.transactions).with_crdt(False),
            _network_config(scale, fabric_block, False),
        ),
    )


def _run_sweep(
    figure: FigureResult,
    sweep: "Sequence[tuple[object, Round, Round]]",
    cost: CostModel,
) -> FigureResult:
    """Run a declared sweep — one (key, crdt round, fabric round) triple per
    point — as a single :class:`Benchmark` and index the results back."""

    rounds: list[Round] = []
    for _, crdt_round, fabric_round in sweep:
        rounds.extend((crdt_round, fabric_round))
    report = Benchmark(rounds, cost=cost).run()
    for index, (key, _, _) in enumerate(sweep):
        figure.crdt[key] = report.results[2 * index]
        figure.fabric[key] = report.results[2 * index + 1]
    return figure


def figure3(
    scale: ExperimentScale = ExperimentScale(),
    block_sizes: Sequence[int] = FIG3_BLOCK_SIZES,
    cost: Optional[CostModel] = None,
) -> FigureResult:
    """Figure 3 — effect of block size (Table 1 workload)."""

    cost = cost if cost is not None else calibrated_cost_model()
    result = FigureResult(
        "Figure 3: effect of block size",
        "txs/block",
        tuple(block_sizes),
        paper_crdt_tps=PAPER_FIG3_CRDT_TPS,
        paper_fabric_tps=PAPER_FIG3_FABRIC_TPS,
    )
    spec = table1_spec(total_transactions=scale.transactions, seed=7)
    sweep = [
        (
            block_size,
            *_pair_rounds(spec, scale, crdt_block=block_size, fabric_block=block_size),
        )
        for block_size in block_sizes
    ]
    return _run_sweep(result, sweep, cost)


def figure4(
    scale: ExperimentScale = ExperimentScale(),
    read_write: Sequence[tuple[int, int]] = FIG4_READ_WRITE,
    cost: Optional[CostModel] = None,
) -> FigureResult:
    """Figure 4 — reads/writes per transaction (Table 2 workload)."""

    cost = cost if cost is not None else calibrated_cost_model()
    result = FigureResult(
        "Figure 4: reads and writes per transaction",
        "R-W keys",
        tuple(read_write),
        paper_crdt_tps=PAPER_FIG4_CRDT_TPS,
    )
    sweep = [
        (
            (reads, writes),
            *_pair_rounds(
                table2_spec(reads, writes, total_transactions=scale.transactions, seed=7),
                scale,
            ),
        )
        for reads, writes in read_write
    ]
    return _run_sweep(result, sweep, cost)


def figure5(
    scale: ExperimentScale = ExperimentScale(),
    complexity: Sequence[tuple[int, int]] = FIG5_COMPLEXITY,
    cost: Optional[CostModel] = None,
) -> FigureResult:
    """Figure 5 — JSON complexity (Table 3 workload)."""

    cost = cost if cost is not None else calibrated_cost_model()
    result = FigureResult(
        "Figure 5: JSON object complexity",
        "keys-depth",
        tuple(complexity),
        paper_crdt_tps=PAPER_FIG5_CRDT_TPS,
    )
    sweep = [
        (
            (keys, depth),
            *_pair_rounds(
                table3_spec(keys, depth, total_transactions=scale.transactions, seed=7),
                scale,
            ),
        )
        for keys, depth in complexity
    ]
    return _run_sweep(result, sweep, cost)


def figure6(
    scale: ExperimentScale = ExperimentScale(),
    rates: Sequence[int] = FIG6_RATES,
    cost: Optional[CostModel] = None,
) -> FigureResult:
    """Figure 6 — transaction arrival rate (Table 4 workload)."""

    cost = cost if cost is not None else calibrated_cost_model()
    result = FigureResult(
        "Figure 6: transaction arrival rate",
        "tx/s",
        tuple(rates),
        paper_crdt_tps=PAPER_FIG6_CRDT_TPS,
    )
    sweep = [
        (
            rate,
            *_pair_rounds(
                table4_spec(float(rate), total_transactions=scale.transactions, seed=7),
                scale,
            ),
        )
        for rate in rates
    ]
    return _run_sweep(result, sweep, cost)


def figure7(
    scale: ExperimentScale = ExperimentScale(),
    conflict_percentages: Sequence[int] = FIG7_CONFLICT_PCT,
    cost: Optional[CostModel] = None,
) -> FigureResult:
    """Figure 7 — percentage of conflicting transactions (Table 5 workload)."""

    cost = cost if cost is not None else calibrated_cost_model()
    result = FigureResult(
        "Figure 7: conflicting-transaction percentage",
        "% conflicts",
        tuple(conflict_percentages),
        paper_crdt_tps=PAPER_FIG7_CRDT_TPS,
        paper_fabric_tps=PAPER_FIG7_FABRIC_TPS,
    )
    sweep = [
        (
            pct,
            *_pair_rounds(
                table5_spec(float(pct), total_transactions=scale.transactions, seed=7),
                scale,
            ),
        )
        for pct in conflict_percentages
    ]
    return _run_sweep(result, sweep, cost)


def timeout_sweep(
    scale: ExperimentScale = ExperimentScale(),
    timeouts_s: Sequence[float] = (1.0, 2.0, 4.0, 8.0),
    block_size: int = 1000,
    cost: Optional[CostModel] = None,
) -> FigureResult:
    """Extension experiment: the batch timeout behind Figure 3's flattening.

    The paper fixes the batch timeout at 2 s, which caps effective blocks at
    ``rate × timeout = 600`` transactions — our explanation for why its
    600/800/1000 points coincide.  Sweeping the timeout at a nominal block
    size of 1000 exposes the mechanism: short timeouts keep blocks small and
    throughput high; once the timeout exceeds the ~3.3 s needed to fill
    1000 transactions at 300 tx/s, throughput settles at the full-block
    figure (≈20 tx/s, the calibration anchor).
    """

    cost = cost if cost is not None else calibrated_cost_model()
    result = FigureResult(
        f"Timeout sweep: batch timeout at {block_size} txs/block",
        "timeout [s]",
        tuple(timeouts_s),
    )
    for timeout_s in timeouts_s:
        spec = table1_spec(total_transactions=scale.transactions, seed=7)
        config = NetworkConfig(
            topology=scale.topology(),
            orderer=OrdererConfig(
                max_message_count=block_size, batch_timeout_s=timeout_s
            ),
            crdt=CRDTConfig(),
            crdt_enabled=True,
            seed=scale.seed,
        )
        result.crdt[timeout_s] = run_round(Round(spec, config), cost=cost)
    return result


FIGURES: dict[str, Callable[..., FigureResult]] = {
    "fig3": figure3,
    "fig4": figure4,
    "fig5": figure5,
    "fig6": figure6,
    "fig7": figure7,
    "timeout": timeout_sweep,
}
