"""Command-line entry point: regenerate the paper's figures.

Usage::

    python -m repro.bench fig3              # full scale (10,000 txs/run)
    python -m repro.bench fig7 --transactions 2000
    python -m repro.bench all --transactions 1000 --json results.json
    python -m repro.bench calibration       # print the fitted constants
    python -m repro.bench smoke             # <60s CI two-round Benchmark
    python -m repro.bench smoke --json out.json --golden benchmarks/golden/smoke.json

``smoke`` runs one declarative two-round Benchmark (FabricCRDT at its best
block size vs vanilla Fabric at its own) through the full Gateway → DES →
commit → metrics pipeline.  ``--golden`` compares the run's deterministic
metrics against a checked-in fingerprint and exits non-zero on drift;
``--write-golden`` regenerates that fingerprint file.

Full-scale runs take minutes (Figure 3's 1000-tx blocks do real quadratic
merge work); scaled-down runs preserve the qualitative shapes.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from ..telemetry import merge_snapshots
from ..workload.report import format_result_details
from ..workload.reporter import JsonReporter, deterministic_fingerprint, golden_drift
from ..workload.runner import Benchmark, Round
from ..workload.spec import table1_spec
from .calibration import calibrated_cost_model, calibration_report
from .experiments import (
    CRDT_BLOCK_SIZE,
    FABRIC_BLOCK_SIZE,
    FIGURES,
    ExperimentScale,
    _network_config,
)


def _smoke_benchmark(
    scale: ExperimentScale, json_path: "str | None", telemetry: bool = False
) -> "Benchmark":
    """The CI smoke experiment as a declared two-round Benchmark."""

    spec = table1_spec(total_transactions=scale.transactions, seed=7)
    return Benchmark(
        rounds=[
            Round(spec, _network_config(scale, CRDT_BLOCK_SIZE, True)),
            Round(
                spec.with_crdt(False),
                _network_config(scale, FABRIC_BLOCK_SIZE, False),
            ),
        ],
        cost=calibrated_cost_model(),
        reporter=JsonReporter(json_path) if json_path else None,
        telemetry=telemetry,
    )


def _run_smoke(args: argparse.Namespace) -> int:
    scale = ExperimentScale(
        transactions=min(args.transactions, 300),
        light_topology=not args.full_topology,
        seed=args.seed,
        state_backend=args.state_backend,
    )
    started = time.time()
    report = _smoke_benchmark(scale, args.json, telemetry=args.telemetry).run()
    for result in report.results:
        print(format_result_details(result))
        print()
    print(f"[smoke: {time.time() - started:.1f}s wall clock, "
          f"{scale.transactions} txs/round, 2 rounds, "
          f"{scale.state_backend} state backend]")
    if args.json:
        print(f"benchmark results written to {args.json}")
    if args.telemetry:
        from .telemetry import dump_round_telemetry, summarize_round_telemetry

        incomplete = []
        for index, entry in enumerate(report.telemetry):
            print()
            if not summarize_round_telemetry(entry, show_tree=index == 0):
                incomplete.append(entry["label"])
            if args.telemetry_dir:
                for path in dump_round_telemetry(entry, args.telemetry_dir):
                    print(f"telemetry artifact: {path}")
        if incomplete:
            print(
                f"TELEMETRY: no complete lifecycle trace in round(s) "
                f"{', '.join(incomplete)}",
                file=sys.stderr,
            )
            return 1
    fingerprints = [deterministic_fingerprint(result) for result in report.results]
    if args.write_golden:
        with open(args.write_golden, "w", encoding="utf-8") as handle:
            json.dump({"fingerprints": fingerprints}, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"golden fingerprint written to {args.write_golden}")
    if args.golden:
        with open(args.golden, "r", encoding="utf-8") as handle:
            golden = json.load(handle)["fingerprints"]
        drift = golden_drift(report.results, golden)
        if drift is not None:
            print(f"DETERMINISTIC-METRICS DRIFT: {drift}", file=sys.stderr)
            return 1
        print(f"deterministic metrics match {args.golden}")
    return 0


def _run_socket_smoke(args: argparse.Namespace) -> int:
    """Distributed-runtime smoke: multi-process cluster vs in-process run.

    Spawns the orderer and peers as separate OS processes, drives the
    seeded workload over the socket transport, and asserts that every
    remote peer's committed state fingerprint equals the in-process
    :class:`LocalNetwork` run of the same workload.
    """

    from ..net.smoke import run_parity_smoke

    started = time.time()
    report = run_parity_smoke(
        state_backend=args.state_backend,
        transactions=min(args.transactions, 300),
        seed=args.seed if args.seed else 7,
        telemetry=args.telemetry,
    )
    print(report.format())
    print(f"[socket smoke: {time.time() - started:.1f}s wall clock, "
          f"{args.state_backend} state backend]")
    if args.telemetry:
        from .telemetry import dump_round_telemetry, summarize_round_telemetry

        node_payloads = report.remote.telemetry or {}
        entry = {
            "label": f"parity-{report.backend}",
            "metrics": merge_snapshots(
                payload["snapshot"] for payload in node_payloads.values()
            ),
            "spans": [
                span
                for node in sorted(node_payloads)
                for span in node_payloads[node].get("spans", [])
            ],
        }
        print()
        complete = summarize_round_telemetry(entry)
        if args.telemetry_dir:
            snapshots = {
                node: payload["snapshot"] for node, payload in node_payloads.items()
            }
            for path in dump_round_telemetry(
                entry, args.telemetry_dir, transport="socket", node_snapshots=snapshots
            ):
                print(f"telemetry artifact: {path}")
        if not complete:
            print("TELEMETRY: no complete lifecycle trace in socket run", file=sys.stderr)
            return 1
    if args.json:
        payload = {
            "backend": report.backend,
            "passed": report.passed,
            "problems": report.problems,
            "local_fingerprints": report.local.fingerprints,
            "remote_fingerprints": report.remote.fingerprints,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"parity report written to {args.json}")
    return 0 if report.passed else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the FabricCRDT paper's evaluation figures.",
    )
    parser.add_argument(
        "target",
        choices=[*FIGURES.keys(), "all", "calibration", "smoke"],
        help="which figure to regenerate (smoke: one small fig3 point for CI)",
    )
    parser.add_argument(
        "--transactions",
        type=int,
        default=10000,
        help="transactions per run (paper: 10000)",
    )
    parser.add_argument(
        "--full-topology",
        action="store_true",
        help="use the paper's 3-orgs x 2-peers topology (slower, same metrics)",
    )
    parser.add_argument("--seed", type=int, default=0, help="network seed")
    parser.add_argument(
        "--state-backend",
        choices=["memory", "sqlite"],
        default="memory",
        help="world-state store backend (deterministic metrics are identical)",
    )
    parser.add_argument(
        "--transport",
        choices=["des", "socket"],
        default="des",
        help="(smoke) des: in-process discrete-event pipeline; socket: run the "
        "workload against a real multi-process cluster and assert state "
        "fingerprint parity with an in-process run",
    )
    parser.add_argument("--json", metavar="PATH", help="also dump rows as JSON")
    parser.add_argument(
        "--telemetry",
        action="store_true",
        help="(smoke) collect lifecycle spans + node metrics out-of-band; "
        "prints the per-phase latency breakdown (deterministic metrics are "
        "byte-identical with or without this flag)",
    )
    parser.add_argument(
        "--telemetry-dir",
        metavar="DIR",
        help="(smoke --telemetry) write span/metric JSONL dumps and a "
        "Prometheus text page per round under DIR",
    )
    parser.add_argument(
        "--golden",
        metavar="PATH",
        help="(smoke) fail if deterministic metrics drift from this fingerprint file",
    )
    parser.add_argument(
        "--write-golden",
        metavar="PATH",
        help="(smoke) regenerate the deterministic-metrics fingerprint file",
    )
    args = parser.parse_args(argv)

    if args.target == "calibration":
        print(json.dumps(calibration_report(), indent=2))
        return 0

    if args.transport == "socket":
        if args.target != "smoke":
            parser.error("--transport socket only applies to the smoke target")
        return _run_socket_smoke(args)

    if args.target == "smoke":
        return _run_smoke(args)

    scale = ExperimentScale(
        transactions=args.transactions,
        light_topology=not args.full_topology,
        seed=args.seed,
        state_backend=args.state_backend,
    )
    targets = list(FIGURES) if args.target == "all" else [args.target]
    dump: dict[str, list[dict]] = {}
    for name in targets:
        started = time.time()
        result = FIGURES[name](scale)
        elapsed = time.time() - started
        print(result.format())
        print(f"[{name}: {elapsed:.1f}s wall clock, {args.transactions} txs/run]")
        print()
        dump[name] = result.comparison_rows()
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(dump, handle, indent=2, default=str)
        print(f"rows written to {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
