"""Command-line entry point: regenerate the paper's figures.

Usage::

    python -m repro.bench fig3              # full scale (10,000 txs/run)
    python -m repro.bench fig7 --transactions 2000
    python -m repro.bench all --transactions 1000 --json results.json
    python -m repro.bench calibration       # print the fitted constants
    python -m repro.bench smoke             # <60s CI sanity point (fig3 @ 25 txs/block)

Full-scale runs take minutes (Figure 3's 1000-tx blocks do real quadratic
merge work); scaled-down runs preserve the qualitative shapes.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from .calibration import calibration_report
from .experiments import FIGURES, ExperimentScale, figure3


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the FabricCRDT paper's evaluation figures.",
    )
    parser.add_argument(
        "target",
        choices=[*FIGURES.keys(), "all", "calibration", "smoke"],
        help="which figure to regenerate (smoke: one small fig3 point for CI)",
    )
    parser.add_argument(
        "--transactions",
        type=int,
        default=10000,
        help="transactions per run (paper: 10000)",
    )
    parser.add_argument(
        "--full-topology",
        action="store_true",
        help="use the paper's 3-orgs x 2-peers topology (slower, same metrics)",
    )
    parser.add_argument("--seed", type=int, default=0, help="network seed")
    parser.add_argument("--json", metavar="PATH", help="also dump rows as JSON")
    args = parser.parse_args(argv)

    if args.target == "calibration":
        print(json.dumps(calibration_report(), indent=2))
        return 0

    if args.target == "smoke":
        # One scaled-down Figure-3 point: enough to exercise the full
        # Gateway → DES → commit → metrics pipeline in well under a minute.
        scale = ExperimentScale(
            transactions=min(args.transactions, 300),
            light_topology=not args.full_topology,
            seed=args.seed,
        )
        started = time.time()
        result = figure3(scale, block_sizes=(25,))
        print(result.format())
        print(f"[smoke: {time.time() - started:.1f}s wall clock, "
              f"{scale.transactions} txs/run]")
        if args.json:
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump({"smoke": result.comparison_rows()}, handle, indent=2, default=str)
            print(f"rows written to {args.json}")
        return 0

    scale = ExperimentScale(
        transactions=args.transactions,
        light_topology=not args.full_topology,
        seed=args.seed,
    )
    targets = list(FIGURES) if args.target == "all" else [args.target]
    dump: dict[str, list[dict]] = {}
    for name in targets:
        started = time.time()
        result = FIGURES[name](scale)
        elapsed = time.time() - started
        print(result.format())
        print(f"[{name}: {elapsed:.1f}s wall clock, {args.transactions} txs/run]")
        print()
        dump[name] = result.comparison_rows()
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(dump, handle, indent=2, default=str)
        print(f"rows written to {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
