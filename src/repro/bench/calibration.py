"""Fitting the two CRDT-merge cost constants to the paper's anchors.

The cost model (:class:`repro.fabric.costmodel.CostModel`) has exactly two
free parameters: the per-operation cost and the per-list-scan-step cost of
the JSON-CRDT block merge.  Everything else is a structural constant (see
that module's docstring).  We fit the two parameters against two
*commit-bound* anchor points of the paper's evaluation:

* **Figure 3, 1000 txs/block**: FabricCRDT ≈ 20 tx/s → 50 s per block;
* **Figure 5, 6–6 complexity, 25 txs/block**: ≈ 100 tx/s → 0.25 s per block.

For each anchor we *run the real Algorithm-1 merge* on a synthetic block of
the corresponding workload, measure the actual (ops, scan-steps, bytes)
counters, subtract the non-merge commit costs, and solve the 2×2 linear
system.  Measuring rather than assuming op counts keeps the calibration
valid if the merge implementation changes.

No other figure or sweep point is used for fitting — the mid-curve shapes
must emerge (and EXPERIMENTS.md records how well they do).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..common.config import CRDTConfig
from ..common.errors import CalibrationError
from ..common.serialization import to_bytes
from ..core.jsonmerge import init_empty_crdt, merge_crdt
from ..fabric.costmodel import CostModel
from ..workload.iot import nested_payload, reading_payload


@dataclass(frozen=True)
class MergeWorkSample:
    """Measured merge work for one synthetic block on one hot key."""

    block_size: int
    ops: int
    scan_steps: int
    merged_value_bytes: int

    def bytes_written_total(self) -> int:
        """Total write bytes: every tx in the block commits the merged value."""

        return self.merged_value_bytes * self.block_size


def measure_merge_work(
    block_size: int, json_keys: int = 2, nesting_depth: int = 1
) -> MergeWorkSample:
    """Run Algorithm 1's merge loop for one key over a synthetic block."""

    config = CRDTConfig()
    first_payload = _payload(json_keys, nesting_depth, 0)
    merged = init_empty_crdt("device-hot-0", first_payload, actor="calib")
    ops = 0
    for sequence in range(block_size):
        operations = merge_crdt(merged, _payload(json_keys, nesting_depth, sequence), config)
        ops += len(operations)
    assert merged.document is not None
    return MergeWorkSample(
        block_size=block_size,
        ops=ops,
        scan_steps=merged.document.stats.list_scan_steps,
        merged_value_bytes=len(to_bytes(merged.document.to_plain())),
    )


def _payload(json_keys: int, nesting_depth: int, sequence: int) -> dict:
    if nesting_depth > 1:
        return nested_payload(json_keys, nesting_depth, 20, sequence)
    return reading_payload("device-hot-0", 20, sequence)


# ---------------------------------------------------------------------------
# Anchors (paper numbers, revised arXiv figures)
# ---------------------------------------------------------------------------

#: Figure 3: FabricCRDT throughput at 1000 txs/block.
ANCHOR_FIG3_BLOCK = 1000
ANCHOR_FIG3_TPS = 20.0

#: Figure 5: FabricCRDT throughput at 6 keys / depth 6, 25 txs/block.
ANCHOR_FIG5_KEYS = 6
ANCHOR_FIG5_DEPTH = 6
ANCHOR_FIG5_BLOCK = 25
ANCHOR_FIG5_TPS = 100.0


def _non_merge_commit_time(base: CostModel, sample: MergeWorkSample, distinct_keys: int) -> float:
    return (
        base.commit_base_s
        + base.vscc_per_tx_s * sample.block_size
        + base.write_per_key_s * distinct_keys
        + base.write_per_kib_s * (sample.bytes_written_total() / 1024.0)
    )


@lru_cache(maxsize=1)
def calibrated_cost_model() -> CostModel:
    """The cost model with merge constants solved from the two anchors."""

    base = CostModel()
    fig3 = measure_merge_work(ANCHOR_FIG3_BLOCK, json_keys=2, nesting_depth=1)
    fig5 = measure_merge_work(
        ANCHOR_FIG5_BLOCK, json_keys=ANCHOR_FIG5_KEYS, nesting_depth=ANCHOR_FIG5_DEPTH
    )

    target_fig3 = ANCHOR_FIG3_BLOCK / ANCHOR_FIG3_TPS - _non_merge_commit_time(base, fig3, 1)
    target_fig5 = ANCHOR_FIG5_BLOCK / ANCHOR_FIG5_TPS - _non_merge_commit_time(base, fig5, 1)
    if target_fig3 <= 0 or target_fig5 <= 0:
        raise CalibrationError("non-merge costs exceed anchor block times")

    # Solve: ops*cop + scan*csc = target, for the two anchors.
    a11, a12, b1 = float(fig3.ops), float(fig3.scan_steps), target_fig3
    a21, a22, b2 = float(fig5.ops), float(fig5.scan_steps), target_fig5
    determinant = a11 * a22 - a12 * a21
    if abs(determinant) < 1e-9:
        raise CalibrationError("anchor work vectors are colinear; cannot solve")
    per_op = (b1 * a22 - b2 * a12) / determinant
    per_scan = (a11 * b2 - a21 * b1) / determinant
    if per_op <= 0 or per_scan <= 0:
        raise CalibrationError(
            f"calibration produced non-positive constants: "
            f"per_op={per_op:.3g}, per_scan={per_scan:.3g}"
        )
    return base.with_merge_constants(per_op, per_scan)


def calibration_report() -> dict:
    """Diagnostics for EXPERIMENTS.md: measured work and solved constants."""

    model = calibrated_cost_model()
    fig3 = measure_merge_work(ANCHOR_FIG3_BLOCK, 2, 1)
    fig5 = measure_merge_work(ANCHOR_FIG5_BLOCK, ANCHOR_FIG5_KEYS, ANCHOR_FIG5_DEPTH)
    return {
        "merge_per_op_s": model.merge_per_op_s,
        "merge_per_scan_step_s": model.merge_per_scan_step_s,
        "anchor_fig3": {
            "block_size": fig3.block_size,
            "ops": fig3.ops,
            "scan_steps": fig3.scan_steps,
            "target_tps": ANCHOR_FIG3_TPS,
        },
        "anchor_fig5": {
            "block_size": fig5.block_size,
            "ops": fig5.ops,
            "scan_steps": fig5.scan_steps,
            "target_tps": ANCHOR_FIG5_TPS,
        },
    }
