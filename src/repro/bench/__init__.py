"""Experiment definitions: one function per figure, plus calibration."""

from .calibration import (
    MergeWorkSample,
    calibrated_cost_model,
    calibration_report,
    measure_merge_work,
)
from .experiments import (
    CRDT_BLOCK_SIZE,
    FABRIC_BLOCK_SIZE,
    FIG3_BLOCK_SIZES,
    FIG4_READ_WRITE,
    FIG5_COMPLEXITY,
    FIG6_RATES,
    FIG7_CONFLICT_PCT,
    FIGURES,
    ExperimentScale,
    FigureResult,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
)

__all__ = [
    "calibrated_cost_model",
    "calibration_report",
    "measure_merge_work",
    "MergeWorkSample",
    "ExperimentScale",
    "FigureResult",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "FIGURES",
    "FIG3_BLOCK_SIZES",
    "FIG4_READ_WRITE",
    "FIG5_COMPLEXITY",
    "FIG6_RATES",
    "FIG7_CONFLICT_PCT",
    "CRDT_BLOCK_SIZE",
    "FABRIC_BLOCK_SIZE",
]
