"""Closed-form performance model — a fast cross-check of the simulator.

For commit- or endorsement-bound configurations the steady-state behaviour
of the pipeline has a simple closed form:

* block service time  ``T(B) = commit_time(work(B))`` with the merge work
  measured by actually running Algorithm 1 on a synthetic block;
* system throughput   ``min(arrival rate, endorsement capacity, B / T(B))``;
* average latency     queue-growth deficit over the run plus the pipeline
  base latency (endorsement + half the block fill time + commit).

The analytic model shares the *constants* with the simulator but none of its
mechanics, so agreement between the two (see
``benchmarks/test_analytic_model.py``) is a meaningful consistency check —
and disagreement localizes bugs to either the queueing dynamics or the cost
arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..fabric.costmodel import CostModel
from ..fabric.peer import CommitWork
from .calibration import calibrated_cost_model, measure_merge_work


@dataclass(frozen=True)
class PredictedPoint:
    """Analytic prediction for one configuration."""

    block_size: int
    block_time_s: float
    throughput_tps: float
    avg_latency_s: float
    bottleneck: str  # "arrival" | "endorsement" | "commit"


def block_commit_time(
    block_size: int,
    cost: CostModel,
    json_keys: int = 2,
    nesting_depth: int = 1,
    distinct_keys: int = 1,
) -> float:
    """Predicted commit service time of one all-conflicting block."""

    sample = measure_merge_work(block_size, json_keys, nesting_depth)
    work = CommitWork(
        tx_count=block_size,
        vscc_checks=block_size,
        mvcc_reads=0,  # CRDT transactions skip MVCC
        writes_applied=block_size,
        distinct_keys_written=distinct_keys,
        bytes_written=sample.bytes_written_total(),
        merge_ops=sample.ops,
        merge_scan_steps=sample.scan_steps,
    )
    return cost.commit_time(work)


def predict_point(
    block_size: int,
    arrival_tps: float = 300.0,
    total_transactions: int = 10000,
    cost: Optional[CostModel] = None,
    json_keys: int = 2,
    nesting_depth: int = 1,
    reads: int = 1,
    writes: int = 1,
) -> PredictedPoint:
    """Analytic throughput/latency for one FabricCRDT configuration.

    The effective block size is capped by what the batch timeout lets
    accumulate at the offered rate (the flattening visible in Figure 3
    beyond ~600 txs/block with the paper's 2 s timeout).
    """

    cost = cost if cost is not None else calibrated_cost_model()
    timeout_cap = max(1, int(arrival_tps * 2.0))  # batch_timeout_s = 2 s
    effective_block = min(block_size, timeout_cap)

    block_time = block_commit_time(effective_block, cost, json_keys, nesting_depth)
    commit_cap = effective_block / block_time
    endorse_cap = cost.endorsement_capacity_tps(reads, writes)
    throughput = min(arrival_tps, endorse_cap, commit_cap)

    if throughput >= arrival_tps * 0.999:
        bottleneck = "arrival"
    elif commit_cap <= endorse_cap:
        bottleneck = "commit"
    else:
        bottleneck = "endorsement"

    # Latency: base pipeline latency plus the average queueing delay of an
    # overloaded run (deficit grows linearly: average is half the final).
    base = (
        cost.endorse_time(reads, writes)
        + (effective_block / arrival_tps) / 2.0
        + block_time
    )
    if throughput < arrival_tps:
        run_span = total_transactions / throughput
        submit_span = total_transactions / arrival_tps
        queue_delay = max(0.0, (run_span - submit_span)) / 2.0
    else:
        queue_delay = 0.0
    return PredictedPoint(
        block_size=block_size,
        block_time_s=block_time,
        throughput_tps=throughput,
        avg_latency_s=base + queue_delay,
        bottleneck=bottleneck,
    )


def predict_figure3(
    block_sizes: Sequence[int] = (25, 50, 100, 200, 300, 400, 600, 800, 1000),
    arrival_tps: float = 300.0,
    total_transactions: int = 10000,
    cost: Optional[CostModel] = None,
) -> dict[int, PredictedPoint]:
    """Analytic FabricCRDT series for Figure 3."""

    return {
        size: predict_point(size, arrival_tps, total_transactions, cost)
        for size in block_sizes
    }
