"""FabricCRDT reproduction — CRDT-merged transactions for permissioned blockchains.

Reproduces *FabricCRDT: A Conflict-Free Replicated Datatypes Approach to
Permissioned Blockchains* (Middleware '19).  The package provides:

* :mod:`repro.fabric` — a from-scratch Hyperledger Fabric substrate
  (execute-order-validate, MVCC, endorsement policies, block cutting);
* :mod:`repro.crdt` — a CRDT library, including the op-based JSON CRDT the
  paper builds on;
* :mod:`repro.core` — FabricCRDT itself (Algorithms 1 and 2, the CRDT peer);
* :mod:`repro.sim` — the discrete-event kernel behind the timed experiments;
* :mod:`repro.workload` / :mod:`repro.bench` — the Caliper-equivalent driver
  and one experiment definition per figure of the paper's evaluation.

Quickstart::

    from repro import crdt_network, fabriccrdt_config
    from repro.workload.iot import IoTChaincode

    network = crdt_network(fabriccrdt_config(max_message_count=25))
    network.deploy(IoTChaincode())
    network.invoke("iot", "record", [...])
"""

from .common.config import (
    CRDTConfig,
    NetworkConfig,
    OrdererConfig,
    TopologyConfig,
    fabric_config,
    fabriccrdt_config,
)
from .common.types import TxStatus, ValidationCode, Version
from .core.network import crdt_network, vanilla_network
from .core.peer import CRDTPeer
from .fabric.chaincode import Chaincode, ShimStub
from .fabric.localnet import LocalNetwork
from .fabric.peer import Peer

__version__ = "1.0.0"

__all__ = [
    "CRDTConfig",
    "NetworkConfig",
    "OrdererConfig",
    "TopologyConfig",
    "fabric_config",
    "fabriccrdt_config",
    "ValidationCode",
    "Version",
    "TxStatus",
    "crdt_network",
    "vanilla_network",
    "CRDTPeer",
    "Peer",
    "LocalNetwork",
    "Chaincode",
    "ShimStub",
    "__version__",
]
