"""FabricCRDT reproduction — CRDT-merged transactions for permissioned blockchains.

Reproduces *FabricCRDT: A Conflict-Free Replicated Datatypes Approach to
Permissioned Blockchains* (Middleware '19).  The package provides:

* :mod:`repro.fabric` — a from-scratch Hyperledger Fabric substrate
  (execute-order-validate, MVCC, endorsement policies, block cutting);
* :mod:`repro.crdt` — a CRDT library, including the op-based JSON CRDT the
  paper builds on;
* :mod:`repro.contract` — the chaincode authoring surface: ``Contract``
  base class with ``@transaction`` / ``@query`` decorated handlers and
  typed CRDT state handles (``ctx.crdt.counter(key).incr()``);
* :mod:`repro.core` — FabricCRDT itself (Algorithms 1 and 2, the CRDT peer);
* :mod:`repro.gateway` — the Gateway API, one transport-agnostic
  submit/evaluate surface over the synchronous and discrete-event networks;
* :mod:`repro.events` — the event service: replayable block / contract
  event streams (``gateway.block_events()``,
  ``contract.contract_events()``) with filtering and checkpointing;
* :mod:`repro.sim` — the discrete-event kernel behind the timed experiments;
* :mod:`repro.workload` / :mod:`repro.bench` — the Caliper-equivalent driver
  and one experiment definition per figure of the paper's evaluation.

Quickstart::

    import json
    from repro import Gateway, crdt_network, fabriccrdt_config
    from repro.workload.iot import IoTChaincode

    network = crdt_network(fabriccrdt_config(max_message_count=25))
    network.deploy(IoTChaincode())

    contract = Gateway.connect(network).get_contract("iot")
    contract.submit("populate", json.dumps({"keys": ["device-1"]}))
    print(contract.evaluate("read_device", json.dumps({"key": "device-1"})))
"""

from .common.config import (
    CRDTConfig,
    NetworkConfig,
    OrdererConfig,
    TopologyConfig,
    fabric_config,
    fabriccrdt_config,
)
from .common.types import TxStatus, ValidationCode, Version
from .contract import Context, Contract as ContractBase, query, transaction
from .core.network import crdt_network, vanilla_network
from .events import BlockEvent, Checkpoint, ContractEvent, FileCheckpointer
from .core.peer import CRDTPeer
from .fabric.chaincode import Chaincode, ShimStub
from .fabric.localnet import LocalNetwork
from .fabric.peer import Peer
from .gateway import (
    Channel,
    CommitError,
    Contract,
    EndorseError,
    Gateway,
    GatewayError,
    MVCCConflictError,
    SubmittedTransaction,
)

__version__ = "1.1.0"

__all__ = [
    "CRDTConfig",
    "NetworkConfig",
    "OrdererConfig",
    "TopologyConfig",
    "fabric_config",
    "fabriccrdt_config",
    "ValidationCode",
    "Version",
    "TxStatus",
    "crdt_network",
    "vanilla_network",
    "CRDTPeer",
    "Peer",
    "LocalNetwork",
    "Chaincode",
    "ShimStub",
    "ContractBase",
    "Context",
    "transaction",
    "query",
    "Gateway",
    "Contract",
    "Channel",
    "SubmittedTransaction",
    "BlockEvent",
    "ContractEvent",
    "Checkpoint",
    "FileCheckpointer",
    "GatewayError",
    "EndorseError",
    "CommitError",
    "MVCCConflictError",
    "__version__",
]
