"""Hyperledger Fabric substrate: the Execute-Order-Validate engine."""

from .block import GENESIS_PREVIOUS_HASH, Block, BlockHeader, BlockMetadata, CommittedBlock
from .chaincode import Chaincode, ChaincodeRegistry, ShimStub
from .client import (
    AssembledTransaction,
    Client,
    EndorsementRoundFailure,
    select_endorsing_orgs,
)
from .costmodel import CostModel, zero_latency_model
from .events import EventHub, statuses_from_block
from .identity import Identity, MembershipRegistry, Organization, SignedPayload
from .ledger import Ledger
from .localnet import LocalNetwork
from .orderer import OrderingService
from .peer import CommitWork, MergePlan, Peer, PreparedCommit
from .policy import (
    EndorsementPolicy,
    OutOf,
    Principal,
    and_policy,
    majority_policy,
    or_policy,
)
from .statedb import StateDB, VersionedValue, compile_selector
from .store import (
    MemoryStore,
    SqliteStore,
    StateStore,
    WriteBatch,
    create_store,
)
from .transaction import (
    EndorsementFailure,
    Proposal,
    ProposalResponse,
    TransactionEnvelope,
    rwset_hash,
    rwset_to_dict,
)

__all__ = [
    "Block",
    "BlockHeader",
    "BlockMetadata",
    "CommittedBlock",
    "GENESIS_PREVIOUS_HASH",
    "Chaincode",
    "ChaincodeRegistry",
    "ShimStub",
    "Client",
    "AssembledTransaction",
    "EndorsementRoundFailure",
    "select_endorsing_orgs",
    "CostModel",
    "zero_latency_model",
    "EventHub",
    "statuses_from_block",
    "Identity",
    "MembershipRegistry",
    "Organization",
    "SignedPayload",
    "Ledger",
    "LocalNetwork",
    "OrderingService",
    "Peer",
    "CommitWork",
    "MergePlan",
    "PreparedCommit",
    "EndorsementPolicy",
    "Principal",
    "OutOf",
    "and_policy",
    "or_policy",
    "majority_policy",
    "StateDB",
    "VersionedValue",
    "compile_selector",
    "StateStore",
    "MemoryStore",
    "SqliteStore",
    "WriteBatch",
    "create_store",
    "Proposal",
    "ProposalResponse",
    "TransactionEnvelope",
    "EndorsementFailure",
    "rwset_hash",
    "rwset_to_dict",
]
