"""The peer/network cost model: how long protocol steps take.

The discrete-event network charges virtual time for each pipeline stage using
this model.  Constants represent the paper's testbed (16-vCPU VMs, CouchDB
world state, Kafka ordering, Fabric v1.4) and fall into two groups:

* **Structural constants**, set once from known Fabric v1.4 + CouchDB
  behaviour and *not* tuned per figure: endorsement service time (chaincode
  container round-trip), per-read MVCC cost (a CouchDB version lookup),
  per-distinct-key bulk-write cost, VSCC signature checking, and small
  network latencies.
* **Calibrated constants** (``merge_per_op_s``, ``merge_per_scan_step_s``):
  the per-operation and per-list-scan-step costs of the Go JSON-CRDT merge.
  These two are fitted in :mod:`repro.bench.calibration` against exactly two
  commit-bound anchor points of the paper's evaluation (Figure 3 at 1000
  txs/block and Figure 5 at 6–6 complexity).  Everything else — saturation
  knees, latency blow-ups, success-count floors, crossovers — emerges from
  the protocol and queueing dynamics.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..sim.latency import Fixed, LatencyModel, LogNormal
from .peer import CommitWork


@dataclass(frozen=True)
class CostModel:
    """Service times and network latencies for the simulated network."""

    # -- endorsement (per proposal, per peer) --------------------------------
    #: Base chaincode invocation round-trip (container call, marshalling).
    endorse_base_s: float = 0.14
    #: Added per key read during simulation (a CouchDB GET).
    endorse_per_read_s: float = 0.01
    #: Added per key written (write-set marshalling).
    endorse_per_write_s: float = 0.005
    #: Concurrent chaincode executors per peer.  40 × 155 ms ≈ 258 proposals/s
    #: per peer — the saturation ceiling behind Figure 6's knee.
    endorsement_pool_size: int = 40

    # -- validation & commit (per block, per peer) -----------------------------
    #: Fixed per-block overhead (ledger append, bookkeeping).
    commit_base_s: float = 0.005
    #: Endorsement-policy check per transaction (signature verification);
    #: Fabric parallelizes VSCC, so this is the amortized per-tx cost.
    vscc_per_tx_s: float = 0.000075
    #: MVCC read-set check per read: a CouchDB version lookup.
    mvcc_per_read_s: float = 0.004
    #: State write per *distinct* key in the block (CouchDB bulk update).
    write_per_key_s: float = 0.001
    #: Additional per-KiB cost of written values.
    write_per_kib_s: float = 0.00005

    # -- CRDT merge (calibrated; see bench.calibration) --------------------------
    #: Per JSON-CRDT operation applied during the block merge.
    merge_per_op_s: float = 0.00008
    #: Per list cell traversed while resolving anchors/orders (the
    #: superlinear term behind Figure 3).
    merge_per_scan_step_s: float = 0.0001

    # -- network ------------------------------------------------------------------
    client_to_peer: LatencyModel = field(default_factory=lambda: LogNormal(0.002, 0.5))
    peer_to_client: LatencyModel = field(default_factory=lambda: LogNormal(0.002, 0.5))
    client_to_orderer: LatencyModel = field(default_factory=lambda: LogNormal(0.003, 0.5))
    orderer_to_peer: LatencyModel = field(default_factory=lambda: LogNormal(0.005, 0.5))

    # -- derived -------------------------------------------------------------------

    def endorse_time(self, n_reads: int, n_writes: int) -> float:
        """Service time for one proposal simulation on one peer."""

        return (
            self.endorse_base_s
            + self.endorse_per_read_s * n_reads
            + self.endorse_per_write_s * n_writes
        )

    def commit_time(self, work: CommitWork) -> float:
        """Service time for validating + committing one block on one peer."""

        return (
            self.commit_base_s
            + self.vscc_per_tx_s * work.vscc_checks
            + self.mvcc_per_read_s * work.mvcc_reads
            + self.mvcc_per_read_s * work.range_requeries
            + self.write_per_key_s * work.distinct_keys_written
            + self.write_per_kib_s * (work.bytes_written / 1024.0)
            + self.merge_per_op_s * work.merge_ops
            + self.merge_per_scan_step_s * work.merge_scan_steps
        )

    def with_merge_constants(
        self, per_op_s: float, per_scan_step_s: float
    ) -> "CostModel":
        """Copy with recalibrated merge constants."""

        return replace(
            self, merge_per_op_s=per_op_s, merge_per_scan_step_s=per_scan_step_s
        )

    def endorsement_capacity_tps(self, n_reads: int = 1, n_writes: int = 1) -> float:
        """Upper bound on proposals/second one peer can endorse."""

        return self.endorsement_pool_size / self.endorse_time(n_reads, n_writes)


def zero_latency_model() -> CostModel:
    """A cost model with all delays zeroed — for functional tests where only
    protocol behaviour matters and virtual time should stay trivial."""

    return CostModel(
        endorse_base_s=0.0,
        endorse_per_read_s=0.0,
        endorse_per_write_s=0.0,
        commit_base_s=0.0,
        vscc_per_tx_s=0.0,
        mvcc_per_read_s=0.0,
        write_per_key_s=0.0,
        write_per_kib_s=0.0,
        merge_per_op_s=0.0,
        merge_per_scan_step_s=0.0,
        client_to_peer=Fixed(0.0),
        peer_to_client=Fixed(0.0),
        client_to_orderer=Fixed(0.0),
        orderer_to_peer=Fixed(0.0),
    )
