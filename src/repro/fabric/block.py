"""Blocks: header, transaction data, and validation metadata.

Like Fabric, a block is immutable once cut by the orderer; peers record the
per-transaction validation flags in block *metadata* rather than mutating the
data section, so the hash chain covers exactly what the orderer signed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..common.hashing import chain_hash, merkle_root
from ..common.types import ValidationCode, WriteItem
from .transaction import TransactionEnvelope

#: Hash value chained before the genesis block.
GENESIS_PREVIOUS_HASH = b"\x00" * 32


@dataclass(frozen=True)
class BlockHeader:
    """Block number plus the hash links."""

    number: int
    previous_hash: bytes
    data_hash: bytes

    def hash(self) -> bytes:
        return chain_hash(self.previous_hash, self.number.to_bytes(8, "big") + self.data_hash)


@dataclass(frozen=True)
class Block:
    """An ordered batch of transactions."""

    header: BlockHeader
    transactions: tuple[TransactionEnvelope, ...]
    cut_reason: str = "unspecified"  # "count" | "bytes" | "timeout" | "flush"
    cut_time: float = 0.0

    @property
    def number(self) -> int:
        return self.header.number

    def __len__(self) -> int:
        return len(self.transactions)

    def __iter__(self) -> Iterator[TransactionEnvelope]:
        return iter(self.transactions)

    def tx_ids(self) -> tuple[str, ...]:
        return tuple(tx.tx_id for tx in self.transactions)

    @staticmethod
    def data_hash_for(transactions: tuple[TransactionEnvelope, ...]) -> bytes:
        return merkle_root(tx.payload_bytes() for tx in transactions)

    @classmethod
    def build(
        cls,
        number: int,
        previous_hash: bytes,
        transactions: tuple[TransactionEnvelope, ...],
        cut_reason: str = "unspecified",
        cut_time: float = 0.0,
    ) -> "Block":
        header = BlockHeader(
            number=number,
            previous_hash=previous_hash,
            data_hash=cls.data_hash_for(transactions),
        )
        return cls(header, transactions, cut_reason, cut_time)

    def verify_integrity(self, expected_previous_hash: Optional[bytes] = None) -> bool:
        """Check the data hash (and, if given, the chain link)."""

        if self.header.data_hash != self.data_hash_for(self.transactions):
            return False
        if expected_previous_hash is not None:
            return self.header.previous_hash == expected_previous_hash
        return True


@dataclass
class BlockMetadata:
    """Per-transaction validation flags recorded at commit time."""

    block_num: int
    flags: list[ValidationCode] = field(default_factory=list)

    def mark(self, tx_index: int, code: ValidationCode) -> None:
        while len(self.flags) <= tx_index:
            self.flags.append(ValidationCode.NOT_VALIDATED)
        self.flags[tx_index] = code

    def code_for(self, tx_index: int) -> ValidationCode:
        if tx_index >= len(self.flags):
            return ValidationCode.NOT_VALIDATED
        return self.flags[tx_index]

    @property
    def valid_count(self) -> int:
        return sum(1 for code in self.flags if code.is_valid)

    @property
    def invalid_count(self) -> int:
        return sum(1 for code in self.flags if not code.is_valid)


@dataclass(frozen=True)
class CommittedBlock:
    """A block plus the metadata a peer attached when committing it.

    ``effective_writes`` records exactly what was applied to the world state:
    ``(tx_index, write)`` pairs for every valid transaction, in commit order.
    For vanilla Fabric these equal the raw write-sets of valid transactions;
    for FabricCRDT the CRDT-flagged writes carry the *merged* values
    (Algorithm 1, line 22 replaces write values before commit).  Keeping them
    here — rather than mutating the block — preserves the orderer's hash
    chain while still making the world state a replayable function of the
    ledger (see :meth:`repro.fabric.ledger.Ledger.rebuild_state`).
    """

    block: Block
    metadata: BlockMetadata
    commit_time: float = 0.0
    effective_writes: Optional[tuple[tuple[int, WriteItem], ...]] = None

    def statuses(self) -> list[tuple[str, ValidationCode]]:
        return [
            (tx.tx_id, self.metadata.code_for(index))
            for index, tx in enumerate(self.block.transactions)
        ]

    def writes_applied(self) -> tuple[tuple[int, WriteItem], ...]:
        """The writes this commit applied, falling back to raw write-sets."""

        if self.effective_writes is not None:
            return self.effective_writes
        collected: list[tuple[int, WriteItem]] = []
        for index, tx in enumerate(self.block.transactions):
            if self.metadata.code_for(index).is_valid:
                for write in tx.rwset.writes:
                    collected.append((index, write))
        return tuple(collected)
