"""The Fabric peer: endorsement, validation (VSCC + MVCC), and commit.

This module implements the *protocol logic* only — no timing.  The
discrete-event wrapper (:mod:`repro.fabric.network`) wraps these methods with
service times; unit tests and the synchronous :class:`~repro.fabric.localnet.
LocalNetwork` call them directly.

The commit pipeline follows Fabric's committer exactly:

1. **VSCC** (per transaction, parallelizable): verify the endorsements and
   evaluate the chaincode's endorsement policy.
2. **Duplicate check**: a transaction ID already committed — or appearing
   earlier in the same block — invalidates the later occurrence.
3. **MVCC** (sequential): compare each read's version against the committed
   state *plus the writes of preceding valid transactions in this block*;
   any mismatch marks ``MVCC_READ_CONFLICT``.  Recorded range queries are
   re-executed for phantom detection.
4. **Commit**: apply the writes of valid transactions at version
   ``(block_num, tx_num)``, append the block with its metadata, publish
   events.

FabricCRDT plugs in via :meth:`Peer._plan_crdt_merge`, which the subclass in
:mod:`repro.core.peer` overrides with Algorithm 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Optional, Union

from ..common.hashing import sha256
from ..common.serialization import to_bytes
from ..common.types import (
    Counterstats,
    ReadWriteSet,
    ValidationCode,
    Version,
    WriteItem,
)
from .block import Block, BlockMetadata, CommittedBlock
from .chaincode import ChaincodeRegistry, ShimStub
from .events import EventHub
from .identity import Identity, MembershipRegistry
from .ledger import Ledger
from .store import StateStore, WriteBatch
from .transaction import (
    EndorsementFailure,
    Proposal,
    ProposalResponse,
    TransactionEnvelope,
    endorsed_payload_bytes,
)


@dataclass
class MergePlan:
    """What a CRDT-capable committer decided to do with a block.

    * ``skip_mvcc`` — indices of transactions that bypass MVCC validation
      (the paper: "CRDT transactions only go through the endorsement
      validation check").
    * ``replacement_writes`` — per transaction index, the write-set to apply
      instead of the raw one (CRDT values replaced by merged values).
    * ``forced_codes`` — transactions the merger decided to invalidate
      (e.g. unparseable CRDT payloads), overriding normal validation.
    * ``work`` — merge work counters for the cost model.
    """

    skip_mvcc: frozenset[int] = frozenset()
    replacement_writes: dict[int, tuple[WriteItem, ...]] = field(default_factory=dict)
    forced_codes: dict[int, ValidationCode] = field(default_factory=dict)
    work: dict = field(default_factory=dict)


@dataclass
class CommitWork:
    """Work accounting for one block commit (consumed by the cost model)."""

    tx_count: int = 0
    vscc_checks: int = 0
    mvcc_reads: int = 0
    range_requeries: int = 0
    writes_applied: int = 0
    distinct_keys_written: int = 0
    bytes_written: int = 0
    merge_ops: int = 0
    merge_scan_steps: int = 0
    merge_docs: int = 0


@dataclass
class PreparedCommit:
    """A fully validated (and, for FabricCRDT, merged) block ready to apply.

    Produced by :meth:`Peer.prepare_block`; applied by
    :meth:`Peer.apply_prepared`.  ``batch`` carries the block's effective
    writes as one :class:`~repro.fabric.store.WriteBatch`, applied
    atomically by the state store (one SQL transaction on the persistent
    backend).  The split exists for the discrete-event
    wrapper: validation work is computed at the *start* of the commit service
    window, the state change becomes visible at its *end* — endorsements
    sampled during the window therefore see pre-block state, exactly like a
    real peer whose commit applies atomically after validation.
    """

    block: Block
    metadata: BlockMetadata
    effective_writes: tuple[tuple[int, WriteItem], ...]
    work: CommitWork
    #: The block-scoped state mutation, applied atomically by the store.
    batch: WriteBatch


class Peer:
    """One peer node (pure logic)."""

    def __init__(
        self,
        identity: Identity,
        membership: MembershipRegistry,
        chaincodes: ChaincodeRegistry,
        store: Optional[StateStore] = None,
    ) -> None:
        self.identity = identity
        self.membership = membership
        self.chaincodes = chaincodes
        self.ledger = Ledger(store=store)
        self.events = EventHub(self.name)
        self.stats = Counterstats()
        self.last_commit_work: Optional[CommitWork] = None
        #: Telemetry context (``None`` = off; see :meth:`enable_telemetry`).
        self.telemetry = None
        self._tel: Optional[dict] = None

    @property
    def name(self) -> str:
        return self.identity.qualified_name

    @property
    def org_name(self) -> str:
        return self.identity.org.name

    # ------------------------------------------------------------------
    # Telemetry (opt-in, out-of-band)
    # ------------------------------------------------------------------

    def enable_telemetry(self, telemetry) -> None:
        """Instrument this peer into ``telemetry``'s metrics registry.

        Registers endorse/validate/merge/apply wall-clock histograms plus
        MVCC-conflict, per-code validation, and decode-cache counters, and
        wraps the world-state store in an
        :class:`~repro.fabric.store.instrument.InstrumentedStore`.  All
        measurements are real-machine ``perf_counter`` costs recorded out
        of band — protocol behaviour and simulated timings are unchanged.
        """

        from .store.instrument import InstrumentedStore

        self.telemetry = telemetry
        metrics = telemetry.metrics
        self._tel = {
            "endorse_seconds": metrics.histogram(
                "repro_peer_endorse_seconds",
                "Chaincode simulation + endorsement signing latency",
            ),
            "validate_seconds": metrics.histogram(
                "repro_peer_validate_seconds",
                "Block validation latency (VSCC + MVCC + CRDT merge)",
            ),
            "merge_seconds": metrics.histogram(
                "repro_peer_merge_seconds",
                "CRDT merge-planning latency within block validation",
            ),
            "apply_seconds": metrics.histogram(
                "repro_peer_apply_seconds",
                "Prepared-commit application latency (state + ledger + events)",
            ),
            "proposals": metrics.counter(
                "repro_peer_proposals_total", "Endorsement proposals, by outcome"
            ),
            "txs_validated": metrics.counter(
                "repro_peer_txs_validated_total",
                "Transactions validated at commit, by validation code",
            ),
            "mvcc_conflicts": metrics.counter(
                "repro_peer_mvcc_conflicts_total",
                "Transactions invalidated by MVCC or phantom read conflicts",
            ),
            "cache_hits": metrics.counter(
                "repro_peer_decode_cache_hits_total",
                "CRDT block-merge decode cache hits",
            ),
            "cache_misses": metrics.counter(
                "repro_peer_decode_cache_misses_total",
                "CRDT block-merge decode cache misses",
            ),
        }
        if not isinstance(self.ledger.state, InstrumentedStore):
            self.ledger.state = InstrumentedStore(
                self.ledger.state, telemetry, node=self.name
            )

    # ------------------------------------------------------------------
    # Endorsement (Step 2 of Figure 1)
    # ------------------------------------------------------------------

    def endorse(
        self, proposal: Proposal, timestamp: float = 0.0
    ) -> Union[ProposalResponse, EndorsementFailure]:
        """Simulate the proposal against local state and sign the result."""

        if self._tel is None:
            return self._endorse(proposal, timestamp)
        started = perf_counter()
        outcome = self._endorse(proposal, timestamp)
        self._tel["endorse_seconds"].observe(perf_counter() - started, peer=self.name)
        result = "endorsed" if isinstance(outcome, ProposalResponse) else "failed"
        self._tel["proposals"].inc(peer=self.name, outcome=result)
        return outcome

    def _endorse(
        self, proposal: Proposal, timestamp: float
    ) -> Union[ProposalResponse, EndorsementFailure]:
        self.stats.bump("proposals_received")
        try:
            chaincode = self.chaincodes.get(proposal.chaincode)
        except Exception as exc:
            self.stats.bump("endorsement_failures")
            return EndorsementFailure(proposal.tx_id, self.name, str(exc))
        stub = ShimStub(
            self.ledger.state,
            proposal.tx_id,
            timestamp,
            history=self.ledger.history_for_key,
        )
        try:
            result = chaincode.invoke(stub, proposal.function, proposal.args)
        except Exception as exc:
            self.stats.bump("endorsement_failures")
            return EndorsementFailure(
                proposal.tx_id, self.name, "chaincode error", chaincode_error=str(exc)
            )
        rwset = stub.build_rwset()
        result_bytes = to_bytes(result)
        event = stub.event
        response_hash = sha256(endorsed_payload_bytes(rwset, result_bytes, event))
        endorsement = self.membership.sign_as(self.name, response_hash)
        self.stats.bump("proposals_endorsed")
        return ProposalResponse(
            tx_id=proposal.tx_id,
            endorser=self.name,
            rwset=rwset,
            chaincode_result=result_bytes,
            endorsement=endorsement,
            event=event,
        )

    # ------------------------------------------------------------------
    # Validation + commit (Step 5 of Figure 1)
    # ------------------------------------------------------------------

    def prepare_block(self, block: Block) -> PreparedCommit:
        """Validate (and CRDT-merge, if applicable) a block without applying."""

        if self._tel is None:
            return self._prepare_block(block)
        started = perf_counter()
        prepared = self._prepare_block(block)
        tel = self._tel
        tel["validate_seconds"].observe(perf_counter() - started, peer=self.name)
        conflicts = 0
        for code in prepared.metadata.flags:
            tel["txs_validated"].inc(peer=self.name, code=code.name)
            if code in (
                ValidationCode.MVCC_READ_CONFLICT,
                ValidationCode.PHANTOM_READ_CONFLICT,
            ):
                conflicts += 1
        if conflicts:
            tel["mvcc_conflicts"].inc(conflicts, peer=self.name)
        return prepared

    def _prepare_block(self, block: Block) -> PreparedCommit:
        work = CommitWork(tx_count=len(block))
        metadata = BlockMetadata(block.number)

        precodes = self._precheck(block, work)
        if self._tel is None:
            plan = self._plan_crdt_merge(block, precodes, work) or MergePlan()
        else:
            merge_started = perf_counter()
            plan = self._plan_crdt_merge(block, precodes, work) or MergePlan()
            self._tel["merge_seconds"].observe(
                perf_counter() - merge_started, peer=self.name
            )
            self._tel["cache_hits"].inc(
                int(plan.work.get("decode_cache_hits", 0)), peer=self.name
            )
            self._tel["cache_misses"].inc(
                int(plan.work.get("decode_cache_misses", 0)), peer=self.name
            )

        pending: dict[str, Optional[Version]] = {}
        effective: list[tuple[int, WriteItem]] = []
        for tx_index, tx in enumerate(block.transactions):
            code = precodes[tx_index]
            if code is None and tx_index in plan.forced_codes:
                code = plan.forced_codes[tx_index]
            if code is None:
                if tx_index in plan.skip_mvcc:
                    code = ValidationCode.VALID
                else:
                    code = self._mvcc_validate(tx.rwset, pending, work)
            if code is ValidationCode.VALID:
                version = Version(block.number, tx_index)
                writes = plan.replacement_writes.get(tx_index, tx.rwset.writes)
                for write in writes:
                    pending[write.key] = None if write.is_delete else version
                    effective.append((tx_index, write))
            metadata.mark(tx_index, code)

        batch = WriteBatch(block_number=block.number)
        for tx_index, write in effective:
            work.writes_applied += 1
            work.bytes_written += len(write.value)
            batch.put(write.key, write.value, Version(block.number, tx_index), write.is_delete)
        work.distinct_keys_written = len(batch.distinct_keys())
        work.merge_ops = int(plan.work.get("merge_ops", 0))
        work.merge_scan_steps = int(plan.work.get("merge_scan_steps", 0))
        work.merge_docs = int(plan.work.get("merge_docs", 0))

        return PreparedCommit(
            block=block,
            metadata=metadata,
            effective_writes=tuple(effective),
            work=work,
            batch=batch,
        )

    def apply_prepared(self, prepared: PreparedCommit, commit_time: float = 0.0) -> CommittedBlock:
        """Apply a prepared commit: write state, append the block, publish."""

        if self._tel is None:
            return self._apply_prepared(prepared, commit_time)
        started = perf_counter()
        committed = self._apply_prepared(prepared, commit_time)
        self._tel["apply_seconds"].observe(perf_counter() - started, peer=self.name)
        return committed

    def _apply_prepared(self, prepared: PreparedCommit, commit_time: float) -> CommittedBlock:
        block = prepared.block
        self.ledger.state.apply_batch(prepared.batch)
        committed = CommittedBlock(
            block=block,
            metadata=prepared.metadata,
            commit_time=commit_time,
            effective_writes=prepared.effective_writes,
        )
        self.ledger.append_block(committed)
        self.stats.bump("blocks_committed")
        self.stats.bump("txs_valid", prepared.metadata.valid_count)
        self.stats.bump("txs_invalid", prepared.metadata.invalid_count)
        self.last_commit_work = prepared.work
        self.events.publish(committed)
        return committed

    def validate_and_commit(self, block: Block, commit_time: float = 0.0) -> CommittedBlock:
        """Run the full commit pipeline and append the block (synchronous)."""

        return self.apply_prepared(self.prepare_block(block), commit_time)

    # -- pipeline stages --------------------------------------------------------

    def _precheck(self, block: Block, work: CommitWork) -> list[Optional[ValidationCode]]:
        """VSCC + duplicate-TxID checks.  ``None`` means "so far valid"."""

        precodes: list[Optional[ValidationCode]] = []
        seen_in_block: set[str] = set()
        for tx in block.transactions:
            work.vscc_checks += 1
            if self.ledger.has_transaction(tx.tx_id) or tx.tx_id in seen_in_block:
                precodes.append(ValidationCode.DUPLICATE_TXID)
                continue
            seen_in_block.add(tx.tx_id)
            if not self._vscc(tx):
                precodes.append(ValidationCode.ENDORSEMENT_POLICY_FAILURE)
                continue
            precodes.append(None)
        return precodes

    def _vscc(self, tx: TransactionEnvelope) -> bool:
        """Verify endorsement signatures and evaluate the policy."""

        if not tx.endorsements:
            return False
        response_hash = sha256(
            endorsed_payload_bytes(tx.rwset, tx.chaincode_result, tx.event)
        )
        endorsing_orgs: set[str] = set()
        for endorsement in tx.endorsements:
            if not self.membership.verify(endorsement, response_hash):
                continue
            endorsing_orgs.add(self.membership.org_of(endorsement.signer).name)
        return tx.proposal.policy.satisfied_by(endorsing_orgs)

    def _mvcc_validate(
        self,
        rwset: ReadWriteSet,
        pending: dict[str, Optional[Version]],
        work: CommitWork,
    ) -> ValidationCode:
        """Sequential read-set validation against state + in-block updates."""

        for read in rwset.reads:
            work.mvcc_reads += 1
            if read.key in pending:
                current = pending[read.key]
            else:
                current = self.ledger.state.get_version(read.key)
            if read.version != current:
                return ValidationCode.MVCC_READ_CONFLICT
        for range_query in rwset.range_queries:
            work.range_requeries += 1
            observed = self._overlay_range_hash(
                range_query.start_key, range_query.end_key, pending
            )
            if observed != range_query.results_hash:
                return ValidationCode.PHANTOM_READ_CONFLICT
        return ValidationCode.VALID

    def _overlay_range_hash(
        self, start_key: str, end_key: str, pending: dict[str, Optional[Version]]
    ) -> bytes:
        """Hash of the range-query result over state overlaid with in-block
        writes, matching the hash recorded by the shim at simulation time."""

        versions: dict[str, Optional[Version]] = {}
        for key, entry in self.ledger.state.range_scan(start_key, end_key):
            versions[key] = entry.version
        for key, version in pending.items():
            if key >= start_key and (not end_key or key < end_key):
                versions[key] = version  # None means deleted
        material = [
            f"{key}\x00{versions[key]}"
            for key in sorted(versions)
            if versions[key] is not None
        ]
        return sha256("\x01".join(material).encode("utf-8"))

    # -- CRDT extension point -----------------------------------------------------

    def _plan_crdt_merge(
        self,
        block: Block,
        precodes: list[Optional[ValidationCode]],
        work: CommitWork,
    ) -> Optional[MergePlan]:
        """Hook for FabricCRDT's Algorithm 1.  Vanilla peers do nothing."""

        return None

    # -- queries ------------------------------------------------------------------

    def world_state(self) -> StateStore:
        return self.ledger.state

    def __repr__(self) -> str:
        return f"<Peer {self.name} height={self.ledger.height}>"
