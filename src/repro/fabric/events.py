"""Commit event delivery (Fabric's event hub / block listener).

Peers publish every committed block to their hub.  The hub is now an
*internal* building block of the event service: the deliver sessions in
:mod:`repro.events.deliver` ride it for live delivery, and everything else
subscribes through Gateway streams (``gateway.block_events()`` /
``contract.contract_events()``), which add replay, filtering, and
checkpointing on top.  Direct ``subscribe`` calls still work but warn once.

Subscribers never run inside the commit path's timing — in the
discrete-event network, publishing happens at the instant the commit
completes.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..common.deprecation import warn_once
from ..common.types import TxStatus, ValidationCode
from .block import CommittedBlock

BlockListener = Callable[[CommittedBlock, str], None]


class EventHub:
    """Per-peer publish/subscribe for committed blocks."""

    def __init__(self, peer_name: str) -> None:
        self.peer_name = peer_name
        self._listeners: list[BlockListener] = []
        self.published = 0

    def subscribe(self, listener: BlockListener) -> Callable[[], None]:
        """Register a listener; returns an unsubscribe function.

        .. deprecated:: use the event service instead —
           ``Gateway.connect(network).block_events()`` (or
           ``contract.contract_events()``) streams the same commits with
           replay, filtering, and checkpointing.
        """

        warn_once(
            "eventhub-subscribe",
            "peer.events.subscribe is deprecated; use the Gateway event "
            "service (gateway.block_events() / contract.contract_events())",
        )
        return self.subscribe_internal(listener)

    def subscribe_internal(self, listener: BlockListener) -> Callable[[], None]:
        """Register a listener without the deprecation warning.

        Reserved for the event service's own deliver sessions
        (:mod:`repro.events.deliver`); everything else should go through
        the Gateway streams.
        """

        self._listeners.append(listener)
        spent = False

        def unsubscribe() -> None:
            # Idempotent per registration: a second call is a no-op even if
            # the same callable was subscribed again (it must not remove the
            # other registration), and unsubscribing during a publish only
            # affects later blocks — the in-flight publish iterates over a
            # snapshot of the listener list.
            nonlocal spent
            if spent:
                return
            spent = True
            try:
                self._listeners.remove(listener)
            except ValueError:
                pass

        return unsubscribe

    def publish(self, committed: CommittedBlock) -> None:
        self.published += 1
        for listener in list(self._listeners):
            listener(committed, self.peer_name)


def statuses_from_block(
    committed: CommittedBlock,
    submit_times: Optional[dict[str, float]] = None,
) -> list[TxStatus]:
    """Expand a committed block into per-transaction statuses.

    ``submit_times`` (tx_id -> client submit time) enriches the statuses with
    latency information when available.
    """

    statuses = []
    for tx_index, tx in enumerate(committed.block.transactions):
        code = committed.metadata.code_for(tx_index)
        statuses.append(
            TxStatus(
                tx_id=tx.tx_id,
                code=code if code is not ValidationCode.NOT_VALIDATED else code,
                block_num=committed.block.number,
                tx_num=tx_index,
                submit_time=(submit_times or {}).get(tx.tx_id, tx.proposal.submit_time),
                commit_time=committed.commit_time,
            )
        )
    return statuses
