"""Client / gateway logic: gather endorsements and assemble transactions.

The client side of Steps 1–3 in Figure 1: pick endorsing peers that can
satisfy the policy, compare the returned read-write sets (Fabric clients
must receive *identical* proposal responses, otherwise the transaction is
doomed to fail validation), and assemble the signed envelope.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional, Sequence, Union

from ..common.errors import EndorsementError
from ..common.hashing import sha256
from ..common.types import Counterstats
from .identity import Identity, MembershipRegistry
from .peer import Peer
from .policy import EndorsementPolicy
from .transaction import (
    EndorsementFailure,
    Proposal,
    ProposalResponse,
    TransactionEnvelope,
    endorsed_payload_bytes,
)


@dataclass
class AssembledTransaction:
    """Outcome of a successful endorsement round."""

    envelope: TransactionEnvelope
    responses: tuple[ProposalResponse, ...]


@dataclass
class EndorsementRoundFailure:
    """Outcome of a failed endorsement round, with per-peer reasons."""

    tx_id: str
    reason: str
    failures: tuple[EndorsementFailure, ...] = ()


def select_endorsing_orgs(
    policy: EndorsementPolicy, available_orgs: Sequence[str]
) -> list[str]:
    """Choose a minimal set of orgs that can satisfy ``policy``.

    Deterministic: tries smallest subsets first, in sorted order.  Raises
    :class:`EndorsementError` if no subset of available orgs satisfies it.
    """

    mentioned = sorted(policy.orgs_mentioned() & set(available_orgs))
    for size in range(1, len(mentioned) + 1):
        for combo in itertools.combinations(mentioned, size):
            if policy.satisfied_by(combo):
                return list(combo)
    raise EndorsementError(
        f"policy {policy} cannot be satisfied by available orgs {sorted(available_orgs)}"
    )


class Client:
    """A submitting client bound to one identity.

    The transport (how proposals reach peers) is injected by the caller: the
    synchronous network calls :meth:`endorse_at` directly; the discrete-event
    network performs the sends itself and uses :meth:`assemble` only.
    """

    def __init__(self, identity: Identity, membership: MembershipRegistry) -> None:
        self.identity = identity
        self.membership = membership
        self.stats = Counterstats()
        self._nonce = itertools.count()

    @property
    def name(self) -> str:
        return self.identity.qualified_name

    def next_nonce(self) -> int:
        return next(self._nonce)

    def new_proposal(
        self,
        channel: str,
        chaincode: str,
        function: str,
        args: Sequence[str],
        policy: EndorsementPolicy,
        submit_time: float = 0.0,
    ) -> Proposal:
        self.stats.bump("proposals_created")
        return Proposal.create(
            channel=channel,
            chaincode=chaincode,
            function=function,
            args=tuple(args),
            creator=self.name,
            policy=policy,
            nonce=self.next_nonce(),
            submit_time=submit_time,
        )

    # -- synchronous endorsement round ----------------------------------------

    def endorse_at(
        self, proposal: Proposal, peers: Sequence[Peer], timestamp: float = 0.0
    ) -> Union[AssembledTransaction, EndorsementRoundFailure]:
        """Collect endorsements from ``peers`` and assemble the envelope."""

        responses: list[ProposalResponse] = []
        failures: list[EndorsementFailure] = []
        for peer in peers:
            outcome = peer.endorse(proposal, timestamp)
            if isinstance(outcome, ProposalResponse):
                responses.append(outcome)
            else:
                failures.append(outcome)
        return self.assemble(proposal, responses, failures)

    # -- assembly ----------------------------------------------------------------

    def assemble(
        self,
        proposal: Proposal,
        responses: Sequence[ProposalResponse],
        failures: Sequence[EndorsementFailure] = (),
    ) -> Union[AssembledTransaction, EndorsementRoundFailure]:
        """Group consistent responses and build the envelope.

        Mirrors how the Fabric SDK and VSCC actually interact: a transaction
        carries exactly one read-write set, and only endorsement signatures
        over *that* set count towards the policy.  Peers can transiently
        diverge (one committed a block the other has not yet), so the client
        groups responses by identical (rwset, result) and picks the largest
        group that can satisfy the policy, preferring the earliest-received
        on ties.  Only if no group can satisfy the policy does the round fail.
        """

        if not responses:
            self.stats.bump("endorsement_round_failures")
            return EndorsementRoundFailure(
                proposal.tx_id, "no endorsements received", tuple(failures)
            )

        groups: dict[bytes, list[ProposalResponse]] = {}
        order: list[bytes] = []
        for response in responses:
            key = endorsed_payload_bytes(
                response.rwset, response.chaincode_result, response.event
            )
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(response)

        chosen: Optional[list[ProposalResponse]] = None
        for key in sorted(order, key=lambda k: -len(groups[k])):
            group = groups[key]
            endorsing_orgs = {
                self.membership.org_of(response.endorser).name for response in group
            }
            if proposal.policy.satisfied_by(endorsing_orgs):
                chosen = group
                break
        if chosen is None:
            self.stats.bump("endorsement_round_failures")
            return EndorsementRoundFailure(
                proposal.tx_id,
                f"no consistent endorsement group satisfies {proposal.policy}",
                tuple(failures),
            )

        reference = chosen[0]
        reference_hash = endorsed_payload_bytes(
            reference.rwset, reference.chaincode_result, reference.event
        )
        payload_hash = sha256(proposal.header_bytes() + reference_hash)
        envelope = TransactionEnvelope(
            proposal=proposal,
            rwset=reference.rwset,
            endorsements=tuple(response.endorsement for response in chosen),
            chaincode_result=reference.chaincode_result,
            client_signature=self.membership.sign_as(self.name, payload_hash),
            event=reference.event,
        )
        self.stats.bump("transactions_assembled")
        return AssembledTransaction(envelope, tuple(chosen))
