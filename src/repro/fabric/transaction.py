"""Transaction structures: proposals, endorsements, and envelopes.

The lifecycle mirrors Figure 1 of the paper:

1. a client builds a :class:`Proposal` naming chaincode, function, args, and
   the endorsement policy;
2. endorsing peers simulate it and return :class:`ProposalResponse` objects
   containing the read-write set and a signature over its hash;
3. the client assembles a :class:`TransactionEnvelope` from the proposal
   payload plus matching endorsements and submits it to the ordering service.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..common.hashing import sha256, short_hash
from ..common.serialization import to_bytes
from ..common.types import Json, ReadWriteSet, TxType
from .identity import SignedPayload
from .policy import EndorsementPolicy


@dataclass(frozen=True)
class ChaincodeEvent:
    """One chaincode event set during endorsement (Fabric's ``SetEvent``).

    Fabric allows at most one event per transaction; it travels inside the
    endorsed payload (so all endorsers must agree on it) and is surfaced to
    clients with the commit notification.
    """

    name: str
    payload: Json = None

    def to_dict(self) -> dict:
        return {"name": self.name, "payload": self.payload}

    def digest_bytes(self) -> bytes:
        return to_bytes(self.to_dict())


@dataclass(frozen=True)
class Proposal:
    """A transaction proposal (Step 1 in Figure 1)."""

    tx_id: str
    channel: str
    chaincode: str
    function: str
    args: tuple[str, ...]
    creator: str  # client's qualified identity name
    policy: EndorsementPolicy
    submit_time: float = 0.0

    @classmethod
    def create(
        cls,
        channel: str,
        chaincode: str,
        function: str,
        args: tuple[str, ...],
        creator: str,
        policy: EndorsementPolicy,
        nonce: int,
        submit_time: float = 0.0,
    ) -> "Proposal":
        """Build a proposal with a deterministic transaction ID.

        Fabric derives tx IDs as ``hash(nonce || creator)``; we add the call
        payload so IDs are stable and unique per logical submission.
        """

        material = to_bytes(
            {
                "channel": channel,
                "chaincode": chaincode,
                "function": function,
                "args": list(args),
                "creator": creator,
                "nonce": nonce,
            }
        )
        return cls(
            tx_id=short_hash(material, 16),
            channel=channel,
            chaincode=chaincode,
            function=function,
            args=args,
            creator=creator,
            policy=policy,
            submit_time=submit_time,
        )

    def header_bytes(self) -> bytes:
        return to_bytes(
            {
                "tx_id": self.tx_id,
                "channel": self.channel,
                "chaincode": self.chaincode,
                "function": self.function,
                "args": list(self.args),
                "creator": self.creator,
            }
        )


def rwset_to_dict(rwset: ReadWriteSet) -> dict:
    """Canonical dictionary form of a read-write set (for hashing/storage)."""

    return {
        "reads": [
            {"key": read.key, "version": str(read.version) if read.version else None}
            for read in rwset.reads
        ],
        "writes": [
            {
                "key": write.key,
                "value": write.value.hex(),
                "is_delete": write.is_delete,
                "is_crdt": write.is_crdt,
            }
            for write in rwset.writes
        ],
        "range_queries": [
            {
                "start_key": rq.start_key,
                "end_key": rq.end_key,
                "results_hash": rq.results_hash.hex(),
            }
            for rq in rwset.range_queries
        ],
    }


def rwset_hash(rwset: ReadWriteSet) -> bytes:
    return sha256(to_bytes(rwset_to_dict(rwset)))


@dataclass(frozen=True)
class ProposalResponse:
    """One peer's endorsement of a proposal (Step 2 in Figure 1)."""

    tx_id: str
    endorser: str  # qualified peer identity
    rwset: ReadWriteSet
    chaincode_result: bytes
    endorsement: SignedPayload
    event: Optional[ChaincodeEvent] = None

    @property
    def response_hash(self) -> bytes:
        return sha256(endorsed_payload_bytes(self.rwset, self.chaincode_result, self.event))


def endorsed_payload_bytes(
    rwset: ReadWriteSet, chaincode_result: bytes, event: Optional[ChaincodeEvent]
) -> bytes:
    """The byte string endorsers sign over (and clients group responses by).

    Every variable-length component is length-framed and the event slot is
    tagged, so no two distinct (rwset, result, event) triples can collide —
    e.g. a result ending in an event digest is not confusable with a
    result-plus-event payload.
    """

    material = (
        rwset_hash(rwset)
        + len(chaincode_result).to_bytes(8, "big")
        + chaincode_result
    )
    if event is None:
        return material + b"\x00"
    return material + b"\x01" + event.digest_bytes()


@dataclass(frozen=True)
class TransactionEnvelope:
    """The signed transaction submitted for ordering (Step 3 in Figure 1)."""

    proposal: Proposal
    rwset: ReadWriteSet
    endorsements: tuple[SignedPayload, ...]
    chaincode_result: bytes = b""
    client_signature: Optional[SignedPayload] = None
    event: Optional[ChaincodeEvent] = None

    @property
    def tx_id(self) -> str:
        return self.proposal.tx_id

    @property
    def tx_type(self) -> TxType:
        return TxType.CRDT if self.rwset.has_crdt_writes else TxType.STANDARD

    def payload_bytes(self) -> bytes:
        return self.proposal.header_bytes() + to_bytes(rwset_to_dict(self.rwset))

    def byte_size(self) -> int:
        """Approximate wire size, used by the orderer's byte-based cutting."""

        overhead_per_endorsement = 96  # signature + header, roughly
        return len(self.payload_bytes()) + overhead_per_endorsement * len(self.endorsements)

    def with_rwset(self, rwset: ReadWriteSet) -> "TransactionEnvelope":
        """Copy with a replaced read-write set.

        Used by FabricCRDT's commit path when it substitutes merged CRDT
        values into the write-set (Algorithm 1, line 22).
        """

        return TransactionEnvelope(
            proposal=self.proposal,
            rwset=rwset,
            endorsements=self.endorsements,
            chaincode_result=self.chaincode_result,
            client_signature=self.client_signature,
            event=self.event,
        )


@dataclass
class EndorsementFailure:
    """Returned by a peer that refuses to endorse (chaincode error etc.)."""

    tx_id: str
    endorser: str
    reason: str
    chaincode_error: Optional[str] = None
