"""Timed protocol nodes: peer and orderer pipelines on the DES kernel.

Each peer runs two service pipelines, matching a real peer's internals:

* an **endorsement pool** (``CostModel.endorsement_pool_size`` concurrent
  chaincode executors) serving proposal requests;
* a single-threaded **commit pipeline** consuming blocks in order —
  validation/merge work is computed when a block's service starts, the state
  change becomes visible when it ends, so proposals endorsed during the
  window simulate against pre-block state.  This window is precisely the
  endorse-to-commit latency the paper identifies as the source of MVCC
  conflicts (§3).

The orderer consumes a total-order mailbox and cuts blocks by count, bytes,
and batch timeout (timers are epoch-guarded so a count-cut invalidates the
pending timeout).  Clients are *not* defined here — the DES transport
(:class:`repro.gateway.des.DESTransport`) runs client flows against these
mailboxes.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Generator, Optional

from ..sim.engine import Environment
from ..sim.resources import Resource, Store
from ..telemetry.lifecycle import record_phase
from .costmodel import CostModel
from .orderer import OrderingService
from .peer import Peer
from .transaction import Proposal, ProposalResponse


def send_after(env: Environment, store: Store, item: Any, delay: float) -> None:
    """Deliver ``item`` into ``store`` after ``delay`` (fire-and-forget)."""

    def _deliver() -> Generator:
        if delay > 0:
            yield env.timeout(delay)
        yield store.put(item)

    env.process(_deliver())


class PeerNode:
    """A peer's timed service pipelines."""

    def __init__(
        self,
        env: Environment,
        peer: Peer,
        cost: CostModel,
        rng: random.Random,
    ) -> None:
        self.env = env
        self.peer = peer
        self.cost = cost
        self.rng = rng
        self.proposal_box: Store = Store(env)
        self.block_box: Store = Store(env)
        self.endorse_pool = Resource(env, cost.endorsement_pool_size)
        #: Telemetry context (set by the transport's ``enable_telemetry``).
        #: Spans are recorded against ``env.now`` — the pipeline's timed
        #: windows — never against wall clock; recording draws no RNG and
        #: schedules no events, so simulated timings are unchanged.
        self.telemetry = None
        #: Blocks received ahead of the chain tip, awaiting their gap.
        self._pending_blocks: dict[int, Any] = {}
        #: Sim-time each pending block arrived (for deliver spans).
        self._recv_times: dict[int, float] = {}
        #: Set by the network: callable(from_number, to_number) requesting
        #: redelivery of missed blocks (Fabric's deliver-service catch-up).
        self.request_catchup: Optional[Callable[[int, int], None]] = None
        env.process(self._proposal_loop())
        env.process(self._commit_loop())

    @property
    def name(self) -> str:
        return self.peer.name

    # -- endorsement pipeline ------------------------------------------------

    def _proposal_loop(self) -> Generator:
        while True:
            proposal, reply_box = yield self.proposal_box.get()
            self.env.process(self._handle_proposal(proposal, reply_box))

    def _handle_proposal(self, proposal: Proposal, reply_box: Store) -> Generator:
        arrived = self.env.now
        request = self.endorse_pool.request()
        yield request
        try:
            # Simulate against the state visible when execution starts.
            outcome = self.peer.endorse(proposal, self.env.now)
            if isinstance(outcome, ProposalResponse):
                service = self.cost.endorse_time(
                    len(outcome.rwset.reads), len(outcome.rwset.writes)
                )
            else:
                service = self.cost.endorse_time(0, 0)
            if service > 0:
                yield self.env.timeout(service)
        finally:
            self.endorse_pool.release(request)
        # Endorse span: proposal arrival (incl. pool queueing) -> service end.
        record_phase(
            self.telemetry, "endorse", proposal.tx_id, arrived, self.env.now,
            node=self.name, ok=isinstance(outcome, ProposalResponse),
        )
        send_after(self.env, reply_box, outcome, self.cost.peer_to_client.sample(self.rng))

    # -- commit pipeline ----------------------------------------------------------

    def _commit_loop(self) -> Generator:
        """Commit blocks strictly in order, buffering early arrivals.

        Random link latencies (or injected loss) can deliver blocks out of
        order or not at all; a real peer buffers ahead-of-tip blocks and
        fetches gaps through the deliver service.  ``request_catchup`` models
        that fetch; duplicates are ignored.
        """

        while True:
            block = yield self.block_box.get()
            height = self.peer.ledger.height
            if block.number < height:
                continue  # duplicate redelivery
            self._pending_blocks.setdefault(block.number, block)
            if self.telemetry is not None:
                self._recv_times.setdefault(block.number, self.env.now)
            if block.number > height and self.request_catchup is not None:
                missing_from = height
                missing_to = min(
                    number for number in self._pending_blocks if number > height
                )
                self.request_catchup(missing_from, missing_to)
            while self.peer.ledger.height in self._pending_blocks:
                number = self.peer.ledger.height
                ready = self._pending_blocks.pop(number)
                received = self._recv_times.pop(number, self.env.now)
                validate_start = self.env.now
                prepared = self.peer.prepare_block(ready)
                service = self.cost.commit_time(prepared.work)
                if service > 0:
                    yield self.env.timeout(service)
                self.peer.apply_prepared(prepared, commit_time=self.env.now)
                if self.telemetry is not None:
                    # Deliver: block receipt -> commit pipeline pickup;
                    # validate: the commit service window (work computed at
                    # its start, state visible at its end); apply: atomic at
                    # the window's end, hence zero-width in virtual time.
                    committed_at = self.env.now
                    for tx_index, tx in enumerate(ready.transactions):
                        record_phase(
                            self.telemetry, "deliver", tx.tx_id,
                            received, validate_start, node=self.name, block=number,
                        )
                        record_phase(
                            self.telemetry, "validate", tx.tx_id,
                            validate_start, committed_at, node=self.name,
                            code=prepared.metadata.code_for(tx_index).name,
                        )
                        record_phase(
                            self.telemetry, "apply", tx.tx_id,
                            committed_at, committed_at, node=self.name, block=number,
                        )


class OrdererNode:
    """The ordering service's timed mailbox loop + batch-timeout timers.

    Cut blocks are archived so peers can catch up on missed deliveries
    (Fabric's deliver service re-serves any committed block).
    """

    def __init__(
        self,
        env: Environment,
        service: OrderingService,
        cost: CostModel,
        rng: random.Random,
    ) -> None:
        self.env = env
        self.service = service
        self.cost = cost
        self.rng = rng
        self.envelope_box: Store = Store(env)
        self._peer_nodes: list[PeerNode] = []
        self._timer_epoch = -1
        self.archive: dict[int, Any] = {}
        #: Telemetry context (set by the transport's ``enable_telemetry``).
        self.telemetry = None
        #: Arrival sim-time of sampled envelopes awaiting their block cut.
        self._arrivals: dict[str, float] = {}
        env.process(self._loop())

    def attach_peer(self, node: PeerNode) -> None:
        self._peer_nodes.append(node)

        def catchup(from_number: int, to_number: int) -> None:
            for number in range(from_number, to_number):
                block = self.archive.get(number)
                if block is not None:
                    send_after(
                        self.env,
                        node.block_box,
                        block,
                        self.cost.orderer_to_peer.sample(self.rng),
                    )

        node.request_catchup = catchup

    def _loop(self) -> Generator:
        while True:
            envelope = yield self.envelope_box.get()
            if self.telemetry is not None and self.telemetry.tracer.sampled(
                envelope.tx_id
            ):
                self._arrivals[envelope.tx_id] = self.env.now
            for block in self.service.submit(envelope, self.env.now):
                self._dispatch(block)
            self._ensure_timer()

    def _ensure_timer(self) -> None:
        if not self.service.has_pending:
            return
        epoch = self.service.batch_epoch
        if epoch == self._timer_epoch:
            return  # a timer for this batch is already pending
        self._timer_epoch = epoch
        deadline = self.service.timeout_deadline()
        assert deadline is not None
        self.env.process(self._timer(epoch, deadline))

    def _timer(self, epoch: int, deadline: float) -> Generator:
        delay = max(0.0, deadline - self.env.now)
        if delay > 0:
            yield self.env.timeout(delay)
        block = self.service.cut_on_timeout(self.env.now, epoch)
        if block is not None:
            self._dispatch(block)

    def _dispatch(self, block) -> None:
        self.archive[block.number] = block
        if self.telemetry is not None:
            # Order span: envelope arrival -> the cut that includes it.
            for tx in block.transactions:
                arrived = self._arrivals.pop(tx.tx_id, None)
                if arrived is not None:
                    record_phase(
                        self.telemetry, "order", tx.tx_id, arrived, self.env.now,
                        block=block.number, cut_reason=block.cut_reason,
                    )
        for node in self._peer_nodes:
            send_after(
                self.env, node.block_box, block, self.cost.orderer_to_peer.sample(self.rng)
            )
