"""Conflict-aware transaction reordering — the Fabric++ baseline ([34]).

The paper's related work contrasts FabricCRDT with transaction-reordering
approaches (Sharma et al., SIGMOD'19): the orderer analyses each batch's
read/write sets, reorders transactions so that readers of a key precede its
writers, and aborts transactions trapped in conflict cycles.  Reordering
*reduces* MVCC failures but — as §8 of the FabricCRDT paper argues — cannot
eliminate them: any two read-modify-writes of the same key conflict in every
order.  The reorder ablation benchmark quantifies exactly that gap.

Implementation: a precedence edge ``a → b`` is added whenever ``b`` writes a
key ``a`` reads (``a`` must validate first); strongly connected components of
size > 1 are conflict cycles, from which only the earliest-arrived member is
kept in the schedulable set.  Cycle victims are *appended after* the
reordered prefix rather than dropped, so every submitted transaction still
commits (as valid or invalid) and client accounting stays intact — this is
the "reorder only" variant; ``early_abort=True`` drops them from the block
entirely like Fabric++ proper.
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx

from .orderer import OrderingService
from .transaction import TransactionEnvelope


def reorder_batch(
    transactions: Sequence[TransactionEnvelope],
) -> tuple[list[TransactionEnvelope], list[TransactionEnvelope]]:
    """Reorder one batch; returns ``(scheduled, cycle_victims)``.

    ``scheduled`` is a conflict-minimal order of the transactions that can
    all validate; ``cycle_victims`` are the transactions sacrificed to break
    conflict cycles (they fail MVCC wherever they are placed).
    """

    indexed = list(enumerate(transactions))
    graph = nx.DiGraph()
    graph.add_nodes_from(index for index, _ in indexed)

    reads: dict[int, frozenset[str]] = {}
    writes: dict[int, frozenset[str]] = {}
    for index, tx in indexed:
        reads[index] = frozenset(tx.rwset.read_keys)
        writes[index] = frozenset(
            write.key for write in tx.rwset.writes if not write.is_crdt
        )

    for a, _ in indexed:
        for b, _ in indexed:
            if a == b:
                continue
            # b writes a key a reads: a must be validated before b.
            if writes[b] & reads[a]:
                graph.add_edge(a, b)

    victims: set[int] = set()
    for component in nx.strongly_connected_components(graph):
        if len(component) > 1:
            keeper = min(component)  # earliest arrival survives the cycle
            victims.update(component - {keeper})

    surviving = graph.subgraph(set(graph.nodes) - victims).copy()
    # A keeper may still conflict with another keeper through a victim-free
    # edge cycle created by subgraphing; re-check until acyclic.
    while True:
        cyclic = [c for c in nx.strongly_connected_components(surviving) if len(c) > 1]
        if not cyclic:
            break
        for component in cyclic:
            keeper = min(component)
            extra = component - {keeper}
            victims.update(extra)
            surviving.remove_nodes_from(extra)

    order = list(nx.lexicographical_topological_sort(surviving))
    scheduled = [transactions[index] for index in order]
    cycle_victims = [transactions[index] for index in sorted(victims)]
    return scheduled, cycle_victims


class ReorderingOrderingService(OrderingService):
    """An ordering service that reorders every batch before cutting.

    ``early_abort=True`` removes cycle victims from the block (Fabric++'s
    early abort); ``False`` appends them at the end, where MVCC invalidates
    them, keeping per-transaction accounting exact.
    """

    def __init__(self, config, early_abort: bool = False) -> None:
        super().__init__(config)
        self.early_abort = early_abort
        self.reorder_stats = {"batches": 0, "victims": 0, "early_aborted": 0}

    def _cut(self, reason: str, now: float):
        # Reorder the pending batch in place, then defer to the normal cut.
        scheduled, victims = reorder_batch(self._pending)
        self.reorder_stats["batches"] += 1
        self.reorder_stats["victims"] += len(victims)
        if self.early_abort:
            self.reorder_stats["early_aborted"] += len(victims)
            self._pending = scheduled if scheduled else list(self._pending[:1])
        else:
            self._pending = scheduled + victims
        return super()._cut(reason, now)
