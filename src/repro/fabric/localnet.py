"""A synchronous, in-process Fabric network — no simulation clock.

:class:`LocalNetwork` is a thin shell over the shared
:class:`~repro.gateway.channel.Channel` runtime and the inline
:class:`~repro.gateway.transport.SyncTransport`: the same wiring the
discrete-event network uses, minus the clock.  Every call drives the full
Execute-Order-Validate lifecycle; blocks are dispatched to *all* peers as
they are cut, and :meth:`flush` force-cuts the pending batch (standing in
for the batch timeout).

The constructor takes a ``peer_factory`` so the same wiring serves vanilla
Fabric and FabricCRDT (see :func:`repro.core.network.crdt_network`).

Prefer the Gateway API for new code::

    gateway = Gateway.connect(network)
    contract = gateway.get_contract("iot")
    contract.submit("record", call)

:meth:`invoke` and :meth:`query` remain as deprecated shims over the same
transport.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional, Sequence, Union

from ..common.config import NetworkConfig
from ..common.deprecation import warn_once
from ..common.types import Json, TxStatus, ValidationCode
from .block import Block
from .chaincode import DeployableChaincode
from .client import Client, EndorsementRoundFailure
from .identity import MembershipRegistry
from .ledger import Ledger
from .peer import Peer
from .policy import EndorsementPolicy
from .store import StateStore

if TYPE_CHECKING:  # pragma: no cover
    from ..gateway.channel import Channel
    from ..gateway.transport import SyncTransport

PeerFactory = Callable[..., Peer]


class LocalNetwork:
    """Synchronous Fabric network with the paper's default topology."""

    def __init__(
        self,
        config: Optional[NetworkConfig] = None,
        peer_factory: Optional[PeerFactory] = None,
    ) -> None:
        # Imported lazily: the gateway package itself imports fabric
        # submodules, so a module-level import here would be circular.
        from ..gateway.channel import Channel
        from ..gateway.transport import SyncTransport

        self.channel: "Channel" = Channel(config, peer_factory)
        self.transport: "SyncTransport" = SyncTransport(self.channel)

    # -- channel delegation ------------------------------------------------------

    @property
    def config(self) -> NetworkConfig:
        return self.channel.config

    @property
    def membership(self) -> MembershipRegistry:
        return self.channel.membership

    @property
    def chaincodes(self):
        return self.channel.chaincodes

    @property
    def peers(self) -> list[Peer]:
        return self.channel.peers

    @property
    def clients(self) -> list[Client]:
        return self.channel.clients

    @property
    def statuses(self) -> dict[str, TxStatus]:
        """Transaction statuses observed on the anchor peer, by tx ID."""

        return self.channel.statuses

    @property
    def orderer(self):
        return self.transport.orderer

    @property
    def anchor_peer(self) -> Peer:
        return self.channel.anchor_peer

    @property
    def org_names(self) -> tuple[str, ...]:
        return self.channel.org_names

    def peers_of(self, org_name: str) -> list[Peer]:
        return self.channel.peers_of(org_name)

    def deploy(
        self, chaincode: DeployableChaincode, policy: Optional[EndorsementPolicy] = None
    ) -> None:
        self.channel.deploy(chaincode, policy)

    def policy_for(self, chaincode_name: str) -> EndorsementPolicy:
        return self.channel.policy_for(chaincode_name)

    # -- deprecated transaction shims ------------------------------------------------

    def invoke(
        self,
        chaincode: str,
        function: str,
        args: Sequence[str] = (),
        client_index: int = 0,
        now: float = 0.0,
    ) -> Union[str, EndorsementRoundFailure]:
        """Run one transaction through endorse → order → (maybe) commit.

        .. deprecated:: use ``Gateway.connect(network).get_contract(...)``
           and ``Contract.submit`` / ``submit_async`` instead.

        Returns the transaction ID on successful submission (the transaction
        commits when its block is cut — immediately if the block filled, or
        on :meth:`flush`), or the endorsement failure.
        """

        warn_once(
            "localnetwork-invoke",
            "LocalNetwork.invoke is deprecated; use the Gateway API "
            "(Gateway.connect(network).get_contract(...).submit_async)",
        )
        tx = self.transport.submit_async(
            chaincode, function, args, client_index=client_index, now=now
        )
        if tx.endorse_failure is not None:
            return tx.endorse_failure
        return tx.tx_id

    def query(
        self, chaincode: str, function: str, args: Sequence[str] = (), client_index: int = 0
    ) -> Json:
        """Evaluate a read-only invocation against the anchor peer.

        .. deprecated:: use ``Contract.evaluate`` instead.
        """

        warn_once(
            "localnetwork-query",
            "LocalNetwork.query is deprecated; use the Gateway API "
            "(Gateway.connect(network).get_contract(...).evaluate)",
        )
        return self.transport.evaluate(chaincode, function, args, client_index=client_index)

    def flush(self, now: float = 0.0) -> Optional[Block]:
        """Force-cut the pending batch and commit it everywhere."""

        return self.transport.flush(now)

    # -- inspection --------------------------------------------------------------------

    def status_of(self, tx_id: str) -> Optional[ValidationCode]:
        return self.channel.status_of(tx_id)

    def state_of(self, key: str) -> Optional[Json]:
        return self.channel.state_of(key)

    def ledger_of(self, peer_index: int = 0) -> Ledger:
        return self.channel.ledger_of(peer_index)

    def world_states_converged(self) -> bool:
        return self.channel.world_states_converged()

    def assert_states_converged(self) -> None:
        self.channel.assert_states_converged()

    def success_count(self) -> int:
        return self.channel.success_count()

    def failure_count(self) -> int:
        return self.channel.failure_count()

    def world_state(self) -> StateStore:
        return self.channel.world_state()

    # -- lifecycle --------------------------------------------------------------------

    def close(self) -> None:
        """Release the network's resources (deliver session, peer stores)."""

        self.transport.close()

    def __enter__(self) -> "LocalNetwork":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
