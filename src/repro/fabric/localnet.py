"""A synchronous, in-process Fabric network — no simulation clock.

:class:`LocalNetwork` wires the pure protocol components (peers, ordering
service, clients) together for unit tests, examples, and anywhere timing is
irrelevant.  Every call drives the full Execute-Order-Validate lifecycle;
blocks are dispatched to *all* peers as they are cut, and :meth:`flush`
force-cuts the pending batch (standing in for the batch timeout).

The constructor takes a ``peer_factory`` so the same wiring serves vanilla
Fabric and FabricCRDT (see :func:`repro.core.network.crdt_network`).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Union

from ..common.config import NetworkConfig
from ..common.errors import EndorsementError, FabricError
from ..common.types import Json, TxStatus, ValidationCode
from .block import Block, CommittedBlock
from .chaincode import Chaincode, ChaincodeRegistry
from .client import Client, EndorsementRoundFailure, select_endorsing_orgs
from .identity import MembershipRegistry
from .ledger import Ledger
from .orderer import OrderingService
from .peer import Peer
from .policy import EndorsementPolicy, or_policy
from .statedb import StateDB

PeerFactory = Callable[..., Peer]


class LocalNetwork:
    """Synchronous Fabric network with the paper's default topology."""

    def __init__(
        self,
        config: Optional[NetworkConfig] = None,
        peer_factory: Optional[PeerFactory] = None,
    ) -> None:
        self.config = config if config is not None else NetworkConfig()
        self.membership = MembershipRegistry()
        self.chaincodes = ChaincodeRegistry()
        self._policies: dict[str, EndorsementPolicy] = {}
        factory = peer_factory if peer_factory is not None else Peer

        topology = self.config.topology
        self.peers: list[Peer] = []
        for org_name in topology.org_names:
            for peer_index in range(topology.peers_per_org):
                identity = self.membership.enroll(org_name, f"peer{peer_index}")
                self.peers.append(factory(identity, self.membership, self.chaincodes))

        self.orderer = OrderingService(self.config.orderer)
        self.clients = [
            Client(
                self.membership.enroll(
                    topology.org_names[i % topology.num_orgs], f"client{i}"
                ),
                self.membership,
            )
            for i in range(4)
        ]
        #: Transaction statuses observed on the anchor peer, by tx ID.
        self.statuses: dict[str, TxStatus] = {}
        self.anchor_peer.events.subscribe(self._on_commit)

    # -- topology accessors ------------------------------------------------------

    @property
    def anchor_peer(self) -> Peer:
        return self.peers[0]

    @property
    def org_names(self) -> tuple[str, ...]:
        return self.config.topology.org_names

    def peers_of(self, org_name: str) -> list[Peer]:
        return [peer for peer in self.peers if peer.org_name == org_name]

    # -- deployment ----------------------------------------------------------------

    def deploy(self, chaincode: Chaincode, policy: Optional[EndorsementPolicy] = None) -> None:
        """Deploy a chaincode on the channel with an endorsement policy.

        The default policy is ``OR`` over all organizations, which is what
        the paper's Caliper benchmarks effectively use.
        """

        self.chaincodes.deploy(chaincode)
        self._policies[chaincode.name] = (
            policy if policy is not None else or_policy(*self.org_names)
        )

    def policy_for(self, chaincode_name: str) -> EndorsementPolicy:
        try:
            return self._policies[chaincode_name]
        except KeyError:
            raise FabricError(f"chaincode {chaincode_name!r} not deployed") from None

    # -- transaction lifecycle -------------------------------------------------------

    def invoke(
        self,
        chaincode: str,
        function: str,
        args: Sequence[str] = (),
        client_index: int = 0,
        now: float = 0.0,
    ) -> Union[str, EndorsementRoundFailure]:
        """Run one transaction through endorse → order → (maybe) commit.

        Returns the transaction ID on successful submission (the transaction
        commits when its block is cut — immediately if the block filled, or
        on :meth:`flush`), or the endorsement failure.
        """

        client = self.clients[client_index % len(self.clients)]
        policy = self.policy_for(chaincode)
        proposal = client.new_proposal(
            self.config.topology.channel, chaincode, function, args, policy, now
        )
        endorsing_orgs = select_endorsing_orgs(policy, self.org_names)
        endorsing_peers = [self.peers_of(org)[0] for org in endorsing_orgs]
        outcome = client.endorse_at(proposal, endorsing_peers, now)
        if isinstance(outcome, EndorsementRoundFailure):
            return outcome
        if outcome.envelope.rwset.is_read_only:
            # Read transactions are not ordered or committed (paper §3).
            return proposal.tx_id
        self._dispatch(self.orderer.submit(outcome.envelope, now), now)
        return proposal.tx_id

    def query(
        self, chaincode: str, function: str, args: Sequence[str] = (), client_index: int = 0
    ) -> Json:
        """Evaluate a read-only invocation against the anchor peer."""

        client = self.clients[client_index % len(self.clients)]
        policy = self.policy_for(chaincode)
        proposal = client.new_proposal(
            self.config.topology.channel, chaincode, function, args, policy, 0.0
        )
        outcome = client.endorse_at(proposal, [self.anchor_peer])
        if isinstance(outcome, EndorsementRoundFailure):
            raise EndorsementError(outcome.reason)
        from ..common.serialization import from_bytes

        return from_bytes(outcome.envelope.chaincode_result)

    def flush(self, now: float = 0.0) -> Optional[Block]:
        """Force-cut the pending batch and commit it everywhere."""

        block = self.orderer.flush(now)
        if block is not None:
            self._dispatch([block], now)
        return block

    def _dispatch(self, blocks: Sequence[Block], now: float) -> None:
        for block in blocks:
            for peer in self.peers:
                peer.validate_and_commit(block, commit_time=now)

    def _on_commit(self, committed: CommittedBlock, peer_name: str) -> None:
        for tx_index, tx in enumerate(committed.block.transactions):
            self.statuses[tx.tx_id] = TxStatus(
                tx_id=tx.tx_id,
                code=committed.metadata.code_for(tx_index),
                block_num=committed.block.number,
                tx_num=tx_index,
                submit_time=tx.proposal.submit_time,
                commit_time=committed.commit_time,
            )

    # -- inspection --------------------------------------------------------------------

    def status_of(self, tx_id: str) -> Optional[ValidationCode]:
        status = self.statuses.get(tx_id)
        return status.code if status is not None else None

    def state_of(self, key: str) -> Optional[Json]:
        """Committed JSON value of ``key`` on the anchor peer."""

        from ..common.serialization import from_bytes

        raw = self.anchor_peer.ledger.state.get_value(key)
        return from_bytes(raw) if raw is not None else None

    def ledger_of(self, peer_index: int = 0) -> Ledger:
        return self.peers[peer_index].ledger

    def world_states_converged(self) -> bool:
        """True if every peer holds an identical world state."""

        reference = self.anchor_peer.ledger.state.snapshot_versions()
        for peer in self.peers[1:]:
            if peer.ledger.state.snapshot_versions() != reference:
                return False
            for key in reference:
                if peer.ledger.state.get_value(key) != self.anchor_peer.ledger.state.get_value(key):
                    return False
        return True

    def assert_states_converged(self) -> None:
        if not self.world_states_converged():
            raise FabricError("peer world states diverged")

    def success_count(self) -> int:
        return sum(1 for status in self.statuses.values() if status.succeeded)

    def failure_count(self) -> int:
        return sum(1 for status in self.statuses.values() if not status.succeeded)

    def world_state(self) -> StateDB:
        return self.anchor_peer.ledger.state
