"""The ordering service: total order + block cutting (pure logic).

Models Fabric's Kafka-based orderer as seen by the rest of the system: a
single FIFO total order over submitted envelopes, batched into blocks by
exactly Fabric's three cut triggers —

* the batch reached ``max_message_count`` transactions;
* adding the next transaction would exceed ``preferred_max_bytes`` (an
  oversized transaction is cut into its own block);
* ``batch_timeout_s`` elapsed since the first transaction of the batch.

Timing (when the timeout *fires*) belongs to the discrete-event layer; this
class only answers "what would be cut, and when is the deadline?".
"""

from __future__ import annotations

from typing import Optional

from ..common.config import OrdererConfig
from ..common.errors import OrderingError
from ..common.types import Counterstats
from .block import GENESIS_PREVIOUS_HASH, Block
from .transaction import TransactionEnvelope


class OrderingService:
    """Single-channel ordering service."""

    def __init__(self, config: OrdererConfig) -> None:
        self.config = config
        self._pending: list[TransactionEnvelope] = []
        self._pending_bytes = 0
        self._next_number = 0
        self._last_hash = GENESIS_PREVIOUS_HASH
        #: Incremented on every cut; lets the timing layer discard stale timers.
        self.batch_epoch = 0
        #: Time the current batch started (first pending tx), None if empty.
        self.batch_start_time: Optional[float] = None
        self.stats = Counterstats()
        self._tel: Optional[dict] = None

    def enable_telemetry(self, telemetry) -> None:
        """Register batch-fill / cut-reason metrics (opt-in, out-of-band).

        Recording is pure counter arithmetic at points the service already
        passes through — ordering decisions and block content are
        untouched.
        """

        from ..telemetry.metrics import DEFAULT_COUNT_BUCKETS

        metrics = telemetry.metrics
        self._tel = {
            "envelopes": metrics.counter(
                "repro_orderer_envelopes_total", "Envelopes admitted to the total order"
            ),
            "blocks_cut": metrics.counter(
                "repro_orderer_blocks_cut_total", "Blocks cut, by trigger reason"
            ),
            "batch_fill": metrics.histogram(
                "repro_orderer_batch_fill",
                "Transactions per cut block",
                buckets=DEFAULT_COUNT_BUCKETS,
            ),
            "batch_bytes": metrics.histogram(
                "repro_orderer_batch_bytes",
                "Payload bytes per cut block",
                buckets=(1e3, 1e4, 1e5, 1e6, 1e7, 1e8),
            ),
            "pending": metrics.gauge(
                "repro_orderer_pending_txs", "Transactions waiting in the current batch"
            ),
        }

    # -- state ---------------------------------------------------------------

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def has_pending(self) -> bool:
        return bool(self._pending)

    @property
    def next_block_number(self) -> int:
        return self._next_number

    def timeout_deadline(self) -> Optional[float]:
        """Absolute time at which the current batch must be cut, if any."""

        if self.batch_start_time is None:
            return None
        return self.batch_start_time + self.config.batch_timeout_s

    def resume_from(self, next_block_number: int, last_hash: bytes) -> None:
        """Continue an existing chain (orderer restart / test setup)."""

        if next_block_number < 0:
            raise OrderingError("block numbers cannot be negative")
        if self._pending:
            raise OrderingError("cannot resume with transactions pending")
        self._next_number = next_block_number
        self._last_hash = last_hash

    # -- submission -----------------------------------------------------------

    def submit(self, envelope: TransactionEnvelope, now: float = 0.0) -> list[Block]:
        """Append an envelope to the total order; returns any blocks cut.

        A submission can cut up to two blocks: the pending batch (if the new
        envelope would overflow ``preferred_max_bytes``) and an oversized
        envelope's own block.
        """

        self.stats.bump("envelopes_received")
        blocks: list[Block] = []
        size = envelope.byte_size()

        if (
            self._pending
            and self._pending_bytes + size > self.config.preferred_max_bytes
        ):
            blocks.append(self._cut("bytes", now))

        if size > self.config.preferred_max_bytes:
            # An envelope larger than the preferred maximum forms its own block.
            self._admit(envelope, size, now)
            blocks.append(self._cut("bytes", now))
            return blocks

        self._admit(envelope, size, now)
        if len(self._pending) >= self.config.max_message_count:
            blocks.append(self._cut("count", now))
        return blocks

    def _admit(self, envelope: TransactionEnvelope, size: int, now: float) -> None:
        if self.batch_start_time is None:
            self.batch_start_time = now
        self._pending.append(envelope)
        self._pending_bytes += size
        if self._tel is not None:
            self._tel["envelopes"].inc()
            self._tel["pending"].set(len(self._pending))

    # -- cutting ---------------------------------------------------------------

    def cut_on_timeout(self, now: float, epoch: int) -> Optional[Block]:
        """Cut the pending batch if ``epoch`` is still the current one.

        The timing layer calls this when a timer it started at batch epoch
        ``epoch`` fires; a stale epoch means the batch was already cut.
        """

        if epoch != self.batch_epoch or not self._pending:
            return None
        return self._cut("timeout", now)

    def flush(self, now: float = 0.0) -> Optional[Block]:
        """Force-cut whatever is pending (end of an experiment)."""

        if not self._pending:
            return None
        return self._cut("flush", now)

    def _cut(self, reason: str, now: float) -> Block:
        if not self._pending:
            raise OrderingError("cut with no pending transactions")
        transactions = tuple(self._pending)
        batch_bytes = self._pending_bytes
        self._pending = []
        self._pending_bytes = 0
        self.batch_start_time = None
        self.batch_epoch += 1
        block = Block.build(
            number=self._next_number,
            previous_hash=self._last_hash,
            transactions=transactions,
            cut_reason=reason,
            cut_time=now,
        )
        self._next_number += 1
        self._last_hash = block.header.hash()
        self.stats.bump("blocks_cut")
        self.stats.bump(f"blocks_cut_{reason}")
        if self._tel is not None:
            self._tel["blocks_cut"].inc(reason=reason)
            self._tel["batch_fill"].observe(len(transactions))
            self._tel["batch_bytes"].observe(batch_bytes)
            self._tel["pending"].set(0)
        return block
