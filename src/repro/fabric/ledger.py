"""The peer ledger: blockchain store + world state + key history.

A peer's ledger holds the append-only chain of committed blocks (with their
validation metadata), the world state database derived from them, and the
per-key modification history that backs ``GetHistoryForKey``.  The class
also provides :meth:`rebuild_state`, replaying the chain from genesis into a
fresh state database — the invariant test that the world state really is a
pure function of the blockchain (§2.1 of the paper: "executing all valid
transactions included in the blockchain ... results in the current state").
"""

from __future__ import annotations

from typing import Optional

from ..common.errors import LedgerError
from ..common.types import KeyModification, ValidationCode, Version
from .block import GENESIS_PREVIOUS_HASH, CommittedBlock
from .store import MemoryStore, StateStore, WriteBatch


class Ledger:
    """One peer's ledger.

    ``store`` selects the world-state backend (default: the in-memory
    store); the blockchain structure itself — blocks, tx index, key
    history — always lives in memory.
    """

    def __init__(self, store: Optional[StateStore] = None) -> None:
        self.state: StateStore = store if store is not None else MemoryStore()
        self._blocks: list[CommittedBlock] = []
        self._tx_index: dict[str, tuple[int, int]] = {}  # tx_id -> (block, index)
        self._history: dict[str, list[KeyModification]] = {}

    def reset_store(self, store: StateStore) -> None:
        """Swap the world-state backend before any block committed.

        Used by the channel to honour ``NetworkConfig.state_backend`` with
        peer factories that predate the ``store`` parameter.
        """

        if self._blocks:
            raise LedgerError(
                f"cannot swap the state store at height {self.height}; "
                "backends are chosen before genesis"
            )
        self.state.close()
        self.state = store

    # -- chain accessors ---------------------------------------------------------

    @property
    def height(self) -> int:
        """Number of committed blocks (the next expected block number)."""

        return len(self._blocks)

    @property
    def last_hash(self) -> bytes:
        if not self._blocks:
            return GENESIS_PREVIOUS_HASH
        return self._blocks[-1].block.header.hash()

    def block_at(self, number: int) -> CommittedBlock:
        if number < 0:
            # Without this check Python's negative indexing would silently
            # serve blocks from the end of the chain — block "numbers" are
            # absolute heights, never relative offsets.
            raise LedgerError(f"block number must be non-negative, got {number}")
        try:
            return self._blocks[number]
        except IndexError:
            raise LedgerError(f"no block number {number} (height={self.height})") from None

    def blocks(self) -> tuple[CommittedBlock, ...]:
        return tuple(self._blocks)

    def has_transaction(self, tx_id: str) -> bool:
        return tx_id in self._tx_index

    def transaction_status(self, tx_id: str) -> Optional[ValidationCode]:
        location = self._tx_index.get(tx_id)
        if location is None:
            return None
        block_num, tx_index = location
        return self._blocks[block_num].metadata.code_for(tx_index)

    def history_for_key(self, key: str) -> tuple[KeyModification, ...]:
        return tuple(self._history.get(key, ()))

    # -- commit -------------------------------------------------------------------

    def append_block(self, committed: CommittedBlock) -> None:
        """Append a validated block.  The caller (the peer) has already
        applied the writes to ``self.state``; this records chain structure,
        the tx index, and key history."""

        block = committed.block
        if block.number != self.height:
            raise LedgerError(
                f"block {block.number} out of order (expected {self.height})"
            )
        if not block.verify_integrity(expected_previous_hash=self.last_hash):
            raise LedgerError(f"block {block.number} fails integrity check")
        self._blocks.append(committed)
        for tx_index, tx in enumerate(block.transactions):
            self._tx_index.setdefault(tx.tx_id, (block.number, tx_index))
        for tx_index, write in committed.writes_applied():
            tx = block.transactions[tx_index]
            self._history.setdefault(write.key, []).append(
                KeyModification(
                    tx_id=tx.tx_id,
                    value=write.value,
                    is_delete=write.is_delete,
                    version=Version(block.number, tx_index),
                )
            )

    # -- replay ---------------------------------------------------------------------

    def rebuild_state(self, into: Optional[StateStore] = None) -> StateStore:
        """Replay the chain into a fresh state store using recorded metadata.

        Each block becomes one :class:`WriteBatch`, applied atomically —
        the same commit path live blocks take.  Returns the rebuilt store
        (an in-memory one unless ``into`` supplies a different backend);
        callers compare it with ``self.state``.
        """

        rebuilt: StateStore = into if into is not None else MemoryStore()
        for committed in self._blocks:
            block = committed.block
            batch = WriteBatch(block_number=block.number)
            for tx_index, write in committed.writes_applied():
                batch.put(
                    write.key, write.value, Version(block.number, tx_index), write.is_delete
                )
            rebuilt.apply_batch(batch)
        return rebuilt

    def verify_chain(self) -> bool:
        """Validate every hash link from genesis to the tip."""

        previous = GENESIS_PREVIOUS_HASH
        for committed in self._blocks:
            if not committed.block.verify_integrity(expected_previous_hash=previous):
                return False
            previous = committed.block.header.hash()
        return True

    # -- statistics -------------------------------------------------------------------

    def count_statuses(self) -> dict[str, int]:
        """Validation-code histogram across all committed transactions."""

        counts: dict[str, int] = {}
        for committed in self._blocks:
            for code in committed.metadata.flags:
                counts[code.name] = counts.get(code.name, 0) + 1
        return counts
