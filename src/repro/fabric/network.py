"""The timed Fabric network: protocol components wired onto the DES kernel.

Each peer runs two service pipelines, matching a real peer's internals:

* an **endorsement pool** (``CostModel.endorsement_pool_size`` concurrent
  chaincode executors) serving proposal requests;
* a single-threaded **commit pipeline** consuming blocks in order —
  validation/merge work is computed when a block's service starts, the state
  change becomes visible when it ends, so proposals endorsed during the
  window simulate against pre-block state.  This window is precisely the
  endorse-to-commit latency the paper identifies as the source of MVCC
  conflicts (§3).

The orderer consumes a total-order mailbox and cuts blocks by count, bytes,
and batch timeout (timers are epoch-guarded so a count-cut invalidates the
pending timeout).  Clients are *not* defined here — the Caliper-equivalent
driver in :mod:`repro.workload.caliper` spawns transaction flows against
:meth:`SimulatedNetwork.submit_flow`.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Generator, Optional, Sequence

from ..common.config import NetworkConfig
from ..common.errors import FabricError
from ..common.rng import SeedSequence
from ..sim.engine import Environment
from ..sim.resources import Resource, Store
from .chaincode import Chaincode, ChaincodeRegistry
from .client import Client, EndorsementRoundFailure
from .costmodel import CostModel
from .identity import MembershipRegistry
from .orderer import OrderingService
from .peer import Peer
from .policy import EndorsementPolicy, or_policy
from .transaction import EndorsementFailure, Proposal, ProposalResponse

PeerFactory = Callable[..., Peer]


def send_after(env: Environment, store: Store, item: Any, delay: float) -> None:
    """Deliver ``item`` into ``store`` after ``delay`` (fire-and-forget)."""

    def _deliver() -> Generator:
        if delay > 0:
            yield env.timeout(delay)
        yield store.put(item)

    env.process(_deliver())


class PeerNode:
    """A peer's timed service pipelines."""

    def __init__(
        self,
        env: Environment,
        peer: Peer,
        cost: CostModel,
        rng: random.Random,
    ) -> None:
        self.env = env
        self.peer = peer
        self.cost = cost
        self.rng = rng
        self.proposal_box: Store = Store(env)
        self.block_box: Store = Store(env)
        self.endorse_pool = Resource(env, cost.endorsement_pool_size)
        #: Blocks received ahead of the chain tip, awaiting their gap.
        self._pending_blocks: dict[int, Any] = {}
        #: Set by the network: callable(from_number, to_number) requesting
        #: redelivery of missed blocks (Fabric's deliver-service catch-up).
        self.request_catchup: Optional[Callable[[int, int], None]] = None
        env.process(self._proposal_loop())
        env.process(self._commit_loop())

    @property
    def name(self) -> str:
        return self.peer.name

    # -- endorsement pipeline ------------------------------------------------

    def _proposal_loop(self) -> Generator:
        while True:
            proposal, reply_box = yield self.proposal_box.get()
            self.env.process(self._handle_proposal(proposal, reply_box))

    def _handle_proposal(self, proposal: Proposal, reply_box: Store) -> Generator:
        request = self.endorse_pool.request()
        yield request
        try:
            # Simulate against the state visible when execution starts.
            outcome = self.peer.endorse(proposal, self.env.now)
            if isinstance(outcome, ProposalResponse):
                service = self.cost.endorse_time(
                    len(outcome.rwset.reads), len(outcome.rwset.writes)
                )
            else:
                service = self.cost.endorse_time(0, 0)
            if service > 0:
                yield self.env.timeout(service)
        finally:
            self.endorse_pool.release(request)
        send_after(self.env, reply_box, outcome, self.cost.peer_to_client.sample(self.rng))

    # -- commit pipeline ----------------------------------------------------------

    def _commit_loop(self) -> Generator:
        """Commit blocks strictly in order, buffering early arrivals.

        Random link latencies (or injected loss) can deliver blocks out of
        order or not at all; a real peer buffers ahead-of-tip blocks and
        fetches gaps through the deliver service.  ``request_catchup`` models
        that fetch; duplicates are ignored.
        """

        while True:
            block = yield self.block_box.get()
            height = self.peer.ledger.height
            if block.number < height:
                continue  # duplicate redelivery
            self._pending_blocks.setdefault(block.number, block)
            if block.number > height and self.request_catchup is not None:
                missing_from = height
                missing_to = min(
                    number for number in self._pending_blocks if number > height
                )
                self.request_catchup(missing_from, missing_to)
            while self.peer.ledger.height in self._pending_blocks:
                ready = self._pending_blocks.pop(self.peer.ledger.height)
                prepared = self.peer.prepare_block(ready)
                service = self.cost.commit_time(prepared.work)
                if service > 0:
                    yield self.env.timeout(service)
                self.peer.apply_prepared(prepared, commit_time=self.env.now)


class OrdererNode:
    """The ordering service's timed mailbox loop + batch-timeout timers.

    Cut blocks are archived so peers can catch up on missed deliveries
    (Fabric's deliver service re-serves any committed block).
    """

    def __init__(
        self,
        env: Environment,
        service: OrderingService,
        cost: CostModel,
        rng: random.Random,
    ) -> None:
        self.env = env
        self.service = service
        self.cost = cost
        self.rng = rng
        self.envelope_box: Store = Store(env)
        self._peer_nodes: list[PeerNode] = []
        self._timer_epoch = -1
        self.archive: dict[int, Any] = {}
        env.process(self._loop())

    def attach_peer(self, node: PeerNode) -> None:
        self._peer_nodes.append(node)

        def catchup(from_number: int, to_number: int) -> None:
            for number in range(from_number, to_number):
                block = self.archive.get(number)
                if block is not None:
                    send_after(
                        self.env,
                        node.block_box,
                        block,
                        self.cost.orderer_to_peer.sample(self.rng),
                    )

        node.request_catchup = catchup

    def _loop(self) -> Generator:
        while True:
            envelope = yield self.envelope_box.get()
            for block in self.service.submit(envelope, self.env.now):
                self._dispatch(block)
            self._ensure_timer()

    def _ensure_timer(self) -> None:
        if not self.service.has_pending:
            return
        epoch = self.service.batch_epoch
        if epoch == self._timer_epoch:
            return  # a timer for this batch is already pending
        self._timer_epoch = epoch
        deadline = self.service.timeout_deadline()
        assert deadline is not None
        self.env.process(self._timer(epoch, deadline))

    def _timer(self, epoch: int, deadline: float) -> Generator:
        delay = max(0.0, deadline - self.env.now)
        if delay > 0:
            yield self.env.timeout(delay)
        block = self.service.cut_on_timeout(self.env.now, epoch)
        if block is not None:
            self._dispatch(block)

    def _dispatch(self, block) -> None:
        self.archive[block.number] = block
        for node in self._peer_nodes:
            send_after(
                self.env, node.block_box, block, self.cost.orderer_to_peer.sample(self.rng)
            )


class SimulatedNetwork:
    """A full Fabric / FabricCRDT network on the simulation clock."""

    def __init__(
        self,
        env: Environment,
        config: Optional[NetworkConfig] = None,
        cost: Optional[CostModel] = None,
        peer_factory: Optional[PeerFactory] = None,
        endorse_at: str = "all",
        ordering_cls: type[OrderingService] = OrderingService,
    ) -> None:
        if endorse_at not in ("all", "policy"):
            raise FabricError(f"unknown endorsement mode: {endorse_at!r}")
        self.env = env
        self.config = config if config is not None else NetworkConfig()
        self.cost = cost if cost is not None else CostModel()
        self.endorse_at = endorse_at
        self.membership = MembershipRegistry()
        self.chaincodes = ChaincodeRegistry()
        self._policies: dict[str, EndorsementPolicy] = {}
        self._seeds = SeedSequence(self.config.seed)

        factory = peer_factory if peer_factory is not None else Peer
        topology = self.config.topology
        self.peer_nodes: list[PeerNode] = []
        for org_name in topology.org_names:
            for peer_index in range(topology.peers_per_org):
                identity = self.membership.enroll(org_name, f"peer{peer_index}")
                peer = factory(identity, self.membership, self.chaincodes)
                node = PeerNode(
                    env, peer, self.cost, self._seeds.stream(f"peer/{identity.qualified_name}")
                )
                self.peer_nodes.append(node)

        self.ordering = ordering_cls(self.config.orderer)
        self.orderer_node = OrdererNode(
            env, self.ordering, self.cost, self._seeds.stream("orderer")
        )
        for node in self.peer_nodes:
            self.orderer_node.attach_peer(node)

        self.clients = [
            Client(
                self.membership.enroll(
                    topology.org_names[i % topology.num_orgs], f"client{i}"
                ),
                self.membership,
            )
            for i in range(4)
        ]
        self._flow_rng = self._seeds.stream("flows")

    # -- accessors -----------------------------------------------------------------

    @property
    def anchor_node(self) -> PeerNode:
        return self.peer_nodes[0]

    @property
    def anchor_peer(self) -> Peer:
        return self.peer_nodes[0].peer

    @property
    def org_names(self) -> tuple[str, ...]:
        return self.config.topology.org_names

    def peers(self) -> list[Peer]:
        return [node.peer for node in self.peer_nodes]

    # -- deployment ------------------------------------------------------------------

    def deploy(self, chaincode: Chaincode, policy: Optional[EndorsementPolicy] = None) -> None:
        self.chaincodes.deploy(chaincode)
        self._policies[chaincode.name] = (
            policy if policy is not None else or_policy(*self.org_names)
        )

    def policy_for(self, chaincode_name: str) -> EndorsementPolicy:
        try:
            return self._policies[chaincode_name]
        except KeyError:
            raise FabricError(f"chaincode {chaincode_name!r} not deployed") from None

    # -- bootstrap (before the clock starts) ---------------------------------------------

    def bootstrap(
        self, chaincode: str, function: str, args_list: Sequence[Sequence[str]]
    ) -> None:
        """Run setup transactions synchronously at time zero.

        Used to populate the ledger before the measured run (§7.2).  Every
        peer commits the resulting blocks directly, bypassing service times.
        """

        client = self.clients[0]
        policy = self.policy_for(chaincode)
        blocks = []
        for args in args_list:
            proposal = client.new_proposal(
                self.config.topology.channel, chaincode, function, args, policy, 0.0
            )
            outcome = client.endorse_at(proposal, [self.anchor_peer])
            if isinstance(outcome, EndorsementRoundFailure):
                raise FabricError(f"bootstrap endorsement failed: {outcome.reason}")
            blocks.extend(self.ordering.submit(outcome.envelope, 0.0))
        final = self.ordering.flush(0.0)
        if final is not None:
            blocks.append(final)
        for block in blocks:
            self.orderer_node.archive[block.number] = block
            for node in self.peer_nodes:
                node.peer.validate_and_commit(block, commit_time=0.0)

    # -- transaction flow ------------------------------------------------------------------

    def endorsing_nodes(self, policy: EndorsementPolicy) -> list[PeerNode]:
        """The peers a client sends a proposal to.

        ``"all"`` mirrors Caliper/Fabric-SDK defaults (send to every peer);
        ``"policy"`` contacts one peer per org of a minimal satisfying set.
        """

        if self.endorse_at == "all":
            return list(self.peer_nodes)
        from .client import select_endorsing_orgs

        orgs = select_endorsing_orgs(policy, self.org_names)
        nodes = []
        for org in orgs:
            for node in self.peer_nodes:
                if node.peer.org_name == org:
                    nodes.append(node)
                    break
        return nodes

    def submit_flow(
        self,
        client: Client,
        chaincode: str,
        function: str,
        args: Sequence[str],
        on_endorsement_failure: Optional[Callable[[str, float], None]] = None,
    ) -> Generator:
        """One transaction's client-side lifecycle (run as a process).

        Returns (as the process value) the assembled transaction or the
        endorsement-round failure.  Commit outcomes are observed through
        peer event hubs, not through this flow — the client is open-loop.
        """

        policy = self.policy_for(chaincode)
        proposal = client.new_proposal(
            self.config.topology.channel, chaincode, function, args, policy,
            submit_time=self.env.now,
        )
        nodes = self.endorsing_nodes(policy)
        reply_box: Store = Store(self.env)
        for node in nodes:
            send_after(
                self.env,
                node.proposal_box,
                (proposal, reply_box),
                self.cost.client_to_peer.sample(self._flow_rng),
            )
        responses: list[ProposalResponse] = []
        failures: list[EndorsementFailure] = []
        for _ in range(len(nodes)):
            outcome = yield reply_box.get()
            if isinstance(outcome, ProposalResponse):
                responses.append(outcome)
            else:
                failures.append(outcome)
        assembled = client.assemble(proposal, responses, failures)
        if isinstance(assembled, EndorsementRoundFailure):
            if on_endorsement_failure is not None:
                on_endorsement_failure(proposal.tx_id, self.env.now)
            return assembled
        send_after(
            self.env,
            self.orderer_node.envelope_box,
            assembled.envelope,
            self.cost.client_to_orderer.sample(self._flow_rng),
        )
        return assembled
