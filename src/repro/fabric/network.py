"""The timed Fabric network: a thin shell over the DES transport.

:class:`SimulatedNetwork` binds the shared
:class:`~repro.gateway.channel.Channel` runtime to the discrete-event
:class:`~repro.gateway.des.DESTransport`, whose peer/orderer pipelines live
in :mod:`repro.fabric.nodes`.  The protocol behaviour — endorsement pools,
the in-order commit pipeline whose service window produces the paper's MVCC
conflicts (§3), epoch-guarded batch timers — is documented on the node
classes themselves.

Clients are *not* defined here — the Caliper-equivalent driver in
:mod:`repro.workload.caliper` submits through the Gateway API
(``Contract.submit_async``); :meth:`SimulatedNetwork.submit_flow` remains
as a deprecated shim over the same flow.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Generator, Optional, Sequence

from ..common.config import NetworkConfig
from ..common.deprecation import warn_once
from ..common.rng import SeedSequence  # noqa: F401  (re-exported for compat)
from ..sim.engine import Environment
from .chaincode import DeployableChaincode
from .client import Client
from .costmodel import CostModel
from .nodes import OrdererNode, PeerNode, send_after  # noqa: F401  (compat re-export)
from .orderer import OrderingService
from .peer import Peer
from .policy import EndorsementPolicy

if TYPE_CHECKING:  # pragma: no cover
    from ..gateway.channel import Channel
    from ..gateway.des import DESTransport

PeerFactory = Callable[..., Peer]


class SimulatedNetwork:
    """A full Fabric / FabricCRDT network on the simulation clock."""

    def __init__(
        self,
        env: Environment,
        config: Optional[NetworkConfig] = None,
        cost: Optional[CostModel] = None,
        peer_factory: Optional[PeerFactory] = None,
        endorse_at: str = "all",
        ordering_cls: type[OrderingService] = OrderingService,
    ) -> None:
        # Imported lazily: the gateway package itself imports fabric
        # submodules, so a module-level import here would be circular.
        from ..gateway.channel import Channel
        from ..gateway.des import DESTransport

        self.channel: "Channel" = Channel(config, peer_factory)
        self.transport: "DESTransport" = DESTransport(
            env, self.channel, cost=cost, endorse_at=endorse_at, ordering_cls=ordering_cls
        )

    # -- accessors -----------------------------------------------------------------

    @property
    def env(self) -> Environment:
        return self.transport.env

    @property
    def config(self) -> NetworkConfig:
        return self.channel.config

    @property
    def cost(self) -> CostModel:
        return self.transport.cost

    @property
    def endorse_at(self) -> str:
        return self.transport.endorse_at

    @property
    def membership(self):
        return self.channel.membership

    @property
    def chaincodes(self):
        return self.channel.chaincodes

    @property
    def clients(self) -> list[Client]:
        return self.channel.clients

    @property
    def peer_nodes(self) -> list[PeerNode]:
        return self.transport.peer_nodes

    @property
    def ordering(self) -> OrderingService:
        return self.transport.ordering

    @property
    def orderer_node(self) -> OrdererNode:
        return self.transport.orderer_node

    @property
    def anchor_node(self) -> PeerNode:
        return self.transport.anchor_node

    @property
    def anchor_peer(self) -> Peer:
        return self.channel.anchor_peer

    @property
    def org_names(self) -> tuple[str, ...]:
        return self.channel.org_names

    def peers(self) -> list[Peer]:
        return list(self.channel.peers)

    # -- deployment ------------------------------------------------------------------

    def deploy(
        self, chaincode: DeployableChaincode, policy: Optional[EndorsementPolicy] = None
    ) -> None:
        self.channel.deploy(chaincode, policy)

    def policy_for(self, chaincode_name: str) -> EndorsementPolicy:
        return self.channel.policy_for(chaincode_name)

    # -- telemetry (opt-in) ----------------------------------------------------------

    def enable_telemetry(self, telemetry) -> None:
        """Instrument this network into a :class:`~repro.telemetry.Telemetry`.

        Lifecycle spans are recorded on the simulation clock; node metrics
        (peer, orderer, state store) land in the context's registry.  The
        run's protocol behaviour and deterministic metrics are unchanged.
        """

        self.transport.enable_telemetry(telemetry)

    # -- bootstrap (before the clock starts) ---------------------------------------------

    def bootstrap(
        self, chaincode: str, function: str, args_list: Sequence[Sequence[str]]
    ) -> None:
        """Run setup transactions synchronously at time zero (§7.2)."""

        self.transport.bootstrap(chaincode, function, args_list)

    # -- transaction flow ------------------------------------------------------------------

    def endorsing_nodes(self, policy: EndorsementPolicy) -> list[PeerNode]:
        return self.transport.endorsing_nodes(policy)

    def submit_flow(
        self,
        client: Client,
        chaincode: str,
        function: str,
        args: Sequence[str],
        on_endorsement_failure: Optional[Callable[[str, float], None]] = None,
    ) -> Generator:
        """One transaction's client-side lifecycle (run as a process).

        .. deprecated:: use ``Gateway.connect(network).get_contract(...)``
           and ``Contract.submit_async`` instead — it schedules the same
           flow and returns a :class:`SubmittedTransaction` handle.

        Returns (as the process value) the assembled transaction or the
        endorsement-round failure.  Commit outcomes are observed through
        peer event hubs, not through this flow — the client is open-loop.
        """

        warn_once(
            "simulatednetwork-submit-flow",
            "SimulatedNetwork.submit_flow is deprecated; use the Gateway API "
            "(Gateway.connect(network).get_contract(...).submit_async)",
        )
        policy = self.channel.policy_for(chaincode)
        proposal = client.new_proposal(
            self.channel.name, chaincode, function, args, policy,
            submit_time=self.env.now,
        )
        result = yield from self.transport.flow(client, proposal, on_endorsement_failure)
        return result

    # -- lifecycle --------------------------------------------------------------------

    def close(self) -> None:
        """Release the network's resources (deliver session, peer stores)."""

        self.transport.close()

    def __enter__(self) -> "SimulatedNetwork":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
