"""The world state database: a versioned key-value store (CouchDB stand-in).

Every committed key carries the :class:`~repro.common.types.Version` of the
transaction that last wrote it — the heart of Fabric's MVCC validation.  The
store also implements the read paths chaincode uses: point reads, key-range
scans, and a functional subset of CouchDB's Mango selector language for rich
queries (``$eq``, ``$gt``, ``$gte``, ``$lt``, ``$lte``, ``$ne``, ``$in``,
``$and``, ``$or``, ``$not``, ``$exists`` over dotted field paths).
"""

from __future__ import annotations

from bisect import bisect_left, insort
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional

from ..common.errors import StateError
from ..common.serialization import from_bytes
from ..common.types import Version


@dataclass(frozen=True)
class VersionedValue:
    """A committed value and the version of its committing transaction."""

    value: bytes
    version: Version


class StateDB:
    """In-memory versioned world state."""

    def __init__(self) -> None:
        self._data: dict[str, VersionedValue] = {}
        self._sorted_keys: list[str] = []

    # -- reads -------------------------------------------------------------------

    def get(self, key: str) -> Optional[VersionedValue]:
        return self._data.get(key)

    def get_value(self, key: str) -> Optional[bytes]:
        entry = self._data.get(key)
        return entry.value if entry is not None else None

    def get_version(self, key: str) -> Optional[Version]:
        entry = self._data.get(key)
        return entry.version if entry is not None else None

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def keys(self) -> tuple[str, ...]:
        return tuple(self._sorted_keys)

    def range_scan(self, start_key: str, end_key: str) -> Iterator[tuple[str, VersionedValue]]:
        """Keys in ``[start_key, end_key)`` in lexicographic order.

        Empty ``end_key`` means "to the end", matching the Fabric shim's
        ``GetStateByRange`` convention.
        """

        index = bisect_left(self._sorted_keys, start_key)
        while index < len(self._sorted_keys):
            key = self._sorted_keys[index]
            if end_key and key >= end_key:
                break
            yield key, self._data[key]
            index += 1

    # -- writes ------------------------------------------------------------------

    def apply_write(self, key: str, value: bytes, version: Version, is_delete: bool = False) -> None:
        """Commit one write.  Deletes remove the key entirely (like Fabric)."""

        if is_delete:
            if key in self._data:
                del self._data[key]
                index = bisect_left(self._sorted_keys, key)
                if index < len(self._sorted_keys) and self._sorted_keys[index] == key:
                    self._sorted_keys.pop(index)
            return
        if key not in self._data:
            insort(self._sorted_keys, key)
        self._data[key] = VersionedValue(value, version)

    def apply_batch(
        self, writes: list[tuple[str, bytes, bool]], base_version: Version
    ) -> None:
        """Apply a batch of ``(key, value, is_delete)`` at one version."""

        for key, value, is_delete in writes:
            self.apply_write(key, value, base_version, is_delete)

    # -- rich queries -------------------------------------------------------------

    def rich_query(self, selector: dict, limit: Optional[int] = None) -> list[tuple[str, bytes]]:
        """CouchDB-Mango-style query over JSON values.

        Values that are not valid JSON objects are skipped, as CouchDB would
        not index them.  Results are key-ordered and optionally limited.
        """

        predicate = compile_selector(selector)
        results: list[tuple[str, bytes]] = []
        for key in self._sorted_keys:
            entry = self._data[key]
            try:
                doc = from_bytes(entry.value)
            except Exception:
                continue
            if not isinstance(doc, dict):
                continue
            if predicate(doc):
                results.append((key, entry.value))
                if limit is not None and len(results) >= limit:
                    break
        return results

    def snapshot_versions(self) -> dict[str, Version]:
        """Key -> version map (used by tests to diff states)."""

        return {key: entry.version for key, entry in self._data.items()}


# ---------------------------------------------------------------------------
# Mango selector compilation
# ---------------------------------------------------------------------------

_MISSING = object()

Predicate = Callable[[dict], bool]


def _field_value(doc: Any, path: str) -> Any:
    current = doc
    for part in path.split("."):
        if isinstance(current, dict) and part in current:
            current = current[part]
        else:
            return _MISSING
    return current


def _comparable(a: Any, b: Any) -> bool:
    if isinstance(a, bool) or isinstance(b, bool):
        return isinstance(a, bool) and isinstance(b, bool)
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return True
    return type(a) is type(b)


def _compare(op: str, actual: Any, expected: Any) -> bool:
    if actual is _MISSING:
        return False
    if op == "$eq":
        return actual == expected
    if op == "$ne":
        return actual != expected
    if op == "$in":
        if not isinstance(expected, list):
            raise StateError("$in expects a list")
        return actual in expected
    if op == "$nin":
        if not isinstance(expected, list):
            raise StateError("$nin expects a list")
        return actual not in expected
    if not _comparable(actual, expected):
        return False
    if op == "$gt":
        return actual > expected
    if op == "$gte":
        return actual >= expected
    if op == "$lt":
        return actual < expected
    if op == "$lte":
        return actual <= expected
    raise StateError(f"unsupported Mango operator: {op}")


def compile_selector(selector: dict) -> Predicate:
    """Compile a Mango selector into a document predicate."""

    if not isinstance(selector, dict):
        raise StateError(f"selector must be an object, got {type(selector).__name__}")

    clauses: list[Predicate] = []
    for field_or_op, condition in selector.items():
        if field_or_op == "$and":
            if not isinstance(condition, list):
                raise StateError("$and expects a list of selectors")
            subs = [compile_selector(sub) for sub in condition]
            clauses.append(lambda doc, subs=subs: all(sub(doc) for sub in subs))
        elif field_or_op == "$or":
            if not isinstance(condition, list):
                raise StateError("$or expects a list of selectors")
            subs = [compile_selector(sub) for sub in condition]
            clauses.append(lambda doc, subs=subs: any(sub(doc) for sub in subs))
        elif field_or_op == "$not":
            sub = compile_selector(condition)
            clauses.append(lambda doc, sub=sub: not sub(doc))
        elif field_or_op.startswith("$"):
            raise StateError(f"unsupported top-level operator: {field_or_op}")
        else:
            clauses.append(_compile_field(field_or_op, condition))

    return lambda doc: all(clause(doc) for clause in clauses)


def _compile_field(path: str, condition: Any) -> Predicate:
    if isinstance(condition, dict) and any(k.startswith("$") for k in condition):
        ops = dict(condition)

        def field_pred(doc: dict) -> bool:
            actual = _field_value(doc, path)
            for op, expected in ops.items():
                if op == "$exists":
                    present = actual is not _MISSING
                    if present != bool(expected):
                        return False
                elif not _compare(op, actual, expected):
                    return False
            return True

        return field_pred

    def eq_pred(doc: dict) -> bool:
        return _field_value(doc, path) == condition

    return eq_pred
