"""Compatibility facade over :mod:`repro.fabric.store`.

The world state database used to live here as one hard-coded in-memory
``StateDB``.  The implementation now lives in the pluggable-backend package
:mod:`repro.fabric.store` (``MemoryStore`` / ``SqliteStore`` behind the
``StateStore`` interface); this module keeps the historical import surface
working:

* ``StateDB`` is the in-memory backend, unchanged in behaviour;
* ``VersionedValue`` and ``compile_selector`` re-export the shared types
  and the Mango selector compiler.

New code should import from :mod:`repro.fabric.store` directly.
"""

from __future__ import annotations

from .store.base import VersionedValue
from .store.memory import MemoryStore
from .store.query import compile_selector

#: The historical name of the in-memory world state.
StateDB = MemoryStore

__all__ = ["StateDB", "VersionedValue", "compile_selector"]
