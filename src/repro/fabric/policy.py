"""Endorsement policies: the AND / OR / OutOf expression trees of Fabric.

A policy decides whether a set of endorsing organizations is sufficient.
Fabric expresses policies like ``AND('Org1.member', OR('Org2.member',
'Org3.member'))``; every combinator reduces to ``OutOf(n, ...)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Union

from ..common.errors import PolicyError


@dataclass(frozen=True)
class Principal:
    """A leaf: satisfied when the given org endorsed."""

    org_name: str

    def satisfied_by(self, endorsing_orgs: frozenset[str]) -> bool:
        return self.org_name in endorsing_orgs

    def orgs_mentioned(self) -> frozenset[str]:
        return frozenset({self.org_name})

    def min_endorsers(self) -> int:
        return 1

    def __str__(self) -> str:
        return f"'{self.org_name}.member'"


@dataclass(frozen=True)
class OutOf:
    """Satisfied when at least ``threshold`` sub-policies are satisfied."""

    threshold: int
    rules: tuple["PolicyNode", ...]

    def __post_init__(self) -> None:
        if not self.rules:
            raise PolicyError("OutOf requires at least one sub-policy")
        if not 1 <= self.threshold <= len(self.rules):
            raise PolicyError(
                f"threshold {self.threshold} out of range for {len(self.rules)} rules"
            )

    def satisfied_by(self, endorsing_orgs: frozenset[str]) -> bool:
        satisfied = sum(1 for rule in self.rules if rule.satisfied_by(endorsing_orgs))
        return satisfied >= self.threshold

    def orgs_mentioned(self) -> frozenset[str]:
        mentioned: frozenset[str] = frozenset()
        for rule in self.rules:
            mentioned |= rule.orgs_mentioned()
        return mentioned

    def min_endorsers(self) -> int:
        costs = sorted(rule.min_endorsers() for rule in self.rules)
        return sum(costs[: self.threshold])

    def __str__(self) -> str:
        inner = ", ".join(str(rule) for rule in self.rules)
        if self.threshold == len(self.rules):
            return f"AND({inner})"
        if self.threshold == 1:
            return f"OR({inner})"
        return f"OutOf({self.threshold}, {inner})"


PolicyNode = Union[Principal, OutOf]


def and_policy(*org_names: str) -> OutOf:
    """``AND('Org1', 'Org2', ...)`` — every listed org must endorse."""

    rules = tuple(Principal(name) for name in org_names)
    return OutOf(len(rules), rules)


def or_policy(*org_names: str) -> OutOf:
    """``OR('Org1', 'Org2', ...)`` — any one listed org suffices."""

    rules = tuple(Principal(name) for name in org_names)
    return OutOf(1, rules)


def majority_policy(org_names: Iterable[str]) -> OutOf:
    """Strict majority of the listed orgs."""

    rules = tuple(Principal(name) for name in org_names)
    return OutOf(len(rules) // 2 + 1, rules)


@dataclass(frozen=True)
class EndorsementPolicy:
    """A named policy attached to a chaincode."""

    expression: PolicyNode

    def satisfied_by(self, endorsing_orgs: Iterable[str]) -> bool:
        return self.expression.satisfied_by(frozenset(endorsing_orgs))

    def orgs_mentioned(self) -> frozenset[str]:
        return self.expression.orgs_mentioned()

    def min_endorsers(self) -> int:
        """Fewest org endorsements that can satisfy the policy (client hint)."""

        return self.expression.min_endorsers()

    def __str__(self) -> str:
        return str(self.expression)
