"""Organizations, identities, and the membership service provider (MSP).

Fabric identifies every actor by an X.509 certificate issued by an
organization's CA; peers verify signatures and map certificates to MSP IDs
for endorsement-policy evaluation.  The reproduction keeps the same
*structure* — identities belong to orgs, sign payloads, and are verified
through a membership registry — but swaps X.509/ECDSA for deterministic
HMAC-SHA256 with per-identity secrets (see DESIGN.md §8).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..common.errors import FabricError
from ..common.hashing import hmac_sign, hmac_verify, sha256


@dataclass(frozen=True)
class Organization:
    """A Fabric organization (maps 1:1 to an MSP ID)."""

    name: str

    @property
    def msp_id(self) -> str:
        return f"{self.name}MSP"


@dataclass(frozen=True)
class Identity:
    """A signing identity enrolled with an organization."""

    name: str
    org: Organization
    _secret: bytes = field(repr=False, default=b"")

    @property
    def qualified_name(self) -> str:
        return f"{self.org.name}.{self.name}"

    def sign(self, payload: bytes) -> bytes:
        if not self._secret:
            raise FabricError(f"identity {self.qualified_name} has no enrollment secret")
        return hmac_sign(self._secret, payload)

    def verify(self, payload: bytes, signature: bytes) -> bool:
        if not self._secret:
            return False
        return hmac_verify(self._secret, payload, signature)


@dataclass(frozen=True)
class SignedPayload:
    """A payload plus the signer's qualified name and signature bytes."""

    payload_hash: bytes
    signer: str  # qualified name, e.g. "Org1.peer0"
    signature: bytes


class MembershipRegistry:
    """The network's view of enrolled identities (a flattened MSP).

    Components hold a reference to the registry to verify signatures and
    resolve signer organizations during endorsement-policy evaluation.
    """

    def __init__(self) -> None:
        self._orgs: dict[str, Organization] = {}
        self._identities: dict[str, Identity] = {}

    # -- enrollment -------------------------------------------------------------

    def add_org(self, name: str) -> Organization:
        if name in self._orgs:
            return self._orgs[name]
        org = Organization(name)
        self._orgs[name] = org
        return org

    def enroll(self, org_name: str, identity_name: str) -> Identity:
        """Create (or return) an identity with a derived secret."""

        org = self.add_org(org_name)
        qualified = f"{org_name}.{identity_name}"
        if qualified in self._identities:
            return self._identities[qualified]
        secret = sha256(f"enrollment-secret/{qualified}".encode("utf-8"))
        identity = Identity(identity_name, org, secret)
        self._identities[qualified] = identity
        return identity

    # -- lookups ------------------------------------------------------------------

    def org(self, name: str) -> Organization:
        try:
            return self._orgs[name]
        except KeyError:
            raise FabricError(f"unknown organization: {name}") from None

    def orgs(self) -> tuple[Organization, ...]:
        return tuple(self._orgs[name] for name in sorted(self._orgs))

    def identity(self, qualified_name: str) -> Identity:
        try:
            return self._identities[qualified_name]
        except KeyError:
            raise FabricError(f"unknown identity: {qualified_name}") from None

    def org_of(self, qualified_name: str) -> Organization:
        return self.identity(qualified_name).org

    # -- verification -----------------------------------------------------------------

    def verify(self, signed: SignedPayload, payload_hash: bytes) -> bool:
        """Verify a signature against the expected payload hash."""

        if signed.payload_hash != payload_hash:
            return False
        identity = self._identities.get(signed.signer)
        if identity is None:
            return False
        return identity.verify(signed.payload_hash, signed.signature)

    def sign_as(self, qualified_name: str, payload_hash: bytes) -> SignedPayload:
        identity = self.identity(qualified_name)
        return SignedPayload(payload_hash, qualified_name, identity.sign(payload_hash))
