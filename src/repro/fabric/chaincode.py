"""Chaincode base class and the shim stub.

Chaincode runs during *endorsement* (Step 1–2 of Figure 1): the peer executes
``invoke`` against a read-only snapshot of its world state while the stub
records a read-write set.  Nothing is written to the ledger here — writes are
buffered into the write-set to be validated and committed after ordering.

The stub exposes the familiar Fabric shim surface —
``get_state`` / ``put_state`` / ``del_state`` / ``get_state_by_range`` /
``get_query_result`` — plus FabricCRDT's one extension, ``put_crdt``, which
flags the written key-value as a CRDT so the committer merges instead of
MVCC-validating it (the paper's ``putCRDT``, §5.2: "this command only informs
the peer that this value is a CRDT and does not interact with the CRDT in
any way").

Fabric semantics preserved deliberately:

* **No read-your-writes**: ``get_state`` after ``put_state`` in the same
  invocation returns the *committed* value, exactly like Fabric's tx
  simulator.  Tested in ``tests/fabric/test_chaincode.py``.
* Reads record the committed version (or ``None`` for absent keys).
* The last write to a key within one invocation wins.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional, Protocol, Sequence, runtime_checkable

from ..common.deprecation import warn_once
from ..common.errors import ChaincodeError
from ..common.hashing import sha256
from ..common.serialization import from_bytes, to_bytes
from ..common.types import (
    Json,
    KeyModification,
    RangeQueryInfo,
    ReadItem,
    ReadWriteSet,
    WriteItem,
)
from .store import StateStore

if TYPE_CHECKING:  # pragma: no cover
    from .transaction import ChaincodeEvent

#: Separators used by Fabric for composite keys: a namespace sentinel that
#: cannot appear in ordinary keys, and a per-attribute delimiter.
COMPOSITE_PREFIX = "\x00"
COMPOSITE_SEPARATOR = "\x00"


def create_composite_key(object_type: str, attributes: Sequence[str]) -> str:
    """Fabric's ``CreateCompositeKey``: a null-delimited hierarchical key.

    Composite keys sort by (object_type, attr1, attr2, ...), which makes
    partial-prefix range scans possible.
    """

    if not object_type:
        raise ChaincodeError("composite keys need a non-empty object type")
    for part in (object_type, *attributes):
        if COMPOSITE_SEPARATOR in part:
            raise ChaincodeError(f"component contains the separator: {part!r}")
    return (
        COMPOSITE_PREFIX
        + object_type
        + COMPOSITE_SEPARATOR
        + COMPOSITE_SEPARATOR.join(attributes)
        + (COMPOSITE_SEPARATOR if attributes else "")
    )


def split_composite_key(key: str) -> tuple[str, list[str]]:
    """Inverse of :func:`create_composite_key`."""

    if not key.startswith(COMPOSITE_PREFIX):
        raise ChaincodeError(f"not a composite key: {key!r}")
    parts = key[len(COMPOSITE_PREFIX):].split(COMPOSITE_SEPARATOR)
    if parts and parts[-1] == "":
        parts = parts[:-1]
    if not parts:
        raise ChaincodeError(f"malformed composite key: {key!r}")
    return parts[0], parts[1:]


#: Supplies committed key history to the shim (wired by the peer).
HistoryProvider = Callable[[str], Sequence[KeyModification]]


class ShimStub:
    """Recording facade over a world-state snapshot for one invocation."""

    def __init__(
        self,
        state: StateStore,
        tx_id: str,
        timestamp: float = 0.0,
        history: Optional[HistoryProvider] = None,
    ) -> None:
        self._state = state
        self.tx_id = tx_id
        self.timestamp = timestamp
        self._history = history
        self._reads: list[ReadItem] = []
        self._read_keys: set[str] = set()
        self._writes: dict[str, WriteItem] = {}  # key -> last write wins
        self._write_order: list[str] = []
        self._range_queries: list[RangeQueryInfo] = []
        self._event: Optional["ChaincodeEvent"] = None

    # -- reads -------------------------------------------------------------------

    def get_state(self, key: str) -> Optional[Json]:
        """Read a key's committed JSON value (``None`` if absent)."""

        self._require_key(key)
        entry = self._state.get(key)
        if key not in self._read_keys:
            self._read_keys.add(key)
            self._reads.append(
                ReadItem(key, entry.version if entry is not None else None)
            )
        if entry is None:
            return None
        return from_bytes(entry.value)

    def get_state_raw(self, key: str) -> Optional[bytes]:
        """Like :meth:`get_state` but returns raw bytes."""

        self._require_key(key)
        entry = self._state.get(key)
        if key not in self._read_keys:
            self._read_keys.add(key)
            self._reads.append(
                ReadItem(key, entry.version if entry is not None else None)
            )
        return entry.value if entry is not None else None

    def get_state_by_range(self, start_key: str, end_key: str) -> list[tuple[str, Json]]:
        """Range scan ``[start_key, end_key)``; records a phantom-read guard."""

        results = []
        hash_material = []
        for key, entry in self._state.range_scan(start_key, end_key):
            results.append((key, from_bytes(entry.value)))
            hash_material.append(f"{key}\x00{entry.version}")
        self._range_queries.append(
            RangeQueryInfo(
                start_key=start_key,
                end_key=end_key,
                results_hash=sha256("\x01".join(hash_material).encode("utf-8")),
            )
        )
        return results

    def get_query_result(self, selector: dict, limit: Optional[int] = None) -> list[tuple[str, Json]]:
        """CouchDB rich query.  Like Fabric, results are *not* re-validated at
        commit time (rich queries give no phantom protection)."""

        return [
            (key, from_bytes(value))
            for key, value in self._state.rich_query(selector, limit)
        ]

    def get_state_by_partial_composite_key(
        self, object_type: str, attributes: Sequence[str] = ()
    ) -> list[tuple[str, Json]]:
        """Range scan over a composite-key prefix (phantom-protected)."""

        prefix = create_composite_key(object_type, attributes)
        if not attributes:
            prefix = COMPOSITE_PREFIX + object_type + COMPOSITE_SEPARATOR
        return self.get_state_by_range(prefix, prefix + "\U0010ffff")

    def get_history_for_key(self, key: str) -> list[dict]:
        """Committed modification history of a key (``GetHistoryForKey``).

        Like Fabric, history reads are *not* recorded in the read-set and
        give no validation guarantees; they reflect the endorsing peer's
        committed chain at simulation time.
        """

        self._require_key(key)
        if self._history is None:
            raise ChaincodeError("history queries are not available on this stub")
        return [
            {
                "tx_id": modification.tx_id,
                "value": from_bytes(modification.value) if not modification.is_delete else None,
                "is_delete": modification.is_delete,
                "version": str(modification.version),
            }
            for modification in self._history(key)
        ]

    # -- writes ------------------------------------------------------------------

    def put_state(self, key: str, value: Json) -> None:
        """Buffer a write of ``value`` (canonical JSON) to ``key``."""

        self._require_key(key)
        self._record_write(WriteItem(key, to_bytes(value)))

    def put_state_raw(self, key: str, value: bytes) -> None:
        self._require_key(key)
        self._record_write(WriteItem(key, bytes(value)))

    def put_crdt(self, key: str, value: Json) -> None:
        """FabricCRDT: write ``value`` flagged as a CRDT key-value.

        The value itself is plain JSON — all CRDT machinery runs on the peer
        at commit time (Algorithm 1/2).
        """

        self._require_key(key)
        self._record_write(WriteItem(key, to_bytes(value), is_crdt=True))

    def del_state(self, key: str) -> None:
        self._require_key(key)
        self._record_write(WriteItem(key, b"", is_delete=True))

    def _record_write(self, write: WriteItem) -> None:
        if write.key not in self._writes:
            self._write_order.append(write.key)
        self._writes[write.key] = write

    @staticmethod
    def _require_key(key: str) -> None:
        if not key or not isinstance(key, str):
            raise ChaincodeError(f"invalid state key: {key!r}")

    # -- events ------------------------------------------------------------------

    def set_event(self, name: str, payload: Json = None) -> None:
        """Set this invocation's chaincode event (Fabric's ``SetEvent``).

        Like Fabric, at most one event travels per transaction — a second
        call replaces the first.  The event is part of the endorsed payload
        (all endorsers must produce the same one) and is surfaced to the
        client with the commit notification.
        """

        from .transaction import ChaincodeEvent

        if not name or not isinstance(name, str):
            raise ChaincodeError(f"invalid event name: {name!r}")
        self._event = ChaincodeEvent(name, payload)

    @property
    def event(self) -> Optional["ChaincodeEvent"]:
        return self._event

    # -- result -------------------------------------------------------------------

    def build_rwset(self) -> ReadWriteSet:
        return ReadWriteSet(
            reads=tuple(self._reads),
            writes=tuple(self._writes[key] for key in self._write_order),
            range_queries=tuple(self._range_queries),
        )


@runtime_checkable
class DeployableChaincode(Protocol):
    """What a channel needs from deployed chaincode, whatever its style.

    Satisfied by old-style :class:`Chaincode` subclasses and by new-style
    :class:`repro.contract.Contract` subclasses alike.
    """

    name: str

    def invoke(self, stub: ShimStub, function: str, args: tuple[str, ...]) -> Json:
        ...  # pragma: no cover - protocol definition


class Chaincode:
    """Base class for raw-shim chaincode (smart contracts).

    .. deprecated:: prefer :class:`repro.contract.Contract` with
       ``@transaction`` / ``@query`` decorated handlers — an explicit
       registry with typed argument coercion instead of ``fn_`` name
       dispatch.  This class remains as a compatibility shim; its ``fn_``
       dispatch emits a :class:`DeprecationWarning` once per process.

    Subclasses either define ``fn_<function>`` handlers or override
    :meth:`invoke` wholesale; the return value (any JSON) becomes the
    chaincode result carried in the proposal response.
    """

    #: Chaincode name used in proposals.
    name: str = "chaincode"

    def invoke(self, stub: ShimStub, function: str, args: tuple[str, ...]) -> Json:
        warn_once(
            "chaincode-fn-dispatch",
            "Chaincode's fn_-prefix dispatch is deprecated; subclass "
            "repro.contract.Contract and decorate handlers with @transaction/@query",
        )
        handler = None
        if _is_public_function_name(function):
            handler = getattr(self, f"fn_{function}", None)
        if handler is None:
            raise ChaincodeError(
                f"{self.name}: unknown function {function!r}; "
                f"available: {', '.join(self.transaction_names()) or '(none)'}"
            )
        return handler(stub, *args)

    @classmethod
    def transaction_names(cls) -> tuple[str, ...]:
        """The invokable function names (``fn_`` handlers, public only)."""

        return tuple(
            sorted(
                name[len("fn_"):]
                for name in dir(cls)
                if name.startswith("fn_")
                and _is_public_function_name(name[len("fn_"):])
                and callable(getattr(cls, name))
            )
        )

    def init(self, stub: ShimStub) -> None:
        """Optional: populate initial state (called on deployment)."""


def _is_public_function_name(function: str) -> bool:
    """Only plain public identifiers are dispatchable.

    Rejects ``_private`` names (which would otherwise reach ``fn__private``
    handlers) and anything that is not an identifier, so proposal-supplied
    function strings can never address internal attributes.
    """

    return (
        isinstance(function, str)
        and function.isidentifier()
        and not function.startswith("_")
    )


class ChaincodeRegistry:
    """Chaincodes deployed on a channel, by name.

    Accepts anything satisfying :class:`DeployableChaincode` — old-style
    ``Chaincode`` subclasses and new-style ``repro.contract.Contract``
    subclasses share one registry.
    """

    def __init__(self) -> None:
        self._chaincodes: dict[str, DeployableChaincode] = {}

    def deploy(self, chaincode: DeployableChaincode) -> None:
        if not getattr(chaincode, "name", None):
            raise ChaincodeError("chaincode must have a name")
        if not callable(getattr(chaincode, "invoke", None)):
            raise ChaincodeError(
                f"cannot deploy {type(chaincode).__name__}: no invoke(stub, function, args)"
            )
        self._chaincodes[chaincode.name] = chaincode

    def get(self, name: str) -> DeployableChaincode:
        try:
            return self._chaincodes[name]
        except KeyError:
            raise ChaincodeError(f"chaincode not deployed: {name}") from None

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._chaincodes))

    def __contains__(self, name: str) -> bool:
        return name in self._chaincodes
