"""The in-memory backend: the historical ``StateDB`` behaviour.

A dict keyed by state key plus a sorted key list for range scans — exactly
the pre-refactor implementation, so every read path (and therefore every
deterministic metric derived from simulation behaviour) is byte-identical
to the seed.  On top of that it maintains the incremental XOR fingerprint
of :mod:`repro.fabric.store.base`, updated in O(1) per write.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Iterator, Optional

from ...common.types import Version
from .base import FINGERPRINT_BYTES, StateStore, VersionedValue, entry_digest


class MemoryStore(StateStore):
    """In-memory versioned world state (Fabric's LevelDB stand-in)."""

    backend = "memory"

    def __init__(self) -> None:
        self._data: dict[str, VersionedValue] = {}
        self._sorted_keys: list[str] = []
        self._fingerprint_acc = 0

    # -- reads -------------------------------------------------------------------

    def get(self, key: str) -> Optional[VersionedValue]:
        return self._data.get(key)

    def get_value(self, key: str) -> Optional[bytes]:
        entry = self._data.get(key)
        return entry.value if entry is not None else None

    def get_version(self, key: str) -> Optional[Version]:
        entry = self._data.get(key)
        return entry.version if entry is not None else None

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def keys(self) -> tuple[str, ...]:
        return tuple(self._sorted_keys)

    def range_scan(self, start_key: str, end_key: str) -> Iterator[tuple[str, VersionedValue]]:
        index = bisect_left(self._sorted_keys, start_key)
        while index < len(self._sorted_keys):
            key = self._sorted_keys[index]
            if end_key and key >= end_key:
                break
            yield key, self._data[key]
            index += 1

    # -- writes ------------------------------------------------------------------

    def apply_write(self, key: str, value: bytes, version: Version, is_delete: bool = False) -> None:
        existing = self._data.get(key)
        if existing is not None:
            self._fingerprint_acc ^= entry_digest(key, existing.value, existing.version)
        if is_delete:
            if existing is not None:
                del self._data[key]
                index = bisect_left(self._sorted_keys, key)
                if index < len(self._sorted_keys) and self._sorted_keys[index] == key:
                    self._sorted_keys.pop(index)
            return
        if existing is None:
            insort(self._sorted_keys, key)
        self._data[key] = VersionedValue(value, version)
        self._fingerprint_acc ^= entry_digest(key, value, version)

    # -- snapshots ----------------------------------------------------------------

    def snapshot_versions(self) -> dict[str, Version]:
        return {key: entry.version for key, entry in self._data.items()}

    def fingerprint(self) -> bytes:
        return self._fingerprint_acc.to_bytes(FINGERPRINT_BYTES, "big")
