"""The ``StateStore`` interface: what a world-state backend must provide.

Fabric treats the state database as a swappable component (LevelDB or
CouchDB behind one ``VersionedDB`` interface); this module is that seam for
the reproduction.  Every consumer of world state — the shim stub, MVCC
validation, the CRDT block merger, the gateway channel, the benchmark
harness — programs against :class:`StateStore`; the concrete backend
(:class:`~repro.fabric.store.memory.MemoryStore` or
:class:`~repro.fabric.store.sqlite.SqliteStore`) is chosen by
``NetworkConfig.state_backend``.

The interface covers the read paths chaincode uses (point reads, versioned
reads, key-range scans, Mango rich queries), batch application of
block-scoped :class:`~repro.fabric.store.batch.WriteBatch` objects, and an
**incremental state fingerprint**: a 32-byte digest maintained write-by-write
that two stores share exactly when their full ``(key, version, value)``
content is identical.  Divergence checks compare fingerprints in O(1)
instead of materializing full snapshot dictionaries.

The fingerprint is an XOR-accumulated set hash: each committed entry
contributes ``SHA-256(key, version, value)`` and the store's fingerprint is
the XOR of all contributions.  XOR makes the digest order-independent (it
is a pure function of the current content, not the write history) and makes
updates O(1): overwriting a key XORs the old entry's digest out and the new
one in.
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterator, Optional

from ...common.serialization import from_bytes
from ...common.types import Version
from .batch import WriteBatch
from .query import compile_selector

#: Digest width of the state fingerprint (SHA-256).
FINGERPRINT_BYTES = 32

#: Fingerprint of an empty store.
EMPTY_FINGERPRINT = bytes(FINGERPRINT_BYTES)


@dataclass(frozen=True)
class VersionedValue:
    """A committed value and the version of its committing transaction."""

    value: bytes
    version: Version


def entry_digest(key: str, value: bytes, version: Version) -> int:
    """The fingerprint contribution of one committed entry.

    Length-prefixed fields keep the encoding injective (no two distinct
    entries share a preimage through concatenation tricks).
    """

    key_bytes = key.encode("utf-8")
    material = b"%d\x00%s%d\x00%d\x00%s" % (
        len(key_bytes),
        key_bytes,
        version.block_num,
        version.tx_num,
        value,
    )
    return int.from_bytes(hashlib.sha256(material).digest(), "big")


class StateStore(ABC):
    """Abstract versioned world state: the committer's state database."""

    #: Short backend name ("memory", "sqlite") used in configs and reports.
    backend: str = "abstract"

    # -- reads -------------------------------------------------------------------

    @abstractmethod
    def get(self, key: str) -> Optional[VersionedValue]:
        """Committed ``(value, version)`` of ``key``, or ``None``."""

    def get_value(self, key: str) -> Optional[bytes]:
        entry = self.get(key)
        return entry.value if entry is not None else None

    def get_version(self, key: str) -> Optional[Version]:
        entry = self.get(key)
        return entry.version if entry is not None else None

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    @abstractmethod
    def __len__(self) -> int:
        """Number of committed keys."""

    @abstractmethod
    def keys(self) -> tuple[str, ...]:
        """All committed keys in lexicographic order."""

    @abstractmethod
    def range_scan(self, start_key: str, end_key: str) -> Iterator[tuple[str, VersionedValue]]:
        """Keys in ``[start_key, end_key)`` in lexicographic order.

        Empty ``end_key`` means "to the end", matching the Fabric shim's
        ``GetStateByRange`` convention.
        """

    def rich_query(self, selector: dict, limit: Optional[int] = None) -> list[tuple[str, bytes]]:
        """CouchDB-Mango-style query over JSON values.

        Values that are not valid JSON objects are skipped, as CouchDB would
        not index them.  Results are key-ordered and optionally limited.
        The default implementation evaluates the compiled predicate over a
        full key-ordered scan, so results are identical on every backend.
        """

        predicate = compile_selector(selector)
        results: list[tuple[str, bytes]] = []
        for key, entry in self.range_scan("", ""):
            try:
                doc = from_bytes(entry.value)
            except Exception:
                continue
            if not isinstance(doc, dict):
                continue
            if predicate(doc):
                results.append((key, entry.value))
                if limit is not None and len(results) >= limit:
                    break
        return results

    # -- writes ------------------------------------------------------------------

    @abstractmethod
    def apply_write(self, key: str, value: bytes, version: Version, is_delete: bool = False) -> None:
        """Commit one write.  Deletes remove the key entirely (like Fabric)."""

    def apply_batch(self, batch, base_version: Optional[Version] = None) -> None:
        """Apply one block's :class:`WriteBatch` atomically.

        The default applies writes sequentially (sufficient for in-process
        backends); durable backends override this with a real transaction.

        .. deprecated:: the legacy ``apply_batch([(key, value, is_delete),
           ...], base_version)`` form still works but warns once; build a
           :class:`WriteBatch` instead.
        """

        if base_version is not None:
            from ...common.deprecation import warn_once

            warn_once(
                "statestore-apply-batch-tuples",
                "apply_batch([(key, value, is_delete), ...], base_version) is "
                "deprecated; build a repro.fabric.store.WriteBatch and pass it",
            )
            legacy = WriteBatch(block_number=base_version.block_num)
            for key, value, is_delete in batch:
                legacy.put(key, value, base_version, is_delete)
            batch = legacy
        self._apply_batch(batch)

    def _apply_batch(self, batch: WriteBatch) -> None:
        """Backend batch application (override for real transactions)."""

        for write in batch:
            self.apply_write(write.key, write.value, write.version, write.is_delete)

    # -- snapshots ----------------------------------------------------------------

    def snapshot_versions(self) -> dict[str, Version]:
        """Key -> version map (used by tests to diff states)."""

        return {key: entry.version for key, entry in self.range_scan("", "")}

    @abstractmethod
    def fingerprint(self) -> bytes:
        """32-byte incremental digest of the full committed content.

        Two stores have equal fingerprints iff their ``(key, version,
        value)`` content is identical (up to SHA-256 collisions) —
        regardless of backend and of the order writes were applied in.
        """

    def compute_fingerprint(self) -> bytes:
        """Recompute the fingerprint from scratch (integrity cross-check)."""

        accumulator = 0
        for key, entry in self.range_scan("", ""):
            accumulator ^= entry_digest(key, entry.value, entry.version)
        return accumulator.to_bytes(FINGERPRINT_BYTES, "big")

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        """Release backend resources.  In-memory backends are a no-op."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} backend={self.backend} keys={len(self)}>"
