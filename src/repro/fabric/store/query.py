"""Mango selector compilation — the rich-query language of every backend.

A functional subset of CouchDB's Mango selector language (``$eq``, ``$gt``,
``$gte``, ``$lt``, ``$lte``, ``$ne``, ``$in``, ``$nin``, ``$and``, ``$or``,
``$not``, ``$exists`` over dotted field paths), compiled once into a Python
predicate and evaluated per document.  The compiler is backend-independent:
:class:`~repro.fabric.store.memory.MemoryStore` and
:class:`~repro.fabric.store.sqlite.SqliteStore` both evaluate the *same*
compiled predicate over their key-ordered document iteration, which is what
makes rich-query results identical across backends by construction.

Comparison semantics mirror CouchDB's typed collation in the small: range
operators (``$gt`` and friends) never match across incompatible types —
``{"a": {"$gt": 3}}`` does not match ``{"a": "x"}`` — while ``$eq``/``$ne``
use plain equality.
"""

from __future__ import annotations

from typing import Any, Callable

from ...common.errors import StateError

_MISSING = object()

Predicate = Callable[[dict], bool]


def _field_value(doc: Any, path: str) -> Any:
    current = doc
    for part in path.split("."):
        if isinstance(current, dict) and part in current:
            current = current[part]
        else:
            return _MISSING
    return current


def _comparable(a: Any, b: Any) -> bool:
    if isinstance(a, bool) or isinstance(b, bool):
        return isinstance(a, bool) and isinstance(b, bool)
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return True
    return type(a) is type(b)


def _compare(op: str, actual: Any, expected: Any) -> bool:
    if actual is _MISSING:
        return False
    if op == "$eq":
        return actual == expected
    if op == "$ne":
        return actual != expected
    if op == "$in":
        if not isinstance(expected, list):
            raise StateError("$in expects a list")
        return actual in expected
    if op == "$nin":
        if not isinstance(expected, list):
            raise StateError("$nin expects a list")
        return actual not in expected
    if not _comparable(actual, expected):
        return False
    if op == "$gt":
        return actual > expected
    if op == "$gte":
        return actual >= expected
    if op == "$lt":
        return actual < expected
    if op == "$lte":
        return actual <= expected
    raise StateError(f"unsupported Mango operator: {op}")


def compile_selector(selector: dict) -> Predicate:
    """Compile a Mango selector into a document predicate."""

    if not isinstance(selector, dict):
        raise StateError(f"selector must be an object, got {type(selector).__name__}")

    clauses: list[Predicate] = []
    for field_or_op, condition in selector.items():
        if field_or_op == "$and":
            if not isinstance(condition, list):
                raise StateError("$and expects a list of selectors")
            subs = [compile_selector(sub) for sub in condition]
            clauses.append(lambda doc, subs=subs: all(sub(doc) for sub in subs))
        elif field_or_op == "$or":
            if not isinstance(condition, list):
                raise StateError("$or expects a list of selectors")
            subs = [compile_selector(sub) for sub in condition]
            clauses.append(lambda doc, subs=subs: any(sub(doc) for sub in subs))
        elif field_or_op == "$not":
            sub = compile_selector(condition)
            clauses.append(lambda doc, sub=sub: not sub(doc))
        elif field_or_op.startswith("$"):
            raise StateError(f"unsupported top-level operator: {field_or_op}")
        else:
            clauses.append(_compile_field(field_or_op, condition))

    return lambda doc: all(clause(doc) for clause in clauses)


def _compile_field(path: str, condition: Any) -> Predicate:
    if isinstance(condition, dict) and any(k.startswith("$") for k in condition):
        ops = dict(condition)

        def field_pred(doc: dict) -> bool:
            actual = _field_value(doc, path)
            for op, expected in ops.items():
                if op == "$exists":
                    present = actual is not _MISSING
                    if present != bool(expected):
                        return False
                elif not _compare(op, actual, expected):
                    return False
            return True

        return field_pred

    def eq_pred(doc: dict) -> bool:
        return _field_value(doc, path) == condition

    return eq_pred
