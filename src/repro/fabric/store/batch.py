"""Block-scoped write batches — the unit of state mutation at commit time.

Fabric's committer never writes single keys: it assembles all effective
writes of a validated block into one ``UpdateBatch`` and hands it to the
state database, which applies it atomically (LevelDB write batch / CouchDB
``_bulk_docs``).  :class:`WriteBatch` is that object here.

:meth:`repro.fabric.peer.Peer.prepare_block` builds one batch per block
(including CRDT-merged replacement values), and
:meth:`repro.fabric.peer.Peer.apply_prepared` /
:meth:`repro.fabric.ledger.Ledger.rebuild_state` apply it through
:meth:`StateStore.apply_batch` — one transaction on SQLite, one loop on the
memory backend.  Entries preserve block order; a later write to the same key
supersedes an earlier one exactly as sequential application would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ...common.types import Version


@dataclass(frozen=True)
class BatchWrite:
    """One effective write of a block: key, value bytes, committing version."""

    key: str
    value: bytes
    version: Version
    is_delete: bool = False


@dataclass
class WriteBatch:
    """All effective writes of one block, in block order."""

    block_number: int
    writes: list[BatchWrite] = field(default_factory=list)

    def put(self, key: str, value: bytes, version: Version, is_delete: bool = False) -> None:
        self.writes.append(BatchWrite(key, value, version, is_delete))

    def __len__(self) -> int:
        return len(self.writes)

    def __iter__(self) -> Iterator[BatchWrite]:
        return iter(self.writes)

    def __bool__(self) -> bool:
        return bool(self.writes)

    def distinct_keys(self) -> frozenset[str]:
        return frozenset(write.key for write in self.writes)

    def coalesced(self) -> list[BatchWrite]:
        """Last write per key, in first-touch key order.

        Sequential application of ``writes`` and application of
        ``coalesced()`` produce the same final state; backends with
        per-write overhead (SQLite) apply the coalesced form.
        """

        last: dict[str, BatchWrite] = {}
        for write in self.writes:
            last[write.key] = write
        return list(last.values())
