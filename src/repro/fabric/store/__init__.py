"""Pluggable world-state backends (Fabric's swappable state database).

The package exposes one abstract interface, :class:`StateStore`, and two
implementations:

* :class:`MemoryStore` — the historical in-memory ``StateDB`` behaviour
  (dict + sorted keys), byte-identical deterministic metrics;
* :class:`SqliteStore` — a persistent, crash-and-reopen-able backend with
  an indexed key table and transactional block batches.

Blocks mutate state through block-scoped :class:`WriteBatch` objects, and
every store maintains an incremental content :meth:`~StateStore.fingerprint`
used for O(1) cross-peer divergence checks.  Pick a backend by name through
:func:`create_store` (wired to ``NetworkConfig.state_backend``).
"""

from __future__ import annotations

from typing import Optional

from ...common.config import STATE_BACKENDS
from ...common.errors import ConfigError
from .base import EMPTY_FINGERPRINT, FINGERPRINT_BYTES, StateStore, VersionedValue, entry_digest
from .batch import BatchWrite, WriteBatch
from .instrument import InstrumentedStore
from .memory import MemoryStore
from .query import compile_selector
from .sqlite import SqliteStore


def create_store(backend: str = "memory", path: Optional[str] = None) -> StateStore:
    """Build a state store by backend name.

    ``path`` only applies to ``sqlite`` (``None`` means a private in-memory
    database — the SQL code paths without the disk).
    """

    if backend == "memory":
        if path is not None:
            raise ConfigError("the memory backend takes no path")
        return MemoryStore()
    if backend == "sqlite":
        return SqliteStore(path if path is not None else ":memory:")
    raise ConfigError(
        f"unknown state backend {backend!r}; expected one of {', '.join(STATE_BACKENDS)}"
    )


__all__ = [
    "BatchWrite",
    "EMPTY_FINGERPRINT",
    "FINGERPRINT_BYTES",
    "InstrumentedStore",
    "MemoryStore",
    "STATE_BACKENDS",
    "SqliteStore",
    "StateStore",
    "VersionedValue",
    "WriteBatch",
    "compile_selector",
    "create_store",
    "entry_digest",
]
