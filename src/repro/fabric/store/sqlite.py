"""The persistent backend: world state in a single SQLite file.

``SqliteStore`` keeps the committed ``(key, value, version)`` entries in an
indexed key table and applies each block's :class:`~repro.fabric.store.
batch.WriteBatch` inside one SQL transaction — the whole block becomes
visible atomically, or not at all (crash mid-batch rolls back).  This is
the reproduction's stand-in for Fabric's durable state databases: it
enables crash-and-reopen scenarios and state sizes that do not fit
comfortably in Python dicts.

Design notes:

* **Keys are stored as UTF-8 BLOBs.**  SQLite compares BLOBs with
  ``memcmp``, and UTF-8 byte order equals Unicode code-point order, so
  range scans return exactly the lexicographic key order the rest of the
  system (and the memory backend) assumes — including composite keys with
  embedded ``\\x00`` separators, which TEXT affinity handles poorly.
* **The fingerprint is persisted transactionally.**  The incremental XOR
  fingerprint (see :mod:`repro.fabric.store.base`) is updated in memory per
  write and written to the ``meta`` table in the same transaction as the
  batch, so a reopened store resumes with the exact digest it closed with.
* ``path=":memory:"`` gives a private, non-persistent database — useful to
  exercise the SQL code paths (benchmarks, CI) without touching disk.
"""

from __future__ import annotations

import sqlite3
from typing import Iterator, Optional

from ...common.errors import StateError
from ...common.types import Version
from .base import FINGERPRINT_BYTES, StateStore, VersionedValue, entry_digest
from .batch import WriteBatch

_SCHEMA = """
CREATE TABLE IF NOT EXISTS state (
    key   BLOB PRIMARY KEY,
    value BLOB NOT NULL,
    block INTEGER NOT NULL,
    txn   INTEGER NOT NULL
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS meta (
    name  TEXT PRIMARY KEY,
    value BLOB NOT NULL
);
"""

_FINGERPRINT_KEY = "fingerprint"


class SqliteStore(StateStore):
    """Persistent versioned world state backed by SQLite."""

    backend = "sqlite"

    def __init__(self, path: str = ":memory:") -> None:
        self.path = path
        self._conn = sqlite3.connect(path, isolation_level=None)
        self._conn.executescript(_SCHEMA)
        self._closed = False
        self._fingerprint_acc = self._load_fingerprint()

    # -- lifecycle ----------------------------------------------------------------

    def _load_fingerprint(self) -> int:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE name = ?", (_FINGERPRINT_KEY,)
        ).fetchone()
        if row is None:
            # Fresh database — or one written before fingerprints existed:
            # fold the current content in so reopen always resumes correctly.
            accumulator = 0
            for key, entry in self.range_scan("", ""):
                accumulator ^= entry_digest(key, entry.value, entry.version)
            self._conn.execute(
                "INSERT OR REPLACE INTO meta (name, value) VALUES (?, ?)",
                (_FINGERPRINT_KEY, accumulator.to_bytes(FINGERPRINT_BYTES, "big")),
            )
            return accumulator
        return int.from_bytes(bytes(row[0]), "big")

    def close(self) -> None:
        """Flush and close the database; the store becomes unusable."""

        if not self._closed:
            self._conn.close()
            self._closed = True

    def _require_open(self) -> None:
        if self._closed:
            raise StateError(f"state store {self.path!r} is closed")

    # -- reads -------------------------------------------------------------------

    @staticmethod
    def _key_blob(key: str) -> bytes:
        return key.encode("utf-8")

    def get(self, key: str) -> Optional[VersionedValue]:
        self._require_open()
        row = self._conn.execute(
            "SELECT value, block, txn FROM state WHERE key = ?",
            (self._key_blob(key),),
        ).fetchone()
        if row is None:
            return None
        return VersionedValue(bytes(row[0]), Version(row[1], row[2]))

    def __contains__(self, key: str) -> bool:
        self._require_open()
        row = self._conn.execute(
            "SELECT 1 FROM state WHERE key = ?", (self._key_blob(key),)
        ).fetchone()
        return row is not None

    def __len__(self) -> int:
        self._require_open()
        return self._conn.execute("SELECT COUNT(*) FROM state").fetchone()[0]

    def keys(self) -> tuple[str, ...]:
        self._require_open()
        return tuple(
            bytes(row[0]).decode("utf-8")
            for row in self._conn.execute("SELECT key FROM state ORDER BY key")
        )

    def range_scan(self, start_key: str, end_key: str) -> Iterator[tuple[str, VersionedValue]]:
        self._require_open()
        if end_key:
            cursor = self._conn.execute(
                "SELECT key, value, block, txn FROM state "
                "WHERE key >= ? AND key < ? ORDER BY key",
                (self._key_blob(start_key), self._key_blob(end_key)),
            )
        else:
            cursor = self._conn.execute(
                "SELECT key, value, block, txn FROM state WHERE key >= ? ORDER BY key",
                (self._key_blob(start_key),),
            )
        for row in cursor:
            yield (
                bytes(row[0]).decode("utf-8"),
                VersionedValue(bytes(row[1]), Version(row[2], row[3])),
            )

    # -- writes ------------------------------------------------------------------

    def _write_one(self, key: str, value: bytes, version: Version, is_delete: bool) -> None:
        """Apply one write inside the caller's transaction, updating the
        in-memory fingerprint accumulator."""

        key_blob = self._key_blob(key)
        existing = self._conn.execute(
            "SELECT value, block, txn FROM state WHERE key = ?", (key_blob,)
        ).fetchone()
        if existing is not None:
            self._fingerprint_acc ^= entry_digest(
                key, bytes(existing[0]), Version(existing[1], existing[2])
            )
        if is_delete:
            if existing is not None:
                self._conn.execute("DELETE FROM state WHERE key = ?", (key_blob,))
            return
        self._conn.execute(
            "INSERT OR REPLACE INTO state (key, value, block, txn) VALUES (?, ?, ?, ?)",
            (key_blob, value, version.block_num, version.tx_num),
        )
        self._fingerprint_acc ^= entry_digest(key, value, version)

    def _persist_fingerprint(self) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO meta (name, value) VALUES (?, ?)",
            (_FINGERPRINT_KEY, self._fingerprint_acc.to_bytes(FINGERPRINT_BYTES, "big")),
        )

    def apply_write(self, key: str, value: bytes, version: Version, is_delete: bool = False) -> None:
        self._require_open()
        saved_fingerprint = self._fingerprint_acc
        self._conn.execute("BEGIN")
        try:
            self._write_one(key, value, version, is_delete)
            self._persist_fingerprint()
        except BaseException:
            self._conn.execute("ROLLBACK")
            self._fingerprint_acc = saved_fingerprint
            raise
        self._conn.execute("COMMIT")

    def _apply_batch(self, batch: WriteBatch) -> None:
        """One block, one SQL transaction: all-or-nothing visibility.

        Intermediate same-key writes are coalesced away — only the last
        write per key touches the database, which is also what Fabric's
        ``UpdateBatch`` commits.
        """

        self._require_open()
        saved_fingerprint = self._fingerprint_acc
        self._conn.execute("BEGIN")
        try:
            for write in batch.coalesced():
                self._write_one(write.key, write.value, write.version, write.is_delete)
            self._persist_fingerprint()
        except BaseException:
            self._conn.execute("ROLLBACK")
            self._fingerprint_acc = saved_fingerprint
            raise
        self._conn.execute("COMMIT")

    # -- snapshots ----------------------------------------------------------------

    def snapshot_versions(self) -> dict[str, Version]:
        self._require_open()
        return {
            bytes(row[0]).decode("utf-8"): Version(row[1], row[2])
            for row in self._conn.execute("SELECT key, block, txn FROM state ORDER BY key")
        }

    def fingerprint(self) -> bytes:
        self._require_open()
        return self._fingerprint_acc.to_bytes(FINGERPRINT_BYTES, "big")
