"""A delegating :class:`StateStore` wrapper that measures backend latency.

``InstrumentedStore`` wraps any concrete backend and times its hot
operations — point reads, single writes, and block batch application —
into a telemetry registry's histograms, labelled by node and backend.
Everything else delegates untouched, including the incremental
fingerprint, so a wrapped store is observationally identical to the
backend it wraps (the parity and golden-fingerprint checks run through
it unchanged).

Timing uses ``perf_counter`` wall clock deliberately: store latency is a
real-machine cost, meaningful in both the DES (where it is *not* part of
simulated time — the cost model owns that) and the socket runtime.
"""

from __future__ import annotations

from time import perf_counter
from typing import Iterator, Optional

from ...common.types import Version
from .base import StateStore, VersionedValue
from .batch import WriteBatch

#: Latency buckets tuned for in-process stores: 100ns to 1s.
STORE_SECONDS_BUCKETS = (
    1e-7, 5e-7, 1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 1e-2, 0.1, 1.0
)


class InstrumentedStore(StateStore):
    """Wrap ``inner`` and record get/put/batch-apply latencies."""

    def __init__(self, inner: StateStore, telemetry, node: str = "") -> None:
        self.inner = inner
        self.backend = inner.backend
        self._labels = {"node": node, "backend": inner.backend}
        metrics = telemetry.metrics
        self._get_seconds = metrics.histogram(
            "repro_store_get_seconds",
            "Point-read latency of the state store",
            buckets=STORE_SECONDS_BUCKETS,
        )
        self._put_seconds = metrics.histogram(
            "repro_store_put_seconds",
            "Single-write latency of the state store",
            buckets=STORE_SECONDS_BUCKETS,
        )
        self._batch_seconds = metrics.histogram(
            "repro_store_batch_apply_seconds",
            "Block WriteBatch application latency",
            buckets=STORE_SECONDS_BUCKETS,
        )
        self._batch_writes = metrics.counter(
            "repro_store_batch_writes_total",
            "Writes applied through block batches",
        )

    # -- timed hot paths ----------------------------------------------------------

    def get(self, key: str) -> Optional[VersionedValue]:
        started = perf_counter()
        try:
            return self.inner.get(key)
        finally:
            self._get_seconds.observe(perf_counter() - started, **self._labels)

    def apply_write(
        self, key: str, value: bytes, version: Version, is_delete: bool = False
    ) -> None:
        started = perf_counter()
        try:
            self.inner.apply_write(key, value, version, is_delete)
        finally:
            self._put_seconds.observe(perf_counter() - started, **self._labels)

    def apply_batch(self, batch, base_version: Optional[Version] = None) -> None:
        started = perf_counter()
        try:
            self.inner.apply_batch(batch, base_version)
        finally:
            self._batch_seconds.observe(perf_counter() - started, **self._labels)
            if isinstance(batch, WriteBatch):
                self._batch_writes.inc(len(batch), **self._labels)

    def _apply_batch(self, batch: WriteBatch) -> None:
        self.inner._apply_batch(batch)

    # -- pure delegation ----------------------------------------------------------

    def get_value(self, key: str) -> Optional[bytes]:
        entry = self.get(key)
        return entry.value if entry is not None else None

    def get_version(self, key: str) -> Optional[Version]:
        entry = self.get(key)
        return entry.version if entry is not None else None

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        return len(self.inner)

    def keys(self) -> tuple[str, ...]:
        return self.inner.keys()

    def range_scan(
        self, start_key: str, end_key: str
    ) -> Iterator[tuple[str, VersionedValue]]:
        return self.inner.range_scan(start_key, end_key)

    def rich_query(self, selector: dict, limit: Optional[int] = None):
        return self.inner.rich_query(selector, limit)

    def snapshot_versions(self) -> dict[str, Version]:
        return self.inner.snapshot_versions()

    def fingerprint(self) -> bytes:
        return self.inner.fingerprint()

    def compute_fingerprint(self) -> bytes:
        return self.inner.compute_fingerprint()

    def close(self) -> None:
        self.inner.close()

    def __repr__(self) -> str:
        return f"<InstrumentedStore over {self.inner!r}>"
