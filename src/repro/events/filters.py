"""Event filtering: which transactions of a block yield contract events.

Fabric's deliver service offers filtered streams (chaincode, event name);
validity filtering matters doubly here because in FabricCRDT the *commit*
is where a transaction's fate is decided — clients learn merged outcomes
and MVCC fates from committed blocks, so a contract-event stream must not
surface events of transactions the committer invalidated (the default), yet
diagnostic consumers can opt in to seeing them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from ..common.types import ValidationCode
from ..fabric.block import CommittedBlock
from ..fabric.transaction import TransactionEnvelope
from .types import ContractEvent


@dataclass(frozen=True)
class EventFilter:
    """What a contract-event stream lets through.

    * ``chaincode`` — only events emitted by this chaincode (``None``: any);
    * ``event_name`` — only events with exactly this name (``None``: any);
    * ``valid_only`` — suppress events of invalidated transactions (the
      Fabric default; set ``False`` to observe events of rejected
      transactions, e.g. when auditing MVCC losses).
    """

    chaincode: Optional[str] = None
    event_name: Optional[str] = None
    valid_only: bool = True

    def matches(self, tx: TransactionEnvelope, code: ValidationCode) -> bool:
        if tx.event is None:
            return False
        if self.valid_only and not code.is_valid:
            return False
        if self.chaincode is not None and tx.proposal.chaincode != self.chaincode:
            return False
        if self.event_name is not None and tx.event.name != self.event_name:
            return False
        return True


def contract_events_in_block(
    committed: CommittedBlock,
    peer_name: str,
    event_filter: EventFilter,
    start_tx: int = 0,
) -> Iterator[ContractEvent]:
    """Expand one committed block into its matching contract events.

    ``start_tx`` skips transactions before that index — how a
    checkpoint-resumed stream avoids re-delivering events of a partially
    consumed block.
    """

    block = committed.block
    for tx_index, tx in enumerate(block.transactions):
        if tx_index < start_tx:
            continue
        code = committed.metadata.code_for(tx_index)
        if not event_filter.matches(tx, code):
            continue
        assert tx.event is not None  # guaranteed by the filter
        yield ContractEvent(
            chaincode=tx.proposal.chaincode,
            event_name=tx.event.name,
            payload=tx.event.payload,
            tx_id=tx.tx_id,
            block_number=block.number,
            tx_index=tx_index,
            peer_name=peer_name,
            code=code,
            commit_time=committed.commit_time,
        )
