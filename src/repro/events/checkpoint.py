"""Resumable stream cursors (Fabric's checkpointer).

A :class:`Checkpoint` names the *next* position a stream should deliver
from: ``(block_number, tx_index)``.  Block streams only use the block
coordinate; contract-event streams use both, so a consumer that stopped
mid-block resumes exactly after the last event it processed — no gaps, no
duplicates.

Checkpoints only ever advance on *delivered* events (handed to a callback
or yielded by the iterator), never on merely buffered ones.  Combined with
ledger replay this makes resumption lossless even across buffer overflow:
anything dropped from a live buffer is still committed on the ledger, and a
resumed stream re-reads it from there.

Checkpoints serialize to plain dicts (:meth:`Checkpoint.to_dict` /
:meth:`Checkpoint.from_dict`) so callers can persist them as JSON, exactly
like the file checkpointers in the Fabric client SDKs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.errors import FabricError


class CheckpointError(FabricError):
    """A malformed or unusable checkpoint."""


@dataclass(frozen=True, order=True)
class Checkpoint:
    """The next (block, transaction) position a stream delivers from."""

    block_number: int = 0
    tx_index: int = 0

    def __post_init__(self) -> None:
        if self.block_number < 0 or self.tx_index < 0:
            raise CheckpointError(
                f"checkpoint coordinates must be non-negative: "
                f"({self.block_number}, {self.tx_index})"
            )

    def advanced_past_block(self) -> "Checkpoint":
        """The first position of the next block."""

        return Checkpoint(self.block_number + 1, 0)

    def advanced_past_tx(self) -> "Checkpoint":
        """The position right after this transaction, same block."""

        return Checkpoint(self.block_number, self.tx_index + 1)

    def to_dict(self) -> dict:
        return {"block_number": self.block_number, "tx_index": self.tx_index}

    @classmethod
    def from_dict(cls, data: dict) -> "Checkpoint":
        try:
            return cls(int(data["block_number"]), int(data.get("tx_index", 0)))
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(f"malformed checkpoint: {data!r}") from exc

    def __str__(self) -> str:
        return f"@{self.block_number}.{self.tx_index}"
