"""Resumable stream cursors (Fabric's checkpointer).

A :class:`Checkpoint` names the *next* position a stream should deliver
from: ``(block_number, tx_index)``.  Block streams only use the block
coordinate; contract-event streams use both, so a consumer that stopped
mid-block resumes exactly after the last event it processed — no gaps, no
duplicates.

Checkpoints only ever advance on *delivered* events (handed to a callback
or yielded by the iterator), never on merely buffered ones.  Combined with
ledger replay this makes resumption lossless even across buffer overflow:
anything dropped from a live buffer is still committed on the ledger, and a
resumed stream re-reads it from there.

Checkpoints serialize to plain dicts (:meth:`Checkpoint.to_dict` /
:meth:`Checkpoint.from_dict`) so callers can persist them as JSON;
:class:`FileCheckpointer` is the durable variant matching the Fabric client
SDKs' file checkpointers — atomic writes, lossless load, safe to re-open
after a crash.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from ..common.errors import FabricError


class CheckpointError(FabricError):
    """A malformed or unusable checkpoint."""


@dataclass(frozen=True, order=True)
class Checkpoint:
    """The next (block, transaction) position a stream delivers from."""

    block_number: int = 0
    tx_index: int = 0

    def __post_init__(self) -> None:
        if self.block_number < 0 or self.tx_index < 0:
            raise CheckpointError(
                f"checkpoint coordinates must be non-negative: "
                f"({self.block_number}, {self.tx_index})"
            )

    def advanced_past_block(self) -> "Checkpoint":
        """The first position of the next block."""

        return Checkpoint(self.block_number + 1, 0)

    def advanced_past_tx(self) -> "Checkpoint":
        """The position right after this transaction, same block."""

        return Checkpoint(self.block_number, self.tx_index + 1)

    def to_dict(self) -> dict:
        return {"block_number": self.block_number, "tx_index": self.tx_index}

    @classmethod
    def from_dict(cls, data: dict) -> "Checkpoint":
        try:
            return cls(int(data["block_number"]), int(data.get("tx_index", 0)))
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(f"malformed checkpoint: {data!r}") from exc

    def __str__(self) -> str:
        return f"@{self.block_number}.{self.tx_index}"


class FileCheckpointer:
    """A durable checkpoint store, Fabric-SDK style.

    Persists one :class:`Checkpoint` as JSON at ``path``.  Writes are
    atomic (write-to-temp then :func:`os.replace`), so a crash mid-save
    leaves either the previous checkpoint or the new one — never a torn
    file.  ``load`` returns ``None`` when no checkpoint was ever saved and
    raises :class:`CheckpointError` on a corrupt file (surfacing the
    corruption beats silently restarting from genesis).

    Usage with a stream::

        checkpointer = FileCheckpointer("listener.checkpoint.json")
        stream = contract.contract_events(checkpoint=checkpointer.load())
        ...
        checkpointer.save(stream.checkpoint())   # after processing events
    """

    def __init__(self, path: "str | os.PathLike[str]") -> None:
        self.path = Path(path)

    def load(self) -> Optional[Checkpoint]:
        """The stored checkpoint, or ``None`` if none was saved yet."""

        try:
            text = self.path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise CheckpointError(
                f"corrupt checkpoint file {self.path}: {exc}"
            ) from exc
        if not isinstance(data, dict):
            raise CheckpointError(
                f"corrupt checkpoint file {self.path}: expected an object, "
                f"got {type(data).__name__}"
            )
        return Checkpoint.from_dict(data)

    def save(self, checkpoint: Checkpoint) -> None:
        """Atomically persist ``checkpoint`` (temp file + rename)."""

        if not isinstance(checkpoint, Checkpoint):
            raise CheckpointError(
                f"can only save a Checkpoint, got {type(checkpoint).__name__}"
            )
        tmp_path = self.path.with_name(self.path.name + ".tmp")
        tmp_path.write_text(
            json.dumps(checkpoint.to_dict(), sort_keys=True) + "\n",
            encoding="utf-8",
        )
        os.replace(tmp_path, self.path)

    def clear(self) -> None:
        """Forget the stored checkpoint (next ``load`` returns ``None``)."""

        try:
            self.path.unlink()
        except FileNotFoundError:
            pass

    def __repr__(self) -> str:
        return f"FileCheckpointer({str(self.path)!r})"
