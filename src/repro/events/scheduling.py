"""When event deliveries run: inline, or as discrete-event occurrences.

A real deliver service is a separate gRPC stream: the peer's committer and
the client's listener are different processes, so delivery happens *at* the
commit instant but not *inside* the commit call stack.  The two schedules
model that distinction for our two transports:

* :class:`InlineSchedule` — the clockless default: deliveries run
  synchronously the moment the hub publishes (or the replay loop reads a
  block).  Used by :class:`~repro.gateway.transport.SyncTransport` and by
  the channel's own commit tracking.
* :class:`SimSchedule` — deliveries become zero-delay simulation events on
  the DES clock: a block committed at virtual time *t* is delivered to
  subscribers at exactly *t*, after the committing process's current event
  finishes.  Simulated timings are unchanged — no service times, no
  resource contention, no RNG draws are attached to delivery — only the
  intra-instant interleaving matches a real peer, where the committer never
  blocks on its event consumers.

Both schedules preserve per-subscription FIFO order: deliveries dispatched
in order run in order (the DES kernel breaks same-time ties by scheduling
sequence).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable

from ..sim.engine import Environment

Thunk = Callable[[], None]


class DeliverySchedule(ABC):
    """Strategy for running one delivery thunk at the current instant."""

    @abstractmethod
    def dispatch(self, thunk: Thunk) -> None:
        """Run ``thunk`` now (inline) or at the current instant (scheduled)."""


class InlineSchedule(DeliverySchedule):
    """Run deliveries synchronously inside the publishing call."""

    def dispatch(self, thunk: Thunk) -> None:
        thunk()

    def __repr__(self) -> str:
        return "InlineSchedule()"


class SimSchedule(DeliverySchedule):
    """Run deliveries as zero-delay events on a simulation clock."""

    def __init__(self, env: Environment) -> None:
        self.env = env

    def dispatch(self, thunk: Thunk) -> None:
        event = self.env.event()
        event.callbacks.append(lambda _event: thunk())
        event.succeed()

    def __repr__(self) -> str:
        return f"SimSchedule(now={self.env.now})"
