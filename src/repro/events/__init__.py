"""The event service: replayable block/contract event streams.

Fabric peers expose a deliver service that streams committed blocks from
any past height; client SDKs build block and chaincode-event listeners on
top of it.  This package is that subsystem for the reproduction:

* :mod:`repro.events.deliver` — per-peer deliver sessions (ledger replay,
  then live :class:`~repro.fabric.events.EventHub` delivery, seam-free);
* :mod:`repro.events.streams` — :class:`BlockEventStream` /
  :class:`ContractEventStream`, iterator + callback styles, bounded
  buffers with explicit overflow policies;
* :mod:`repro.events.filters` — chaincode / event-name / validity filters;
* :mod:`repro.events.checkpoint` — resumable cursors (no gaps, no dups);
* :mod:`repro.events.scheduling` — when deliveries run: inline, or as
  zero-delay events at commit instants on the DES clock;
* :mod:`repro.events.types` — the delivered :class:`BlockEvent` /
  :class:`ContractEvent` payloads.

Consumers reach it through the Gateway::

    stream = gateway.block_events(start_block=0)       # replay + live
    events = contract.contract_events(event_name="voted")
    for event in events:
        ...
    cp = events.checkpoint()                            # resume later:
    events = contract.contract_events(checkpoint=cp)
"""

from .checkpoint import Checkpoint, CheckpointError, FileCheckpointer
from .deliver import DeliverError, DeliverService, DeliverSession
from .filters import EventFilter, contract_events_in_block
from .scheduling import DeliverySchedule, InlineSchedule, SimSchedule
from .streams import (
    DEFAULT_BUFFER_LIMIT,
    BlockEventStream,
    ContractEventStream,
    EventStream,
    StreamClosedError,
    StreamOverflowError,
)
from .types import BlockEvent, ContractEvent

__all__ = [
    "BlockEvent",
    "ContractEvent",
    "BlockEventStream",
    "ContractEventStream",
    "EventStream",
    "DEFAULT_BUFFER_LIMIT",
    "StreamOverflowError",
    "StreamClosedError",
    "Checkpoint",
    "CheckpointError",
    "FileCheckpointer",
    "EventFilter",
    "contract_events_in_block",
    "DeliverService",
    "DeliverSession",
    "DeliverError",
    "DeliverySchedule",
    "InlineSchedule",
    "SimSchedule",
]
