"""Event payloads delivered by the event service.

Two event kinds flow through :mod:`repro.events` streams:

* :class:`BlockEvent` — one committed block as observed on one peer, the
  unit Fabric's deliver service streams to clients;
* :class:`ContractEvent` — one chaincode event (``ctx.events.set``)
  extracted from a committed transaction, enriched with its commit
  coordinates so consumers can checkpoint and correlate.

Both are frozen: an event describes something that already happened on the
ledger and is shared between every subscriber of a peer.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.types import Json, TxStatus, ValidationCode
from ..fabric.block import CommittedBlock


@dataclass(frozen=True)
class BlockEvent:
    """One committed block delivered to a block stream."""

    committed: CommittedBlock
    peer_name: str

    @property
    def block_number(self) -> int:
        return self.committed.block.number

    @property
    def commit_time(self) -> float:
        return self.committed.commit_time

    @property
    def transaction_count(self) -> int:
        return len(self.committed.block)

    def statuses(self) -> list[TxStatus]:
        """Per-transaction statuses of the block (commit-notification view)."""

        from ..fabric.events import statuses_from_block

        return statuses_from_block(self.committed)

    def __repr__(self) -> str:
        return (
            f"BlockEvent(block={self.block_number}, "
            f"txs={self.transaction_count}, peer={self.peer_name!r})"
        )


@dataclass(frozen=True)
class ContractEvent:
    """One chaincode event extracted from a committed transaction.

    Mirrors the fields of Fabric Gateway's ``ChaincodeEvent`` message:
    which chaincode emitted it, the event name and payload the handler set
    during endorsement, plus the commit coordinates (block number, position
    in block, transaction ID) and the validation code the committing peer
    assigned.  Streams filter on validity by default — like Fabric, events
    of invalidated transactions are normally suppressed.
    """

    chaincode: str
    event_name: str
    payload: Json
    tx_id: str
    block_number: int
    tx_index: int
    peer_name: str
    code: ValidationCode = ValidationCode.VALID
    commit_time: float = 0.0

    @property
    def is_valid(self) -> bool:
        return self.code.is_valid

    def to_dict(self) -> dict:
        """JSON-shaped form (what a wire deliver service would send)."""

        return {
            "chaincode": self.chaincode,
            "event_name": self.event_name,
            "payload": self.payload,
            "tx_id": self.tx_id,
            "block_number": self.block_number,
            "tx_index": self.tx_index,
            "code": self.code.name,
        }

    def __repr__(self) -> str:
        return (
            f"ContractEvent({self.event_name!r} from {self.chaincode!r} "
            f"at block {self.block_number} tx {self.tx_index})"
        )
