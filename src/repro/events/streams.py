"""Event streams: the consumer-facing objects of the event service.

A stream couples one :class:`~repro.events.deliver.DeliverSession` to one
consumer, in either of two styles:

* **callback** — ``stream.on_event(fn)`` delivers each event to ``fn`` the
  moment it arrives (at the commit instant on the DES transport).  Any
  buffered backlog is flushed to the callback on registration.
* **iterator** — ``for event in stream`` drains the buffered events and
  stops when the buffer is empty (a non-blocking drain; iterate again
  after driving the network to pick up newer events).

Buffering is bounded.  ``buffer_limit`` caps how many undelivered events a
stream holds; ``overflow`` picks what happens at the cap:

* ``"raise"`` (default) — the stream *fails*: it detaches from the peer,
  keeps its buffered events drainable, and raises
  :class:`StreamOverflowError` at the next consumer interaction.  The
  failure never propagates into the peer's commit path — a consumer that
  stopped draining must not break the committer or its co-subscribers;
* ``"drop_oldest"`` — evict the oldest buffered event (keep up with the
  head of the chain, count the loss in :attr:`EventStream.dropped`);
* ``"drop_newest"`` — refuse the new event instead (keep the contiguous
  prefix, count the loss).

Dropped events are *not* gone: the stream pins its checkpoint at the first
undelivered loss, so resuming from :meth:`EventStream.checkpoint` re-reads
every dropped event straight from the ledger (re-delivering, at worst,
events this stream already handed out after the loss — at-least-once
across overflow, exactly-once otherwise).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Iterator, Optional

from ..common.errors import FabricError
from ..fabric.block import CommittedBlock
from ..fabric.peer import Peer
from .checkpoint import Checkpoint
from .deliver import DeliverSession
from .filters import EventFilter, contract_events_in_block
from .scheduling import DeliverySchedule
from .types import BlockEvent, ContractEvent

#: Default cap on undelivered buffered events per stream.
DEFAULT_BUFFER_LIMIT = 65536

#: Accepted ``overflow`` policies.
OVERFLOW_POLICIES = ("raise", "drop_oldest", "drop_newest")


class StreamOverflowError(FabricError):
    """A stream's bounded buffer filled under the ``"raise"`` policy."""


class StreamClosedError(FabricError):
    """An operation on a closed stream that requires it open."""


class EventStream:
    """Common machinery of block and contract-event streams."""

    def __init__(
        self,
        peer: Peer,
        start: Checkpoint,
        schedule: Optional[DeliverySchedule] = None,
        buffer_limit: int = DEFAULT_BUFFER_LIMIT,
        overflow: str = "raise",
    ) -> None:
        if buffer_limit < 1:
            raise ValueError(f"buffer_limit must be positive: {buffer_limit}")
        if overflow not in OVERFLOW_POLICIES:
            raise ValueError(
                f"unknown overflow policy {overflow!r}; pick one of {OVERFLOW_POLICIES}"
            )
        self._start = start
        self._buffer: Deque = deque()
        self._buffer_limit = buffer_limit
        self._overflow = overflow
        self._listeners: list[Callable] = []
        #: Events lost to buffer overflow under a ``drop_*`` policy.
        self.dropped = 0
        #: Resume position: just past the last *delivered* event.
        self._checkpoint = start
        #: Position of the first overflow-dropped event, if any: the
        #: checkpoint never advances past it, so resume recovers the loss.
        self._gap: Optional[Checkpoint] = None
        #: Set under the ``"raise"`` policy; surfaced on consumer calls.
        self._failure: Optional[StreamOverflowError] = None
        # Assign before start(): replay delivers synchronously under the
        # inline schedule, and _expand needs the session for the peer name.
        self._session = DeliverSession(
            peer, self._on_block, start_block=start.block_number, schedule=schedule
        )
        self._session.start()

    # -- template methods ---------------------------------------------------------

    def _expand(self, committed: CommittedBlock) -> Iterator:
        """Map one committed block to this stream's events."""

        raise NotImplementedError

    def _position_after(self, event) -> Checkpoint:
        """The checkpoint value after ``event`` has been delivered."""

        raise NotImplementedError

    def _position_of(self, event) -> Checkpoint:
        """The checkpoint position ``event`` itself occupies."""

        raise NotImplementedError

    # -- ingest -------------------------------------------------------------------

    def _on_block(self, committed: CommittedBlock) -> None:
        for event in self._expand(committed):
            self._ingest(event)

    def _ingest(self, event) -> None:
        if self._listeners:
            for listener in list(self._listeners):
                listener(event)
            # Advance only after every listener accepted the event: if a
            # consumer raised and later resumes from checkpoint(), it must
            # see this event again (at-least-once on failure).
            self._checkpoint = self._position_after(event)
            return
        if len(self._buffer) >= self._buffer_limit:
            if self._overflow == "raise":
                # Fail the *stream*, never the publisher: detach from the
                # peer (co-subscribers and the commit path are unaffected)
                # and surface the error at the next consumer interaction.
                self._failure = StreamOverflowError(
                    f"stream buffer full ({self._buffer_limit} events); "
                    "the stream is closed — drain faster, raise the limit, "
                    "or resume from checkpoint() with a fresh stream"
                )
                self.close()
                return
            self.dropped += 1
            dropped = event if self._overflow == "drop_newest" else self._buffer.popleft()
            if self._gap is None:
                self._gap = self._position_of(dropped)
            if self._overflow == "drop_newest":
                return
        self._buffer.append(event)

    # -- consumption --------------------------------------------------------------

    def on_event(self, listener: Callable) -> "EventStream":
        """Register a callback; buffered backlog is flushed to it first."""

        if self._failure is not None:
            raise self._failure
        if self.closed:
            raise StreamClosedError("cannot attach a listener to a closed stream")
        while self._buffer:
            event = self._buffer[0]
            listener(event)
            # Pop and advance only after the listener accepted the event.
            self._buffer.popleft()
            self._checkpoint = self._position_after(event)
        self._listeners.append(listener)
        return self

    def __iter__(self):
        return self

    def __next__(self):
        if self._buffer:
            event = self._buffer.popleft()
            self._checkpoint = self._position_after(event)
            return event
        if self._failure is not None:
            # Buffered events drain first; then the overflow surfaces.
            raise self._failure
        raise StopIteration

    # -- state --------------------------------------------------------------------

    def checkpoint(self) -> Checkpoint:
        """Cursor just past the last delivered event — resume here later.

        Pinned at the first overflow-dropped event, if any: a resumed
        stream re-reads the loss from the ledger rather than skipping it.
        """

        if self._gap is not None and self._gap < self._checkpoint:
            return self._gap
        return self._checkpoint

    @property
    def pending(self) -> int:
        """Buffered events awaiting delivery."""

        return len(self._buffer)

    @property
    def closed(self) -> bool:
        return self._session.closed

    @property
    def peer_name(self) -> str:
        return self._session.peer.name

    def close(self) -> None:
        """Stop deliveries.  Buffered events remain drainable by iteration."""

        self._session.close()

    def __enter__(self) -> "EventStream":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return (
            f"{type(self).__name__}({state}, peer={self.peer_name!r}, "
            f"checkpoint={self._checkpoint}, pending={self.pending})"
        )


class BlockEventStream(EventStream):
    """Streams every committed block of one peer as :class:`BlockEvent`."""

    def _expand(self, committed: CommittedBlock) -> Iterator[BlockEvent]:
        yield BlockEvent(committed=committed, peer_name=self._session.peer.name)

    def _position_after(self, event: BlockEvent) -> Checkpoint:
        return Checkpoint(event.block_number).advanced_past_block()

    def _position_of(self, event: BlockEvent) -> Checkpoint:
        return Checkpoint(event.block_number)


class ContractEventStream(EventStream):
    """Streams matching chaincode events as :class:`ContractEvent`.

    The filter decides chaincode, event name, and validity; the start
    checkpoint's ``tx_index`` skips already-delivered events of a partially
    consumed first block.  Note the checkpoint advances only on delivered
    events — blocks with no matching events are rescanned (cheaply, and
    with no duplicate deliveries) on resume.
    """

    def __init__(
        self,
        peer: Peer,
        start: Checkpoint,
        event_filter: EventFilter,
        schedule: Optional[DeliverySchedule] = None,
        buffer_limit: int = DEFAULT_BUFFER_LIMIT,
        overflow: str = "raise",
    ) -> None:
        self.event_filter = event_filter
        super().__init__(peer, start, schedule, buffer_limit, overflow)

    def _expand(self, committed: CommittedBlock) -> Iterator[ContractEvent]:
        start_tx = (
            self._start.tx_index
            if committed.block.number == self._start.block_number
            else 0
        )
        return contract_events_in_block(
            committed, self._session.peer.name, self.event_filter, start_tx=start_tx
        )

    def _position_after(self, event: ContractEvent) -> Checkpoint:
        return Checkpoint(event.block_number, event.tx_index).advanced_past_tx()

    def _position_of(self, event: ContractEvent) -> Checkpoint:
        return Checkpoint(event.block_number, event.tx_index)
