"""The per-peer deliver service: replay from the ledger, then go live.

Fabric peers expose a *deliver service*: a client asks for blocks from any
past height and the peer streams the historical ones from its ledger, then
keeps the stream open and sends each newly committed block as it lands
(Androulaki et al., 2018, §4.5).  :class:`DeliverService` is that component
for in-process peers.  It is the **only** place allowed to touch
``EventHub`` directly — every external consumer goes through a stream
obtained from the Gateway.

A :class:`DeliverSession` holds a monotonic cursor (the next block number
it owes its consumer).  The replay phase reads committed blocks straight
from the :class:`~repro.fabric.ledger.Ledger`; the live phase rides the
peer's :class:`~repro.fabric.events.EventHub`.  The boundary is seam-free:
the hub subscription is installed *before* replay starts, live publishes
arriving mid-replay are ignored (the replay loop re-checks the ledger
height and picks those blocks up itself — the hub publishes only after the
ledger append), and once live, any gap or duplicate is resolved against the
cursor by re-reading the ledger.  The consumer therefore sees every block
from ``start_block`` exactly once, in order.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..common.errors import FabricError
from ..fabric.block import CommittedBlock
from ..fabric.peer import Peer
from .scheduling import DeliverySchedule, InlineSchedule

#: A deliver consumer receives committed blocks, in order, exactly once.
BlockConsumer = Callable[[CommittedBlock], None]


class DeliverError(FabricError):
    """A deliver request the peer cannot serve."""


class DeliverSession:
    """One open deliver stream from one peer to one consumer."""

    def __init__(
        self,
        peer: Peer,
        consumer: BlockConsumer,
        start_block: int = 0,
        schedule: Optional[DeliverySchedule] = None,
    ) -> None:
        if start_block < 0:
            raise DeliverError(f"deliver start_block must be non-negative: {start_block}")
        self.peer = peer
        self._consumer = consumer
        self._schedule = schedule if schedule is not None else InlineSchedule()
        #: Next block number owed to the consumer.
        self._next = start_block
        self._replaying = False
        self._closed = False
        self._unsubscribe: Optional[Callable[[], None]] = None

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> "DeliverSession":
        """Subscribe live, then replay history up to the current height.

        Replay is always synchronous — historical blocks stream out during
        this call, like a real deliver service serving a seek request; the
        configured schedule only governs *live* deliveries (at commit
        instants on the DES clock).
        """

        self._unsubscribe = self.peer.events.subscribe_internal(self._on_live)
        self._replaying = True
        try:
            self._catch_up(InlineSchedule())
        finally:
            self._replaying = False
        return self

    def close(self) -> None:
        """Detach from the hub; no further deliveries occur."""

        self._closed = True
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def next_block(self) -> int:
        """The next block number this session will deliver."""

        return self._next

    # -- delivery ----------------------------------------------------------------

    def _catch_up(self, schedule: DeliverySchedule) -> None:
        """Deliver every committed block the cursor hasn't covered yet.

        Re-checks the ledger height each iteration: a consumer callback may
        itself trigger commits (synchronous transport), and those blocks
        belong to this pass, not to the live phase.
        """

        while not self._closed and self._next < self.peer.ledger.height:
            block = self.peer.ledger.block_at(self._next)
            self._next += 1
            self._dispatch(block, schedule)

    def _on_live(self, committed: CommittedBlock, peer_name: str) -> None:
        if self._closed or self._replaying:
            # Mid-replay publishes are ledger-visible already; the replay
            # loop delivers them in order.
            return
        if committed.block.number < self._next:
            return  # duplicate redelivery
        # The hub publishes in commit order right after the ledger append,
        # so this block (and any gap before it) is readable from the ledger.
        self._catch_up(self._schedule)

    def _dispatch(self, committed: CommittedBlock, schedule: DeliverySchedule) -> None:
        consumer = self._consumer

        def deliver() -> None:
            if not self._closed:
                consumer(committed)

        schedule.dispatch(deliver)


class DeliverService:
    """Factory for deliver sessions on one peer."""

    def __init__(self, peer: Peer) -> None:
        self.peer = peer

    def deliver(
        self,
        consumer: BlockConsumer,
        start_block: int = 0,
        schedule: Optional[DeliverySchedule] = None,
    ) -> DeliverSession:
        """Open a session streaming blocks from ``start_block`` onwards."""

        return DeliverSession(self.peer, consumer, start_block, schedule).start()
