"""Logical clocks.

The JSON CRDT identifies operations with Lamport timestamps: a pair of a
monotonically increasing counter and an actor ID, totally ordered by
``(counter, actor)``.  The paper (§5.2) instantiates one Lamport clock per
JSON CRDT and ticks it for every operation.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class LamportTimestamp:
    """A Lamport timestamp ``(counter, actor)``.

    Ordering is lexicographic, which yields the arbitrary-but-deterministic
    total order CRDTs need for tie-breaking concurrent operations.
    """

    counter: int
    actor: str

    def __str__(self) -> str:
        return f"{self.counter}@{self.actor}"

    @classmethod
    def parse(cls, text: str) -> "LamportTimestamp":
        counter_s, _, actor = text.partition("@")
        return cls(int(counter_s), actor)


class LamportClock:
    """A mutable Lamport clock bound to one actor.

    ``tick()`` advances local time and returns a fresh timestamp; ``merge()``
    folds in a remotely observed timestamp so later local ticks dominate it.
    """

    __slots__ = ("actor", "_counter")

    def __init__(self, actor: str, start: int = 0) -> None:
        if not actor:
            raise ValueError("actor must be a non-empty string")
        if start < 0:
            raise ValueError("clock cannot start negative")
        self.actor = actor
        self._counter = start

    @property
    def time(self) -> int:
        """Current counter value (the last issued tick, 0 if none)."""

        return self._counter

    def tick(self) -> LamportTimestamp:
        """Advance the clock and return the new timestamp."""

        self._counter += 1
        return LamportTimestamp(self._counter, self.actor)

    def peek(self) -> LamportTimestamp:
        """The timestamp that *would* be issued by the next ``tick()``."""

        return LamportTimestamp(self._counter + 1, self.actor)

    def merge(self, observed: LamportTimestamp) -> None:
        """Fold in a remote timestamp: local counter becomes the max."""

        if observed.counter > self._counter:
            self._counter = observed.counter

    def __repr__(self) -> str:
        return f"LamportClock(actor={self.actor!r}, time={self._counter})"
