"""Hashing helpers: content addresses, hash chains, and deterministic HMAC.

The reproduction never uses real PKI.  Signatures are HMAC-SHA256 keyed by a
per-identity secret (see :mod:`repro.fabric.identity`), which preserves the
properties the protocol logic relies on — determinism, unforgeability within
the simulation, and binding to the signed payload — without pulling in
``cryptography``.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Iterable

DIGEST_SIZE = 32


def sha256(data: bytes) -> bytes:
    """Raw SHA-256 digest."""

    return hashlib.sha256(data).digest()


def sha256_hex(data: bytes) -> str:
    """Hex SHA-256 digest (used for human-readable IDs)."""

    return hashlib.sha256(data).hexdigest()


def short_hash(data: bytes, length: int = 12) -> str:
    """Truncated hex digest for compact IDs (tx IDs, content addresses)."""

    return sha256_hex(data)[:length]


def chain_hash(previous: bytes, payload: bytes) -> bytes:
    """Hash-chain step used to link blocks: ``H(previous || H(payload))``."""

    return sha256(previous + sha256(payload))


def merkle_root(leaves: Iterable[bytes]) -> bytes:
    """Merkle tree root over the given leaf hashes.

    Fabric hashes the concatenation of transaction bytes for the block data
    hash; we compute a proper Merkle root instead, which additionally lets
    tests construct membership proofs.  An empty leaf set hashes to
    ``sha256(b"")`` so that empty blocks still have a deterministic data hash.
    """

    level = [sha256(leaf) for leaf in leaves]
    if not level:
        return sha256(b"")
    while len(level) > 1:
        if len(level) % 2 == 1:
            level.append(level[-1])  # duplicate the odd leaf, Bitcoin-style
        level = [sha256(level[i] + level[i + 1]) for i in range(0, len(level), 2)]
    return level[0]


def hmac_sign(secret: bytes, payload: bytes) -> bytes:
    """Deterministic signature stand-in: HMAC-SHA256."""

    return hmac.new(secret, payload, hashlib.sha256).digest()


def hmac_verify(secret: bytes, payload: bytes, signature: bytes) -> bool:
    """Constant-time verification of :func:`hmac_sign` output."""

    return hmac.compare_digest(hmac_sign(secret, payload), signature)


def stable_int(data: bytes, modulus: int) -> int:
    """Map bytes to a stable integer in ``[0, modulus)`` (for sharding)."""

    if modulus <= 0:
        raise ValueError("modulus must be positive")
    return int.from_bytes(sha256(data)[:8], "big") % modulus
