"""Exception hierarchy for the FabricCRDT reproduction.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without catching programming errors.  Sub-hierarchies
mirror the package layout: simulation, CRDT, fabric, and workload errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


# ---------------------------------------------------------------------------
# Configuration / usage errors
# ---------------------------------------------------------------------------


class ConfigError(ReproError):
    """A configuration object failed validation."""


class SerializationError(ReproError):
    """A value could not be canonically serialized or deserialized."""


# ---------------------------------------------------------------------------
# Simulation kernel errors
# ---------------------------------------------------------------------------


class SimulationError(ReproError):
    """Base class for discrete-event simulation errors."""


class StopSimulation(SimulationError):
    """Raised internally to stop the event loop from within a process."""

    def __init__(self, reason: object = None) -> None:
        super().__init__(reason)
        self.reason = reason


class EventAlreadyTriggered(SimulationError):
    """An event was succeeded or failed more than once."""


class ProcessKilled(SimulationError):
    """Delivered into a process that another process interrupted."""

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)
        self.cause = cause


# ---------------------------------------------------------------------------
# CRDT errors
# ---------------------------------------------------------------------------


class CRDTError(ReproError):
    """Base class for CRDT layer errors."""


class MergeTypeError(CRDTError):
    """Attempted to merge two CRDT instances of incompatible types."""


class UnsupportedValueError(CRDTError):
    """A JSON value type is outside the supported subset (string/map/list)."""


class CausalityError(CRDTError):
    """An operation's dependencies can never be satisfied."""


class CursorError(CRDTError):
    """A cursor path does not resolve against a JSON document."""


# ---------------------------------------------------------------------------
# Fabric errors
# ---------------------------------------------------------------------------


class FabricError(ReproError):
    """Base class for Fabric substrate errors."""


class EndorsementError(FabricError):
    """A proposal failed to gather a satisfying set of endorsements."""


class PolicyError(FabricError):
    """An endorsement policy expression is malformed."""


class ChaincodeError(FabricError):
    """A chaincode invocation raised or misused the shim."""


class LedgerError(FabricError):
    """Ledger integrity violation (bad hash chain, bad block number...)."""


class StateError(FabricError):
    """World state database misuse (bad version, malformed batch...)."""


class OrderingError(FabricError):
    """The ordering service rejected or mishandled an envelope."""


# ---------------------------------------------------------------------------
# Workload / benchmarking errors
# ---------------------------------------------------------------------------


class WorkloadError(ReproError):
    """A workload specification or driver failed."""


class CalibrationError(ReproError):
    """The benchmark cost model could not be calibrated."""
