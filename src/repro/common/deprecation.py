"""Once-per-process deprecation warnings for legacy API shims.

The legacy surfaces (``Chaincode``/``fn_`` dispatch, ``LocalNetwork.invoke``
/ ``.query``, ``SimulatedNetwork.submit_flow``) sit on hot paths — a
workload run crosses them thousands of times.  Emitting a warning per call
would either drown the console or depend on the interpreter's default
dedup filters, which test harnesses routinely reset.  ``warn_once`` latches
each shim explicitly: the first crossing warns, every later one is silent,
independent of the active warning filters.

``reset_deprecation_warnings`` re-arms the latches (used by tests).
"""

from __future__ import annotations

import warnings

_warned: set[str] = set()


def warn_once(key: str, message: str, stacklevel: int = 3) -> None:
    """Emit ``message`` as a :class:`DeprecationWarning` once per ``key``."""

    if key in _warned:
        return
    _warned.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)


def reset_deprecation_warnings() -> None:
    """Re-arm every latch (test isolation helper)."""

    _warned.clear()
